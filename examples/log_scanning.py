"""Log scanning: extract structured fields from web-server logs with a
multi-pattern engine (the unstructured-data-analytics use case from the
paper's introduction).

Compiles one engine over several field patterns, scans a synthetic
access log once, and groups hits per line — multi-pattern matching
amortises one pass over the input across all extractors.

Run:  python examples/log_scanning.py
"""

import random

from repro import BitGenEngine

FIELDS = {
    "ipv4": r"[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}",
    "status_5xx": r"HTTP/1\.[01] 5[0-9][0-9]",
    "php_probe": r"\.php",
    "sql_injection": r"(union|UNION)[^\n]{0,8}(select|SELECT)",
    "dotdot": r"\.\./\.\.",
}


def synth_log(lines: int = 200, seed: int = 5) -> bytes:
    rng = random.Random(seed)
    out = []
    paths = ["/index.html", "/login", "/img/x.png", "/search?q=a",
             "/wp-admin/setup.php", "/a/../../etc/passwd",
             "/items?id=1 union all select pass", "/robots.txt"]
    for _ in range(lines):
        ip = ".".join(str(rng.randrange(256)) for _ in range(4))
        path = rng.choice(paths)
        status = rng.choice([200, 200, 200, 301, 404, 500, 503])
        out.append(f"{ip} GET {path} HTTP/1.1 {status}")
    return "\n".join(out).encode()


def main() -> None:
    log = synth_log()
    engine = BitGenEngine.compile(list(FIELDS.values()))
    result = engine.match(log)

    names = list(FIELDS)
    print(f"scanned {log.count(10) + 1} log lines "
          f"({len(log)} bytes) for {len(FIELDS)} field patterns\n")
    for index, name in enumerate(names):
        print(f"{name:14s} {len(result.ends[index]):5d} hits")

    # Group suspicious hits by line.
    line_starts = [0]
    for pos, byte in enumerate(log):
        if byte == 10:
            line_starts.append(pos + 1)

    def line_of(pos):
        lo = 0
        for start in line_starts:
            if start > pos:
                break
            lo = start
        end = log.find(b"\n", lo)
        return log[lo:end if end != -1 else len(log)].decode()

    print("\nsuspicious lines:")
    flagged = set()
    for name in ("sql_injection", "dotdot", "php_probe"):
        for end in result.ends[names.index(name)]:
            line = line_of(end)
            if line not in flagged:
                flagged.add(line)
                print(f"  [{name}] {line}")


if __name__ == "__main__":
    main()

"""Sharded parallel scanning: one engine, many streams, a worker pool.

Demonstrates the ``repro.parallel`` dispatch layer: a ``ScanConfig``
with ``workers > 1`` fans ``match_many`` across a pool (processes by
default; threads here so the demo is cheap everywhere), results stay
bit-identical to serial execution — match positions *and* aggregated
kernel metrics — and a crashing worker degrades to an in-process
serial re-run recorded in ``engine.last_scan_faults`` instead of
failing the scan.

Run:  python examples/parallel_scan.py
"""

import os

import repro.parallel
from repro import BitGenEngine, ScanConfig
from repro.parallel.worker import FAULT_ENV

PATTERNS = [
    "GET /[a-z]+",           # HTTP requests
    "virus[0-9]+",           # AV-style signature family
    "a(bc)*d",               # the paper's Listing 3 example
    "[0-9][0-9]:[0-9][0-9]", # timestamps
]

BASE = (b"GET /index 09:30 virus7 abcbcd ... GET /login 10:45 "
        b"virus12 abcd " * 60)

#: a few packet-length classes, like a real capture
STREAMS = [BASE[:size] for size in (512, 1024, 2048, 512, 1024, 4096,
                                    2048, 512)]


def main() -> None:
    serial = BitGenEngine.compile(
        PATTERNS, config=ScanConfig(backend="compiled"))
    # min_parallel_bytes=0: this demo's streams are deliberately tiny,
    # and the point is to show the pool — a real deployment would let
    # the threshold route small scans straight to serial.
    parallel = BitGenEngine.compile(
        PATTERNS, config=ScanConfig(backend="compiled", workers=4,
                                    executor="thread",
                                    min_parallel_bytes=0))

    serial_results = serial.match_many(STREAMS)
    parallel_results = parallel.match_many(STREAMS)

    print(f"{len(PATTERNS)} patterns over {len(STREAMS)} streams "
          f"({sum(len(s) for s in STREAMS)} bytes), 4 workers\n")
    for index, (left, right) in enumerate(zip(parallel_results,
                                              serial_results)):
        assert left.ends == right.ends and left.metrics == right.metrics
        print(f"stream {index}: {left.match_count():4d} matches "
              f"({len(STREAMS[index])} bytes) — identical to serial")
    print(f"\nfaults: {parallel.last_scan_faults}")

    # Graceful degradation: arm the fault-injection hook so every
    # worker dies, and the scan still answers — serially, with the
    # incidents on the record.
    os.environ[FAULT_ENV] = "1"
    try:
        degraded = parallel.match_many(STREAMS)
    finally:
        del os.environ[FAULT_ENV]
    assert all(l.ends == r.ends
               for l, r in zip(degraded, serial_results))
    print(f"\nwith every worker crashing: results still identical; "
          f"{len(parallel.last_scan_faults)} shard fault(s) recorded:")
    for fault in parallel.last_scan_faults:
        print(f"  shard {fault.shard}: {fault.kind} -> "
              f"re-ran via {fault.fallback}")

    # Pools persist across scans (warm reuse); atexit would release
    # them anyway, but long-lived processes should do it explicitly.
    repro.parallel.shutdown()


if __name__ == "__main__":
    main()

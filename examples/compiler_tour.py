"""A tour of the BitGen compiler pipeline on one regex.

Shows every stage the paper describes: lowering to a bitstream program
(Figure 2 / Listing 3), static overlap analysis (Section 4), Shift
Rebalancing (Section 5), Zero Block Skipping guards (Section 6),
barrier planning (Section 5.3), and finally the emitted CUDA-like
kernel source.

Run:  python examples/compiler_tour.py [regex]
"""

import sys

from repro.core import (analyze_static, insert_guards, plan_barriers,
                        rebalance_program, render_kernel)
from repro.ir import RegionDFG, lower_regex, split_regions
from repro.regex import parse


def main(pattern: str = "a(bc)*d") -> None:
    print(f"=== regex: /{pattern}/ ===\n")
    node = parse(pattern)

    program = lower_regex(node)
    print("--- bitstream program (Figure 2 lowering) ---")
    print(program.render())

    static = analyze_static(program)
    print("\n--- overlap analysis (Section 4) ---")
    print(f"static lookback: {static.lookback} bits, "
          f"lookahead: {static.lookahead} bits")
    print(f"loop-dependent (dynamic) overlap: {static.has_dynamic}")

    rebalanced = rebalance_program(program)
    depth_before = max((RegionDFG.build(r).critical_path_length()
                        for r in split_regions(program.statements)),
                       default=0)
    depth_after = max((RegionDFG.build(r).critical_path_length()
                       for r in split_regions(rebalanced.statements)),
                      default=0)
    print("\n--- shift rebalancing (Section 5) ---")
    print(f"critical path: {depth_before} -> {depth_after}")

    guarded = insert_guards(rebalanced, interval=4)
    guard_count = guarded.render().count("goto")
    print("\n--- zero block skipping (Section 6) ---")
    print(f"guards inserted: {guard_count}")

    plan = plan_barriers(guarded, merge_size=8)
    print("\n--- barrier plan (Section 5.3) ---")
    print(f"{plan.shift_count} shifts in {plan.group_count} barrier "
          f"groups (merge size 8); worst group stores "
          f"{plan.max_group_stores} block(s) in shared memory")

    print("\n--- generated kernel ---")
    print(render_kernel(guarded, plan=plan))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "a(bc)*d")

"""Intrusion detection: scan synthetic network traffic against a
Snort-style rule set and compare the execution schemes.

This is the paper's motivating deployment (multi-regex deep packet
inspection).  The script builds a deterministic Snort-like workload,
matches it under every scheme of the Table 3 ablation, verifies all
schemes agree, and prints the per-scheme kernel metrics that explain
the speedups: DRAM traffic (DTM), barrier counts (SR), skipped work
(ZBS).

Run:  python examples/intrusion_detection.py
"""

from repro.core import SCHEME_LADDER, BitGenEngine
from repro.parallel.config import ScanConfig
from repro.workloads import app_by_name


def main() -> None:
    workload = app_by_name("Snort").build(scale=0.01, seed=7)
    print(f"rule set: {len(workload.patterns)} Snort-style patterns, "
          f"traffic: {len(workload.data)} bytes")
    print("sample rules:")
    for pattern in workload.patterns[:4]:
        print(f"    /{pattern}/")
    print()

    reference = None
    header = (f"{'scheme':6s} {'matches':>8s} {'word ops':>10s} "
              f"{'skipped':>9s} {'DRAM KB':>9s} {'barriers':>9s} "
              f"{'loops':>6s}")
    print(header)
    print("-" * len(header))
    for scheme in SCHEME_LADDER:
        engine = BitGenEngine.compile(
            workload.patterns, config=ScanConfig(scheme=scheme,
                                                 cta_count=4))
        result = engine.match(workload.data)
        if reference is None:
            reference = result
        else:
            assert result.same_matches(reference), \
                f"{scheme.value} changed the matches!"
        metrics = result.metrics
        print(f"{scheme.value:6s} {result.match_count():8d} "
              f"{metrics.thread_word_ops:10d} "
              f"{metrics.skipped_word_ops:9d} "
              f"{metrics.dram_total_bytes() // 1024:9d} "
              f"{metrics.barriers:9d} {metrics.fused_loops:6d}")

    print("\nall schemes produce identical matches; interleaving "
          "removes the DRAM traffic, rebalancing the barriers, and "
          "zero-block skipping the wasted work.")

    alerts = [i for i, ends in reference.ends.items() if ends]
    print(f"\ntriggered rules: {alerts[:10]}"
          + (" ..." if len(alerts) > 10 else ""))


if __name__ == "__main__":
    main()

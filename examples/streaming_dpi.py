"""Streaming deep-packet inspection: match signatures over a packet
stream without ever holding the whole stream in memory.

Demonstrates :class:`repro.StreamingMatcher`: one compiled engine,
chunked input (packets), carried history across chunk boundaries, and
a bounded-span guarantee.  A signature split across two packets is
still caught.  Each ``feed`` returns a :class:`repro.ScanReport` —
iterable like the old per-pattern dict, but also carrying the stream
offset and the chunk's kernel metrics.

Run:  python examples/streaming_dpi.py
"""

import random

from repro import BitGenEngine, ScanConfig, StreamingMatcher

SIGNATURES = [
    "union[^\\n]{0,8}select",   # SQL injection
    "/etc/passwd",
    "cmd\\.exe",
    "eval\\(",
]


def packet_stream(rng, packets=60, size=120):
    """Synthetic packets with one split-across-boundary attack."""
    for index in range(packets):
        payload = bytearray(
            rng.choice(b"abcdefghij /?=&%.") for _ in range(size))
        if index == 20:
            payload[-6:] = b"/etc/p"          # first half ...
        if index == 21:
            payload[:6] = b"asswd!"           # ... second half
        if index == 40:
            payload[10:30] = b"id=1 union a select"
        yield bytes(payload)


def main() -> None:
    engine = BitGenEngine.compile(
        SIGNATURES, config=ScanConfig(max_tail_bytes=1024))
    matcher = StreamingMatcher(engine)
    print(f"compiled {len(SIGNATURES)} signatures; guaranteed span "
          f"{matcher.guaranteed_span} bytes\n")

    rng = random.Random(7)
    alerts = 0
    work = 0
    for number, packet in enumerate(packet_stream(rng)):
        report = matcher.feed(packet)       # a ScanReport per packet
        work += report.metrics.thread_word_ops
        for signature, ends in report.items():
            for end in ends:
                alerts += 1
                print(f"packet {number:3d}: signature "
                      f"/{SIGNATURES[signature]}/ ends at stream "
                      f"offset {end} (report offset "
                      f"{report.stream_offset})")
    print(f"\nstream length: {matcher.stream_position} bytes, "
          f"{matcher.chunks_fed} packets, {alerts} alert(s), "
          f"{work} kernel word ops")
    assert alerts >= 2, "both planted attacks must be caught"
    print("the boundary-straddling /etc/passwd was caught across "
          "packets 20/21.")


if __name__ == "__main__":
    main()

"""Virus scanning: match ClamAV-style byte signatures against binary
payloads with every engine in the repository and cross-validate them.

Demonstrates the multi-engine substrate: the same signature set runs
through BitGen (bit-parallel GPU simulation), the Glushkov-NFA worklist
engine (ngAP's model), the decomposition engine (Hyperscan's model),
and the CPU bitstream interpreter (icgrep's model) — and they must all
report the same infections.

Run:  python examples/virus_scan.py
"""

import random

from repro.core import BitGenEngine
from repro.engines import HyperscanEngine, ICgrepEngine, NgAPEngine
from repro.workloads import app_by_name
from repro.workloads.generators import sample_match


def main() -> None:
    workload = app_by_name("ClamAV").build(scale=0.008, seed=3)
    signatures = workload.patterns
    print(f"signature database: {len(signatures)} byte signatures")

    # Build a "disk image": clean binary plus two infected regions.
    rng = random.Random(99)
    image = bytearray(workload.data)
    for index in (0, 1):
        virus = sample_match(rng, workload.nodes[index])
        offset = (index + 1) * len(image) // 3
        image[offset:offset + len(virus)] = virus
        print(f"planted signature {index} at offset {offset} "
              f"({len(virus)} bytes)")
    image = bytes(image)

    engines = [
        BitGenEngine.compile(signatures),
        NgAPEngine.compile(signatures),
        HyperscanEngine.compile(signatures),
        ICgrepEngine.compile(signatures),
    ]
    results = []
    for engine in engines:
        result = engine.match(image)
        infected = result.matched_patterns()
        print(f"{engine.name:10s} -> {result.match_count()} hits, "
              f"signatures {infected}")
        results.append(result)

    for other in results[1:]:
        assert results[0].same_matches(other), "engines disagree!"
    print("\nall four engines agree on every infection site.")

    for sig in results[0].matched_patterns():
        for end in results[0].ends[sig][:2]:
            print(f"signature {sig}: match ends at byte {end}")


if __name__ == "__main__":
    main()

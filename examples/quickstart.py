"""Quickstart: compile a multi-pattern matcher and scan some text.

Run:  python examples/quickstart.py
"""

from repro import BitGenEngine, ScanConfig

PATTERNS = [
    "a(bc)*d",        # Kleene star (the paper's Listing 3 example)
    "colou?r",        # optional character
    "[0-9]{3}-[0-9]{4}",  # bounded repetition: phone-ish number
    "cat|dog",        # alternation
]

TEXT = (b"the colour of a cat is not the color of a dog; "
        b"dial 555-0199 or match abcbcbcd")


def main() -> None:
    # One ScanConfig describes the whole scan; ScanConfig() is the
    # paper's default setup (ZBS scheme, simulating backend, serial).
    engine = BitGenEngine.compile(PATTERNS, config=ScanConfig())
    result = engine.match(TEXT)

    print(f"input: {TEXT.decode()!r}")
    print(f"total matches: {result.match_count()}\n")
    for index, pattern in enumerate(PATTERNS):
        ends = result.ends[index]
        print(f"/{pattern}/  ->  {len(ends)} match(es) ending at {ends}")
        for end in ends:
            start = max(0, end - 15)
            context = TEXT[start:end + 1].decode()
            print(f"    ...{context!r}")

    metrics = result.metrics
    print(f"\nkernel metrics: {metrics.summary()}")


if __name__ == "__main__":
    main()

"""Serving telemetry: /metrics endpoint, SLO tracking, access logs,
offload accounting, and idle-session eviction."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import ScanConfig
from repro.serve import (Gateway, ServeConfig, SloTracker,
                         UnknownSessionError)
from repro.serve.telemetry import (MAX_TENANT_SERIES, OTHER_TENANT,
                                   MetricsServer, quantile,
                                   scrape_metrics)

TINY = CTAGeometry(threads=4, word_bits=8)
CONFIG = ScanConfig(geometry=TINY)
PATTERNS = ["a(bc)*d", "cat|dog", "[0-9][0-9]"]
DATA = b"abcbcd cat 42 dog abcd and 7 cats, 99 dogs; abcbcbcd"


def run(coro):
    return asyncio.run(coro)


def gateway(**changes) -> Gateway:
    changes.setdefault("scan", CONFIG)
    return Gateway(ServeConfig(**changes))


# -- SloTracker ---------------------------------------------------------------


def test_quantile_nearest_rank():
    assert quantile([], 0.5) == 0.0
    assert quantile([3.0], 0.99) == 3.0
    values = [float(i) for i in range(1, 101)]
    assert quantile(values, 0.50) == values[round(0.50 * 99)]
    assert quantile(values, 0.99) == values[round(0.99 * 99)]
    assert quantile(values, 0.0) == 1.0
    assert quantile(values, 1.0) == 100.0


def test_slo_tracker_windows_and_burn():
    clock = {"now": 1000.0}
    tracker = SloTracker(target_s=0.1, window_s=10.0,
                         error_budget=0.01,
                         clock=lambda: clock["now"])
    for _ in range(97):
        assert not tracker.observe("t", 0.01, ok=True)
    assert tracker.observe("t", 0.5, ok=True)     # slow -> violation
    assert tracker.observe("t", 0.5, ok=True)     # slow -> violation
    assert tracker.observe("t", 0.01, ok=False)   # failed -> violation
    row = tracker.snapshot()["t"]
    assert row["count"] == 100
    assert row["violations"] == 3
    assert row["violation_ratio"] == pytest.approx(0.03)
    # 3% violations against a 1% budget burns at 3x
    assert row["burn"] == pytest.approx(3.0)
    assert row["p50_s"] == pytest.approx(0.01)
    assert row["p99_s"] == pytest.approx(0.5)  # the slow tail shows
    # the window slides: past the horizon everything ages out
    clock["now"] += 11.0
    tracker.observe("t", 0.01, ok=True)
    row = tracker.snapshot()["t"]
    assert row["count"] == 1 and row["violations"] == 0


def test_slo_tracker_caps_tenant_cardinality():
    tracker = SloTracker(target_s=0.1, window_s=60.0,
                         error_budget=0.01, max_tenants=3)
    for index in range(10):
        tracker.observe(f"tenant-{index}", 0.01, ok=True)
    snapshot = tracker.snapshot()
    assert len(snapshot) == 4  # 3 real tenants + the overflow bucket
    assert snapshot[OTHER_TENANT]["count"] == 7
    # known tenants keep their own series
    tracker.observe("tenant-0", 0.01, ok=True)
    assert tracker.snapshot()["tenant-0"]["count"] == 2
    assert MAX_TENANT_SERIES >= 3


def test_slo_refresh_exports_gauges():
    tracker = SloTracker(target_s=0.001, window_s=60.0,
                         error_budget=0.5)
    tracker.observe("gauge-tenant", 1.0, ok=True)
    tracker.refresh()
    reg = obs.registry()
    burn = reg.gauge("repro_serve_slo_burn").value(tenant="gauge-tenant")
    assert burn == pytest.approx(2.0)  # ratio 1.0 / budget 0.5
    p99 = reg.gauge("repro_serve_slo_p99_seconds").value(
        tenant="gauge-tenant")
    assert p99 == pytest.approx(1.0)


# -- MetricsServer ------------------------------------------------------------


def test_metrics_endpoint_serves_live_registry():
    async def main():
        gw = gateway()
        server = await MetricsServer(
            port=0, refresh=gw.telemetry.refresh).start()
        await gw.scan("scrape-tenant", PATTERNS, DATA)
        status, body = await scrape_metrics("127.0.0.1", server.port)
        health_status, health = await scrape_metrics(
            "127.0.0.1", server.port, path="/healthz")
        missing_status, _ = await scrape_metrics(
            "127.0.0.1", server.port, path="/nope")
        await server.stop()
        await gw.close()
        return status, body, health_status, health, missing_status

    status, body, health_status, health, missing_status = run(main())
    assert status == 200
    assert "# TYPE repro_serve_requests_total counter" in body
    assert ('repro_serve_tenant_requests_total{outcome="ok",'
            'tenant="scrape-tenant"}') in body
    # refresh ran: the rolling gauges exist for the tenant
    assert 'repro_serve_slo_burn{tenant="scrape-tenant"}' in body
    assert health_status == 200
    assert json.loads(health) == {"ok": True}
    assert missing_status == 404


def test_scrape_counter_and_content_type():
    async def main():
        server = await MetricsServer(port=0).start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        await writer.drain()
        raw = await reader.read(-1)
        writer.close()
        await writer.wait_closed()
        await server.stop()
        return raw

    raw = run(main())
    head = raw.split(b"\r\n\r\n", 1)[0].decode()
    assert "text/plain; version=0.0.4; charset=utf-8" in head
    assert "Connection: close" in head
    scrapes = obs.registry().counter(
        "repro_serve_metrics_scrapes_total")
    assert scrapes.value(path="/metrics") >= 1


def test_post_is_rejected():
    async def main():
        server = await MetricsServer(port=0).start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        writer.write(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        await writer.drain()
        raw = await reader.read(-1)
        writer.close()
        await writer.wait_closed()
        await server.stop()
        return raw

    assert b"405" in run(main()).split(b"\r\n", 1)[0]


# -- gateway integration ------------------------------------------------------


def test_offload_runs_off_the_loop_and_counts():
    offloaded = obs.registry().counter("repro_serve_loop_offload_total")

    async def main(offload):
        gw = gateway(offload=offload)
        report = await gw.scan("t", PATTERNS, DATA)
        await gw.close()
        return report

    before = offloaded.value() or 0
    on = run(main(True))
    assert offloaded.value() == before + 1
    off = run(main(False))
    assert offloaded.value() == before + 1  # inline path doesn't count
    assert on == off  # bit-identical either way


def test_access_log_joins_requests_to_trace_spans(tmp_path):
    path = tmp_path / "access.jsonl"
    tracer = obs.start_tracing(obs.Tracer())

    async def main():
        gw = gateway(access_log_path=str(path))
        await gw.scan("log-tenant", PATTERNS, DATA)
        opened = await gw.open_session("log-tenant", PATTERNS)
        await gw.feed("log-tenant", opened["session"], DATA[:8])
        await gw.close_session("log-tenant", opened["session"])
        await gw.close()  # drains + closes the ring writer

    try:
        run(main())
        spans = obs.stop_tracing()
    finally:
        obs.stop_tracing()
    records = [json.loads(line)
               for line in path.read_text().splitlines()]
    assert [r["op"] for r in records] == ["scan", "open", "feed",
                                          "close"]
    scan_record = records[0]
    assert scan_record["tenant"] == "log-tenant"
    assert scan_record["outcome"] == "ok"
    assert scan_record["bytes"] == len(DATA)
    assert scan_record["fingerprint"]
    assert scan_record["latency_s"] >= scan_record["wall_s"] >= 0
    assert scan_record["queue_delay_s"] >= 0
    assert scan_record["cpu_s"] >= 0
    feed_record = records[2]
    assert feed_record["session"] == records[1]["session"]
    # trace/span ids join the access log to the Chrome trace
    request_spans = {s["id"]: s for s in spans
                     if s["name"] == "serve.request"}
    assert scan_record["trace"] == tracer.trace_id
    joined = request_spans[scan_record["span"]]
    assert joined["attrs"]["op"] == "scan"
    assert joined["attrs"]["tenant"] == "log-tenant"


def test_access_log_without_tracer_omits_span_ids(tmp_path):
    path = tmp_path / "access.jsonl"

    async def main():
        gw = gateway(access_log_path=str(path))
        await gw.scan("t", PATTERNS, DATA)
        await gw.close()

    run(main())
    (record,) = [json.loads(line)
                 for line in path.read_text().splitlines()]
    assert "trace" not in record and "span" not in record


def test_shed_requests_reach_telemetry(tmp_path):
    path = tmp_path / "access.jsonl"

    async def main():
        gw = gateway(queue_depth=2, access_log_path=str(path))
        await gw.compile("burst", PATTERNS)
        results = await asyncio.gather(
            *(gw.scan("burst", PATTERNS, DATA) for _ in range(8)),
            return_exceptions=True)
        await gw.close()
        return results

    results = run(main())
    shed = sum(1 for r in results if isinstance(r, Exception))
    assert shed > 0
    records = [json.loads(line)
               for line in path.read_text().splitlines()]
    assert sum(1 for r in records if r["outcome"] == "overloaded") \
        == shed
    slo = obs.registry().counter("repro_serve_slo_violations_total")
    assert slo.value(tenant="burst") >= shed  # sheds violate the SLO


def test_stats_carries_telemetry_block():
    async def main():
        gw = gateway()
        await gw.scan("stats-tenant", PATTERNS, DATA)
        stats = gw.stats()
        await gw.close()
        return stats

    stats = run(main())
    telemetry = stats["telemetry"]
    assert telemetry["slo_target_s"] == 0.25
    assert telemetry["slo"]["stats-tenant"]["count"] == 1


# -- idle-session eviction ----------------------------------------------------


def test_idle_sessions_are_evicted():
    evicted = obs.registry().counter(
        "repro_serve_sessions_evicted_total")

    async def main():
        gw = gateway(session_idle_s=0.05)
        opened = await gw.open_session("t", PATTERNS)
        await gw.feed("t", opened["session"], DATA[:8])
        await asyncio.sleep(0.15)  # reaper interval is idle/4
        count = gw.evict_idle_sessions()  # deterministic backstop
        with pytest.raises(UnknownSessionError):
            await gw.feed("t", opened["session"], DATA[:8])
        stats = gw.stats()
        await gw.close()
        return count, stats

    before = evicted.value(reason="idle") or 0
    count, stats = run(main())
    assert stats["sessions"] == 0
    assert evicted.value(reason="idle") == before + 1
    assert count <= 1  # the reaper may have beaten the explicit sweep


def test_active_sessions_survive_the_reaper():
    async def main():
        gw = gateway(session_idle_s=10.0)
        opened = await gw.open_session("t", PATTERNS)
        assert gw.evict_idle_sessions() == 0
        report = await gw.feed("t", opened["session"], DATA)
        await gw.close_session("t", opened["session"])
        await gw.close()
        return report

    report = run(main())
    assert report.match_count() > 0


def test_shutdown_accounts_dropped_sessions():
    evicted = obs.registry().counter(
        "repro_serve_sessions_evicted_total")

    async def main():
        gw = gateway()
        await gw.open_session("t", PATTERNS)
        await gw.close()

    before = evicted.value(reason="shutdown") or 0
    run(main())
    assert evicted.value(reason="shutdown") == before + 1

"""The gateway: multiplexing, bit-identity, policy enforcement.

Contract: the gateway adds admission, queueing, deadlines, and breaker
policy around the engine — never a different answer.  Every scan and
every interleaved streaming session must be bit-identical to a serial
one-shot scan of the same bytes.
"""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro import obs
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import ScanConfig
from repro.serve import (DeadlineExceededError, Gateway, OverloadedError,
                         ServeConfig, SessionLimitError,
                         UnknownSessionError)

TINY = CTAGeometry(threads=4, word_bits=8)
CONFIG = ScanConfig(geometry=TINY)
PATTERNS = ["a(bc)*d", "cat|dog", "[0-9][0-9]"]
DATA = b"abcbcd cat 42 dog abcd and 7 cats, 99 dogs; abcbcbcd"


def run(coro):
    return asyncio.run(coro)


def gateway(**changes) -> Gateway:
    changes.setdefault("scan", CONFIG)
    return Gateway(ServeConfig(**changes))


def nonempty(matches) -> dict:
    return {p: list(ends) for p, ends in matches.items() if ends}


def test_scan_is_bit_identical_to_engine():
    async def main():
        gw = gateway()
        report = await gw.scan("t", PATTERNS, DATA)
        await gw.close()
        return report

    report = run(main())
    assert report == repro.scan(PATTERNS, DATA, config=CONFIG).matches


def test_interleaved_sessions_match_serial_scans():
    """100 sessions, round-robin chunks, each checked against a serial
    one-shot scan — the multiplexer's core guarantee."""
    chunk, chunks = 24, 4
    base = DATA * 3

    async def main():
        gw = gateway(max_engines=4)
        plans = []
        for index in range(100):
            offset = (index * 7) % (len(base) - chunk * chunks)
            data = base[offset:offset + chunk * chunks]
            opened = await gw.open_session(f"t{index % 3}", PATTERNS)
            plans.append({"tenant": f"t{index % 3}", "data": data,
                          "session": opened["session"], "got": {}})
        for k in range(chunks):
            for plan in plans:
                report = await gw.feed(
                    plan["tenant"], plan["session"],
                    plan["data"][k * chunk:(k + 1) * chunk])
                for p, ends in report.matches.items():
                    plan["got"].setdefault(p, []).extend(ends)
        for plan in plans:
            await gw.close_session(plan["tenant"], plan["session"])
        stats = gw.stats()
        await gw.close()
        return plans, stats

    plans, stats = run(main())
    for plan in plans:
        expected = nonempty(
            repro.scan(PATTERNS, plan["data"], config=CONFIG).matches)
        assert nonempty(plan["got"]) == expected
    assert stats["sessions"] == 0
    # 100 sessions over 3 tenants share 3 engines, compiled once each
    assert stats["host"]["resident"] == 3


def test_admission_sheds_at_high_water():
    async def main():
        gw = gateway(queue_depth=4)
        await gw.compile("t", PATTERNS)        # warm, outside the burst
        results = await asyncio.gather(
            *(gw.scan("t", PATTERNS, DATA) for _ in range(10)),
            return_exceptions=True)
        await gw.close()
        return results

    results = run(main())
    shed = [r for r in results if isinstance(r, OverloadedError)]
    served = [r for r in results if not isinstance(r, Exception)]
    # the burst of 10 against a depth-4 queue: some shed, some served
    assert len(shed) == 6
    assert len(served) == 4
    reference = repro.scan(PATTERNS, DATA, config=CONFIG).matches
    for report in served:
        assert report == reference


def test_deadline_expired_in_queue_is_answered_without_scanning():
    async def main():
        gw = gateway()
        await gw.compile("t", PATTERNS)
        # a 1µs budget is always spent by the time the lane dequeues
        # the request, so it must be refused without scanning
        with pytest.raises(DeadlineExceededError) as exc:
            await gw.scan("t", PATTERNS, DATA, deadline_s=1e-6)
        await gw.close()
        return exc.value

    error = run(main())
    assert error.code == "deadline"
    assert "queue" in str(error)


def test_breaker_degrades_parallel_scans_to_serial():
    parallel = CONFIG.replace(workers=2, executor="thread",
                              min_parallel_bytes=0)
    degraded = obs.registry().counter("repro_serve_degraded_total")

    async def main():
        gw = gateway(breaker_threshold=1, breaker_cooldown_s=60.0,
                     scan=parallel)
        healthy = await gw.scan("t", PATTERNS, DATA)
        # an unparseable pattern is an internal failure: trips the
        # one-strike breaker
        with pytest.raises(Exception):
            await gw.scan("t", ["(unclosed"], DATA)
        before = degraded.value() or 0
        after_open = await gw.scan("t", PATTERNS, DATA)
        state = gw.breaker.state()
        await gw.close()
        return healthy, after_open, state, before

    healthy, after_open, state, before = run(main())
    assert state == "open"
    assert healthy.dispatch == "parallel"
    assert after_open.dispatch != "parallel"   # degraded to inline
    assert after_open == healthy.matches       # ...but bit-identical
    assert degraded.value() == before + 1


def test_unknown_session_and_session_limit():
    async def main():
        gw = gateway(max_sessions=1)
        with pytest.raises(UnknownSessionError):
            await gw.feed("t", "missing-1", b"x")
        opened = await gw.open_session("t", PATTERNS)
        with pytest.raises(SessionLimitError):
            await gw.open_session("t", PATTERNS)
        # another tenant cannot touch the session
        with pytest.raises(UnknownSessionError):
            await gw.feed("intruder", opened["session"], b"x")
        await gw.close_session("t", opened["session"])
        # the slot is free again
        reopened = await gw.open_session("t", PATTERNS)
        await gw.close_session("t", reopened["session"])
        await gw.close()

    run(main())


def test_per_request_deadline_overrides_gateway_default():
    async def main():
        # gateway default is absurdly tight; the request relaxes it
        gw = gateway(deadline_s=1e-9)
        await gw.compile("t", PATTERNS, deadline_s=None)
        report = await gw.scan("t", PATTERNS, DATA, deadline_s=30.0)
        with pytest.raises(DeadlineExceededError):
            await gw.scan("t", PATTERNS, DATA)   # default applies
        await gw.close()
        return report

    report = run(main())
    assert report == repro.scan(PATTERNS, DATA, config=CONFIG).matches


def test_closed_gateway_refuses_requests():
    async def main():
        gw = gateway()
        await gw.scan("t", PATTERNS, DATA)
        await gw.close()
        with pytest.raises(Exception):
            await gw.scan("t", PATTERNS, DATA)

    run(main())

"""The engine registry: compile-once, LRU eviction, session safety.

Contract: one compile per (tenant, fingerprint); eviction is LRU over
a bounded capacity but never prefers an engine with live streaming
sessions; residency is visible through the repro_serve_engines gauge.
"""

from __future__ import annotations

from repro import obs
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import ScanConfig
from repro.serve import EngineHost, ServeConfig

TINY = CTAGeometry(threads=4, word_bits=8)
CONFIG = ScanConfig(geometry=TINY)

SET_A = ["a(bc)*d"]
SET_B = ["cat|dog"]
SET_C = ["[0-9][0-9]"]


def host(max_engines=8) -> EngineHost:
    return EngineHost(ServeConfig(max_engines=max_engines, scan=CONFIG))


def test_acquire_compiles_once_per_fingerprint():
    registry = host()
    first = registry.acquire("t", SET_A)
    second = registry.acquire("t", SET_A)
    assert first is second
    assert first.matcher is second.matcher
    assert first.uses == 2
    assert len(registry) == 1


def test_tenants_get_separate_engines_for_same_patterns():
    registry = host()
    a = registry.acquire("alice", SET_A)
    b = registry.acquire("bob", SET_A)
    assert a is not b
    assert a.fingerprint == b.fingerprint      # same compiled identity
    assert len(registry) == 2


def test_config_changes_the_fingerprint():
    registry = host()
    a = registry.acquire("t", SET_A)
    b = registry.acquire("t", SET_A, CONFIG.replace(merge_size=4))
    assert a.fingerprint != b.fingerprint
    # dispatch-only knobs do not: same compiled artefact is reused
    c = registry.acquire("t", SET_A, CONFIG.replace(workers=4))
    assert c is a


def test_lru_eviction_at_capacity():
    registry = host(max_engines=2)
    events = obs.registry().counter("repro_serve_engine_events_total")
    evicted_before = events.value(event="evict") or 0
    registry.acquire("t", SET_A)
    registry.acquire("t", SET_B)
    registry.acquire("t", SET_A)               # A is now the warm one
    registry.acquire("t", SET_C)               # evicts B (coldest)
    assert len(registry) == 2
    keys = registry.resident()
    fingerprints = {fp for _, fp in keys}
    assert registry.acquire("t", SET_A).fingerprint in fingerprints
    assert events.value(event="evict") == evicted_before + 1
    # gauge tracks residency
    assert obs.registry().gauge("repro_serve_engines").value(
        state="resident") == 2


def test_eviction_skips_engines_with_live_sessions():
    registry = host(max_engines=2)
    a = registry.acquire("t", SET_A)
    registry.session_opened(a)                 # a is streaming
    registry.acquire("t", SET_B)               # a is now coldest
    registry.acquire("t", SET_C)               # must evict B, not A
    assert registry.get("t", a.fingerprint) is a
    registry.session_closed(a)
    assert a.active_sessions == 0


def test_eviction_falls_back_when_everything_is_live():
    registry = host(max_engines=1)
    a = registry.acquire("t", SET_A)
    registry.session_opened(a)
    registry.acquire("t", SET_B)               # a evicted despite session
    assert len(registry) == 1
    assert registry.get("t", a.fingerprint) is None
    # the session's own reference keeps the evicted engine usable
    assert a.matcher.scan(b"abcd").match_count() == 1


def test_stats_and_clear():
    registry = host()
    registry.acquire("t", SET_A)
    stats = registry.stats()
    assert stats["resident"] == 1
    assert stats["engines"][0]["patterns"] == 1
    registry.clear()
    assert len(registry) == 0

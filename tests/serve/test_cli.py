"""``python -m repro serve`` — exit codes and the self-test smoke.

Contract: ``--self-test`` is the end-to-end proof (real subprocess,
real TCP, exit 0 on bit-identical round-trips); bad usage exits 2
(argparse); the parser wires CLI flags into ServeConfig faithfully.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.serve.cli import build_serve_parser, serve_config_from_args

REPO = Path(__file__).resolve().parent.parent.parent


def run_cli(*argv: str, timeout: float = 120.0):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "serve", *argv],
        capture_output=True, text=True, timeout=timeout, env=env,
        cwd=str(REPO))


def test_self_test_exits_zero():
    proc = run_cli("--self-test")
    assert proc.returncode == 0, \
        f"stdout={proc.stdout!r} stderr={proc.stderr!r}"
    assert "self-test OK" in proc.stdout
    assert "bit-identical" in proc.stdout


def test_self_test_timeout_exits_nonzero_with_wire_code():
    proc = run_cli("--self-test", "--self-test-timeout", "0.000001")
    assert proc.returncode == 1, \
        f"stdout={proc.stdout!r} stderr={proc.stderr!r}"
    assert "self-test FAIL" in proc.stderr
    assert "deadline" in proc.stderr  # the wire error code


def test_bad_flag_exits_two():
    proc = run_cli("--backend", "quantum", "--self-test")
    assert proc.returncode == 2
    assert "invalid choice" in proc.stderr


def test_flags_reach_serve_config():
    args = build_serve_parser().parse_args(
        ["--max-engines", "3", "--queue-depth", "9",
         "--max-sessions", "17", "--deadline", "1.5",
         "--workers", "2", "--executor", "thread",
         "--scheme", "SR", "--metrics-port", "0",
         "--access-log", "logs/access.jsonl",
         "--session-idle", "30", "--slo-target", "0.5",
         "--no-offload"])
    config = serve_config_from_args(args)
    assert config.max_engines == 3
    assert config.queue_depth == 9
    assert config.max_sessions == 17
    assert config.deadline_s == 1.5
    assert config.scan.workers == 2
    assert config.scan.executor == "thread"
    assert config.scan.scheme.name == "SR"
    assert config.metrics_port == 0
    assert config.access_log_path == "logs/access.jsonl"
    assert config.session_idle_s == 30
    assert config.slo_target_s == 0.5
    assert config.offload is False

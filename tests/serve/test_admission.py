"""Admission control: depth accounting, shedding, warning threshold.

Contract: admission is the only backpressure mechanism — past the
high-water mark requests are refused with OverloadedError (never
queued), the warning counter fires before the shed point, and depth
accounting returns to zero once everything admitted has started.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.serve import OverloadedError, ServeConfig
from repro.serve.admission import AdmissionController


def controller(**changes) -> AdmissionController:
    return AdmissionController(ServeConfig(**changes))


def test_admits_up_to_queue_depth_then_sheds():
    admission = controller(queue_depth=3)
    tickets = [admission.try_admit("t") for _ in range(3)]
    assert admission.depth("t") == 3
    with pytest.raises(OverloadedError) as exc:
        admission.try_admit("t")
    assert exc.value.code == "overloaded"
    assert "high-water" in str(exc.value)
    # draining one slot re-opens admission
    admission.started(tickets[0])
    assert admission.depth("t") == 2
    admission.try_admit("t")


def test_tenants_are_isolated():
    admission = controller(queue_depth=2)
    admission.try_admit("a")
    admission.try_admit("a")
    with pytest.raises(OverloadedError):
        admission.try_admit("a")
    # tenant b still has a full queue of its own
    admission.try_admit("b")
    assert admission.depth("b") == 1


def test_shed_counter_and_stats():
    admission = controller(queue_depth=1)
    shed_before = obs.registry().counter(
        "repro_serve_shed_total").value(tenant="shed-tenant") or 0
    admission.try_admit("shed-tenant")
    for _ in range(4):
        with pytest.raises(OverloadedError):
            admission.try_admit("shed-tenant")
    stats = admission.stats()
    assert stats["admitted"] == 1
    assert stats["shed"] == 4
    assert obs.registry().counter("repro_serve_shed_total").value(
        tenant="shed-tenant") == shed_before + 4


def test_warning_threshold_fires_before_shed():
    admission = controller(queue_depth=4, warn_depth=2)
    counter = obs.registry().counter(
        "repro_serve_queue_warnings_total")
    before = counter.value(tenant="warn-tenant") or 0
    admission.try_admit("warn-tenant")          # depth 1: quiet
    assert (counter.value(tenant="warn-tenant") or 0) == before
    admission.try_admit("warn-tenant")          # depth 2: warns
    admission.try_admit("warn-tenant")          # depth 3: warns
    assert counter.value(tenant="warn-tenant") == before + 2


def test_started_records_queue_delay():
    admission = controller()
    ticket = admission.try_admit("t")
    delay = admission.started(ticket)
    assert delay >= 0
    assert ticket.queue_delay_s == delay


def test_default_warn_depth_is_three_quarters():
    assert ServeConfig(queue_depth=64).effective_warn_depth() == 48
    assert ServeConfig(queue_depth=1).effective_warn_depth() == 1
    assert ServeConfig(queue_depth=8,
                       warn_depth=5).effective_warn_depth() == 5

"""The TCP front: JSONL round-trips, error codes on the wire.

Contract: every request line gets exactly one response line with the
echoed id; failures are responses with stable error codes, never
dropped connections; wire results are bit-identical to the engine.
"""

from __future__ import annotations

import asyncio
import json

import pytest

import repro
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import ScanConfig
from repro.serve import GatewayClient, GatewayError, GatewayServer, \
    ServeConfig
from repro.serve import protocol

TINY = CTAGeometry(threads=4, word_bits=8)
CONFIG = ServeConfig(scan=ScanConfig(geometry=TINY))
PATTERNS = ["a(bc)*d", "cat|dog"]
DATA = b"abcbcd cat 42 dog abcd"


def run(coro):
    return asyncio.run(coro)


async def with_server(fn):
    server = await GatewayServer(config=CONFIG, port=0).start()
    client = await GatewayClient("127.0.0.1", server.port).connect()
    try:
        return await fn(server, client)
    finally:
        await client.close()
        await server.stop()


def expected_matches() -> dict:
    report = repro.scan(PATTERNS, DATA, config=CONFIG.scan)
    return {str(p): list(ends) for p, ends in report.matches.items()
            if ends}


def test_scan_round_trip_is_bit_identical():
    async def fn(server, client):
        response = await client.scan("t", PATTERNS, DATA)
        return response

    response = run(with_server(fn))
    assert response["ok"] is True
    assert response["matches"] == expected_matches()


def test_streaming_round_trip():
    async def fn(server, client):
        sid = await client.open_session("t", PATTERNS)
        merged: dict = {}
        for start in range(0, len(DATA), 5):
            fed = await client.feed("t", sid, DATA[start:start + 5])
            for key, ends in fed["matches"].items():
                merged.setdefault(key, []).extend(ends)
        summary = await client.close_session("t", sid)
        return merged, summary

    merged, summary = run(with_server(fn))
    assert merged == expected_matches()
    assert summary["closed"] is True
    assert summary["stream_position"] == len(DATA)


def test_error_codes_reach_the_client():
    async def fn(server, client):
        with pytest.raises(GatewayError) as exc:
            await client.feed("t", "no-such-session", b"x")
        return exc.value

    error = run(with_server(fn))
    assert error.code == "unknown-session"


def test_malformed_lines_get_bad_request_responses():
    async def fn(server, client):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        for line in (b"not json at all\n",
                     b'{"id": 7, "op": "launch-missiles"}\n',
                     b'{"id": 8, "op": "scan", "tenant": "t"}\n'):
            writer.write(line)
        await writer.drain()
        responses = [json.loads(await reader.readline())
                     for _ in range(3)]
        writer.close()
        await writer.wait_closed()
        return responses

    responses = run(with_server(fn))
    by_id = {r["id"]: r for r in responses}
    assert all(r["ok"] is False for r in responses)
    assert all(r["error"] == "bad-request" for r in responses)
    assert by_id[7]["id"] == 7                  # id echoed when parseable
    assert "patterns" in by_id[8]["message"]
    assert None in by_id                        # unparseable line: id null


def test_ping_and_stats_ops():
    async def fn(server, client):
        pong = await client.ping()
        await client.scan("t", PATTERNS, DATA)
        stats = await client.request("stats")
        return pong, stats

    pong, stats = run(with_server(fn))
    assert pong["ok"] is True
    assert stats["host"]["resident"] == 1
    assert stats["breaker"] == "closed"


def test_protocol_data_validation():
    with pytest.raises(Exception) as exc:
        protocol.decode_data({"data": "!!! not base64 !!!"})
    assert getattr(exc.value, "code", None) == "bad-request"
    with pytest.raises(Exception):
        protocol.decode_data({})
    assert protocol.decode_data(
        {"data": protocol.encode_data(b"\x00\xffbytes")}) == \
        b"\x00\xffbytes"

"""RingLogWriter: bounded, non-blocking, drop-oldest JSONL logging."""

from __future__ import annotations

import json
import threading

from repro import obs
from repro.obs.log import RingLogWriter


def read_jsonl(path):
    return [json.loads(line)
            for line in path.read_text().splitlines()]


def test_records_reach_disk_as_jsonl(tmp_path):
    path = tmp_path / "access.jsonl"
    writer = RingLogWriter(str(path))
    for index in range(5):
        assert writer.log({"seq": index, "op": "scan"})
    writer.close()
    records = read_jsonl(path)
    assert [r["seq"] for r in records] == list(range(5))
    assert all(r["op"] == "scan" for r in records)
    stats = writer.stats()
    assert stats["accepted"] == stats["written"] == 5
    assert stats["dropped"] == 0 and stats["pending"] == 0


def test_overflow_drops_oldest_and_counts(tmp_path):
    path = tmp_path / "access.jsonl"
    # auto_flush=False: nothing drains, so the ring must displace
    writer = RingLogWriter(str(path), capacity=3, auto_flush=False)
    dropped = obs.registry().counter("repro_obs_log_dropped_total")
    before = dropped.value(reason="ring-full") or 0
    results = [writer.log({"seq": index}) for index in range(5)]
    assert results == [True, True, True, False, False]
    assert writer.pending() == 3
    writer.flush()
    # the two *oldest* records were displaced
    assert [r["seq"] for r in read_jsonl(path)] == [2, 3, 4]
    assert writer.stats()["dropped"] == 2
    assert dropped.value(reason="ring-full") == before + 2


def test_closed_writer_refuses_records(tmp_path):
    path = tmp_path / "access.jsonl"
    writer = RingLogWriter(str(path))
    writer.log({"seq": 0})
    writer.close()
    assert not writer.log({"seq": 1})
    assert [r["seq"] for r in read_jsonl(path)] == [0]
    writer.close()  # idempotent


def test_unserializable_values_fall_back_to_repr(tmp_path):
    path = tmp_path / "access.jsonl"
    writer = RingLogWriter(str(path), auto_flush=False)
    writer.log({"payload": {1, 2}})
    writer.flush()
    (record,) = read_jsonl(path)
    assert record["payload"] in ("{1, 2}", "{2, 1}")


def test_io_error_costs_lines_not_exceptions(tmp_path):
    writer = RingLogWriter(str(tmp_path / "no-such-dir" / "x.jsonl"),
                           auto_flush=False)
    writer.log({"seq": 0})
    writer.flush()  # must not raise
    assert writer.stats()["dropped"] == 1
    assert writer.stats()["written"] == 0


def test_concurrent_producers_lose_nothing_under_capacity(tmp_path):
    path = tmp_path / "access.jsonl"
    writer = RingLogWriter(str(path), capacity=10_000)
    per_thread, threads = 200, 4

    def produce(worker):
        for index in range(per_thread):
            writer.log({"worker": worker, "seq": index})

    workers = [threading.Thread(target=produce, args=(w,))
               for w in range(threads)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    writer.close()
    records = read_jsonl(path)
    assert len(records) == per_thread * threads
    for worker in range(threads):
        seqs = [r["seq"] for r in records if r["worker"] == worker]
        # each producer's own records stay in order
        assert seqs == sorted(seqs)

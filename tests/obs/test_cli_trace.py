"""``python -m repro trace``: the end-to-end export path."""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.__main__ import main


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.stop_tracing()
    yield
    obs.stop_tracing()


def run_trace(tmp_path, *extra):
    out = tmp_path / "out"
    argv = ["trace", "Bro217", "--scale", "0.02",
            "--input-bytes", "2048", "-o", str(out)] + list(extra)
    assert main(argv) == 0
    return out


def test_chrome_export_contains_pipeline_spans(tmp_path, capsys):
    out = run_trace(tmp_path, "--export", "chrome")
    doc = json.loads(out.read_text())
    names = {event["name"] for event in doc["traceEvents"]
             if event.get("ph") == "X"}
    # The full pipeline: compile stages, optimizer passes, codegen,
    # sharded dispatch, and kernel execution.
    for required in ("compile", "parse", "group", "lower", "optimize",
                     "codegen", "scan", "scan.parallel", "shard",
                     "exec", "exec.batch"):
        assert required in names, f"missing span {required!r}"
    assert any(name.startswith("pass:") for name in names)
    assert "matches" in capsys.readouterr().out


def test_jsonl_export(tmp_path):
    out = run_trace(tmp_path, "--export", "jsonl")
    spans = [json.loads(line)
             for line in out.read_text().splitlines()]
    assert spans
    ids = [span["id"] for span in spans]
    assert len(set(ids)) == len(ids)
    assert {"name", "id", "parent", "trace", "ts", "dur",
            "cpu"} <= set(spans[0])


def test_prometheus_export(tmp_path):
    out = run_trace(tmp_path, "--export", "prometheus")
    text = out.read_text()
    assert "# TYPE repro_kernel_cache_lookups_total counter" in text
    assert "# TYPE repro_scan_dispatch_total counter" in text
    for line in text.splitlines():
        if line and not line.startswith("#"):
            float(line.rsplit(" ", 1)[1])


def test_trace_leaves_tracing_disabled(tmp_path):
    run_trace(tmp_path, "--export", "chrome")
    assert not obs.enabled()


def test_unknown_app_fails():
    with pytest.raises((KeyError, SystemExit)):
        main(["trace", "NotAnApp"])

"""Exporter formats: JSON lines, Chrome trace_event, Prometheus."""

from __future__ import annotations

import json

from repro.obs.export import (chrome_trace, jsonl_lines,
                              prometheus_text, write_chrome,
                              write_jsonl, write_prometheus)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def sample_spans():
    tracer = Tracer()
    with tracer.span("compile", category="compile", patterns=3):
        with tracer.span("parse", category="compile"):
            pass
    return tracer.finished()


# -- JSON lines --------------------------------------------------------------


def test_jsonl_roundtrip(tmp_path):
    spans = sample_spans()
    path = tmp_path / "trace.jsonl"
    write_jsonl(spans, str(path))
    parsed = [json.loads(line) for line in path.read_text().splitlines()]
    assert parsed == spans
    assert jsonl_lines(spans).count("\n") == len(spans)


# -- Chrome trace_event ------------------------------------------------------


def test_chrome_trace_structure():
    spans = sample_spans()
    doc = chrome_trace(spans)
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(meta) == 1 and meta[0]["name"] == "process_name"
    assert len(complete) == len(spans)
    parse = next(e for e in complete if e["name"] == "parse")
    compile_ = next(e for e in complete if e["name"] == "compile")
    # Microsecond timestamps, nesting expressed by containment.
    assert parse["ts"] >= compile_["ts"]
    assert parse["dur"] <= compile_["dur"]
    assert parse["args"]["parent_id"] == compile_["args"]["span_id"]
    assert compile_["args"]["patterns"] == 3
    assert compile_["cat"] == "compile"


def test_chrome_trace_names_worker_processes(tmp_path):
    spans = sample_spans()
    foreign = dict(spans[0], id="ffff-1", pid=spans[0]["pid"] + 1)
    doc = chrome_trace(spans + [foreign])
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert len(meta) == 2
    assert all("pid" in e["args"]["name"] for e in meta)
    path = tmp_path / "trace.json"
    write_chrome(spans, str(path))
    assert json.loads(path.read_text())["traceEvents"]


# -- Prometheus --------------------------------------------------------------


def test_prometheus_text_counters_gauges(tmp_path):
    reg = MetricsRegistry()
    reg.counter("repro_hits_total", "Cache hits").inc(3, app="Snort")
    reg.gauge("repro_kernels", "Resident kernels").set(4)
    text = prometheus_text(reg)
    assert "# HELP repro_hits_total Cache hits\n" in text
    assert "# TYPE repro_hits_total counter\n" in text
    assert 'repro_hits_total{app="Snort"} 3\n' in text
    assert "repro_kernels 4\n" in text
    path = tmp_path / "metrics.prom"
    write_prometheus(reg, str(path))
    assert path.read_text() == text


def test_prometheus_histogram_exposition():
    reg = MetricsRegistry()
    hist = reg.histogram("repro_lat_seconds", "Latency",
                         buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    text = prometheus_text(reg)
    assert 'repro_lat_seconds_bucket{le="0.1"} 1\n' in text
    assert 'repro_lat_seconds_bucket{le="1.0"} 2\n' in text
    assert 'repro_lat_seconds_bucket{le="+Inf"} 3\n' in text
    assert "repro_lat_seconds_count 3\n" in text
    assert "repro_lat_seconds_sum 5.55" in text


def test_prometheus_every_sample_line_parses():
    reg = MetricsRegistry()
    reg.counter("a_total").inc()
    reg.histogram("b_seconds").observe(0.2)
    reg.gauge("c").set(2.5)
    for line in prometheus_text(reg).splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        assert name
        float(value)  # must parse as a sample value

"""Prometheus 0.0.4 text-exposition compliance.

The /metrics endpoint is only useful if real scrapers parse it, so
this file checks the format contract itself: escaping rules inside
label values and HELP text, histogram invariants (cumulative buckets,
``+Inf`` equals ``_count``, ``_sum`` present), and one TYPE line per
metric family.
"""

from __future__ import annotations

import math
import re

from repro.obs.export import (escape_label_value, prometheus_text,
                              write_prometheus)
from repro.obs.metrics import MetricsRegistry

SAMPLE_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})? (?P<value>\S+)$')


def parse_samples(text):
    """(name, labels-string, float-value) for every sample line."""
    samples = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = SAMPLE_LINE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        value = match.group("value")
        samples.append((match.group("name"), match.group("labels"),
                        math.inf if value == "+Inf" else float(value)))
    return samples


# -- escaping ----------------------------------------------------------------


def test_label_value_escaping_rules():
    assert escape_label_value('plain') == 'plain'
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value('a\\b') == 'a\\\\b'
    assert escape_label_value('a\nb') == 'a\\nb'
    # backslash first: escaping "a\"b" must not double-escape the quote
    assert escape_label_value('\\"') == '\\\\\\"'


def test_hostile_label_values_render_one_line_each():
    reg = MetricsRegistry()
    counter = reg.counter("repro_evil_total", "Hostile labels")
    counter.inc(tenant='quo"te')
    counter.inc(tenant='back\\slash')
    counter.inc(tenant='new\nline')
    text = prometheus_text(reg)
    assert 'repro_evil_total{tenant="quo\\"te"} 1\n' in text
    assert 'repro_evil_total{tenant="back\\\\slash"} 1\n' in text
    assert 'repro_evil_total{tenant="new\\nline"} 1\n' in text
    # the raw newline must never split a sample across lines
    samples = parse_samples(text)
    assert len(samples) == 3


def test_help_text_escaping():
    reg = MetricsRegistry()
    reg.counter("repro_help_total", "line one\nline two \\ done").inc()
    text = prometheus_text(reg)
    assert ("# HELP repro_help_total line one\\nline two \\\\ done\n"
            in text)


# -- structure ---------------------------------------------------------------


def test_one_type_line_per_family_and_kind_names():
    reg = MetricsRegistry()
    reg.counter("a_total").inc(tenant="x")
    reg.counter("a_total").inc(tenant="y")
    reg.gauge("b").set(1)
    reg.histogram("c_seconds").observe(0.1)
    text = prometheus_text(reg)
    type_lines = [l for l in text.splitlines()
                  if l.startswith("# TYPE")]
    assert type_lines == ["# TYPE a_total counter",
                          "# TYPE b gauge",
                          "# TYPE c_seconds histogram"]


def test_histogram_invariants():
    reg = MetricsRegistry()
    hist = reg.histogram("repro_h_seconds", "H",
                         buckets=(0.01, 0.1, 1.0))
    observations = [0.005, 0.02, 0.05, 0.5, 2.0, 2.0]
    for value in observations:
        hist.observe(value, op="scan")
    samples = parse_samples(prometheus_text(reg))
    buckets = [(labels, value) for name, labels, value in samples
               if name == "repro_h_seconds_bucket"]
    counts = [value for _, value in buckets]
    # cumulative and monotonically non-decreasing, +Inf last
    assert counts == sorted(counts)
    assert 'le="+Inf"' in buckets[-1][0]
    count = next(value for name, _, value in samples
                 if name == "repro_h_seconds_count")
    total = next(value for name, _, value in samples
                 if name == "repro_h_seconds_sum")
    assert buckets[-1][1] == count == len(observations)
    assert total == sum(observations)
    # every bucket line keeps the instrument's own labels too
    assert all('op="scan"' in labels for labels, _ in buckets)


def test_every_line_is_comment_or_parseable_sample(tmp_path):
    reg = MetricsRegistry()
    reg.counter("x_total", 'weird "help"').inc(2.5, k='v"w')
    reg.histogram("y_seconds").observe(0.3)
    reg.gauge("z").set(-1.5)
    path = tmp_path / "metrics.prom"
    write_prometheus(reg, str(path))
    samples = parse_samples(path.read_text())
    assert ("x_total", 'k="v\\"w"', 2.5) in samples
    assert ("z", None, -1.5) in samples

"""Metrics registry: instruments, labels, and reset semantics."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, registry)


def test_counter_unlabelled_and_labelled_series():
    counter = Counter("hits")
    counter.inc()
    counter.inc(2)
    counter.inc(5, app="Snort")
    assert counter.value() == 3
    assert counter.value(app="Snort") == 5
    assert counter.value(app="Bro217") == 0
    assert len(counter.series()) == 2


def test_counter_label_order_is_canonical():
    counter = Counter("c")
    counter.inc(1, a="1", b="2")
    counter.inc(1, b="2", a="1")
    assert counter.value(a="1", b="2") == 2


def test_gauge_last_write_wins():
    gauge = Gauge("size")
    gauge.set(4)
    gauge.set(7)
    gauge.set(1, shard="0")
    assert gauge.value() == 7
    assert gauge.value(shard="0") == 1
    assert gauge.value(shard="9") is None


def test_histogram_buckets_are_cumulative():
    hist = Histogram("lat", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        hist.observe(value)
    cell = hist.series()[()]
    # 0.005 lands in every bucket, 0.05 in the last two, 0.5 in the
    # last, 5.0 overflows into +Inf (count only).
    assert cell["buckets"] == [1, 3, 4]
    assert cell["count"] == 5
    assert cell["sum"] == pytest.approx(5.605)


def test_registry_get_or_create_and_kind_mismatch():
    reg = MetricsRegistry()
    counter = reg.counter("x", "help")
    assert reg.counter("x") is counter
    with pytest.raises(TypeError):
        reg.gauge("x")
    assert [i.name for i in reg.instruments()] == ["x"]


def test_reset_zeroes_but_keeps_handles_live():
    reg = MetricsRegistry()
    counter = reg.counter("n")
    hist = reg.histogram("h")
    counter.inc(3)
    hist.observe(0.5)
    reg.reset()
    assert counter.value() == 0
    assert hist.series() == {}
    # The module-level handle pattern: the same object keeps working.
    counter.inc()
    assert reg.counter("n").value() == 1


def test_snapshot_is_json_ready():
    import json

    reg = MetricsRegistry()
    reg.counter("c").inc(2, kind="stream")
    reg.gauge("g").set(1.5)
    snap = reg.snapshot()
    assert json.loads(json.dumps(snap)) == snap
    assert snap["c"]["series"] == {"kind=stream": 2}


def test_global_registry_is_shared():
    assert registry() is registry()

"""Tracer semantics: nesting, ids, context, and the disabled path."""

from __future__ import annotations

import pickle
import threading

import pytest

import repro.obs as obs
from repro.obs.trace import NULL_SPAN, NullSpan, TraceContext, Tracer


@pytest.fixture(autouse=True)
def no_installed_tracer():
    """Every test here starts and ends with tracing disabled."""
    obs.stop_tracing()
    yield
    obs.stop_tracing()


# -- recording ---------------------------------------------------------------


def test_spans_nest_and_parent():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
        with tracer.span("sibling") as sibling:
            assert sibling.parent_id == outer.span_id
    spans = tracer.finished()
    assert [s["name"] for s in spans] == ["inner", "sibling", "outer"]
    outer_record = spans[-1]
    assert outer_record["parent"] is None
    assert all(s["parent"] == outer_record["id"] for s in spans[:-1])


def test_span_ids_unique_and_trace_shared():
    tracer = Tracer()
    for _ in range(50):
        with tracer.span("s"):
            pass
    spans = tracer.finished()
    ids = [s["id"] for s in spans]
    assert len(set(ids)) == len(ids)
    assert len({s["trace"] for s in spans}) == 1


def test_span_records_timing_and_attrs():
    tracer = Tracer()
    with tracer.span("work", category="test", app="Snort") as span:
        span.set(extra=3)
    record = tracer.finished()[0]
    assert record["cat"] == "test"
    assert record["attrs"] == {"app": "Snort", "extra": 3}
    assert record["ts"] > 0
    assert record["dur"] >= 0
    assert record["cpu"] >= 0


def test_exception_recorded_and_propagated():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("no")
    record = tracer.finished()[0]
    assert record["attrs"]["error"] == "ValueError"


def test_thread_spans_parent_to_root():
    """Each thread has its own stack; a span opened on a fresh thread
    parents to ``root_parent``, not to another thread's open span."""
    tracer = Tracer(root_parent="root-0")
    seen = {}

    def worker():
        with tracer.span("t") as span:
            seen["parent"] = span.parent_id

    with tracer.span("main"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert seen["parent"] == "root-0"


def test_subtree_extracts_descendants():
    tracer = Tracer()
    with tracer.span("a") as a:
        with tracer.span("b") as b:
            with tracer.span("c"):
                pass
    with tracer.span("other"):
        pass
    subtree = tracer.subtree(b.span_id)
    assert sorted(s["name"] for s in subtree) == ["b", "c"]
    subtree = tracer.subtree(a.span_id)
    assert sorted(s["name"] for s in subtree) == ["a", "b", "c"]


def test_adopt_stitches_foreign_spans():
    parent = Tracer()
    with parent.span("scan") as scan:
        ctx = parent.current_context()
    worker = Tracer(trace_id=ctx.trace_id, root_parent=ctx.span_id)
    with worker.span("shard"):
        pass
    parent.adopt(worker.finished())
    spans = parent.finished()
    shard = next(s for s in spans if s["name"] == "shard")
    assert shard["parent"] == scan.span_id
    assert shard["trace"] == parent.trace_id


def test_context_is_picklable():
    tracer = Tracer()
    with tracer.span("s"):
        ctx = tracer.current_context()
    clone = pickle.loads(pickle.dumps(ctx))
    assert clone == ctx
    assert isinstance(clone, TraceContext)


def test_context_none_outside_spans():
    tracer = Tracer()
    assert tracer.current_context() is None


# -- the module-level API ----------------------------------------------------


def test_disabled_span_is_the_shared_null_singleton():
    assert not obs.enabled()
    span = obs.span("anything", category="x", attr=1)
    assert span is NULL_SPAN
    assert isinstance(span, NullSpan)
    assert not span.is_recording
    # Full protocol is a no-op and records nothing anywhere.
    with span as inner:
        inner.set(a=1)
    assert obs.current_tracer() is None
    assert obs.current_context() is None


def test_start_stop_tracing_roundtrip():
    tracer = obs.start_tracing()
    assert obs.start_tracing() is tracer  # idempotent
    with obs.span("s") as span:
        assert span.is_recording
    spans = obs.stop_tracing()
    assert [s["name"] for s in spans] == ["s"]
    assert not obs.enabled()
    assert obs.stop_tracing() == []


def test_install_uninstall_restores_previous():
    outer = obs.start_tracing()
    inner = Tracer()
    previous = obs.install_tracer(inner)
    assert previous is outer
    assert obs.current_tracer() is inner
    obs.uninstall_tracer(inner, previous)
    assert obs.current_tracer() is outer

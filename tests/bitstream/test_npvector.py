"""NumPy backend must be bit-identical to the big-integer backend."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream.bitvector import BitVector
from repro.bitstream.npvector import NPBitVector


def pair(bits: int, length: int):
    reference = BitVector(bits, length)
    return reference, NPBitVector.from_bitvector(reference)


def test_roundtrip():
    reference, vector = pair(0b1011001, 9)
    assert vector.to_bitvector() == reference
    assert vector.positions() == reference.positions()


def test_constructors():
    assert NPBitVector.zeros(70).to_bitvector() == BitVector.zeros(70)
    assert NPBitVector.ones(70).to_bitvector() == BitVector.ones(70)
    assert NPBitVector.from_positions([0, 64, 69], 70).positions() == \
        [0, 64, 69]


def test_empty():
    vector = NPBitVector.zeros(0)
    assert not vector.any()
    assert vector.popcount() == 0
    assert vector.advance(3).length == 0


def test_word_count_enforced():
    import numpy as np

    with pytest.raises(ValueError):
        NPBitVector(np.zeros(1, dtype=np.uint64), 200)


def test_tail_masking():
    vector = NPBitVector.ones(65)
    assert vector.popcount() == 65
    assert (~NPBitVector.zeros(65)).popcount() == 65


bit_vectors = st.integers(min_value=1, max_value=300).flatmap(
    lambda n: st.tuples(st.integers(min_value=0, max_value=(1 << n) - 1),
                        st.just(n)))


@settings(max_examples=60, deadline=None)
@given(bit_vectors, bit_vectors)
def test_binary_ops_equivalent(a, b):
    length = min(a[1], b[1])
    ref_a = BitVector(a[0] & ((1 << length) - 1), length)
    ref_b = BitVector(b[0] & ((1 << length) - 1), length)
    np_a = NPBitVector.from_bitvector(ref_a)
    np_b = NPBitVector.from_bitvector(ref_b)
    assert (np_a & np_b).to_bitvector() == (ref_a & ref_b)
    assert (np_a | np_b).to_bitvector() == (ref_a | ref_b)
    assert (np_a ^ np_b).to_bitvector() == (ref_a ^ ref_b)
    assert np_a.andn(np_b).to_bitvector() == ref_a.andn(ref_b)
    assert (~np_a).to_bitvector() == ~ref_a


@settings(max_examples=60, deadline=None)
@given(bit_vectors, st.integers(min_value=-130, max_value=130))
def test_advance_equivalent(a, distance):
    reference = BitVector(*a)
    vector = NPBitVector.from_bitvector(reference)
    assert vector.advance(distance).to_bitvector() == \
        reference.advance(distance)


@settings(max_examples=40, deadline=None)
@given(bit_vectors)
def test_queries_equivalent(a):
    reference = BitVector(*a)
    vector = NPBitVector.from_bitvector(reference)
    assert vector.any() == reference.any()
    assert vector.popcount() == reference.popcount()
    assert vector.positions() == reference.positions()


def test_popcount_lut_on_wide_vectors():
    # Exercises every byte value through the LUT across word boundaries.
    from repro.bitstream.npvector import popcount_words

    reference = BitVector(int.from_bytes(bytes(range(256)) * 5,
                                         "little"), 256 * 5 * 8)
    vector = NPBitVector.from_bitvector(reference)
    assert vector.popcount() == reference.popcount()
    assert popcount_words(vector.words) == reference.popcount()


def test_positions_vectorised_matches_reference():
    reference = BitVector.from_positions([0, 1, 63, 64, 127, 128, 389],
                                         390)
    vector = NPBitVector.from_bitvector(reference)
    assert vector.positions() == [0, 1, 63, 64, 127, 128, 389]


def test_cross_word_shift_exact():
    reference = BitVector.from_positions([63], 130)
    vector = NPBitVector.from_bitvector(reference)
    assert vector.advance(1).positions() == [64]
    assert vector.advance(65).positions() == [128]
    assert vector.advance(-63).positions() == [0]


def test_match_ends_matches_reference():
    reference = BitVector.from_positions([0, 1, 63, 64, 127, 389], 390)
    vector = NPBitVector.from_bitvector(reference)
    assert vector.match_ends() == reference.match_ends()
    assert vector.match_ends() == [0, 62, 63, 126, 388]
    assert NPBitVector.zeros(0).match_ends() == []


@given(st.integers(min_value=1, max_value=300),
       st.integers(min_value=0, max_value=2**32))
@settings(deadline=None)
def test_match_ends_equivalent(length, seed):
    import random

    rng = random.Random(seed)
    bits = rng.getrandbits(length) & ((1 << length) - 1)
    reference = BitVector(bits, length)
    vector = NPBitVector.from_bitvector(reference)
    assert vector.match_ends() == reference.match_ends()

"""Transposition tests: numpy path vs reference, roundtrip, semantics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitstream.transpose import (BASIS_COUNT, inverse_transpose,
                                       transpose, transpose_reference,
                                       transpose_words)


def test_empty_input():
    basis = transpose(b"")
    assert len(basis) == BASIS_COUNT
    assert all(b.length == 0 for b in basis)
    assert inverse_transpose(basis) == b""


def test_known_byte():
    # 'a' = 0x61 = 01100001: b0=0 b1=1 b2=1 b3..b6=0 b7=1
    basis = transpose(b"a")
    bits = [b.test(0) for b in basis]
    assert bits == [False, True, True, False, False, False, False, True]


def test_plane_semantics():
    data = bytes([0b10000000, 0b00000001, 0b11111111])
    basis = transpose(data)
    assert basis[0].positions() == [0, 2]   # MSB plane
    assert basis[7].positions() == [1, 2]   # LSB plane


def test_matches_reference_on_sample():
    data = bytes(range(256)) * 3
    fast = transpose(data)
    slow = transpose_reference(data)
    assert fast == slow


def test_roundtrip_ascii():
    data = b"The quick brown fox jumps over the lazy dog"
    assert inverse_transpose(transpose(data)) == data


@given(st.binary(max_size=512))
def test_roundtrip_property(data):
    assert inverse_transpose(transpose(data)) == data


@given(st.binary(min_size=1, max_size=128))
def test_fast_equals_reference(data):
    assert transpose(data) == transpose_reference(data)


def test_words_empty_input():
    words = transpose_words(b"")
    assert words.shape == (BASIS_COUNT, 0)
    assert words.dtype == np.dtype("<u8")
    padded = transpose_words(b"", bits=1)
    assert padded.shape == (BASIS_COUNT, 1)
    assert not padded.any()


def test_words_rejects_short_padding():
    with pytest.raises(ValueError):
        transpose_words(b"abc", bits=2)


@given(st.binary(max_size=300))
def test_words_equal_reference(data):
    words = transpose_words(data)
    reference = transpose_reference(data)
    for plane, vector in zip(words, reference):
        packed = int.from_bytes(plane.tobytes(), "little")
        mask = (1 << len(data)) - 1 if data else 0
        assert packed & mask == vector.bits
        assert packed == packed & mask  # padding bits stay zero


@given(st.binary(max_size=200), st.integers(min_value=0, max_value=70))
def test_words_padding_is_zero(data, extra):
    bits = len(data) + extra
    words = transpose_words(data, bits=bits)
    expected_words = max(1, -(-bits // 64)) if bits else 0
    assert words.shape == (BASIS_COUNT, expected_words)
    for plane, vector in zip(words, transpose_reference(data)):
        assert int.from_bytes(plane.tobytes(), "little") == vector.bits


def test_character_class_match_via_planes():
    # Matching 'a' by the paper's formula over basis streams.
    data = b"banana"
    b = transpose(data)
    match = ~b[0] & b[1] & b[2] & ~b[3] & ~b[4] & ~b[5] & ~b[6] & b[7]
    assert match.positions() == [1, 3, 5]

"""BitVector unit and property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitstream.bitvector import BitVector


def test_zeros_ones():
    z = BitVector.zeros(10)
    o = BitVector.ones(10)
    assert not z.any()
    assert o.popcount() == 10
    assert (~z) == o


def test_from_string_and_back():
    v = BitVector.from_string("1.01.")
    assert v.positions() == [0, 3]
    assert v.to_string() == "1..1."
    assert BitVector.from_string(v.to_string()) == v


def test_from_positions():
    v = BitVector.from_positions([0, 3, 7], 8)
    assert v.positions() == [0, 3, 7]
    with pytest.raises(ValueError):
        BitVector.from_positions([8], 8)


def test_width_enforced():
    with pytest.raises(ValueError):
        BitVector(0b100, 2)
    with pytest.raises(ValueError):
        BitVector(-1, 4)


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        BitVector.zeros(4) & BitVector.zeros(5)


def test_advance_positive_moves_forward():
    # paper's >>: result[i] = S[i-k]
    v = BitVector.from_string("1...")
    assert v.advance(1) == BitVector.from_string(".1..")
    assert v.advance(3) == BitVector.from_string("...1")
    assert v.advance(4) == BitVector.zeros(4)


def test_advance_negative_moves_backward():
    v = BitVector.from_string("...1")
    assert v.advance(-1) == BitVector.from_string("..1.")
    assert v.advance(-3) == BitVector.from_string("1...")
    assert v.advance(-4) == BitVector.zeros(4)


def test_advance_zero_identity():
    v = BitVector.from_string("1.1.")
    assert v.advance(0) == v


def test_andn():
    a = BitVector.from_string("11..")
    b = BitVector.from_string("1.1.")
    assert a.andn(b) == BitVector.from_string(".1..")


def test_logic_ops():
    a = BitVector.from_string("110.")
    b = BitVector.from_string("1.1.")
    assert (a & b).to_string() == "1..."
    assert (a | b).to_string() == "111."
    assert (a ^ b).to_string() == ".11."


def test_test_and_getitem():
    v = BitVector.from_string(".1.")
    assert not v[0] and v[1] and not v[2]
    with pytest.raises(IndexError):
        v.test(3)


def test_slice():
    v = BitVector.from_string("10110101")
    assert v.slice(2, 6) == BitVector.from_string("1101")
    assert v.slice(0, 0).length == 0
    with pytest.raises(ValueError):
        v.slice(5, 3)


def test_any_in_range():
    v = BitVector.from_string("...1....")
    assert v.any_in_range(3, 4)
    assert v.any_in_range(0, 8)
    assert not v.any_in_range(4, 8)
    assert not v.any_in_range(0, 3)


def test_empty_vector():
    v = BitVector.zeros(0)
    assert not v.any()
    assert v.positions() == []
    assert (~v).length == 0


bit_vectors = st.integers(min_value=1, max_value=200).flatmap(
    lambda n: st.tuples(st.integers(min_value=0, max_value=(1 << n) - 1),
                        st.just(n))).map(lambda t: BitVector(*t))


@given(bit_vectors)
def test_double_complement(v):
    assert ~~v == v


@given(bit_vectors)
def test_positions_roundtrip(v):
    assert BitVector.from_positions(v.positions(), v.length) == v


@given(bit_vectors, st.integers(min_value=-64, max_value=64))
def test_advance_matches_positionwise(v, k):
    shifted = v.advance(k)
    expected = {p + k for p in v.positions() if 0 <= p + k < v.length}
    assert set(shifted.positions()) == expected


@given(bit_vectors, st.integers(min_value=0, max_value=16),
       st.integers(min_value=0, max_value=16))
def test_advance_composes(v, j, k):
    assert v.advance(j).advance(k) == v.advance(j + k)


@given(bit_vectors)
def test_demorgan(v):
    w = ~v
    assert ~(v & w) == (~v | ~w)
    assert ~(v | w) == (~v & ~w)


@given(bit_vectors)
def test_popcount_equals_positions(v):
    assert v.popcount() == len(v.positions())


def test_match_ends_drops_marker_at_zero():
    # Marker streams record a match *after* its last byte; a marker at
    # position 0 has no preceding byte and yields no end.
    assert BitVector.from_string("1....").match_ends() == []
    assert BitVector.from_string(".1..1").match_ends() == [0, 3]
    assert BitVector.zeros(0).match_ends() == []


@given(bit_vectors)
def test_match_ends_equals_hot_loop(v):
    # The vectorised form must agree with the loop it replaced in the
    # engine's extraction paths.
    assert v.match_ends() == [p - 1 for p in v.positions() if p > 0]

"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parents[2].joinpath("examples")
    .glob("*.py"))

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=600)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must produce output"


def test_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3, "the deliverable requires >= 3 examples"

"""CLI (`python -m repro`) tests."""

import pytest

from repro.__main__ import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_basic_match(capsys):
    code, out = run_cli(capsys, "cat", "--text", "bobcat")
    assert code == 0
    assert "1 match(es)" in out
    assert "[5]" in out


def test_no_match_exit_code(capsys):
    code, out = run_cli(capsys, "xyz", "--text", "aaaa")
    assert code == 1
    assert "0 match(es)" in out


def test_multiple_patterns(capsys):
    code, out = run_cli(capsys, "cat", "dog", "--text", "cat dog")
    assert out.count("match(es)") == 2


def test_engines(capsys):
    for engine in ("bitgen", "hyperscan", "ngap", "icgrep", "re2"):
        code, out = run_cli(capsys, "ab", "--text", "abab",
                            "--engine", engine)
        assert code == 0, engine
        assert "2 match(es)" in out, engine


def test_scheme_flag(capsys):
    code, out = run_cli(capsys, "a(bc)*d", "--text", "abcbcd",
                        "--scheme", "BASE")
    assert code == 0


def test_stats_flag(capsys):
    _, out = run_cli(capsys, "ab", "--text", "ab", "--stats")
    assert "ops=" in out


def test_spans_flag(capsys):
    _, out = run_cli(capsys, "cat", "--text", "a cat", "--spans")
    assert "starts at [2]" in out


def test_kernel_flag(capsys):
    code, out = run_cli(capsys, "ab", "--kernel")
    assert code == 0
    assert "__device__" in out


def test_patterns_file(tmp_path, capsys):
    rules = tmp_path / "rules.txt"
    rules.write_text("# comment\ncat\ndog\n")
    code, out = run_cli(capsys, "-f", str(rules), "--text", "cat")
    assert out.count("match(es)") == 2


def test_input_file(tmp_path, capsys):
    payload = tmp_path / "data.bin"
    payload.write_bytes(b"xxcatxx")
    code, out = run_cli(capsys, "cat", "-i", str(payload))
    assert code == 0


def test_limit_truncates(capsys):
    _, out = run_cli(capsys, "a", "--text", "a" * 30, "--limit", "3")
    assert "..." in out


def test_no_patterns_errors():
    with pytest.raises(SystemExit):
        main(["--text", "x"])


def test_scan_reports_dispatch(tmp_path, capsys):
    import json

    rules = tmp_path / "rules.txt"
    rules.write_text("cat\ndog\n")
    payload = tmp_path / "data.bin"
    payload.write_bytes(b"a cat and a dog")
    code, out = run_cli(capsys, "scan", "--patterns", str(rules),
                        "--workers", "2", "--executor", "thread",
                        str(payload))
    assert code == 0
    report = json.loads(out)
    assert report["match_count"] == 2
    assert report["dispatch"] == "serial-small-input"

"""Differential fuzzing: random regex ASTs, random inputs, three
independent matching algorithms that must agree bit-for-bit.

This is the strongest correctness evidence in the suite: the bitstream
path (lowering + interleaved execution), the reference interpreter, and
the Glushkov-NFA simulation share no code beyond the AST, so a bug in
any lowering rule, window computation, or automaton construction shows
up as a disagreement on some generated (pattern, input) pair.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitGenEngine, Scheme
from repro.automata.nfa import match_ends
from repro.gpu.machine import CTAGeometry
from repro.ir.interpreter import run_regexes
from repro.parallel.config import ScanConfig
from repro.regex import ast
from repro.regex.charclass import CharClass

ALPHABET = "abcd"
TINY = CTAGeometry(threads=8, word_bits=4)

pytestmark = pytest.mark.slow


def random_regex(rng: random.Random, depth: int = 3) -> ast.Regex:
    """A random AST over a small alphabet, biased toward the constructs
    that stress cross-block machinery (concatenation, stars, classes)."""
    if depth <= 0:
        return _random_lit(rng)
    roll = rng.random()
    if roll < 0.30:
        return _random_lit(rng)
    if roll < 0.55:
        parts = [random_regex(rng, depth - 1)
                 for _ in range(rng.randint(2, 3))]
        return ast.seq(*parts)
    if roll < 0.72:
        branches = [random_regex(rng, depth - 1)
                    for _ in range(rng.randint(2, 3))]
        return ast.alt(*branches)
    if roll < 0.85:
        return ast.Star(random_regex(rng, depth - 1))
    lo = rng.randint(0, 2)
    hi = lo + rng.randint(0, 2)
    return ast.Rep(random_regex(rng, depth - 1), lo, hi)


def _random_lit(rng: random.Random) -> ast.Regex:
    count = rng.randint(1, len(ALPHABET))
    chars = rng.sample(ALPHABET, count)
    return ast.Lit(CharClass.of_chars("".join(chars)))


def random_input(rng: random.Random) -> bytes:
    return "".join(rng.choice(ALPHABET + " ")
                   for _ in range(rng.randrange(0, 80))).encode()


@settings(max_examples=120, deadline=None)
@given(st.integers(min_value=0, max_value=2**64))
def test_three_way_differential(seed):
    rng = random.Random(seed)
    node = random_regex(rng)
    data = random_input(rng)

    interpreter_ends = run_regexes([node], data)["R0"]
    nfa_ends = match_ends([node], data)[0]
    assert interpreter_ends == nfa_ends, \
        f"bitstream vs NFA disagree: {node!r} on {data!r}"

    engine = BitGenEngine.compile(
        [node], config=ScanConfig(scheme=Scheme.ZBS, geometry=TINY,
                                  loop_fallback=True))
    assert engine.match(data).ends[0] == interpreter_ends, \
        f"interleaved vs interpreter disagree: {node!r} on {data!r}"


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**64))
def test_multi_pattern_differential(seed):
    rng = random.Random(seed)
    nodes = [random_regex(rng, depth=2) for _ in range(4)]
    data = random_input(rng)
    engine = BitGenEngine.compile(
        nodes, config=ScanConfig(scheme=Scheme.SR, geometry=TINY,
                                 cta_count=2, loop_fallback=True))
    result = engine.match(data)
    expected = run_regexes(nodes, data)
    for index in range(len(nodes)):
        assert result.ends[index] == expected[f"R{index}"], \
            f"pattern {index}: {nodes[index]!r} on {data!r}"


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**64))
def test_prefiltered_factored_differential(seed):
    """The rule-set-scale pipeline (prologue factoring + literal
    prefilter gating, both gate impls, both grouping strategies) must
    be bit-identical to the plain ungated interpreter."""
    rng = random.Random(seed)
    nodes = [random_regex(rng, depth=2) for _ in range(5)]
    data = random_input(rng)
    expected = run_regexes(nodes, data)
    for grouping in ("balanced", "fingerprint"):
        for impl in ("screen", "ac"):
            engine = BitGenEngine.compile(
                nodes, config=ScanConfig(
                    scheme=Scheme.ZBS, geometry=TINY, cta_count=2,
                    grouping=grouping, prefilter=True,
                    prefilter_impl=impl, loop_fallback=True))
            result = engine.match(data)
            for index in range(len(nodes)):
                assert result.ends[index] == expected[f"R{index}"], \
                    (f"{grouping}/{impl} pattern {index}: "
                     f"{nodes[index]!r} on {data!r}")


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**64))
def test_incremental_update_differential(seed):
    """An incrementally updated engine must match exactly what a cold
    compile of the new set matches."""
    from repro.core.incremental import update_engine

    rng = random.Random(seed)
    nodes = [random_regex(rng, depth=2) for _ in range(4)]
    config = ScanConfig(scheme=Scheme.ZBS, geometry=TINY, cta_count=2,
                        grouping="fingerprint", loop_fallback=True)
    engine = BitGenEngine.compile(nodes, config=config)
    new_nodes = nodes[1:] + [random_regex(rng, depth=2)]
    updated, _ = update_engine(engine, new_nodes)
    data = random_input(rng)
    expected = run_regexes(new_nodes, data)
    result = updated.match(data)
    for index in range(len(new_nodes)):
        assert result.ends[index] == expected[f"R{index}"], \
            f"pattern {index}: {new_nodes[index]!r} on {data!r}"

"""End-to-end integration tests across the whole system."""

import random

import pytest

from repro.core import SCHEME_LADDER, BitGenEngine, Scheme
from repro.engines import HyperscanEngine, ICgrepEngine, NgAPEngine
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import ScanConfig
from repro.workloads import ALL_APPS, app_by_name

SMALL = CTAGeometry(threads=16, word_bits=8)

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
def test_every_app_every_engine_agrees(app):
    """The Section 7 validation, per application: all four engines
    report identical matches on a scaled workload."""
    workload = app.build(scale=0.005, seed=11)
    data = workload.data[:6000]
    reference = BitGenEngine.compile(
        workload.nodes, config=ScanConfig(geometry=SMALL,
                                          loop_fallback=True)).match(data)
    for cls in (NgAPEngine, ICgrepEngine):
        other = cls.compile(workload.nodes).match(data)
        assert reference.same_matches(other), \
            f"{cls.name} disagrees on {app.name}"
    hyperscan = HyperscanEngine.compile(workload.patterns).match(data)
    assert reference.same_matches(hyperscan), \
        f"Hyperscan disagrees on {app.name}"


@pytest.mark.parametrize("app", ["Brill", "Dotstar", "Snort"],
                         ids=str)
def test_scheme_ladder_on_real_workloads(app):
    """All five schemes agree on loop-heavy application workloads."""
    workload = app_by_name(app).build(scale=0.004, seed=13)
    data = workload.data[:5000]
    results = []
    for scheme in SCHEME_LADDER:
        engine = BitGenEngine.compile(
            workload.nodes,
            config=ScanConfig(scheme=scheme, geometry=SMALL, cta_count=3,
                              loop_fallback=True))
        results.append(engine.match(data))
    for other in results[1:]:
        assert results[0].same_matches(other)


def test_incremental_compile_and_rematch():
    """One engine, many inputs: compile once, match repeatedly."""
    engine = BitGenEngine.compile(["ab+c", "xyz"],
                                  config=ScanConfig(geometry=SMALL))
    rng = random.Random(4)
    for _ in range(8):
        data = bytes(rng.choice(b"abcxyz ") for _ in range(300))
        result = engine.match(data)
        check = ICgrepEngine.compile(["ab+c", "xyz"]).match(data)
        assert result.same_matches(check)


def test_kernel_source_emitted_for_real_workload():
    workload = app_by_name("TCP").build(scale=0.01, seed=2)
    engine = BitGenEngine.compile(workload.nodes,
                                  config=ScanConfig(cta_count=2))
    source = engine.render_kernels()
    assert source.count("__device__") == len(engine.groups)
    assert "__syncthreads" in source


def test_metrics_are_internally_consistent():
    workload = app_by_name("Yara").build(scale=0.005, seed=5)
    engine = BitGenEngine.compile(
        workload.nodes, config=ScanConfig(geometry=SMALL, cta_count=3))
    result = engine.match(workload.data[:4000])
    metrics = result.metrics
    assert metrics.blocks_processed > 0
    assert metrics.output_bits > 0
    assert metrics.thread_word_ops > 0
    assert 0 <= metrics.recompute_fraction() < 1
    assert metrics.guard_hits <= metrics.guard_checks
    assert metrics.fused_loops == len(engine.groups)

"""Glushkov construction and NFA simulation vs oracle and vs bitstreams."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.glushkov import Glushkov, UnsupportedFeature
from repro.automata.nfa import MultiPatternNFA, match_ends
from repro.ir.interpreter import run_regexes
from repro.regex.parser import parse

from ..conftest import oracle_end_positions, random_text


def nfa_ends(pattern: str, data: bytes):
    return match_ends([parse(pattern)], data)[0]


def test_glushkov_literal():
    auto = Glushkov.build(parse("cat"))
    assert auto.state_count == 4  # initial + 3 positions
    assert auto.first == {1}
    assert auto.accepting == {3}
    assert auto.follow[1] == {2}
    assert auto.follow[2] == {3}
    assert auto.follow[3] == set()


def test_glushkov_star_loops_back():
    auto = Glushkov.build(parse("(ab)*"))
    assert auto.nullable
    # b's follow loops back to a
    assert auto.follow[2] == {1}


def test_glushkov_alternation():
    auto = Glushkov.build(parse("ab|cd"))
    assert auto.first == {1, 3}
    assert auto.accepting == {2, 4}


def test_glushkov_rejects_anchors():
    with pytest.raises(UnsupportedFeature):
        Glushkov.build(parse("^ab"))


def test_nfa_simple_match():
    assert nfa_ends("cat", b"bobcat") == [5]


def test_nfa_figure3():
    assert nfa_ends("(abc)|d", b"abcdabce") == [2, 3, 6]


def test_nfa_multi_pattern_ids():
    ends = match_ends([parse("ab"), parse("bc")], b"abc")
    assert ends[0] == [1]
    assert ends[1] == [2]


def test_nfa_stats_counters():
    nfa = MultiPatternNFA.build([parse("a+b")])
    _, stats = nfa.run(b"aaab")
    assert stats.symbols == 4
    assert stats.transition_lookups > 0
    assert stats.matches == 1
    assert stats.max_active >= 1


def test_nfa_counts_duplicate_report_states():
    # same end position from two patterns
    ends = match_ends([parse("ab"), parse("[ab]b")], b"ab")
    assert ends[0] == [1]
    assert ends[1] == [1]


@pytest.mark.parametrize("pattern", [
    "a", "ab", "a*b", "(ab)*c", "a|bc", "a+", "a?b", "[a-c]+d",
    "a{2,3}", "(a|b){2}c", "(ab|a)b", "x(yz)*", "[^a]b", "(ab*)+",
    "a(b|c)*d", "a{2,}b",
])
def test_nfa_vs_oracle(pattern):
    rng = random.Random(77)
    for _ in range(5):
        data = random_text(rng, rng.randrange(0, 30), "abcd")
        got = nfa_ends(pattern, data)
        want = oracle_end_positions(pattern, data)
        assert got == want, f"{pattern!r} on {data!r}"


@settings(max_examples=40, deadline=None)
@given(st.sampled_from([
    "a", "(a|b)*c", "ab|ba", "a(ba)*b", "[abc]{2}", "c(a|b)+",
    "(a|b)(c|d)", "ab{2,4}", "(abc)|(cba)",
]), st.integers(min_value=0, max_value=2**32))
def test_nfa_agrees_with_bitstream_engine(pattern, seed):
    """Cross-validation: two independent algorithms, same answers."""
    rng = random.Random(seed)
    data = random_text(rng, rng.randrange(0, 50), "abcd")
    assert nfa_ends(pattern, data) == run_regexes([pattern], data)["R0"]

"""Subset DFA and Aho–Corasick tests."""

import random

import pytest

from repro.automata.aho_corasick import AhoCorasick
from repro.automata.dfa import DFA, DFATooLarge
from repro.automata.nfa import MultiPatternNFA
from repro.regex.parser import parse

from ..conftest import oracle_end_positions, random_text


def dfa_ends(patterns, data):
    nfa = MultiPatternNFA.build([parse(p) for p in patterns])
    dfa = DFA.build(nfa)
    return {pid: sorted(set(ends))
            for pid, ends in dfa.run(data).items()}


def test_dfa_single_literal():
    assert dfa_ends(["cat"], b"bobcat catcat")[0] == [5, 9, 12]


def test_dfa_matches_nfa():
    patterns = ["a(b|c)*d", "ab", "c+"]
    rng = random.Random(3)
    nfa = MultiPatternNFA.build([parse(p) for p in patterns])
    dfa = DFA.build(nfa)
    for _ in range(10):
        data = random_text(rng, 40, "abcd")
        nfa_matches, _ = nfa.run(data)
        dfa_matches = dfa.run(data)
        for pid in range(len(patterns)):
            assert sorted(set(nfa_matches[pid])) == \
                sorted(set(dfa_matches[pid]))


def test_dfa_vs_oracle():
    rng = random.Random(5)
    for pattern in ["ab|ba", "a{2,3}b", "[ab]c"]:
        data = random_text(rng, 30, "abc")
        assert dfa_ends([pattern], data)[0] == \
            oracle_end_positions(pattern, data)


def test_dfa_state_budget():
    # The classic (a|b)*a(a|b)^k needs ~2^k subset states.
    nfa = MultiPatternNFA.build([parse("[ab]*a[ab]{8}")])
    with pytest.raises(DFATooLarge):
        DFA.build(nfa, max_states=16)


def test_ac_basic():
    ac = AhoCorasick.build([b"he", b"she", b"his", b"hers"])
    hits, stats = ac.scan(b"ushers")
    assert set(hits) == {(1, 3), (0, 3), (3, 5)}
    assert stats.symbols == 6
    assert stats.outputs_emitted == 3


def test_ac_overlapping_patterns():
    ac = AhoCorasick.build([b"aa", b"aaa"])
    hits, _ = ac.scan(b"aaaa")
    assert set(hits) == {(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)}


def test_ac_single_char():
    ac = AhoCorasick.build([b"a"])
    hits, _ = ac.scan(b"banana")
    assert [pos for _, pos in hits] == [1, 3, 5]


def test_ac_rejects_empty_pattern():
    with pytest.raises(ValueError):
        AhoCorasick.build([b""])


def test_ac_no_matches():
    ac = AhoCorasick.build([b"xyz"])
    hits, stats = ac.scan(b"aaaa")
    assert hits == []
    assert stats.goto_lookups == 4


def test_ac_vs_naive():
    rng = random.Random(11)
    patterns = [b"ab", b"ba", b"aab", b"bbb", b"abab"]
    ac = AhoCorasick.build(patterns)
    for _ in range(20):
        data = random_text(rng, 50, "ab")
        hits, _ = ac.scan(data)
        naive = set()
        for pid, pat in enumerate(patterns):
            for start in range(len(data) - len(pat) + 1):
                if data[start:start + len(pat)] == pat:
                    naive.add((pid, start + len(pat) - 1))
        assert set(hits) == naive


def test_ac_binary_patterns():
    ac = AhoCorasick.build([bytes([0, 255]), bytes([1, 2, 3])])
    hits, _ = ac.scan(bytes([0, 255, 1, 2, 3]))
    assert set(hits) == {(0, 1), (1, 4)}

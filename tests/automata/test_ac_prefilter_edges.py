"""Aho–Corasick and factor-extraction edge cases feeding the
prefilter gate (repro.core.prefilter / repro.regex.factors)."""

import pytest

from repro.automata.aho_corasick import AhoCorasick
from repro.core.engine import BitGenEngine
from repro.core.prefilter import PrefilterIndex, pattern_gate
from repro.parallel.config import PREFILTER_IMPLS, ScanConfig
from repro.regex.factors import factor_literals
from repro.regex.parser import parse


def _fired(literals, data):
    ac = AhoCorasick.build(literals)
    hits, _ = ac.scan(data)
    return {literals[slot] for slot, _end in hits}


# -- AC literal edge cases ------------------------------------------------


def test_overlapping_literals_all_fire():
    # "aba" occurrences overlap in "ababa"; suffix links must surface
    # both patterns despite the shared border
    literals = [b"aba", b"bab"]
    assert _fired(literals, b"ababa") == {b"aba", b"bab"}


def test_prefix_literal_fires_with_its_extension():
    literals = [b"ab", b"abcd"]
    assert _fired(literals, b"zabcdz") == {b"ab", b"abcd"}
    assert _fired(literals, b"zabz") == {b"ab"}


def test_suffix_literal_fires_inside_longer_hit():
    # "cd" only occurs as a suffix of "abcd": the dict-suffix chain
    # must report it anyway
    literals = [b"abcd", b"cd"]
    assert _fired(literals, b"xxabcdxx") == {b"abcd", b"cd"}


def test_single_byte_literals():
    literals = [b"a", b"z", b"az"]
    assert _fired(literals, b"a") == {b"a"}
    assert _fired(literals, b"az") == {b"a", b"z", b"az"}
    assert _fired(literals, b"qqq") == set()


@pytest.mark.parametrize("impl", PREFILTER_IMPLS)
def test_gate_identity_with_overlapping_gates(impl):
    """Patterns whose gate literals overlap each other must still gate
    soundly end to end."""
    patterns = ["ababx[0-9]", "babay[0-9]", "abab|baba"]
    baseline = BitGenEngine.compile(
        patterns, config=ScanConfig(loop_fallback=True))
    engine = BitGenEngine.compile(
        patterns, config=ScanConfig(prefilter=True, prefilter_impl=impl,
                                    loop_fallback=True))
    for data in (b"abababax7 babay3", b"no hits here", b"abab", b""):
        assert engine.match(data).ends == baseline.match(data).ends


# -- factor extraction edge cases -----------------------------------------


def test_alternation_case_collision_keeps_both_spellings():
    gate = factor_literals(parse("foo|FOO"))
    assert gate == {b"foo", b"FOO"}


def test_case_insensitive_class_pattern_has_no_literal_factor():
    # [fF][oO][oO] has no single required literal run — the extractor
    # must refuse rather than guess one spelling
    assert factor_literals(parse("[fF][oO][oO]")) is None


def test_alternation_with_factor_free_branch_is_ungated():
    assert factor_literals(parse("foo|[0-9]+")) is None
    assert pattern_gate(parse("foo|[0-9]+")) is None


def test_nested_alternation_union():
    gate = factor_literals(parse("(foo|bar)|baz"))
    assert gate == {b"foo", b"bar", b"baz"}


def test_optional_prefix_factor_excluded():
    # "x?" is nullable: only the mandatory tail can gate
    gate = factor_literals(parse("(ab)?cdef"))
    assert gate == {b"cdef"}


def test_wide_alternation_overflows_to_ungated():
    wide = "|".join(f"lit{i:02d}" for i in range(40))
    assert factor_literals(parse(wide)) is None


def test_single_char_required_run_is_too_short():
    # one-byte factors are below MIN_FACTOR_LENGTH; extractor refuses
    assert factor_literals(parse("a[0-9]+")) is None


def test_index_build_mixes_gated_and_ungated():
    patterns = ["foo|FOO", "[fF][oO][oO]", "barbaz[0-9]"]
    nodes = [parse(p) for p in patterns]
    engine = BitGenEngine.compile(
        patterns, config=ScanConfig(loop_fallback=True))
    index = PrefilterIndex.build(nodes, [c.group for c in engine.groups])
    assert index.gated_groups < len(engine.groups)
    assert set(index.literals) >= {b"foo", b"FOO"}

"""Sanity checks on the transcribed paper data (guards against typos
that would silently skew every comparison)."""

import math

import pytest

from repro.perf.model import geometric_mean
from repro.perf.paper_data import (APPS, TABLE1, TABLE2,
                                   TABLE2_GMEAN_SPEEDUPS, TABLE4, TABLE5,
                                   TABLE6, FIGURE15)


def test_all_apps_covered():
    assert set(APPS) == set(TABLE1) == set(TABLE2) == set(TABLE5)
    assert len(APPS) == 10


def test_table2_gmeans_consistent():
    """The published per-app speedups reproduce the published gmeans."""
    for engine, attr in (("HS-1T", "hs_1t"), ("HS-MT", "hs_mt"),
                         ("ngAP", "ngap"), ("icgrep", "icgrep")):
        speedups = [TABLE2[app].bitgen / getattr(TABLE2[app], attr)
                    for app in APPS]
        assert geometric_mean(speedups) == pytest.approx(
            TABLE2_GMEAN_SPEEDUPS[engine], rel=0.03), engine


def test_table1_totals_plausible():
    for app, row in TABLE1.items():
        assert row["regexes"] > 0
        assert row["and"] > row["or"] or app == "Protomata"
        assert row["shift"] > 0


def test_table4_monotone():
    assert TABLE4["Base"]["loops"] > TABLE4["DTM-"]["loops"] > \
        TABLE4["DTM"]["loops"]
    assert TABLE4["DTM"]["intermediates"] == 0.0


def test_table5_within_limit():
    # No app exceeds the 16,384-bit one-block overlap limit.
    for app, row in TABLE5.items():
        assert row["dyn_max"] <= 16384, app
        assert 60 <= row["iters"] <= 65


def test_table6_monotone():
    sync = [TABLE6[k]["sync"] for k in (1, 4, 16, 32)]
    stall = [TABLE6[k]["stall_pct"] for k in (1, 4, 16, 32)]
    smem = [TABLE6[k]["smem_kb"] for k in (1, 4, 16, 32)]
    assert sync == sorted(sync, reverse=True)
    assert stall == sorted(stall, reverse=True)
    assert smem == sorted(smem)


def test_figure15_values():
    assert FIGURE15["BitGen"]["L40S"] > FIGURE15["BitGen"]["H100 NVL"]
    assert FIGURE15["ngAP"]["H100 NVL"] == 1.0

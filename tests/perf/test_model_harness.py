"""Performance model and harness tests."""

import pytest

from repro.core.schemes import Scheme
from repro.engines.hyperscan import HyperscanStats
from repro.engines.icgrep import ICgrepStats
from repro.engines.ngap import NgAPStats
from repro.gpu.config import H100_NVL, L40S, RTX_3090, XEON_8562Y
from repro.gpu.metrics import KernelMetrics
from repro.perf.model import (Extrapolation, geometric_mean, model_bitgen,
                              model_hyperscan, model_icgrep, model_ngap)
from repro.perf.harness import Harness
from repro.perf.report import format_bars, format_table, to_csv


def make_cta(ops=1_000_000, barriers=100, dram=1000, smem=2000):
    metrics = KernelMetrics()
    metrics.thread_word_ops = ops
    metrics.barriers = barriers
    metrics.dram_read_bytes = dram
    metrics.smem_write_bytes = smem
    return metrics


# -- model ---------------------------------------------------------------------

def test_bitgen_more_work_is_slower():
    fast = model_bitgen([make_cta(ops=1_000_000)], RTX_3090, 1 << 20)
    slow = model_bitgen([make_cta(ops=10_000_000)], RTX_3090, 1 << 20)
    assert slow.seconds > fast.seconds
    assert slow.mbps < fast.mbps


def test_bitgen_barriers_cost_time():
    quiet = model_bitgen([make_cta(barriers=10)], RTX_3090, 1 << 20)
    noisy = model_bitgen([make_cta(barriers=10_000)], RTX_3090, 1 << 20)
    assert noisy.seconds > quiet.seconds


def test_bitgen_parallel_ctas_amortise():
    one = model_bitgen([make_cta()], RTX_3090, 1 << 20)
    many = model_bitgen([make_cta() for _ in range(32)], RTX_3090,
                        1 << 20)
    # 32 CTAs on 82 SMs run in one wave: same time, not 32x.
    assert many.seconds == pytest.approx(one.seconds, rel=0.01)


def test_bitgen_waves_beyond_sm_count():
    one_wave = model_bitgen([make_cta() for _ in range(82)], RTX_3090,
                            1 << 20)
    two_waves = model_bitgen([make_cta() for _ in range(164)], RTX_3090,
                             1 << 20)
    assert two_waves.seconds == pytest.approx(2 * one_wave.seconds,
                                              rel=0.05)


def test_bitgen_faster_on_faster_gpu():
    metrics = [make_cta() for _ in range(100)]
    base = model_bitgen(metrics, RTX_3090, 1 << 20)
    h100 = model_bitgen(metrics, H100_NVL, 1 << 20)
    l40s = model_bitgen(metrics, L40S, 1 << 20)
    assert h100.seconds < base.seconds
    assert l40s.seconds < h100.seconds  # L40S has more integer compute


def test_bitgen_input_extrapolation_scales_compute():
    metrics = [make_cta(ops=10_000_000, barriers=0)]
    base = model_bitgen(metrics, RTX_3090, 1 << 16)
    scaled = model_bitgen(metrics, RTX_3090, 1 << 16,
                          Extrapolation(input_factor=16))
    assert scaled.seconds == pytest.approx(16 * base.seconds, rel=0.01)
    assert scaled.mbps == pytest.approx(base.mbps, rel=0.01)


def test_ngap_low_occupancy_is_latency_bound():
    def stats(occ):
        s = NgAPStats()
        s.nfa.symbols = 1000
        s.nfa.transition_lookups = occ * 1000
        s.state_count = 500_000  # big automaton: cache-missing
        s.input_bytes = 1000
        return s

    sparse = model_ngap(stats(1), RTX_3090)
    dense = model_ngap(stats(100), RTX_3090)
    assert sparse.seconds > dense.seconds, \
        "short worklists cannot hide lookup latency (Section 8.1)"


def test_ngap_huge_occupancy_is_work_bound():
    s = NgAPStats()
    s.nfa.symbols = 1000
    s.nfa.transition_lookups = 5000 * 1000
    s.state_count = 500_000
    s.input_bytes = 1000
    moderate = s
    assert model_ngap(moderate, RTX_3090).seconds > 0


def test_icgrep_scales_with_ops():
    a = ICgrepStats(simd_word_ops=1_000_000, input_bytes=1 << 20)
    b = ICgrepStats(simd_word_ops=4_000_000, input_bytes=1 << 20)
    assert model_icgrep(b, XEON_8562Y).seconds == pytest.approx(
        4 * model_icgrep(a, XEON_8562Y).seconds)


def test_hyperscan_mt_faster_but_bounded():
    stats = HyperscanStats(input_bytes=1 << 20)
    stats.ac.goto_lookups = 1 << 20
    single = model_hyperscan(stats, XEON_8562Y, threads=1)
    multi = model_hyperscan(stats, XEON_8562Y, threads=32)
    assert multi.seconds < single.seconds
    # AC-bound work barely scales (the paper's 1.76x overall ceiling).
    assert single.seconds / multi.seconds < 2.0


def test_geometric_mean():
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([3.0]) == pytest.approx(3.0)


# -- harness -----------------------------------------------------------------------

@pytest.fixture(scope="module")
def harness():
    return Harness(scale=0.01)


def test_harness_workload_cached(harness):
    a = harness.workload("TCP")
    b = harness.workload("TCP")
    assert a is b


def test_harness_all_engines_run(harness):
    for engine in ("BitGen", "HS-1T", "HS-MT", "ngAP", "icgrep"):
        run = harness.run("TCP", engine)
        assert run.mbps > 0
        assert run.throughput.seconds > 0


def test_harness_engines_agree(harness):
    assert harness.verify_engines_agree("TCP")
    assert harness.verify_engines_agree("ExactMatch")


def test_harness_scheme_runs(harness):
    zbs = harness.run_bitgen("TCP", Scheme.ZBS)
    base = harness.run_bitgen("TCP", Scheme.BASE)
    assert zbs.match_count == base.match_count
    assert zbs.mbps > base.mbps, "optimised scheme is modelled faster"


def test_harness_unknown_engine(harness):
    with pytest.raises(KeyError):
        harness.run_baseline("TCP", "GNU grep")


def test_extrapolation_factors(harness):
    workload = harness.workload("TCP")
    extrapolation = harness.extrapolation(workload)
    assert extrapolation.pattern_factor > 1
    assert extrapolation.input_factor > 1


# -- report ------------------------------------------------------------------------

def test_format_table_alignment():
    text = format_table(["a", "bbb"], [[1, 2.5], [33, 0.001]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(line.rstrip()) for line in lines[1:2])) == 1


def test_format_bars():
    text = format_bars({"x": 10.0, "y": 5.0}, width=10)
    assert "##########" in text
    assert "#####" in text


def test_to_csv():
    csv = to_csv(["a", "b"], [[1, 2], [3, 4]])
    assert csv.splitlines() == ["a,b", "1,2", "3,4"]

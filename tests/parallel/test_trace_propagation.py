"""Trace propagation across the worker pool.

The tentpole guarantee of :mod:`repro.obs.propagate`: spans recorded
inside pool workers — threads or separate processes — stitch under the
parent scan span with globally unique ids, and a scan run with tracing
disabled pays (almost) nothing and reports ``trace=None``.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.core.engine import BitGenEngine
from repro.gpu.machine import CTAGeometry
from repro.obs.propagate import TracedShard, run_traced, unwrap
from repro.obs.trace import TraceContext, Tracer
from repro.parallel.config import ScanConfig

TINY = CTAGeometry(threads=4, word_bits=8)

PATTERNS = ["a(bc)*d", "colou?r", "cat|dog", "[0-9][0-9]",
            "xy+z", "foo(bar)?"]

DATA = b"abcbcd colour cat 42 xyyz foobar color abcd " * 30


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.stop_tracing()
    yield
    obs.stop_tracing()


def build(executor):
    return BitGenEngine.compile(
        PATTERNS, config=ScanConfig(geometry=TINY, backend="compiled",
                                    cta_count=4, workers=2,
                                    executor=executor,
                                    min_parallel_bytes=0,
                                    loop_fallback=True))


def traced_scan(executor):
    engine = build(executor)
    tracer = obs.start_tracing()
    report = engine.scan(DATA)
    obs.stop_tracing()
    return report, tracer.finished()


def by_id(spans):
    index = {span["id"]: span for span in spans}
    assert len(index) == len(spans), "duplicate span ids"
    return index


def assert_shards_under_scan(spans):
    index = by_id(spans)
    scan = next(s for s in spans if s["name"] == "scan")
    shards = [s for s in spans if s["name"] == "shard"]
    assert len(shards) >= 2
    for shard in shards:
        # Walk the parent chain up to the scan span.
        node = shard
        seen = set()
        while node["parent"] is not None:
            assert node["id"] not in seen
            seen.add(node["id"])
            node = index[node["parent"]]
        assert node is scan
    return scan, shards


# -- thread executor (same process, shared tracer) ---------------------------


def test_thread_shards_stitch_under_scan():
    report, spans = traced_scan("thread")
    scan, shards = assert_shards_under_scan(spans)
    assert report.dispatch == "parallel"
    assert all(s["pid"] == scan["pid"] for s in shards)
    # Distinct worker threads recorded the shards' execution.
    assert {s["attrs"]["shard"] for s in shards} == \
        set(range(len(shards)))


def test_report_trace_view_is_the_scan_subtree():
    report, spans = traced_scan("thread")
    assert report.trace is not None
    trace_ids = {s["id"] for s in report.trace}
    scan = next(s for s in spans if s["name"] == "scan")
    assert scan["id"] in trace_ids
    shard_ids = {s["id"] for s in spans if s["name"] == "shard"}
    assert shard_ids <= trace_ids
    # Compile-time spans predate the scan and stay out of its view.
    compile_ids = {s["id"] for s in spans if s["name"] == "compile"}
    assert not compile_ids & trace_ids


# -- process executor (spans marshalled back) --------------------------------


def test_process_shards_marshal_back():
    report, spans = traced_scan("process")
    scan, shards = assert_shards_under_scan(spans)
    assert report.dispatch == "parallel"
    if not any(f.kind == "pool" for f in report.faults):
        # Genuine process workers: shard spans carry foreign pids and
        # their children (exec spans) came along with them.
        worker_pids = {s["pid"] for s in shards} - {scan["pid"]}
        assert worker_pids
        assert any(s["name"] == "exec" and s["pid"] in worker_pids
                   for s in spans)
    assert len({s["trace"] for s in spans}) == 1


# -- disabled path -----------------------------------------------------------


def test_disabled_tracer_reports_no_trace():
    engine = build("thread")
    report = engine.scan(DATA)
    assert report.dispatch == "parallel"
    assert report.trace is None
    assert not obs.enabled()


def test_disabled_pool_skips_span_marshalling():
    """Without a tracer the pool submits ``fn`` directly — results are
    never wrapped in TracedShard."""
    engine = build("thread")
    results = engine.match_many([DATA[:64], DATA[:128], DATA[:64]])
    assert not any(isinstance(r, TracedShard) for r in results)


# -- run_traced unit behaviour -----------------------------------------------


def test_run_traced_same_process_records_live():
    tracer = obs.start_tracing()
    with obs.span("scan.parallel") as parent:
        ctx = obs.current_context()
        result = run_traced(lambda p: p + 1, ctx, 0, 41)
    assert result == 42  # raw result, not TracedShard
    shard = next(s for s in tracer.finished()
                 if s["name"] == "shard")
    assert shard["parent"] == parent.span_id


def test_run_traced_foreign_process_marshals():
    """Simulate the worker side: a context minted by another pid makes
    run_traced collect spans locally and ship them back."""
    ctx = TraceContext(trace_id="t-x", span_id="p-1", pid=-1)
    raw = run_traced(lambda p: p * 2, ctx, 3, 21)
    assert isinstance(raw, TracedShard)
    assert raw.result == 42
    shard = next(s for s in raw.spans if s["name"] == "shard")
    assert shard["trace"] == "t-x"
    assert shard["parent"] == "p-1"
    assert shard["attrs"]["shard"] == 3
    # The worker-side tracer was uninstalled again.
    assert not obs.enabled()
    parent = Tracer(trace_id="t-x")
    assert unwrap(raw, parent) == 42
    assert parent.finished() == raw.spans

"""Zero-copy shared-memory shards: lifecycle, identity, and leaks.

Unit level: :class:`SharedArena` bump allocation, descriptor
round-trips, ref-counting, and the unlink-before-close dispose path
(including the pinned-view zombie case).  End to end: process-pool
scans with ``shared_memory=True`` stay bit-identical to serial, and —
the contract the fault-path tests enforce — **no scan exit path leaks
a segment**: clean runs, injected worker errors, worker kills
(BrokenExecutor), and worker timeouts all leave ``active_segments()``
empty and ``/dev/shm`` clean.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.core.engine import BitGenEngine
from repro.gpu.machine import CTAGeometry
from repro.parallel import shm
from repro.parallel.config import ScanConfig
from repro.parallel.pool import shutdown
from repro.parallel.scan import ParallelScanner
from repro.parallel.shm import SharedArena, ShmArray, ShmBytes
from repro.parallel.worker import FAULT_ENV

TINY = CTAGeometry(threads=4, word_bits=8)

PATTERNS = ["a(bc)*d", "cat|dog", "[0-9][0-9]", "foo"]
DATA = b"abcbcd cat 42 foo dog abcd " * 30
STREAMS = [DATA[:50], DATA[:120], DATA[:50], DATA[:200], DATA[:120]]


def assert_no_leaks():
    assert shm.active_segments() == []
    pattern = f"/dev/shm/repro-shm-{os.getpid()}-*"
    assert glob.glob(pattern) == []


@pytest.fixture(autouse=True)
def clean_slate():
    """Every test starts and must end with zero owned segments."""
    shm.dispose_all()
    yield
    leaked = shm.active_segments()
    shm.dispose_all()
    assert leaked == []


# -- SharedArena units -------------------------------------------------------


def test_put_bytes_round_trip():
    with SharedArena(1024, tag="t") as arena:
        ref = arena.put_bytes(b"hello shards")
        assert isinstance(ref, ShmBytes)
        assert bytes(ref.resolve()) == b"hello shards"


def test_alloc_array_view_is_shared():
    with SharedArena(4096, tag="t") as arena:
        view, ref = arena.alloc_array((8, 4))
        view[...] = np.arange(32, dtype=np.uint64).reshape(8, 4)
        resolved = ref.resolve()
        assert resolved.dtype == np.uint64
        np.testing.assert_array_equal(resolved, view)
        # Same pages, not a copy: writes through one view appear in
        # the other.
        view[0, 0] = 99
        assert resolved[0, 0] == 99


def test_put_array_round_trips_dtype_and_shape():
    payload = np.arange(12, dtype=np.uint8).reshape(3, 4)
    with SharedArena(1024, tag="t") as arena:
        ref = arena.put_array(payload)
        assert isinstance(ref, ShmArray)
        out = ref.resolve()
        assert out.dtype == np.uint8 and out.shape == (3, 4)
        np.testing.assert_array_equal(out, payload)


def test_allocations_are_aligned():
    with SharedArena(4096, tag="t") as arena:
        first = arena.put_bytes(b"x")  # 1 byte, forces padding next
        second = arena.put_bytes(b"y")
        assert first.offset % 64 == 0
        assert second.offset % 64 == 0
        assert second.offset > first.offset


def test_overflow_raises_memory_error():
    with SharedArena(64, tag="t") as arena:
        with pytest.raises(MemoryError):
            arena.put_bytes(b"z" * (arena.capacity + 1))


def test_release_unlinks_segment():
    arena = SharedArena(256, tag="t")
    name = arena.name
    assert name in shm.active_segments()
    assert os.path.exists(f"/dev/shm/{name}")
    arena.release()
    assert name not in shm.active_segments()
    assert not os.path.exists(f"/dev/shm/{name}")


def test_refcount_delays_unlink():
    arena = SharedArena(256, tag="t")
    arena.acquire()
    arena.release()  # back to one holder — still linked
    assert os.path.exists(f"/dev/shm/{arena.name}")
    arena.release()
    assert not os.path.exists(f"/dev/shm/{arena.name}")


def test_release_is_idempotent_via_dispose_all():
    arena = SharedArena(256, tag="t")
    arena.release()
    shm.dispose_all()  # must not raise on the already-gone arena


def test_live_view_defers_close_but_not_unlink():
    """A NumPy view held across release() must not block the unlink:
    the /dev/shm name goes away immediately (nothing leaks), and the
    mapping is reaped once the view dies."""
    arena = SharedArena(1024, tag="t")
    view, _ = arena.alloc_array((8, 2))
    name = arena.name
    arena.release()
    assert not os.path.exists(f"/dev/shm/{name}")
    assert name not in shm.active_segments()
    view[0, 0] = 1  # the pinned mapping is still usable
    del view
    shm.dispose_all()  # reaps the zombie mapping
    assert shm._ZOMBIES == []


def test_attach_resolves_owned_arena_without_reattach():
    with SharedArena(256, tag="t") as arena:
        assert shm.attach(arena.name) is arena._shm


# -- zero-copy process scans -------------------------------------------------


def build(**dispatch):
    # Compiled backend: the zero-copy pre-transposed payload path.
    dispatch.setdefault("backend", "compiled")
    return BitGenEngine.compile(
        PATTERNS, config=ScanConfig(geometry=TINY, loop_fallback=True,
                                    min_parallel_bytes=0, **dispatch))


def process_config(**extra):
    defaults = dict(geometry=TINY, loop_fallback=True, workers=2,
                    executor="process", min_parallel_bytes=0,
                    backend="compiled")
    defaults.update(extra)
    return ScanConfig(**defaults)


def sig(result):
    return {k: sorted(v) for k, v in result.ends.items()}


@pytest.fixture(scope="module")
def serial_streams():
    return [sig(r) for r in build().match_many(STREAMS)]


def test_stream_shards_identical_through_shared_memory(serial_streams):
    engine = build()
    scanner = ParallelScanner(engine, process_config(shard="stream"))
    results = scanner.match_many(STREAMS)
    assert [sig(r) for r in results] == serial_streams
    assert scanner.faults == []
    assert_no_leaks()


def test_group_shards_identical_through_shared_memory():
    engine = build()
    serial = engine.match(DATA)
    scanner = ParallelScanner(engine, process_config(shard="group"))
    merged = scanner.match(DATA)
    assert sig(merged) == sig(serial)
    assert merged.metrics == serial.metrics
    assert merged.cta_metrics == serial.cta_metrics
    assert scanner.faults == []
    assert_no_leaks()


def test_shared_memory_off_still_identical(serial_streams):
    engine = build()
    scanner = ParallelScanner(engine,
                              process_config(shared_memory=False))
    results = scanner.match_many(STREAMS)
    assert [sig(r) for r in results] == serial_streams
    assert scanner.faults == []
    assert_no_leaks()


def test_simulate_backend_ships_raw_bytes():
    engine = build(backend="simulate")
    serial = [sig(r) for r in engine.match_many(STREAMS)]
    scanner = ParallelScanner(engine,
                              process_config(backend="simulate"))
    results = scanner.match_many(STREAMS)
    assert [sig(r) for r in results] == serial
    assert scanner.faults == []
    assert_no_leaks()


# -- fault paths must not leak segments --------------------------------------


@pytest.mark.parametrize("kind,fault_kinds", [
    ("generic", {"error"}),
    ("exit", {"pool"}),
])
def test_worker_faults_leave_no_segments(monkeypatch, kind,
                                         fault_kinds, serial_streams):
    engine = build()
    monkeypatch.setenv(FAULT_ENV, kind)
    scanner = ParallelScanner(engine, process_config(shard="stream"))
    results = scanner.match_many(STREAMS)
    assert [sig(r) for r in results] == serial_streams
    assert scanner.faults
    assert {f.kind for f in scanner.faults} <= fault_kinds
    assert all(f.fallback == "serial" for f in scanner.faults)
    assert_no_leaks()


def test_worker_timeout_leaves_no_segments(monkeypatch, serial_streams):
    engine = build()
    monkeypatch.setenv(FAULT_ENV, "timeout")
    scanner = ParallelScanner(
        engine, process_config(shard="stream", worker_timeout=0.5))
    results = scanner.match_many(STREAMS)
    assert [sig(r) for r in results] == serial_streams
    assert scanner.faults
    assert "timeout" in {f.kind for f in scanner.faults}
    assert_no_leaks()


def test_group_faults_leave_no_segments(monkeypatch):
    engine = build()
    serial = engine.match(DATA)
    monkeypatch.setenv(FAULT_ENV, "generic")
    scanner = ParallelScanner(engine, process_config(shard="group"))
    merged = scanner.match(DATA)
    assert sig(merged) == sig(serial)
    assert scanner.faults
    assert_no_leaks()


def teardown_module(module):
    shutdown()

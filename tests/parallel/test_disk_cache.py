"""The process-safe on-disk kernel cache.

Contract: marshalled artefacts round-trip; a fresh in-process cache
backed by a warm directory loads kernels instead of recompiling
(counted as ``disk_hits``); corrupted or cross-version entries fail
closed as misses; keys embed the codegen and interpreter versions.
"""

from __future__ import annotations

import sys

from repro.backend.codegen import CODEGEN_VERSION
from repro.backend.compiled import KernelCache
from repro.backend.fingerprint import cache_key, canonicalize
from repro.ir import lower_regex
from repro.parallel.diskcache import DiskKernelCache, default_cache_dir
from repro.regex import parse


def canonical_program(pattern: str):
    return canonicalize(lower_regex(parse(pattern)))


def test_cache_key_embeds_versions():
    key = cache_key("deadbeef")
    assert key.startswith("deadbeef-")
    assert f"cg{CODEGEN_VERSION}" in key
    assert f"py{sys.version_info[0]}{sys.version_info[1]}" in key


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "kc"))
    assert default_cache_dir() == str(tmp_path / "kc")
    monkeypatch.delenv("REPRO_KERNEL_CACHE")
    assert "repro-kernels-py" in default_cache_dir()


def test_roundtrip(tmp_path):
    disk = DiskKernelCache(str(tmp_path))
    source = "def kernel():\n    return 1\n"
    code = compile(source, "<kernel>", "exec")
    assert disk.get("k1") is None
    disk.put("k1", source, code)
    assert len(disk) == 1
    loaded = disk.get("k1")
    assert loaded is not None
    got_source, got_code = loaded
    assert got_source == source
    namespace = {}
    exec(got_code, namespace)
    assert namespace["kernel"]() == 1
    disk.clear()
    assert len(disk) == 0 and disk.get("k1") is None


def test_corrupted_entries_fail_closed(tmp_path):
    disk = DiskKernelCache(str(tmp_path))
    source = "x = 1\n"
    disk.put("k1", source, compile(source, "<kernel>", "exec"))
    entry = tmp_path / "k1.kbc"
    entry.write_bytes(b"\x00garbage")
    assert disk.get("k1") is None           # corrupted -> miss
    entry.write_bytes(b"")
    assert disk.get("k1") is None           # truncated -> miss
    # A rewrite heals the entry.
    disk.put("k1", source, compile(source, "<kernel>", "exec"))
    assert disk.get("k1") is not None


def test_corrupted_entries_are_quarantined(tmp_path):
    from repro import obs

    counter = obs.registry().counter(
        "repro_disk_cache_corrupt_total",
        "Corrupted disk-cache entries quarantined")
    before = counter.value()

    disk = DiskKernelCache(str(tmp_path))
    source = "x = 1\n"
    disk.put("k1", source, compile(source, "<kernel>", "exec"))
    (tmp_path / "k1.kbc").write_bytes(b"\x00garbage")
    assert disk.get("k1") is None
    # The bad payload is moved aside — kept for post-mortems, out of
    # the lookup path — and counted.
    assert not (tmp_path / "k1.kbc").exists()
    assert (tmp_path / "k1.kbc.bad").exists()
    assert counter.value() == before + 1
    # Next lookup is a clean miss (no re-parse of the bad file, no
    # second quarantine tick).
    assert disk.get("k1") is None
    assert counter.value() == before + 1

    # clear() sweeps quarantined files along with live entries.
    disk.put("k2", source, compile(source, "<kernel>", "exec"))
    disk.clear()
    assert list(tmp_path.glob("*.kbc")) == []
    assert list(tmp_path.glob("*.kbc.bad")) == []

    # An unreadable-but-present file (OSError path) is a plain miss,
    # not corruption: nothing to quarantine.
    assert disk.get("nonexistent") is None
    assert counter.value() == before + 1


def test_wrong_magic_is_a_miss(tmp_path):
    import marshal

    disk = DiskKernelCache(str(tmp_path))
    payload = marshal.dumps(("some-other-format", "x = 1\n",
                             compile("x = 1\n", "<kernel>", "exec")))
    (tmp_path / "k1.kbc").write_bytes(payload)
    assert disk.get("k1") is None


def test_memory_cache_compiles_through_to_disk(tmp_path):
    disk = DiskKernelCache(str(tmp_path))
    cache = KernelCache(disk=disk)
    canonical = canonical_program("ab+c")
    kernel = cache.get_or_compile(canonical)
    assert cache.stats.misses == 1
    assert cache.stats.disk_hits == 0
    assert len(disk) == 1
    assert disk.get(cache_key(canonical.digest)) is not None
    # Same process, second lookup: pure memory hit.
    assert cache.get_or_compile(canonical) is kernel
    assert cache.stats.hits == 1


def test_fresh_cache_loads_from_warm_disk(tmp_path):
    disk = DiskKernelCache(str(tmp_path))
    warm = KernelCache(disk=disk)
    canonical = canonical_program("ab+c")
    built = warm.get_or_compile(canonical)

    cold = KernelCache(disk=DiskKernelCache(str(tmp_path)))
    loaded = cold.get_or_compile(canonical)     # a worker's first touch
    assert cold.stats.disk_hits == 1            # memory miss, disk hit
    assert cold.stats.lookups == cold.stats.hits + cold.stats.misses
    assert loaded.source == built.source
    assert loaded.fingerprint == built.fingerprint


def test_attach_disk_flushes_resident_kernels(tmp_path):
    cache = KernelCache()
    canonical = canonical_program("xy?z")
    cache.get_or_compile(canonical)
    disk = DiskKernelCache(str(tmp_path))
    assert len(disk) == 0
    cache.attach_disk(disk)
    assert disk.get(cache_key(canonical.digest)) is not None


# -- size cap / LRU eviction ----------------------------------------------


def _fill(disk, count, payload_lines=2000):
    source = "x = 1\n" * payload_lines
    code = compile(source, "<kernel>", "exec")
    import time

    for index in range(count):
        disk.put(f"cap{index}", source, code)
        time.sleep(0.01)        # distinct mtimes for a stable LRU order
    return source


def test_size_cap_evicts_oldest_first(tmp_path):
    from repro.parallel.diskcache import _DISK_EVICTIONS

    disk = DiskKernelCache(str(tmp_path), max_mb=0.05)
    before = _DISK_EVICTIONS.value()
    _fill(disk, 8)
    assert len(disk) < 8
    # the newest entry always survives eviction
    assert disk.get("cap7") is not None
    assert disk.get("cap0") is None or len(disk) >= 8
    assert _DISK_EVICTIONS.value() > before


def test_hit_refreshes_recency(tmp_path):
    import os
    import time

    disk = DiskKernelCache(str(tmp_path), max_mb=10)
    _fill(disk, 3)
    entry_bytes = os.path.getsize(
        os.path.join(disk.path, "cap0.kbc"))
    time.sleep(0.01)
    assert disk.get("cap0") is not None   # touch the oldest
    # cap sized so one entry must go when the fourth arrives
    disk.max_mb = 3.5 * entry_bytes / (1024 * 1024)
    source = "y = 2\n" * 2000
    disk.put("trigger", source, compile(source, "<k>", "exec"))
    # cap0 was touched most recently before the trigger; cap1 was not
    assert disk.get("cap0") is not None
    assert disk.get("cap1") is None


def test_env_cap(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DISK_CACHE_MAX_MB", "7.5")
    assert DiskKernelCache(str(tmp_path)).max_mb == 7.5
    monkeypatch.setenv("REPRO_DISK_CACHE_MAX_MB", "not-a-number")
    assert DiskKernelCache(str(tmp_path)).max_mb is None
    monkeypatch.delenv("REPRO_DISK_CACHE_MAX_MB")
    assert DiskKernelCache(str(tmp_path)).max_mb is None


def test_uncapped_cache_never_evicts(tmp_path):
    disk = DiskKernelCache(str(tmp_path))
    _fill(disk, 4, payload_lines=200)
    assert len(disk) == 4

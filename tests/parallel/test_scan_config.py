"""ScanConfig: validation and the post-deprecation legacy-kwarg policy.

The API contract under test: every entry point accepts one ScanConfig;
the pre-ScanConfig scattered kwargs (deprecated for one release in
PR 2) are now rejected outright with a TypeError that spells out the
migration, so stale call sites fail loudly at the call site.
"""

from __future__ import annotations

import pytest

from repro.core.engine import BitGenEngine
from repro.core.schemes import Scheme
from repro.core.streaming import StreamingMatcher
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import (BACKENDS, EXECUTORS, SHARD_POLICIES,
                                   ScanConfig, reject_legacy_kwargs)
from repro.perf.harness import Harness

TINY = CTAGeometry(threads=4, word_bits=8)

PATTERNS = ["a(bc)*d", "cat|dog"]


# -- validation --------------------------------------------------------------


def test_defaults_are_valid():
    config = ScanConfig()
    assert config.scheme is Scheme.ZBS
    assert config.workers == 1
    assert not config.parallel_enabled()
    assert config.backend in BACKENDS
    assert config.shard in SHARD_POLICIES
    assert config.executor in EXECUTORS


@pytest.mark.parametrize("bad", [
    {"backend": "cuda"},
    {"shard": "byte"},
    {"executor": "fiber"},
    {"workers": 0},
    {"merge_size": 0},
    {"interval_size": 0},
    {"max_tail_bytes": 0},
    {"worker_timeout": -1.0},
])
def test_invalid_fields_rejected(bad):
    with pytest.raises(ValueError):
        ScanConfig(**bad)


def test_replace_and_serial_views():
    config = ScanConfig(workers=4, executor="thread")
    assert config.parallel_enabled()
    serial = config.serial()
    assert serial.workers == 1 and not serial.parallel_enabled()
    assert serial.executor == "thread"      # only the fan-out changes
    assert config.workers == 4              # frozen: original untouched
    # workers==1 serial() is the identity (no useless copies)
    one = ScanConfig()
    assert one.serial() is one


def test_compile_key_excludes_dispatch_knobs():
    base = ScanConfig()
    assert base.compile_key() == \
        base.replace(workers=8, executor="thread",
                     shard="stream").compile_key()
    assert base.compile_key() != \
        base.replace(merge_size=4).compile_key()


# -- legacy kwargs are rejected with a migration hint ------------------------


def test_reject_legacy_kwargs_no_op_on_empty():
    reject_legacy_kwargs("api", {})     # must not raise


def test_reject_legacy_kwargs_message_names_fields():
    with pytest.raises(TypeError) as exc:
        reject_legacy_kwargs("SomeAPI", {"merge_size": 4, "scheme": 1})
    message = str(exc.value)
    assert "SomeAPI" in message
    assert "merge_size" in message and "scheme" in message
    assert "ScanConfig" in message          # the migration hint


def test_engine_legacy_kwargs_raise():
    with pytest.raises(TypeError) as exc:
        BitGenEngine.compile(PATTERNS, scheme=Scheme.SR, geometry=TINY,
                             merge_size=4, loop_fallback=True)
    message = str(exc.value)
    assert "BitGenEngine.compile" in message
    assert "ScanConfig" in message
    for name in ("scheme", "geometry", "merge_size", "loop_fallback"):
        assert name in message


def test_engine_config_path_works():
    engine = BitGenEngine.compile(
        PATTERNS, config=ScanConfig(scheme=Scheme.SR, geometry=TINY,
                                    merge_size=4,
                                    loop_fallback=True))
    assert engine.scheme is Scheme.SR


def test_streaming_legacy_kwarg_raises():
    engine = BitGenEngine.compile(PATTERNS,
                                  config=ScanConfig(geometry=TINY))
    with pytest.raises(TypeError) as exc:
        StreamingMatcher(engine, max_tail_bytes=512)
    assert "StreamingMatcher" in str(exc.value)
    assert "max_tail_bytes" in str(exc.value)


def test_streaming_inherits_engine_config_silently():
    engine = BitGenEngine.compile(
        PATTERNS, config=ScanConfig(geometry=TINY, max_tail_bytes=777))
    matcher = StreamingMatcher(engine)
    assert matcher.config.max_tail_bytes == 777


def test_harness_legacy_kwarg_raises():
    with pytest.raises(TypeError) as exc:
        Harness(backend="compiled")
    assert "Harness" in str(exc.value)
    assert "backend" in str(exc.value)


def test_harness_config_pins_device_defaults():
    from repro.gpu.config import RTX_3090, XEON_8562Y

    harness = Harness(config=ScanConfig())
    assert harness.gpu is RTX_3090
    assert harness.cpu is XEON_8562Y
    assert harness.geometry is not None


# -- optimizer and dispatch-threshold knobs ----------------------------------


@pytest.mark.parametrize("bad", [
    {"opt_level": -1},
    {"opt_level": 3},
    {"min_parallel_bytes": -1},
])
def test_invalid_opt_and_threshold_fields_rejected(bad):
    with pytest.raises(ValueError):
        ScanConfig(**bad)


def test_opt_level_defaults_to_full_pipeline():
    config = ScanConfig()
    assert config.opt_level == 2
    assert config.effective_opt_level() == 2


def test_optimize_false_forces_level_zero():
    # The legacy boolean stays authoritative: optimize=False disables
    # the pipeline outright, whatever opt_level says.
    config = ScanConfig(optimize=False, opt_level=2)
    assert config.effective_opt_level() == 0


def test_opt_level_changes_compile_key():
    base = ScanConfig()
    assert base.compile_key() != base.replace(opt_level=0).compile_key()
    assert base.replace(optimize=False).compile_key() \
        == base.replace(opt_level=0).compile_key()


def test_parallel_for_bytes_threshold():
    config = ScanConfig(workers=4, executor="thread",
                        min_parallel_bytes=1024)
    assert not config.parallel_for_bytes(1023)
    assert config.parallel_for_bytes(1024)
    # Serial configs never dispatch to a pool, whatever the size.
    assert not ScanConfig(workers=1).parallel_for_bytes(1 << 30)
    # A zero threshold restores the old always-parallel behaviour.
    assert ScanConfig(workers=2, executor="thread",
                      min_parallel_bytes=0).parallel_for_bytes(0)


# -- process-pool start method ------------------------------------------------


def test_invalid_start_method_rejected():
    with pytest.raises(ValueError):
        ScanConfig(start_method="thread")


def test_explicit_start_method_wins_over_env(monkeypatch):
    from repro.parallel.config import START_METHOD_ENV

    monkeypatch.setenv(START_METHOD_ENV, "spawn")
    config = ScanConfig(start_method="forkserver")
    assert config.resolved_start_method() == "forkserver"


def test_env_override_reaches_default_config(monkeypatch):
    from repro.parallel.config import START_METHOD_ENV

    monkeypatch.setenv(START_METHOD_ENV, "spawn")
    assert ScanConfig().resolved_start_method() == "spawn"


def test_invalid_env_start_method_raises(monkeypatch):
    from repro.parallel.config import START_METHOD_ENV

    monkeypatch.setenv(START_METHOD_ENV, "greenlet")
    with pytest.raises(ValueError):
        ScanConfig().resolved_start_method()


def test_default_start_method_prefers_fork(monkeypatch):
    import multiprocessing

    from repro.parallel.config import (START_METHOD_ENV,
                                       default_start_method)

    monkeypatch.delenv(START_METHOD_ENV, raising=False)
    expected = "fork" \
        if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    assert default_start_method() == expected
    assert ScanConfig().resolved_start_method() == expected


def test_start_method_resolved_at_dispatch_time(monkeypatch):
    """The env override is read when a pool is built, not when the
    config object was constructed — long-lived processes can retarget."""
    from repro.parallel.config import START_METHOD_ENV

    config = ScanConfig()
    monkeypatch.setenv(START_METHOD_ENV, "forkserver")
    assert config.resolved_start_method() == "forkserver"

"""ScanConfig: validation, legacy-kwarg resolution, deprecation policy.

The API contract under test: every entry point accepts one ScanConfig;
the old scattered kwargs keep working for one release and emit exactly
ONE DeprecationWarning per call, no matter how many legacy kwargs the
call used; legacy kwargs and the equivalent ScanConfig produce
identical engines.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import BitGenEngine
from repro.core.schemes import Scheme
from repro.core.streaming import StreamingMatcher
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import (BACKENDS, EXECUTORS, SHARD_POLICIES,
                                   UNSET, ScanConfig, resolve_config)
from repro.perf.harness import Harness

TINY = CTAGeometry(threads=4, word_bits=8)

PATTERNS = ["a(bc)*d", "cat|dog"]


def deprecations(record) -> list:
    return [w for w in record if issubclass(w.category,
                                            DeprecationWarning)]


# -- validation --------------------------------------------------------------


def test_defaults_are_valid():
    config = ScanConfig()
    assert config.scheme is Scheme.ZBS
    assert config.workers == 1
    assert not config.parallel_enabled()
    assert config.backend in BACKENDS
    assert config.shard in SHARD_POLICIES
    assert config.executor in EXECUTORS


@pytest.mark.parametrize("bad", [
    {"backend": "cuda"},
    {"shard": "byte"},
    {"executor": "fiber"},
    {"workers": 0},
    {"merge_size": 0},
    {"interval_size": 0},
    {"max_tail_bytes": 0},
    {"worker_timeout": -1.0},
])
def test_invalid_fields_rejected(bad):
    with pytest.raises(ValueError):
        ScanConfig(**bad)


def test_replace_and_serial_views():
    config = ScanConfig(workers=4, executor="thread")
    assert config.parallel_enabled()
    serial = config.serial()
    assert serial.workers == 1 and not serial.parallel_enabled()
    assert serial.executor == "thread"      # only the fan-out changes
    assert config.workers == 4              # frozen: original untouched
    # workers==1 serial() is the identity (no useless copies)
    one = ScanConfig()
    assert one.serial() is one


def test_compile_key_excludes_dispatch_knobs():
    base = ScanConfig()
    assert base.compile_key() == \
        base.replace(workers=8, executor="thread",
                     shard="stream").compile_key()
    assert base.compile_key() != \
        base.replace(merge_size=4).compile_key()


# -- resolve_config ----------------------------------------------------------


def test_resolve_explicit_legacy_wins_over_config():
    config = ScanConfig(merge_size=8)
    with pytest.warns(DeprecationWarning):
        resolved = resolve_config("api", config, {"merge_size": 4},
                                  stacklevel=2)
    assert resolved.merge_size == 4


def test_resolve_unset_legacy_keeps_config():
    config = ScanConfig(merge_size=4)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        resolved = resolve_config("api", config, {"merge_size": UNSET})
    assert resolved.merge_size == 4


def test_resolve_base_fallback():
    base = ScanConfig(merge_size=2)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        resolved = resolve_config("api", None, {"merge_size": UNSET},
                                  base=base)
    assert resolved is base


# -- exactly one warning per legacy call ------------------------------------


def test_engine_legacy_kwargs_warn_exactly_once():
    with pytest.warns(DeprecationWarning) as record:
        BitGenEngine.compile(PATTERNS, scheme=Scheme.SR, geometry=TINY,
                             merge_size=4, loop_fallback=True)
    assert len(deprecations(record)) == 1
    message = str(deprecations(record)[0].message)
    assert "BitGenEngine.compile" in message
    for name in ("scheme", "geometry", "merge_size", "loop_fallback"):
        assert name in message


def test_engine_config_path_is_warning_free():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        engine = BitGenEngine.compile(
            PATTERNS, config=ScanConfig(scheme=Scheme.SR, geometry=TINY,
                                        merge_size=4,
                                        loop_fallback=True))
    assert engine.scheme is Scheme.SR


def test_streaming_legacy_kwarg_warns_exactly_once():
    engine = BitGenEngine.compile(PATTERNS,
                                  config=ScanConfig(geometry=TINY))
    with pytest.warns(DeprecationWarning) as record:
        matcher = StreamingMatcher(engine, max_tail_bytes=512)
    assert len(deprecations(record)) == 1
    assert "StreamingMatcher" in str(deprecations(record)[0].message)
    assert matcher.config.max_tail_bytes == 512


def test_streaming_inherits_engine_config_silently():
    engine = BitGenEngine.compile(
        PATTERNS, config=ScanConfig(geometry=TINY, max_tail_bytes=777))
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        matcher = StreamingMatcher(engine)
    assert matcher.config.max_tail_bytes == 777


def test_harness_legacy_kwarg_warns_exactly_once():
    with pytest.warns(DeprecationWarning) as record:
        harness = Harness(backend="compiled")
    assert len(deprecations(record)) == 1
    assert "Harness" in str(deprecations(record)[0].message)
    assert harness.backend == "compiled"


def test_harness_config_pins_device_defaults():
    from repro.gpu.config import RTX_3090, XEON_8562Y

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        harness = Harness(config=ScanConfig())
    assert harness.gpu is RTX_3090
    assert harness.cpu is XEON_8562Y
    assert harness.geometry is not None


# -- legacy kwargs and ScanConfig build identical engines --------------------


SCHEMES = st.sampled_from(list(Scheme))


@settings(max_examples=25, deadline=None)
@given(scheme=SCHEMES,
       merge_size=st.integers(min_value=1, max_value=8),
       interval_size=st.integers(min_value=1, max_value=8),
       loop_fallback=st.booleans())
def test_legacy_and_config_compile_identical_engines(
        scheme, merge_size, interval_size, loop_fallback):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = BitGenEngine.compile(
            PATTERNS, scheme=scheme, geometry=TINY,
            merge_size=merge_size, interval_size=interval_size,
            loop_fallback=loop_fallback)
    modern = BitGenEngine.compile(
        PATTERNS, config=ScanConfig(scheme=scheme, geometry=TINY,
                                    merge_size=merge_size,
                                    interval_size=interval_size,
                                    loop_fallback=loop_fallback))
    assert legacy.config == modern.config
    assert legacy.config.compile_key() == modern.config.compile_key()
    assert legacy.render_kernels() == modern.render_kernels()
    data = b"abcbcd cat dog abcd"
    left, right = legacy.match(data), modern.match(data)
    assert left.ends == right.ends
    assert left.metrics == right.metrics


# -- optimizer and dispatch-threshold knobs ----------------------------------


@pytest.mark.parametrize("bad", [
    {"opt_level": -1},
    {"opt_level": 3},
    {"min_parallel_bytes": -1},
])
def test_invalid_opt_and_threshold_fields_rejected(bad):
    with pytest.raises(ValueError):
        ScanConfig(**bad)


def test_opt_level_defaults_to_full_pipeline():
    config = ScanConfig()
    assert config.opt_level == 2
    assert config.effective_opt_level() == 2


def test_optimize_false_forces_level_zero():
    # The legacy boolean stays authoritative: optimize=False disables
    # the pipeline outright, whatever opt_level says.
    config = ScanConfig(optimize=False, opt_level=2)
    assert config.effective_opt_level() == 0


def test_opt_level_changes_compile_key():
    base = ScanConfig()
    assert base.compile_key() != base.replace(opt_level=0).compile_key()
    assert base.replace(optimize=False).compile_key() \
        == base.replace(opt_level=0).compile_key()


def test_parallel_for_bytes_threshold():
    config = ScanConfig(workers=4, executor="thread",
                        min_parallel_bytes=1024)
    assert not config.parallel_for_bytes(1023)
    assert config.parallel_for_bytes(1024)
    # Serial configs never dispatch to a pool, whatever the size.
    assert not ScanConfig(workers=1).parallel_for_bytes(1 << 30)
    # A zero threshold restores the old always-parallel behaviour.
    assert ScanConfig(workers=2, executor="thread",
                      min_parallel_bytes=0).parallel_for_bytes(0)


# -- process-pool start method ------------------------------------------------


def test_invalid_start_method_rejected():
    with pytest.raises(ValueError):
        ScanConfig(start_method="thread")


def test_explicit_start_method_wins_over_env(monkeypatch):
    from repro.parallel.config import START_METHOD_ENV

    monkeypatch.setenv(START_METHOD_ENV, "spawn")
    config = ScanConfig(start_method="forkserver")
    assert config.resolved_start_method() == "forkserver"


def test_env_override_reaches_default_config(monkeypatch):
    from repro.parallel.config import START_METHOD_ENV

    monkeypatch.setenv(START_METHOD_ENV, "spawn")
    assert ScanConfig().resolved_start_method() == "spawn"


def test_invalid_env_start_method_raises(monkeypatch):
    from repro.parallel.config import START_METHOD_ENV

    monkeypatch.setenv(START_METHOD_ENV, "greenlet")
    with pytest.raises(ValueError):
        ScanConfig().resolved_start_method()


def test_default_start_method_prefers_fork(monkeypatch):
    import multiprocessing

    from repro.parallel.config import (START_METHOD_ENV,
                                       default_start_method)

    monkeypatch.delenv(START_METHOD_ENV, raising=False)
    expected = "fork" \
        if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    assert default_start_method() == expected
    assert ScanConfig().resolved_start_method() == expected


def test_start_method_resolved_at_dispatch_time(monkeypatch):
    """The env override is read when a pool is built, not when the
    config object was constructed — long-lived processes can retarget."""
    from repro.parallel.config import START_METHOD_ENV

    config = ScanConfig()
    monkeypatch.setenv(START_METHOD_ENV, "forkserver")
    assert config.resolved_start_method() == "forkserver"

"""End-to-end resilience policies on the sharded dispatcher.

Every scenario asserts the tentpole invariant twice over: whatever the
policy does (retry, abort, deadline-degrade, breaker-inline), match
results stay bit-identical to serial and no shared-memory segment
leaks.
"""

from __future__ import annotations

import time

import pytest

from repro.core.engine import BitGenEngine
from repro.gpu.machine import CTAGeometry
from repro.parallel import shm
from repro.parallel import pool as pool_mod
from repro.parallel.config import ScanConfig
from repro.parallel.pool import shutdown
from repro.parallel.scan import ParallelScanner
from repro.resilience import chaos
from repro.resilience.breaker import CLOSED, OPEN, CircuitBreaker
from repro.resilience.chaos import ChaosPlan, ChaosRule
from repro.resilience.policy import ScanAbortedError

from .test_shm import (DATA, PATTERNS, STREAMS, TINY, assert_no_leaks,
                       build, process_config, sig)


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    monkeypatch.delenv(chaos.LEGACY_FAULT_ENV, raising=False)
    chaos.reset()
    shm.dispose_all()
    yield
    chaos.reset()
    leaked = shm.active_segments()
    shm.dispose_all()
    assert leaked == []


def thread_config(**extra):
    defaults = dict(geometry=TINY, loop_fallback=True, workers=2,
                    executor="thread", min_parallel_bytes=0,
                    backend="compiled")
    defaults.update(extra)
    return ScanConfig(**defaults)


@pytest.fixture(scope="module")
def serial_streams():
    return [sig(r) for r in build().match_many(STREAMS)]


# -- on_fault="fail" ---------------------------------------------------------


def test_fail_policy_aborts_with_the_fault(serial_streams):
    engine = build()
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="exception"),)))
    scanner = ParallelScanner(engine, thread_config(on_fault="fail"))
    with pytest.raises(ScanAbortedError) as excinfo:
        scanner.match_many(STREAMS)
    fault = excinfo.value.fault
    assert fault.kind == "error"
    assert fault.fallback == "abort"
    assert "InjectedFault" in fault.error
    assert fault.traceback            # cause captured for post-mortems
    # The engine is not poisoned: with chaos disarmed the same scanner
    # config scans clean.
    chaos.reset()
    results = ParallelScanner(
        engine, thread_config(on_fault="fail")).match_many(STREAMS)
    assert [sig(r) for r in results] == serial_streams


def test_fail_policy_releases_shared_memory(monkeypatch, serial_streams):
    engine = build()
    monkeypatch.setenv(chaos.CHAOS_ENV, "worker.*:exception:1.0")
    scanner = ParallelScanner(
        engine, process_config(shard="stream", on_fault="fail"))
    with pytest.raises(ScanAbortedError):
        scanner.match_many(STREAMS)
    assert_no_leaks()


# -- on_fault="retry" --------------------------------------------------------


def test_retry_recovers_transient_fault_without_serial_fallback(
        serial_streams):
    engine = build()
    # max_count=1: exactly one injected fault, then the fault source
    # dries up — the definition of transient.
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="exception", max_count=1),)))
    scanner = ParallelScanner(engine, thread_config(
        on_fault="retry", max_retries=1, retry_backoff=0.01))
    results = scanner.match_many(STREAMS)
    assert [sig(r) for r in results] == serial_streams
    assert len(scanner.faults) == 1
    fault, = scanner.faults
    assert fault.kind == "error"
    assert fault.fallback == "retry"   # recovered by the retry, NOT inline
    assert fault.retries == 1


def test_retry_exhaustion_degrades_inline(serial_streams):
    engine = build()
    # No max_count: every worker attempt faults, so retries burn out
    # and the shard must still recover through the suppressed inline
    # path.
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="exception"),)))
    scanner = ParallelScanner(engine, thread_config(
        on_fault="retry", max_retries=2, retry_backoff=0.01))
    results = scanner.match_many(STREAMS)
    assert [sig(r) for r in results] == serial_streams
    assert scanner.faults
    for fault in scanner.faults:
        assert fault.fallback == "serial"
        assert fault.retries == 2


def test_retry_recovers_unstartable_pool(serial_streams):
    engine = build()
    # The acquisition itself faults once (transient: max_count=1); the
    # per-shard retries build their own fresh executors, which the
    # spent plan no longer touches — every shard recovers via retry.
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="pool.acquire", kind="pool", max_count=1),)))
    scanner = ParallelScanner(engine, process_config(
        shard="stream", on_fault="retry", max_retries=1,
        retry_backoff=0.01))
    results = scanner.match_many(STREAMS)
    assert [sig(r) for r in results] == serial_streams
    assert scanner.faults
    assert {f.kind for f in scanner.faults} == {"pool"}
    assert {f.fallback for f in scanner.faults} == {"retry"}
    assert_no_leaks()


# -- deadlines ---------------------------------------------------------------


def test_deadline_bounds_the_scan_and_degrades(monkeypatch,
                                               serial_streams):
    engine = build()
    monkeypatch.setenv(chaos.SLEEP_ENV, "2.0")
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="timeout"),)))
    scanner = ParallelScanner(engine, thread_config(deadline_s=0.4))
    started = time.monotonic()
    results = scanner.match_many(STREAMS)
    elapsed = time.monotonic() - started
    # deadline + inline recovery of the stragglers, nowhere near the
    # 2 s the workers are sleeping
    assert elapsed < 1.8
    assert [sig(r) for r in results] == serial_streams
    assert scanner.faults
    assert {f.kind for f in scanner.faults} == {"deadline"}
    assert all(f.fallback == "serial" for f in scanner.faults)
    assert all(f.retries == 0 for f in scanner.faults)


def test_deadline_faults_are_never_retried(monkeypatch):
    engine = build()
    monkeypatch.setenv(chaos.SLEEP_ENV, "2.0")
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="timeout"),)))
    scanner = ParallelScanner(engine, thread_config(
        deadline_s=0.3, on_fault="retry", max_retries=3,
        retry_backoff=0.01))
    started = time.monotonic()
    scanner.match_many(STREAMS)
    elapsed = time.monotonic() - started
    assert elapsed < 1.8              # no 3x2s retry ladder happened
    assert all(f.retries == 0 for f in scanner.faults)


def test_timeout_vs_deadline_kinds(monkeypatch, serial_streams):
    """A per-shard worker_timeout that fires with deadline budget left
    is a ``timeout`` fault, not a ``deadline`` one."""
    engine = build()
    monkeypatch.setenv(chaos.SLEEP_ENV, "1.0")
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="timeout", max_count=1),)))
    scanner = ParallelScanner(engine, thread_config(
        worker_timeout=0.2, deadline_s=30.0))
    results = scanner.match_many(STREAMS)
    assert [sig(r) for r in results] == serial_streams
    assert {f.kind for f in scanner.faults} == {"timeout"}


# -- the pool circuit breaker ------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_opens_goes_inline_and_recovers(monkeypatch,
                                                serial_streams):
    clock = FakeClock()
    breaker = CircuitBreaker(name="pool-e2e", threshold=2,
                             cooldown_s=10.0, clock=clock)
    monkeypatch.setattr(pool_mod, "_BREAKER", breaker)
    engine = build()
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="pool.acquire", kind="pool"),)))
    config = thread_config()

    # Two consecutive unstartable-pool dispatches trip the breaker;
    # results still come back correct via inline degrade.
    for _ in range(2):
        scanner = ParallelScanner(engine, config)
        results = scanner.match_many(STREAMS)
        assert [sig(r) for r in results] == serial_streams
        assert {f.kind for f in scanner.faults} == {"pool"}
    assert breaker.state() == OPEN

    # Circuit open: dispatch never touches pools (the still-armed
    # chaos at pool.acquire would fault it), reports no faults, and
    # flags the pool state.
    scanner = ParallelScanner(engine, config)
    results = scanner.match_many(STREAMS)
    assert [sig(r) for r in results] == serial_streams
    assert scanner.faults == []
    assert scanner.pool.last_pool_state == "breaker-open"

    # Cooldown elapses, the environment is fixed: the half-open probe
    # dispatch succeeds and closes the circuit.
    chaos.reset()
    clock.now += 11.0
    scanner = ParallelScanner(engine, config)
    results = scanner.match_many(STREAMS)
    assert [sig(r) for r in results] == serial_streams
    assert scanner.faults == []
    assert breaker.state() == CLOSED


def test_shard_level_faults_do_not_trip_the_breaker(monkeypatch):
    breaker = CircuitBreaker(name="pool-e2e-2", threshold=1,
                             cooldown_s=10.0)
    monkeypatch.setattr(pool_mod, "_BREAKER", breaker)
    engine = build()
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="exception"),)))
    scanner = ParallelScanner(engine, thread_config())
    scanner.match_many(STREAMS)
    assert scanner.faults
    assert {f.kind for f in scanner.faults} == {"error"}
    assert breaker.state() == CLOSED   # worker bugs are not pool health


# -- fault report surface ----------------------------------------------------


def test_fault_tracebacks_surface_in_the_report():
    engine = build()
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="exception"),)))
    scanner = ParallelScanner(engine, thread_config())
    scanner.match_many(STREAMS)
    assert scanner.faults
    for fault in scanner.faults:
        payload = fault.to_dict()
        assert payload["traceback"]
        assert "InjectedFault" in payload["traceback"]
        assert f"shard={fault.shard}" in fault.summary()


def teardown_module(module):
    shutdown()

"""Parallel scans must be bit-identical to serial scans.

The dispatcher's core guarantee: sharding across workers changes wall
clock, never results — match positions AND aggregated metrics come out
equal because shards are built from the serial backend's own batching
units (length classes for streams, kernel-fingerprint buckets for
groups).

Thread pools exercise the dispatch logic cheaply; one process-pool
case covers pickling + the shared on-disk kernel cache end to end.
"""

from __future__ import annotations

import pytest

from repro.core.engine import BitGenEngine
from repro.core.schemes import Scheme
from repro.core.streaming import StreamingMatcher
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import ScanConfig
from repro.parallel.scan import (ParallelScanner, parallel_sessions,
                                 plan_group_shards, plan_stream_shards)

TINY = CTAGeometry(threads=4, word_bits=8)

PATTERNS = ["a(bc)*d", "colou?r", "cat|dog", "[0-9][0-9]",
            "xy+z", "foo", "bar", "qux"]

DATA = b"abcbcd colour cat 42 xyyz foo bar qux color abcd " * 20

STREAMS = [DATA[:97], DATA[:200], DATA[:97], DATA[:500], DATA[:64],
           DATA[:200], DATA[:33]]


def build(backend, scheme=Scheme.ZBS, **dispatch):
    # min_parallel_bytes=0: identity tests want the parallel path even
    # on these deliberately tiny inputs.
    return BitGenEngine.compile(
        PATTERNS, config=ScanConfig(geometry=TINY, backend=backend,
                                    scheme=scheme, cta_count=4,
                                    min_parallel_bytes=0,
                                    loop_fallback=True, **dispatch))


def assert_results_identical(parallel, serial):
    assert len(parallel) == len(serial)
    for left, right in zip(parallel, serial):
        assert left.ends == right.ends
        assert left.metrics == right.metrics
        assert left.cta_metrics == right.cta_metrics


# -- shard planning ----------------------------------------------------------


def test_stream_plan_keeps_length_classes_whole():
    plan = plan_stream_shards(STREAMS, workers=3, preserve_batches=True)
    flat = sorted(index for shard in plan for index in shard)
    assert flat == list(range(len(STREAMS)))
    by_length = {}
    for index, stream in enumerate(STREAMS):
        by_length.setdefault(len(stream), set()).add(index)
    for members in by_length.values():
        holders = [i for i, shard in enumerate(plan)
                   if members & set(shard)]
        assert len(holders) == 1      # a length class never splits


def test_stream_plan_per_stream_without_batches():
    plan = plan_stream_shards(STREAMS, workers=len(STREAMS) + 3,
                              preserve_batches=False)
    assert sorted(i for s in plan for i in s) == list(range(len(STREAMS)))
    assert len(plan) <= len(STREAMS)


def test_group_plan_keeps_fingerprint_buckets_whole():
    engine = build("compiled")
    plan = plan_group_shards(engine, workers=3)
    flat = sorted(index for shard in plan for index in shard)
    assert flat == list(range(len(engine.groups)))
    fingerprints = [c.kernel.fingerprint
                    for c in engine._compiled_programs()]
    for fingerprint in set(fingerprints):
        members = {i for i, f in enumerate(fingerprints)
                   if f == fingerprint}
        holders = [i for i, shard in enumerate(plan)
                   if members & set(shard)]
        assert len(holders) == 1


# -- match_many (stream sharding) -------------------------------------------


@pytest.mark.parametrize("backend", ["simulate", "compiled"])
@pytest.mark.parametrize("scheme", [Scheme.BASE, Scheme.SR, Scheme.ZBS])
def test_match_many_identical_across_schemes(backend, scheme):
    serial = build(backend, scheme).match_many(STREAMS)
    parallel_engine = build(backend, scheme, workers=3,
                            executor="thread")
    parallel = parallel_engine.match_many(STREAMS)
    assert_results_identical(parallel, serial)
    assert parallel_engine.last_scan_faults == []


def test_match_many_explicit_shard_policy():
    serial = build("compiled").match_many(STREAMS)
    engine = build("compiled", workers=4, executor="thread",
                   shard="stream")
    assert_results_identical(engine.match_many(STREAMS), serial)


# -- single-input scan (group sharding) -------------------------------------


@pytest.mark.parametrize("backend", ["simulate", "compiled"])
def test_group_sharded_scan_identical(backend):
    serial = build(backend).match(DATA)
    engine = build(backend, workers=3, executor="thread")
    report = engine.scan(DATA)
    assert report == serial.ends
    assert report.metrics == serial.metrics
    assert report.cta_metrics == serial.cta_metrics
    assert report.faults == []


def test_scanner_match_preserves_group_order():
    serial = build("compiled").match(DATA)
    scanner = ParallelScanner(build("compiled"),
                              ScanConfig(geometry=TINY,
                                         backend="compiled",
                                         cta_count=4, workers=3,
                                         executor="thread",
                                         loop_fallback=True))
    merged = scanner.match(DATA)
    assert merged.ends == serial.ends
    assert merged.cta_metrics == serial.cta_metrics
    assert merged.metrics == serial.metrics


# -- streaming sessions ------------------------------------------------------


def test_parallel_sessions_identical():
    chunk_lists = [
        [DATA[:64], DATA[64:200], DATA[200:260]],
        [DATA[:33], DATA[33:150]],
        [DATA[:128], DATA[128:129], DATA[129:400]],
    ]
    serial_engine = build("simulate")
    serial = [StreamingMatcher(serial_engine).feed_all(chunks)
              for chunks in chunk_lists]
    engine = build("simulate", workers=3, executor="thread")
    reports = parallel_sessions(engine, chunk_lists)
    for left, right in zip(reports, serial):
        assert dict(left) == dict(right)
        assert left.stream_offset == right.stream_offset
        assert left.metrics == right.metrics
        assert left.faults == []


# -- one end-to-end process-pool case ---------------------------------------


@pytest.mark.slow
def test_match_many_identical_through_process_pool(tmp_path):
    serial = build("compiled").match_many(STREAMS[:4])
    engine = build("compiled", workers=2, executor="process",
                   cache_dir=str(tmp_path / "kernels"))
    parallel = engine.match_many(STREAMS[:4])
    assert_results_identical(parallel, serial)
    assert engine.last_scan_faults == []
    # The shared cache was seeded parent-side for the workers.
    assert any((tmp_path / "kernels").iterdir())


# -- harness grid ------------------------------------------------------------


@pytest.mark.slow
def test_run_all_identical():
    from repro.perf.harness import Harness

    apps = ["Snort"]
    engines = ("BitGen", "HS-1T")
    serial = Harness(config=ScanConfig()).run_all(apps, engines)
    parallel = Harness(
        config=ScanConfig(workers=2, executor="thread",
                          min_parallel_bytes=0)).run_all(
            apps, engines)
    assert [r.engine for r in parallel] == [r.engine for r in serial]
    for left, right in zip(parallel, serial):
        assert left.app == right.app
        assert left.match_count == right.match_count
        assert left.mbps == pytest.approx(right.mbps)
        assert left.metrics == right.metrics

"""Graceful degradation: worker faults never lose or change results.

Unit level: :class:`WorkerPool` recovers every faulted shard through
the serial function and records a :class:`ShardFault` per incident.
End to end: with the ``REPRO_PARALLEL_FAULT_INJECT`` hook armed, every
worker raises before touching its shard, yet parallel scans still
return results bit-identical to serial — only ``last_scan_faults``
tells the difference.
"""

from __future__ import annotations

import time

import pytest

from repro.core.engine import BitGenEngine
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import ScanConfig
from repro.parallel.pool import WorkerPool, shutdown
from repro.parallel.worker import FAULT_ENV

TINY = CTAGeometry(threads=4, word_bits=8)

PATTERNS = ["a(bc)*d", "cat|dog", "[0-9][0-9]", "foo"]
DATA = b"abcbcd cat 42 foo dog abcd " * 30
STREAMS = [DATA[:50], DATA[:120], DATA[:50], DATA[:200]]


def thread_pool(**overrides) -> WorkerPool:
    defaults = dict(workers=2, executor="thread")
    defaults.update(overrides)
    return WorkerPool(ScanConfig(**defaults))


# -- WorkerPool units --------------------------------------------------------


def test_serial_bypass_runs_in_process():
    pool = thread_pool(workers=1)
    results, faults = pool.map_shards(lambda p: p * 10, [1, 2, 3])
    assert results == [10, 20, 30]
    assert faults == []


def test_single_payload_bypasses_the_pool():
    pool = thread_pool()
    results, faults = pool.map_shards(lambda p: p + 1, [41])
    assert (results, faults) == ([42], [])


def test_results_keep_submission_order():
    def slow_first(payload):
        if payload == 0:
            time.sleep(0.05)
        return payload

    pool = thread_pool(workers=4)
    results, faults = pool.map_shards(slow_first, [0, 1, 2, 3])
    assert results == [0, 1, 2, 3]
    assert faults == []


def test_worker_error_recovers_serially():
    def flaky(payload):
        if payload == 2:
            raise RuntimeError("shard 2 exploded")
        return payload * 10

    pool = thread_pool(workers=3)
    results, faults = pool.map_shards(flaky, [1, 2, 3],
                                      serial_fn=lambda p: p * 10)
    assert results == [10, 20, 30]
    assert [f.shard for f in faults] == [1]
    assert faults[0].kind == "error"
    assert "shard 2 exploded" in faults[0].error
    assert faults[0].fallback == "serial"


def test_timeout_recovers_serially():
    def sleepy(payload):
        if payload == "slow":
            time.sleep(5)
        return payload

    pool = thread_pool(worker_timeout=0.1)
    results, faults = pool.map_shards(sleepy, ["slow", "fast"],
                                      serial_fn=lambda p: p)
    assert results == ["slow", "fast"]
    assert [f.kind for f in faults] == ["timeout"]


def test_unstartable_pool_degrades_to_all_serial(monkeypatch):
    # Drop any warm pool first: a persistent executor would satisfy the
    # dispatch without ever calling the patched constructor.
    shutdown()
    pool = thread_pool()
    monkeypatch.setattr(
        WorkerPool, "_make_executor",
        lambda self, n: (_ for _ in ()).throw(OSError("no threads")))
    results, faults = pool.map_shards(lambda p: p + 1, [1, 2, 3])
    assert results == [2, 3, 4]
    assert [f.kind for f in faults] == ["pool"] * 3


def test_serial_fallback_failure_propagates():
    def broken(payload):
        raise ValueError("workload bug, not a pool problem")

    pool = thread_pool()
    with pytest.raises(ValueError):
        pool.map_shards(broken, [1, 2])


# -- end-to-end fault injection ---------------------------------------------


def build(workers=2, **extra):
    # min_parallel_bytes=0: these streams are tiny, and the point is to
    # exercise the parallel path (and its fault recovery), not to let
    # the small-input fallback route around it.
    return BitGenEngine.compile(
        PATTERNS, config=ScanConfig(geometry=TINY, workers=workers,
                                    executor="thread",
                                    min_parallel_bytes=0,
                                    loop_fallback=True, **extra))


def test_injected_faults_keep_match_many_identical(monkeypatch):
    serial = build(workers=1).match_many(STREAMS)
    engine = build()
    monkeypatch.setenv(FAULT_ENV, "1")
    parallel = engine.match_many(STREAMS)
    assert engine.last_scan_faults            # every shard faulted
    assert all(f.kind == "error" and "InjectedFault" in f.error
               for f in engine.last_scan_faults)
    for left, right in zip(parallel, serial):
        assert left.ends == right.ends
        assert left.metrics == right.metrics


def test_injected_faults_keep_group_scan_identical(monkeypatch):
    serial = build(workers=1).match(DATA)
    engine = build(workers=3)
    monkeypatch.setenv(FAULT_ENV, "1")
    report = engine.scan(DATA)
    assert report.faults and all(f.kind == "error"
                                 for f in report.faults)
    assert report == serial.ends
    assert report.metrics == serial.metrics
    assert report.cta_metrics == serial.cta_metrics


def test_clean_run_resets_faults(monkeypatch):
    engine = build()
    monkeypatch.setenv(FAULT_ENV, "1")
    engine.match_many(STREAMS)
    assert engine.last_scan_faults
    monkeypatch.delenv(FAULT_ENV)
    engine.match_many(STREAMS)
    assert engine.last_scan_faults == []

"""ScanReport: the unified result surface.

The report must behave like the old bare ``Dict[int, List[int]]``
(Mapping interface, dict equality) while carrying offsets, metrics,
and shard faults, and must merge associatively for streaming and
sharded aggregation.
"""

from __future__ import annotations

import json

from repro.backend.runtime import KernelStats
from repro.core.engine import BitGenEngine
from repro.gpu.machine import CTAGeometry
from repro.gpu.metrics import KernelMetrics
from repro.parallel.config import ScanConfig
from repro.parallel.report import ScanReport, ShardFault

TINY = CTAGeometry(threads=4, word_bits=8)


def compile_engine(patterns):
    return BitGenEngine.compile(patterns,
                                config=ScanConfig(geometry=TINY))


# -- Mapping back-compat -----------------------------------------------------


def test_report_behaves_like_the_old_dict():
    report = ScanReport(pattern_count=3, matches={0: [1, 5], 2: [7]})
    assert report[0] == [1, 5]
    assert report[1] == []                  # padded to pattern_count
    assert report[2] == [7]
    assert len(report) == 3
    assert set(report) == {0, 1, 2}
    assert dict(report.items()) == {0: [1, 5], 1: [], 2: [7]}
    assert report == {0: [1, 5], 1: [], 2: [7]}
    assert {0: [1, 5], 1: [], 2: [7]} == report
    assert report != {0: [1, 5]}


def test_report_equality_with_reports_and_non_mappings():
    left = ScanReport(pattern_count=1, matches={0: [3]})
    right = ScanReport(pattern_count=1, matches={0: [3]},
                       stream_offset=99)
    assert left == right                    # equality is about matches
    assert left != 42
    assert not (left == 42)


def test_aggregate_views():
    report = ScanReport(pattern_count=4, matches={1: [2], 3: [4, 6]})
    assert report.match_count() == 3
    assert report.matched_patterns() == [1, 3]


# -- construction from engine results ---------------------------------------


def test_bitgen_result_report():
    engine = compile_engine(["ab", "cd"])
    result = engine.match(b"ab cd ab")
    report = result.report(stream_offset=8)
    assert report == result.ends
    assert report.stream_offset == 8
    assert report.pattern_count == 2
    assert report.metrics == result.metrics
    assert report.cta_metrics == result.cta_metrics
    assert report.faults == []


# -- merge -------------------------------------------------------------------


def test_merge_accumulates_everything():
    first = ScanReport(pattern_count=2, matches={0: [1]},
                       stream_offset=4, input_bytes=4,
                       metrics=KernelMetrics(thread_word_ops=10,
                                             barriers=2))
    second = ScanReport(pattern_count=2, matches={0: [6], 1: [5]},
                        stream_offset=9, input_bytes=5,
                        metrics=KernelMetrics(thread_word_ops=7,
                                              barriers=1),
                        faults=[ShardFault(shard=1, kind="error",
                                           error="boom")])
    merged = first.merge(second)
    assert merged is first
    assert merged == {0: [1, 6], 1: [5]}
    assert merged.stream_offset == 9
    assert merged.input_bytes == 9
    assert merged.metrics.thread_word_ops == 17
    assert merged.metrics.barriers == 3
    assert [f.kind for f in merged.faults] == ["error"]


def test_merge_matches_streaming_feed_all():
    engine = compile_engine(["virus[0-9]"])
    from repro.core.streaming import StreamingMatcher

    chunks = [b"xx virus1 y", b"y virus2", b" trailer virus3"]
    whole = StreamingMatcher(engine).feed_all(chunks)
    stepwise = ScanReport(pattern_count=1)
    matcher = StreamingMatcher(engine)
    for chunk in chunks:
        stepwise.merge(matcher.feed(chunk))
    assert whole == stepwise
    assert whole.stream_offset == stepwise.stream_offset
    assert whole.metrics == stepwise.metrics


# -- serialisation -----------------------------------------------------------


def test_to_json_round_trips():
    report = ScanReport(pattern_count=2, matches={0: [3, 4]},
                        stream_offset=7, input_bytes=7,
                        faults=[ShardFault(shard=0, kind="timeout",
                                           error="worker exceeded 1s")])
    payload = json.loads(report.to_json(indent=2))
    assert payload["pattern_count"] == 2
    assert payload["match_count"] == 2
    assert payload["matches"] == {"0": [3, 4], "1": []}
    assert payload["stream_offset"] == 7
    assert payload["faults"] == [{"shard": 0, "kind": "timeout",
                                  "error": "worker exceeded 1s",
                                  "fallback": "serial",
                                  "traceback": "", "retries": 0}]
    assert "thread_word_ops" in payload["metrics"]


def test_shard_fault_to_dict():
    fault = ShardFault(shard=3, kind="pool", error="broken",
                       traceback="Traceback: boom", retries=1,
                       fallback="retry")
    assert fault.to_dict() == {"shard": 3, "kind": "pool",
                               "error": "broken", "fallback": "retry",
                               "traceback": "Traceback: boom",
                               "retries": 1}
    assert "kind=pool" in fault.summary()
    assert "retries=1" in fault.summary()


# -- KernelStats.merge (the per-shard runtime stats fold) --------------------


def test_kernel_stats_merge():
    left = KernelStats()
    left.loop_log.extend([3, 5])
    left.guard_checks, left.guard_hits = 10, 4
    right = KernelStats()
    right.loop_log.append(7)
    right.guard_checks, right.guard_hits = 2, 1
    merged = left.merge(right)
    assert merged is left
    assert left.loop_log == [3, 5, 7]
    assert left.guard_checks == 12
    assert left.guard_hits == 5


def test_report_records_dispatch():
    assert ScanReport(pattern_count=1).dispatch == "serial"
    parallel = ScanReport(pattern_count=1, dispatch="parallel")
    assert parallel.dispatch == "parallel"
    assert parallel.to_dict()["dispatch"] == "parallel"
    payload = json.loads(parallel.to_json())
    assert payload["dispatch"] == "parallel"


def test_engine_scan_reports_small_input_fallback():
    engine = compile_engine(["a(bc)*d"])
    engine.config = engine.config.replace(workers=2, executor="thread",
                                          min_parallel_bytes=1 << 20)
    report = engine.scan(b"abcbcd abcd")
    assert report.dispatch == "serial-small-input"
    assert engine.last_dispatch == "serial-small-input"


def test_match_many_dispatch_survives_worker_reentry():
    # Worker fallbacks re-enter match_many on the same engine with a
    # serial config; the top-level "parallel" decision must survive.
    engine = compile_engine(["abc", "dog"])
    engine.config = engine.config.replace(workers=2, executor="thread",
                                          min_parallel_bytes=64)
    engine.match_many([b"xxabcxx " * 32])
    assert engine.last_dispatch == "parallel"

"""Persistent warm pools: reuse, keying, discard, and shutdown.

The registry keeps one executor per ``(executor, workers,
start_method)`` key across scans — ``BENCH_parallel.json`` showed a
fresh ``ProcessPoolExecutor`` per scan costing more than the scan — so
these tests pin the lifecycle: second dispatch is warm, different
configs get different pools, a timeout poisons (discards) the pool,
fault injection bypasses the registry, and :func:`repro.parallel.shutdown`
empties it.
"""

from __future__ import annotations

import time

import pytest

from repro.parallel import pool as pool_mod
from repro.parallel.config import ScanConfig
from repro.parallel.pool import WorkerPool, pool_stats, shutdown
from repro.parallel.worker import FAULT_ENV


@pytest.fixture(autouse=True)
def isolated_registry():
    """Each test starts from an empty registry and leaves none behind."""
    shutdown()
    yield
    shutdown()


def thread_pool(**overrides) -> WorkerPool:
    defaults = dict(workers=2, executor="thread")
    defaults.update(overrides)
    return WorkerPool(ScanConfig(**defaults))


def test_second_dispatch_reuses_warm_pool():
    pool = thread_pool()
    pool.map_shards(lambda p: p, [1, 2])
    assert pool.last_pool_state == "cold"
    pool.map_shards(lambda p: p, [3, 4])
    assert pool.last_pool_state == "warm"


def test_pools_shared_across_workerpool_instances():
    first = thread_pool()
    first.map_shards(lambda p: p, [1, 2])
    second = thread_pool()  # same config → same registry key
    second.map_shards(lambda p: p, [3, 4])
    assert second.last_pool_state == "warm"


def test_distinct_configs_get_distinct_pools():
    a = thread_pool(workers=2)
    b = thread_pool(workers=3)
    a.map_shards(lambda p: p, [1, 2])
    b.map_shards(lambda p: p, [1, 2, 3])
    assert a.last_pool_state == "cold"
    assert b.last_pool_state == "cold"
    assert pool_stats()["active"] == 2


def test_pool_key_includes_start_method_for_processes():
    fork = WorkerPool(ScanConfig(workers=2, executor="process",
                                 start_method="fork"))
    spawn = WorkerPool(ScanConfig(workers=2, executor="process",
                                  start_method="spawn"))
    assert fork._pool_key() != spawn._pool_key()
    # Thread pools don't care about start methods.
    assert thread_pool()._pool_key() == ("thread", 2, None)


def test_timeout_discards_the_poisoned_pool():
    def sleepy(payload):
        if payload == "slow":
            time.sleep(5)
        return payload

    pool = thread_pool(worker_timeout=0.1)
    pool.map_shards(sleepy, ["slow", "fast"], serial_fn=lambda p: p)
    assert pool.last_pool_state == "cold"
    assert pool_stats()["active"] == 0  # discarded, not kept warm
    # The next dispatch pays a fresh cold start instead of inheriting
    # the hung worker.
    pool.map_shards(lambda p: p, [1, 2])
    assert pool.last_pool_state == "warm" or \
        pool.last_pool_state == "cold"
    results, faults = pool.map_shards(lambda p: p * 2, [1, 2],
                                      serial_fn=lambda p: p * 2)
    assert results == [2, 4]


def test_fault_injection_bypasses_the_registry(monkeypatch):
    pool = thread_pool()
    pool.map_shards(lambda p: p, [1, 2])  # park a warm pool
    monkeypatch.setenv(FAULT_ENV, "generic")
    # The env hook only reaches workers created after the mutation, so
    # the dispatcher must not serve this dispatch from the warm pool.
    pool.map_shards(lambda p: p, [3, 4], serial_fn=lambda p: p)
    assert pool.last_pool_state == "cold"
    monkeypatch.delenv(FAULT_ENV)
    pool.map_shards(lambda p: p, [5, 6])
    assert pool.last_pool_state == "warm"


def test_shutdown_empties_the_registry():
    pool = thread_pool()
    pool.map_shards(lambda p: p, [1, 2])
    assert pool_stats()["active"] >= 1
    shutdown()
    assert pool_stats()["active"] == 0
    pool.map_shards(lambda p: p, [1, 2])
    assert pool.last_pool_state == "cold"


def test_single_payload_stays_inline():
    pool = thread_pool()
    pool.map_shards(lambda p: p, [1])
    assert pool.last_pool_state == "inline"
    assert pool_stats()["active"] == 0


def test_reuse_counters_are_monotonic():
    before = pool_stats()
    pool = thread_pool()
    pool.map_shards(lambda p: p, [1, 2])
    pool.map_shards(lambda p: p, [3, 4])
    after = pool_stats()
    assert after["cold"] == before["cold"] + 1
    assert after["warm"] == before["warm"] + 1


def test_discarded_executor_is_shut_down():
    pool = thread_pool()
    pool.map_shards(lambda p: p, [1, 2])
    key = pool._pool_key()
    executor = pool_mod._POOLS[key].executor
    pool_mod._discard(executor, "broken")
    assert key not in pool_mod._POOLS
    with pytest.raises(RuntimeError):  # shutdown executors reject work
        executor.submit(lambda: None)

"""Streaming sessions under injected faults.

``parallel_sessions`` runs one full :class:`StreamingMatcher` session
per worker (``run_session``); chaos at ``worker.session`` exercises
every recovery path — exception, timeout, worker exit — and each must
come back **bit-identical** to feeding the same chunks through a
serial matcher, with every shared-memory segment released and the
faults attached to the reports they degraded.
"""

from __future__ import annotations

import pytest

from repro.core.engine import BitGenEngine
from repro.core.streaming import StreamingMatcher
from repro.parallel import shm
from repro.parallel.config import ScanConfig
from repro.parallel.pool import shutdown
from repro.parallel.scan import parallel_sessions
from repro.resilience import chaos
from repro.resilience.chaos import ChaosPlan, ChaosRule

from .test_shm import TINY, assert_no_leaks

PATTERNS = ["virus[0-9]", "a(bc)*d", "cat|dog"]

#: three logical streams, chunked so matches straddle chunk borders
SESSIONS = [
    [b"xx virus1 y", b"y virus2 abcb", b"cd trailer virus3"],
    [b"hot dog abc", b"bcd cat virus7 ", b"abcd" * 8],
    [b"no matches here at all", b"still none", b"virus9 at last"],
]


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    monkeypatch.delenv(chaos.LEGACY_FAULT_ENV, raising=False)
    chaos.reset()
    shm.dispose_all()
    yield
    chaos.reset()
    leaked = shm.active_segments()
    shm.dispose_all()
    assert leaked == []


def compile_engine():
    return BitGenEngine.compile(
        PATTERNS, config=ScanConfig(geometry=TINY, loop_fallback=True))


def serial_reports(engine):
    reports = []
    for chunks in SESSIONS:
        matcher = StreamingMatcher(engine,
                                   config=engine.config.serial())
        reports.append(matcher.feed_all(chunks))
    return reports


def session_config(**extra):
    defaults = dict(geometry=TINY, loop_fallback=True, workers=2,
                    executor="thread", min_parallel_bytes=0)
    defaults.update(extra)
    return ScanConfig(**defaults)


def assert_identical(parallel, serial):
    assert len(parallel) == len(serial)
    for got, want in zip(parallel, serial):
        assert got == want                       # matches, bit for bit
        assert got.stream_offset == want.stream_offset


def test_sessions_recover_from_worker_exception():
    engine = compile_engine()
    want = serial_reports(engine)
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.session", kind="exception",
                  max_count=2),)))
    reports = parallel_sessions(engine, SESSIONS, session_config())
    assert_identical(reports, want)
    assert engine.last_scan_faults
    assert {f.kind for f in engine.last_scan_faults} == {"error"}
    # Each fault rides on the report of the session it degraded.
    for fault in engine.last_scan_faults:
        assert fault in reports[fault.shard].faults
    assert_no_leaks()


def test_sessions_recover_from_worker_timeout(monkeypatch):
    engine = compile_engine()
    want = serial_reports(engine)
    monkeypatch.setenv(chaos.SLEEP_ENV, "0.75")
    monkeypatch.setenv(chaos.CHAOS_ENV, "worker.session:timeout:1.0:1")
    reports = parallel_sessions(
        engine, SESSIONS,
        session_config(executor="process", worker_timeout=0.25))
    assert_identical(reports, want)
    assert engine.last_scan_faults
    assert "timeout" in {f.kind for f in engine.last_scan_faults}
    assert_no_leaks()


def test_sessions_recover_from_worker_exit(monkeypatch):
    engine = compile_engine()
    want = serial_reports(engine)
    monkeypatch.setenv(chaos.CHAOS_ENV, "worker.session:exit:1.0:1")
    reports = parallel_sessions(engine, SESSIONS,
                                session_config(executor="process"))
    assert_identical(reports, want)
    assert engine.last_scan_faults
    # A worker exit breaks the whole pool: every unfinished session
    # recovers inline as a pool fault.
    assert {f.kind for f in engine.last_scan_faults} <= {"pool", "error"}
    assert_no_leaks()


def test_sessions_retry_policy_recovers_transient_fault():
    engine = compile_engine()
    want = serial_reports(engine)
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.session", kind="exception",
                  max_count=1),)))
    reports = parallel_sessions(
        engine, SESSIONS,
        session_config(on_fault="retry", max_retries=1,
                       retry_backoff=0.01))
    assert_identical(reports, want)
    fault, = engine.last_scan_faults
    assert fault.fallback == "retry"
    assert fault.retries == 1
    assert fault in reports[fault.shard].faults
    assert_no_leaks()


def test_sessions_under_thread_exit_are_not_tested():
    """Documented non-goal: ``exit`` chaos in a *thread* executor
    would ``os._exit`` the test process itself — the soak matrix
    skips that cell on purpose, and so does this module."""
    rule = ChaosRule(site="worker.session", kind="exit")
    assert rule.matches("worker.session")   # the rule is expressible…
    # …but only ever armed against process executors.


def teardown_module(module):
    shutdown()

"""Preprocessing transpose kernel: functional + accounting tests."""

import pytest

from repro.bitstream.transpose import transpose
from repro.gpu.config import H100_NVL, RTX_3090
from repro.gpu.transpose_kernel import (S2P_STAGES, TransposeResult,
                                        model_transpose_time,
                                        run_transpose_kernel)


def test_functional_equals_direct_transpose():
    data = b"The quick brown fox"
    result = run_transpose_kernel(data)
    assert result.basis == transpose(data)


def test_metrics_scale_with_input():
    small = run_transpose_kernel(b"x" * 1024).metrics
    large = run_transpose_kernel(b"x" * 4096).metrics
    assert large.dram_read_bytes == 4 * small.dram_read_bytes
    assert large.thread_word_ops == 4 * small.thread_word_ops


def test_reads_equal_writes():
    metrics = run_transpose_kernel(b"abc" * 100).metrics
    # 8 planes of n/8 bytes each: total output bytes == input bytes
    assert metrics.dram_read_bytes == metrics.dram_write_bytes == 300


def test_empty_input():
    result = run_transpose_kernel(b"")
    assert result.metrics.dram_read_bytes == 0
    assert all(b.length == 0 for b in result.basis)


def test_model_time_positive_and_monotone():
    small = run_transpose_kernel(b"x" * 1024).metrics
    large = run_transpose_kernel(b"x" * 65536).metrics
    t_small = model_transpose_time(small, RTX_3090)
    t_large = model_transpose_time(large, RTX_3090)
    assert 0 < t_small < t_large


def test_model_paper_calibration():
    metrics = run_transpose_kernel(b"x" * (1 << 20)).metrics
    seconds = model_transpose_time(metrics, RTX_3090)
    # Section 7: ~0.026 ms per MB on the RTX 3090
    assert seconds * 1e3 == pytest.approx(0.026, rel=0.15)


def test_faster_on_higher_bandwidth_gpu():
    metrics = run_transpose_kernel(b"x" * (1 << 20)).metrics
    assert model_transpose_time(metrics, H100_NVL) < \
        model_transpose_time(metrics, RTX_3090)

"""GPU substrate: geometry, memory accounting, metrics."""

import pytest

from repro.gpu.config import (ALL_GPUS, H100_NVL, L40S, RTX_3090,
                              XEON_8562Y, gpu_by_name)
from repro.gpu.machine import CTAGeometry, DEFAULT_GEOMETRY
from repro.gpu.memory import GlobalMemory, SharedMemory, \
    SharedMemoryOverflow
from repro.gpu.metrics import KernelMetrics


# -- geometry -----------------------------------------------------------------

def test_default_geometry_matches_paper():
    # T = 512 threads, W = 32 bits -> 16,384-bit blocks and the
    # 16,384-bit maximum overlap of Section 8.2.
    assert DEFAULT_GEOMETRY.threads == 512
    assert DEFAULT_GEOMETRY.word_bits == 32
    assert DEFAULT_GEOMETRY.block_bits == 16384
    assert DEFAULT_GEOMETRY.max_overlap_bits == 16384


def test_block_count_formula():
    geometry = CTAGeometry(threads=4, word_bits=2)  # 8-bit blocks
    assert geometry.block_count(0) == 1
    assert geometry.block_count(1) == 1
    assert geometry.block_count(8) == 1
    assert geometry.block_count(9) == 2
    assert geometry.block_count(16) == 2


def test_block_ranges_cover_stream():
    geometry = CTAGeometry(threads=4, word_bits=2)
    blocks = list(geometry.iter_blocks(19))
    assert blocks[0] == (0, 0, 8)
    assert blocks[-1] == (2, 16, 19)
    covered = sum(end - start for _, start, end in blocks)
    assert covered == 19


def test_word_alignment():
    geometry = CTAGeometry(threads=8, word_bits=4)
    assert geometry.align_down(7) == 4
    assert geometry.align_up(7) == 8
    assert geometry.align_up(8) == 8
    assert geometry.words(9) == 3


def test_invalid_geometry():
    with pytest.raises(ValueError):
        CTAGeometry(threads=0, word_bits=32)


# -- memory -------------------------------------------------------------------------

def test_global_memory_traffic():
    metrics = KernelMetrics()
    memory = GlobalMemory(metrics)
    memory.read(100)
    memory.write(50)
    assert metrics.dram_read_bytes == 100
    assert metrics.dram_write_bytes == 50
    assert metrics.dram_total_bytes() == 150


def test_global_memory_footprint_peak():
    metrics = KernelMetrics()
    memory = GlobalMemory(metrics)
    memory.allocate_stream("a", 1000)
    memory.allocate_stream("b", 2000)
    memory.free_stream("a")
    memory.allocate_stream("c", 500)
    assert metrics.peak_intermediate_bytes == 3000
    assert metrics.intermediate_streams == 3
    assert memory.live_bytes == 2500


def test_shared_memory_capacity_enforced():
    metrics = KernelMetrics()
    smem = SharedMemory(metrics, capacity_bytes=1024)
    smem.reserve(512)
    smem.reserve(512)
    with pytest.raises(SharedMemoryOverflow):
        smem.reserve(1)
    smem.release_all()
    smem.reserve(1024)
    assert smem.peak_bytes == 1024


# -- metrics -----------------------------------------------------------------------

def test_metrics_merge_sums_and_maxes():
    a = KernelMetrics(thread_word_ops=10, barriers=2,
                      dynamic_overlap_max=5)
    b = KernelMetrics(thread_word_ops=20, barriers=3,
                      dynamic_overlap_max=9)
    a.merge(b)
    assert a.thread_word_ops == 30
    assert a.barriers == 5
    assert a.dynamic_overlap_max == 9


def test_metrics_recompute_fraction():
    metrics = KernelMetrics(recomputed_bits=10, output_bits=90)
    assert metrics.recompute_fraction() == pytest.approx(0.1)
    assert KernelMetrics().recompute_fraction() == 0.0


def test_metrics_summary_readable():
    text = KernelMetrics(thread_word_ops=7).summary()
    assert "ops=7" in text


# -- configs -----------------------------------------------------------------------

def test_gpu_lookup():
    assert gpu_by_name("RTX 3090") is RTX_3090
    with pytest.raises(KeyError):
        gpu_by_name("GTX 480")


def test_paper_tiops_ratio():
    # Section 8.3: 17.8 : 33.5 : 45.8 = 1 : 1.9 : 2.6
    ratio_h100 = H100_NVL.int_tiops / RTX_3090.int_tiops
    ratio_l40s = L40S.int_tiops / RTX_3090.int_tiops
    assert ratio_h100 == pytest.approx(1.9, abs=0.05)
    assert ratio_l40s == pytest.approx(2.6, abs=0.05)


def test_cpu_config():
    assert XEON_8562Y.cores == 32
    assert XEON_8562Y.single_core_ops_per_second() > 0

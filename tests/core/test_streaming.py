"""Streaming matcher: chunked results must equal one-shot results."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitGenEngine
from repro.core.streaming import StreamingMatcher
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import ScanConfig

from ..conftest import random_text

TINY = CTAGeometry(threads=16, word_bits=8)


def chunked(data: bytes, sizes):
    out = []
    cursor = 0
    for size in sizes:
        out.append(data[cursor:cursor + size])
        cursor += size
    out.append(data[cursor:])
    return [c for c in out if True]  # keep empty chunks too


def one_shot(engine, data):
    return engine.match(data).ends


def test_single_feed_equals_one_shot():
    engine = BitGenEngine.compile(["cat", "ab+c"],
                                  config=ScanConfig(geometry=TINY))
    matcher = StreamingMatcher(engine)
    data = b"a cat abbbc cat"
    assert matcher.feed(data) == one_shot(engine, data)


def test_boundary_straddling_match_found():
    engine = BitGenEngine.compile(["needle"],
                                  config=ScanConfig(geometry=TINY))
    matcher = StreamingMatcher(engine)
    first = matcher.feed(b"hay nee")
    second = matcher.feed(b"dle hay")
    assert first[0] == []
    assert second[0] == [9]


def test_no_duplicate_reports_across_chunks():
    engine = BitGenEngine.compile(["aa"],
                                  config=ScanConfig(geometry=TINY))
    matcher = StreamingMatcher(engine)
    totals = matcher.feed_all([b"aaa", b"aaa"])
    reference = one_shot(engine, b"aaaaaa")
    assert totals[0] == reference[0]


def test_stream_position_tracks_bytes():
    engine = BitGenEngine.compile(["x"],
                                  config=ScanConfig(geometry=TINY))
    matcher = StreamingMatcher(engine)
    matcher.feed(b"abc")
    matcher.feed(b"defgh")
    assert matcher.stream_position == 8


@pytest.mark.slow
def test_guaranteed_span_from_bounded_patterns():
    engine = BitGenEngine.compile(["a{300}b{300}"],
                                  config=ScanConfig(geometry=TINY))
    matcher = StreamingMatcher(engine,
                               config=ScanConfig(geometry=TINY,
                                                 max_tail_bytes=8192))
    assert matcher.guaranteed_span >= 600
    assert not matcher.has_unbounded


def test_unbounded_patterns_use_cap():
    engine = BitGenEngine.compile(["a(bc)*d"],
                                  config=ScanConfig(geometry=TINY))
    matcher = StreamingMatcher(engine,
                               config=ScanConfig(geometry=TINY,
                                                 max_tail_bytes=512))
    assert matcher.has_unbounded
    assert matcher.guaranteed_span == 512


def test_reset():
    engine = BitGenEngine.compile(["ab"],
                                  config=ScanConfig(geometry=TINY))
    matcher = StreamingMatcher(engine)
    matcher.feed(b"ab")
    matcher.reset()
    assert matcher.feed(b"ab")[0] == [1]
    assert matcher.chunks_fed == 1


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**32),
       st.lists(st.integers(min_value=0, max_value=23), min_size=1,
                max_size=6))
def test_chunked_equals_one_shot_property(seed, sizes):
    rng = random.Random(seed)
    patterns = ["cat", "ab+c", "x(yz)*w", "[0-9]{2}"]
    data = random_text(rng, rng.randrange(0, 100), "abcxyzw019 t")
    engine = BitGenEngine.compile(
        patterns, config=ScanConfig(geometry=TINY, loop_fallback=True))
    matcher = StreamingMatcher(engine)
    streamed = matcher.feed_all(chunked(data, sizes))
    reference = one_shot(engine, data)
    for index in range(len(patterns)):
        assert streamed[index] == reference[index], \
            f"pattern {index} with chunking {sizes} on {data!r}"


def test_long_stream_many_small_chunks():
    engine = BitGenEngine.compile(["virus[0-9]"],
                                  config=ScanConfig(geometry=TINY))
    matcher = StreamingMatcher(engine)
    payload = (b"x" * 97 + b"virus7") * 20
    streamed = []
    for offset in range(0, len(payload), 13):
        streamed.extend(matcher.feed(payload[offset:offset + 13])[0])
    assert streamed == one_shot(engine, payload)[0]

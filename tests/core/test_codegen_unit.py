"""Codegen details: emitted source structure across constructs."""

import re

from repro.core.barriers import plan_barriers
from repro.core.codegen import render_kernel, render_module
from repro.core.rebalance import rebalance_program
from repro.core.zeroskip import insert_guards
from repro.ir.instructions import Instr, Op, SkipGuard
from repro.ir.lower import lower_regex
from repro.ir.program import Program, ProgramBuilder
from repro.regex.parser import parse


def test_all_opcodes_render():
    builder = ProgramBuilder("ops")
    a = builder.match_cc(parse("a").cc)
    b = builder.not_(a)
    c = builder.or_(a, b)
    d = builder.xor(c, a)
    e = builder.andn(d, b)
    f = builder.advance(e, 2)
    g = builder.advance(f, -1)
    builder.mark_output("R", g)
    source = render_kernel(builder.finish())
    assert "~" in source
    assert "|" in source and "^" in source and "& ~" in source
    assert "funnelshift_r" in source
    assert "funnelshift_l" in source


def test_const_expressions():
    builder = ProgramBuilder("consts")
    builder.mark_output("Z", builder.zeros())
    builder.mark_output("O", builder.ones())
    builder.mark_output("T", builder.text_mask())
    source = render_kernel(builder.finish())
    assert "0u" in source
    assert "~0u" in source
    assert "text_mask" in source


def test_while_renders_as_block_any_loop():
    source = render_kernel(lower_regex(parse("a(b)*c")))
    assert source.count("while (block_any(") == 1
    assert source.count("{") == source.count("}")


def test_shared_goto_targets_merge_labels():
    # Two guards ending at the same statement share one label.
    program = Program("guards", [
        Instr("a", Op.CONST, const="ones"),
        SkipGuard("a", 2),
        Instr("b", Op.NOT, ("a",)),
        SkipGuard("b", 1),
        Instr("c", Op.NOT, ("b",)),
        Instr("d", Op.NOT, ("c",)),
    ], {"R": "d"})
    program.validate()
    source = render_kernel(program)
    gotos = re.findall(r"goto (L\d+);", source)
    labels = re.findall(r"(L\d+):;", source)
    assert len(gotos) == 2
    assert set(gotos) <= set(labels)


def test_merged_sync_annotation():
    program = rebalance_program(lower_regex(parse("abcde")))
    plan = plan_barriers(program, merge_size=16)
    source = render_kernel(program, plan=plan)
    assert "merged" in source


def test_outputs_written():
    program = lower_regex(parse("ab"), name="R7")
    source = render_kernel(program)
    assert "out_R7[" in source


def test_module_roundtrip_counts():
    programs = [lower_regex(parse(p), name=f"R{i}")
                for i, p in enumerate(["ab", "cd", "e(f)*g"])]
    source = render_module(programs)
    assert source.count("__device__ void group_") == 3
    assert source.count("case ") == 3
    assert "__global__" in source

"""The cornerstone validation: every execution scheme must produce the
reference interpreter's exact match output, on every input — the
optimizations are never allowed to change results (Section 7: results
are validated against icgrep's reference output)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SCHEME_LADDER, BitGenEngine, Scheme
from repro.gpu.machine import CTAGeometry
from repro.ir.interpreter import run_regexes
from repro.parallel.config import ScanConfig

from ..conftest import random_text

TINY = CTAGeometry(threads=8, word_bits=4)      # 32-bit blocks
SMALL = CTAGeometry(threads=16, word_bits=8)    # 128-bit blocks

PATTERNS = [
    "a(bc)*d", "(abc)|d", "cat", "[a-c]+x", "ab{2,4}c", "x(yz)*w",
    "a|b|cd", "(a|b)(c|d)e", "ca?t", "[^ab]c",
]


def reference(patterns, data):
    return run_regexes(patterns, data)


def run_scheme(patterns, data, scheme, geometry, **options):
    engine = BitGenEngine.compile(
        patterns, config=ScanConfig(scheme=scheme, geometry=geometry,
                                    **options))
    return engine.match(data)


@pytest.mark.parametrize("scheme", SCHEME_LADDER, ids=lambda s: s.value)
def test_scheme_matches_reference_directed(scheme):
    data = (b"abcbcd abcd cat abbbc aax abcx xyzyzw cattle " * 8)
    ref = reference(PATTERNS, data)
    result = run_scheme(PATTERNS, data, scheme, TINY, cta_count=3)
    for index in range(len(PATTERNS)):
        assert result.ends[index] == ref[f"R{index}"], \
            f"{scheme.value} diverged on {PATTERNS[index]!r}"


@pytest.mark.parametrize("scheme", SCHEME_LADDER, ids=lambda s: s.value)
def test_scheme_on_empty_and_tiny_inputs(scheme):
    for data in (b"", b"a", b"ab", b"abc"):
        ref = reference(PATTERNS, data)
        result = run_scheme(PATTERNS, data, scheme, TINY)
        for index in range(len(PATTERNS)):
            assert result.ends[index] == ref[f"R{index}"]


@pytest.mark.parametrize("scheme", SCHEME_LADDER, ids=lambda s: s.value)
def test_block_boundary_straddling(scheme):
    # Place matches exactly across the 32-bit block boundary.
    data = b"x" * 29 + b"abcd" + b"x" * 29 + b"cat" + b"x" * 10
    patterns = ["abcd", "cat", "a(bc)*d"]
    ref = reference(patterns, data)
    result = run_scheme(patterns, data, scheme, TINY)
    for index in range(len(patterns)):
        assert result.ends[index] == ref[f"R{index}"]


@pytest.mark.parametrize("scheme", [Scheme.DTM, Scheme.SR, Scheme.ZBS],
                         ids=lambda s: s.value)
def test_star_chain_crossing_blocks(scheme):
    # A Kleene chain spanning a block boundary exercises dynamic overlap.
    data = b"x" * 20 + b"a" + b"bc" * 4 + b"d" + b"x" * 20
    ref = reference(["a(bc)*d"], data)
    result = run_scheme(["a(bc)*d"], data, scheme, TINY)
    assert result.ends[0] == ref["R0"]
    assert result.metrics.dynamic_overlap_max > 0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32),
       st.sampled_from(SCHEME_LADDER))
def test_random_equivalence_property(seed, scheme):
    rng = random.Random(seed)
    patterns = rng.sample(PATTERNS, 4)
    data = random_text(rng, rng.randrange(0, 200), "abcdxyz ")
    ref = reference(patterns, data)
    result = run_scheme(patterns, data, scheme, TINY, cta_count=2)
    for index in range(len(patterns)):
        assert result.ends[index] == ref[f"R{index}"], \
            f"{scheme.value} diverged: {patterns[index]!r} on {data!r}"


@pytest.mark.parametrize("merge_size", [1, 2, 4, 16])
def test_merge_size_never_changes_results(merge_size):
    data = b"abcbcd cat abcx " * 12
    ref = reference(PATTERNS, data)
    result = run_scheme(PATTERNS, data, Scheme.SR, TINY,
                        merge_size=merge_size)
    for index in range(len(PATTERNS)):
        assert result.ends[index] == ref[f"R{index}"]


@pytest.mark.parametrize("interval", [1, 2, 4, 8])
def test_interval_size_never_changes_results(interval):
    data = b"qqqq abcbcd qq cat qqq abcx " * 12
    ref = reference(PATTERNS, data)
    result = run_scheme(PATTERNS, data, Scheme.ZBS, TINY,
                        interval_size=interval)
    for index in range(len(PATTERNS)):
        assert result.ends[index] == ref[f"R{index}"]


def test_geometries_agree():
    data = b"abcbcdxcat" * 40
    patterns = ["a(bc)*d", "cat"]
    ref = reference(patterns, data)
    for geometry in (TINY, SMALL, CTAGeometry(threads=32, word_bits=32)):
        result = run_scheme(patterns, data, Scheme.ZBS, geometry)
        for index in range(len(patterns)):
            assert result.ends[index] == ref[f"R{index}"]


def test_zbs_actually_skips_on_sparse_input():
    data = b"q" * 2000 + b"abcd" + b"q" * 2000
    result = run_scheme(["a(bc)*d", "cat"], data, Scheme.ZBS, TINY)
    assert result.metrics.guard_hits > 0
    assert result.metrics.skipped_word_ops > 0


def test_interleaved_has_no_intermediate_streams():
    data = b"abcbcd" * 100
    result = run_scheme(PATTERNS, data, Scheme.DTM, TINY)
    assert result.metrics.intermediate_streams == 0
    base = run_scheme(PATTERNS, data, Scheme.BASE, TINY)
    assert base.metrics.intermediate_streams > 0
    assert base.metrics.dram_total_bytes() > \
        result.metrics.dram_total_bytes()


def test_sr_reduces_barriers():
    data = b"abcbcd cat abcx " * 30
    patterns = ["abcdefgh", "catalogue", "xylophone"]  # long literals
    dtm = run_scheme(patterns, data, Scheme.DTM, TINY)
    sr = run_scheme(patterns, data, Scheme.SR, TINY, merge_size=16)
    assert sr.metrics.barriers < dtm.metrics.barriers

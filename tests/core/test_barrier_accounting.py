"""Barrier accounting: runtime barrier counts must match the plan."""

import pytest

from repro.core.barriers import plan_barriers
from repro.core.interleaved import InterleavedExecutor
from repro.core.rebalance import rebalance_program
from repro.gpu.machine import CTAGeometry
from repro.ir.instructions import Instr, Op
from repro.ir.lower import lower_regex
from repro.ir.program import Program, ProgramBuilder
from repro.regex.parser import parse

TINY = CTAGeometry(threads=8, word_bits=4)  # 32-bit blocks


def straight_line_program(shift_count: int) -> Program:
    """ANDs of independently shifted basis streams: fully mergeable."""
    builder = ProgramBuilder("shifts")
    acc = builder.match_cc(parse("a").cc)
    # Hoist every operand first so all shifts are ready at one point
    # (rebalancing produces exactly this shape on real programs).
    bases = [builder.match_cc(parse(chr(ord("b") + index)).cc)
             for index in range(shift_count)]
    shifted = [builder.advance(base, index + 1)
               for index, base in enumerate(bases)]
    for value in shifted:
        acc = builder.or_(acc, value)
    builder.mark_output("R", acc)
    return builder.finish()


def run_with_plan(program, plan, data=b"abcdefgh" * 8):
    executor = InterleavedExecutor(geometry=TINY, barrier_plan=plan)
    return executor.run(program, data)


def test_unmerged_barriers_two_per_shift_per_block():
    program = straight_line_program(3)
    plan = plan_barriers(program, merge_size=1)
    result = run_with_plan(program, plan)
    blocks = result.metrics.blocks_processed
    assert result.metrics.barriers == 2 * plan.group_count * blocks
    assert plan.group_count == 3


def test_merged_barriers_shared():
    program = straight_line_program(4)
    plan = plan_barriers(program, merge_size=4)
    assert plan.group_count == 1
    result = run_with_plan(program, plan)
    blocks = result.metrics.blocks_processed
    assert result.metrics.barriers == 2 * blocks


def test_merge_reduces_runtime_barriers_end_to_end():
    program = rebalance_program(lower_regex(parse("abcdefgh")))
    merged_plan = plan_barriers(program, merge_size=16)
    single_plan = plan_barriers(program, merge_size=1)
    data = b"abcdefgh" * 10
    merged = run_with_plan(program, merged_plan, data)
    single = run_with_plan(program, single_plan, data)
    assert merged.metrics.barriers < single.metrics.barriers
    assert merged.outputs["R0"] == single.outputs["R0"]


def test_no_plan_treats_every_shift_as_leader():
    program = straight_line_program(2)
    executor = InterleavedExecutor(geometry=TINY, barrier_plan=None)
    result = executor.run(program, b"abcd" * 8)
    blocks = result.metrics.blocks_processed
    assert result.metrics.barriers == 2 * 2 * blocks


def test_store_dedup_counts_shared_operand_once():
    # /abb/ after rebalancing shifts the same 'b' stream twice.
    program = rebalance_program(lower_regex(parse("abb")))
    plan = plan_barriers(program, merge_size=8)
    for instr in program.statements:
        if isinstance(instr, Instr) and instr.op is Op.SHIFT:
            info = plan.lookup(instr)
            assert info is not None
    assert plan.max_group_stores <= 2


def test_smem_traffic_scales_with_merging():
    program = straight_line_program(4)
    merged = plan_barriers(program, merge_size=4)
    single = plan_barriers(program, merge_size=1)
    data = b"abcdefgh" * 8
    merged_run = run_with_plan(program, merged, data)
    single_run = run_with_plan(program, single, data)
    # Same loads either way; merged stores no more than unmerged.
    assert merged_run.metrics.smem_read_bytes == \
        single_run.metrics.smem_read_bytes
    assert merged_run.metrics.smem_write_bytes <= \
        single_run.metrics.smem_write_bytes

"""Shift Rebalancing (Section 5.2): semantic preservation and chain
shortening."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rebalance import rebalance_program
from repro.ir.dfg import RegionDFG, split_regions
from repro.ir.instructions import Instr, Op, iter_instrs
from repro.ir.interpreter import Interpreter
from repro.ir.lower import lower_group, lower_regex
from repro.ir.program import Program, ProgramBuilder
from repro.regex.parser import parse

from ..conftest import random_text


def critical_path(program: Program) -> int:
    return max((RegionDFG.build(r).critical_path_length()
                for r in split_regions(program.statements)), default=0)


def run_both(program: Program, data: bytes):
    before = Interpreter().run(program, data)
    after_prog = rebalance_program(program)
    after = Interpreter().run(after_prog, data)
    return before, after, after_prog


def test_operand_rewrite_identity_example():
    # (A >> 1) & B  ==  (A & (B << 1)) >> 1 on a hand-built program
    builder = ProgramBuilder("chain")
    a = builder.match_cc(parse("a").cc)
    b = builder.match_cc(parse("b").cc)
    deep = a
    for _ in range(4):
        deep = builder.not_(builder.not_(deep))  # artificial depth
    shifted = builder.advance(deep, 1)
    result = builder.and_(shifted, b)
    builder.mark_output("R", result)
    program = builder.finish()

    data = b"abababbb"
    before, after, after_prog = run_both(program, data)
    assert before["R"] == after["R"]
    assert critical_path(after_prog) <= critical_path(program)


def test_rebalances_literal_chain():
    # /abb/ is the paper's Figure 8 example: shift chain on 'b's
    program = lower_regex(parse("abbb"))
    rebalanced = rebalance_program(program)
    assert critical_path(rebalanced) < critical_path(program)


def test_preserves_abb_semantics():
    program = lower_regex(parse("abb"))
    before, after, _ = run_both(program, b"xabbabb abb")
    assert before["R0"] == after["R0"]


def test_left_shifts_introduced():
    program = lower_regex(parse("abbbb"))
    rebalanced = rebalance_program(program)
    shifts = [i for i in iter_instrs(rebalanced.statements)
              if i.op is Op.SHIFT]
    assert any(i.shift < 0 for i in shifts), \
        "rebalancing should move shifts onto ready operands as << shifts"


def test_loop_body_rebalanced_safely():
    program = lower_regex(parse("a(bcd)*e"))
    data = b"abcdbcde xae abcde"
    before, after, _ = run_both(program, data)
    assert before["R0"] == after["R0"]


def test_outputs_and_loop_vars_protected():
    program = lower_regex(parse("a(bc)*d"))
    rebalanced = rebalance_program(program)
    rebalanced.validate()
    assert set(rebalanced.outputs) == set(program.outputs)


def test_fixpoint_is_stable():
    program = lower_regex(parse("abbbbbb"))
    once = rebalance_program(program)
    twice = rebalance_program(once)
    assert [s.render() for s in iter_instrs(once.statements)] == \
        [s.render() for s in iter_instrs(twice.statements)]


PATTERNS = ["abb", "abbb", "aabba", "(ab)*ba", "a(bc)*d", "abc|cba",
            "a{3}b{2}", "x(yz)+w", "[ab]c[ab]c", "a.b.c"]


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(PATTERNS), st.integers(min_value=0, max_value=2**32))
def test_rebalance_equivalence_property(pattern, seed):
    rng = random.Random(seed)
    data = random_text(rng, rng.randrange(0, 60), "abcdxyz")
    program = lower_regex(parse(pattern))
    before, after, _ = run_both(program, data)
    assert before["R0"] == after["R0"], f"{pattern!r} on {data!r}"


def test_multi_regex_group_equivalence():
    program = lower_group([parse(p) for p in PATTERNS[:5]])
    data = b"abcbcd abba abb xyzw" * 3
    before, after, _ = run_both(program, data)
    for name in program.outputs:
        assert before[name] == after[name]


def test_shift_coalescing():
    builder = ProgramBuilder("coalesce")
    a = builder.match_cc(parse("a").cc)
    # builder.advance has CSE; build raw chain via distinct distances
    s1 = builder.advance(a, 1)
    s2 = builder.advance(s1, 2)
    builder.mark_output("R", s2)
    program = builder.finish()
    rebalanced = rebalance_program(program)
    shifts = [i for i in iter_instrs(rebalanced.statements)
              if i.op is Op.SHIFT]
    assert len(shifts) == 1
    assert shifts[0].shift == 3
    before, after, _ = run_both(program, b"aXXaXX")
    assert before["R"] == after["R"]

"""Unit tests for executor internals: pass splitting, segment
splitting, window-relative constants, and metric accounting details."""

import pytest

from repro.bitstream.bitvector import BitVector
from repro.core.interleaved import (InterleavedExecutor, const_window,
                                    split_segments)
from repro.core.schemes import Scheme
from repro.core.sequential import FUSABLE_OPS, SequentialExecutor, \
    split_passes
from repro.gpu.machine import CTAGeometry
from repro.ir.instructions import Instr, Op, SkipGuard, WhileLoop
from repro.ir.lower import lower_regex
from repro.ir.program import Program, ProgramBuilder
from repro.regex.parser import parse

TINY = CTAGeometry(threads=8, word_bits=4)


def instr(dest, op, *args, **kw):
    return Instr(dest, op, tuple(args), **kw)


# -- pass splitting (Base scheme) ----------------------------------------------

def test_split_passes_fuses_bitwise_runs():
    stmts = [
        instr("a", Op.CONST, const="ones"),
        instr("b", Op.NOT, "a"),
        instr("c", Op.SHIFT, "b", shift=1),
        instr("d", Op.AND, "c", "a"),
    ]
    units = split_passes(stmts)
    assert len(units) == 3                      # [const,not] [shift] [and]
    assert [len(u.instrs) for u in units] == [2, 1, 1]
    assert units[1].is_shift


def test_split_passes_isolates_loops():
    program = lower_regex(parse("a(b)*c"))
    units = split_passes(program.statements)
    assert any(isinstance(u, WhileLoop) for u in units)


def test_split_passes_drops_guards():
    stmts = [instr("a", Op.CONST, const="ones"),
             SkipGuard("a", 1),
             instr("b", Op.NOT, "a")]
    units = split_passes(stmts)
    assert all(not isinstance(u, SkipGuard) for u in units)
    assert sum(len(u.instrs) for u in units) == 2


def test_split_segments_keeps_shifts_inline():
    stmts = [
        instr("a", Op.CONST, const="ones"),
        instr("b", Op.SHIFT, "a", shift=1),
        instr("c", Op.AND, "a", "b"),
    ]
    units = split_segments(stmts)
    assert len(units) == 1                      # DTM- fuses across shifts
    assert len(units[0]) == 3


# -- constant windows ------------------------------------------------------------

def test_const_window_zero_ones():
    assert const_window("zero", 4, 12, 100) == BitVector.zeros(8)
    assert const_window("ones", 4, 12, 100) == BitVector.ones(8)


def test_const_window_start():
    assert const_window("start", 0, 8, 100).positions() == [0]
    assert const_window("start", 8, 16, 100).positions() == []


def test_const_window_end():
    # stream length 16: the final cursor position is 15
    assert const_window("end", 8, 16, 16).positions() == [7]
    assert const_window("end", 0, 8, 16).positions() == []


def test_const_window_text_mask():
    # text positions are [0, length-1); window clipping applies
    window = const_window("text", 12, 16, 16)
    assert window.positions() == [0, 1, 2]      # global 12,13,14; not 15


# -- sequential executor accounting -------------------------------------------------

def test_sequential_counts_loops_and_intermediates():
    program = lower_regex(parse("ab"))
    result = SequentialExecutor(TINY).run(program, b"abab")
    metrics = result.metrics
    assert metrics.fused_loops >= 2             # bitwise run + shifts
    assert metrics.intermediate_streams > 0
    assert metrics.dram_write_bytes > 0
    assert metrics.barriers >= metrics.fused_loops


def test_sequential_loop_iterations_counted():
    program = lower_regex(parse("a(bc)*d"))
    result = SequentialExecutor(TINY).run(program, b"abcbcbcd")
    assert result.metrics.loop_iterations >= 3


# -- interleaved executor details -----------------------------------------------------

def test_interleaved_counts_recompute():
    program = lower_regex(parse("abcdefgh"))     # 8-bit static lookback
    executor = InterleavedExecutor(geometry=TINY)
    result = executor.run(program, b"x" * 40 + b"abcdefgh" + b"x" * 16)
    assert result.metrics.recomputed_bits > 0
    assert result.metrics.recompute_fraction() > 0
    assert result.metrics.fused_loops == 1


def test_interleaved_single_block_no_recompute():
    program = lower_regex(parse("ab"))
    executor = InterleavedExecutor(geometry=CTAGeometry(threads=64,
                                                        word_bits=32))
    result = executor.run(program, b"abab")
    assert result.metrics.blocks_processed == 1
    assert result.metrics.recomputed_bits == 0


def test_interleaved_dram_reads_only_inputs():
    program = lower_regex(parse("a(bc)*d"))
    executor = InterleavedExecutor(geometry=TINY)
    result = executor.run(program, b"abcbcd" * 10)
    metrics = result.metrics
    # reads: basis planes per block; writes: one output stream
    assert metrics.dram_read_bytes > 0
    assert metrics.intermediate_streams == 0
    assert metrics.peak_intermediate_bytes == 0


def test_segmented_materialises_loop_streams():
    program = lower_regex(parse("a(bc)*d"))
    executor = InterleavedExecutor(geometry=TINY, segmented=True)
    result = executor.run(program, b"abcbcd" * 4)
    assert result.metrics.intermediate_streams > 0
    assert result.metrics.fused_loops > 1


def test_empty_program_executes():
    program = Program("empty", [], {})
    for executor in (SequentialExecutor(TINY),
                     InterleavedExecutor(geometry=TINY)):
        result = executor.run(program, b"abc")
        assert result.outputs == {}


def test_output_of_constant_program():
    builder = ProgramBuilder("const")
    builder.mark_output("R", builder.ones())
    program = builder.finish()
    result = InterleavedExecutor(geometry=TINY).run(program, b"ab")
    assert result.outputs["R"] == BitVector.ones(3)

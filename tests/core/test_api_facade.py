"""The repro.compile / repro.scan facade — the supported public API.

Contract: the facade is a thin veneer over the internal engine, so
everything it returns must be bit-identical to the BitGenEngine paths,
config knobs must flow through as ScanConfig fields, and typos in
knob names must fail loudly.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.engine import BitGenEngine
from repro.core.schemes import Scheme
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import ScanConfig
from repro.parallel.report import ScanReport

TINY = CTAGeometry(threads=4, word_bits=8)
PATTERNS = ["a(bc)*d", "cat|dog", "[0-9][0-9]"]
DATA = b"abcbcd cat 42 dog abcd and 7 cats"


def test_compile_returns_matcher():
    matcher = repro.compile(PATTERNS, geometry=TINY)
    assert isinstance(matcher, repro.Matcher)
    assert matcher.pattern_count == len(PATTERNS)
    assert matcher.config.geometry is TINY
    assert matcher.patterns == PATTERNS


def test_scan_matches_engine_path():
    report = repro.scan(PATTERNS, DATA, geometry=TINY)
    assert isinstance(report, ScanReport)
    reference = BitGenEngine.compile(
        PATTERNS, config=ScanConfig(geometry=TINY)).match(DATA)
    assert report == reference.ends


def test_knobs_layer_on_config():
    base = ScanConfig(geometry=TINY, merge_size=4)
    matcher = repro.compile(PATTERNS, config=base, scheme=Scheme.SR)
    assert matcher.config.scheme is Scheme.SR
    assert matcher.config.merge_size == 4          # base preserved
    assert matcher.config.geometry is TINY


def test_unknown_knob_raises_with_field_list():
    with pytest.raises(TypeError) as exc:
        repro.compile(PATTERNS, shceme=Scheme.SR)
    assert "shceme" in str(exc.value)
    assert "scheme" in str(exc.value)              # valid fields listed


def test_matcher_stream_is_streaming_session():
    matcher = repro.compile(PATTERNS, geometry=TINY)
    session = matcher.stream()
    merged = ScanReport(pattern_count=matcher.pattern_count)
    for start in range(0, len(DATA), 7):
        merged.merge(session.feed(DATA[start:start + 7]))
    assert merged == matcher.scan(DATA).matches


def test_matcher_scan_many():
    matcher = repro.compile(PATTERNS, geometry=TINY)
    streams = [DATA, DATA[:10], b""]
    reports = matcher.scan_many(streams)
    assert len(reports) == 3
    for stream, report in zip(streams, reports):
        assert report == matcher.scan(stream).matches


def test_per_scan_knob_override():
    matcher = repro.compile(PATTERNS, geometry=TINY)
    report = matcher.scan(DATA, workers=2, executor="thread",
                          min_parallel_bytes=0)
    assert report.dispatch == "parallel"
    assert report == matcher.scan(DATA).matches    # bit-identical


def test_fingerprint_stable_and_config_sensitive():
    a = repro.compile(PATTERNS, geometry=TINY)
    b = repro.compile(PATTERNS, geometry=TINY)
    c = repro.compile(PATTERNS, geometry=TINY, merge_size=4)
    d = repro.compile(PATTERNS[:2], geometry=TINY)
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()      # compile key differs
    assert a.fingerprint() != d.fingerprint()      # patterns differ
    # dispatch knobs are not part of the compiled artefact's identity
    e = repro.compile(PATTERNS, geometry=TINY, workers=4,
                      executor="thread")
    assert a.fingerprint() == e.fingerprint()


def test_facade_names_are_lazy_exports():
    assert "compile" in dir(repro)
    assert "scan" in dir(repro)
    assert "Matcher" in dir(repro)

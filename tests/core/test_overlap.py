"""Overlap-distance analysis (Section 4.2) unit tests."""

import pytest

from repro.core.overlap import (RuntimeTracker, analyze_static, propagate,
                                region_bounds)
from repro.ir.instructions import Instr, Op
from repro.ir.lower import lower_regex
from repro.ir.program import ProgramBuilder
from repro.regex.parser import parse


def shift(dest, src, k):
    return Instr(dest, Op.SHIFT, (src,), shift=k)


def band(dest, a, b):
    return Instr(dest, Op.AND, (a, b))


def test_single_right_shift():
    _, lb, la = region_bounds([shift("x", "b0", 1)])
    assert (lb, la) == (1, 0)


def test_single_left_shift():
    _, lb, la = region_bounds([shift("x", "b0", -3)])
    assert (lb, la) == (0, 3)


def test_two_right_shifts_accumulate():
    # Figure 7 (a): two right shifts along one path -> Delta = 2
    env, lb, la = region_bounds([
        shift("B5", "B1", 1),
        band("B6", "B2", "B5"),
        shift("B7", "B6", 1),
        band("B4", "B3", "B7"),
    ])
    assert env["B4"] == (2, 0)
    assert (lb, la) == (2, 0)


def test_right_then_left_shift():
    # Paper: b = a >> 1; c = b << 2 gives delta sequence {0, 1, -1},
    # Delta = 2 (our split: lookback 0, lookahead 2 at the endpoint,
    # with the intermediate's lookback 1 also covered by the region max)
    env, lb, la = region_bounds([
        shift("b", "a", 1),
        shift("c", "b", -2),
    ])
    assert env["c"] == (0, 2)
    assert lb == 1  # the intermediate b still needs 1 bit of lookback
    assert la == 2


def test_binop_takes_max():
    env, lb, la = region_bounds([
        shift("x", "b0", 3),
        shift("y", "b1", -1),
        band("z", "x", "y"),
    ])
    assert env["z"] == (3, 1)


def test_const_and_cc_have_zero_bounds():
    builder = ProgramBuilder("t")
    ones = builder.ones()
    program = builder.program
    instr = program.statements[0]
    assert propagate(instr, lambda n: (9, 9)) == (0, 0)


def test_analyze_static_straight_line():
    program = lower_regex(parse("abc"))
    static = analyze_static(program)
    # Cursor convention: one advance per literal, so /abc/ needs 3
    assert static.lookback == 3
    assert static.lookahead == 0
    assert not static.has_dynamic


def test_analyze_static_flags_loops():
    program = lower_regex(parse("a(bc)*d"))
    static = analyze_static(program)
    assert static.has_dynamic
    assert static.lookback >= 1


def test_analyze_static_no_shifts():
    # a|b merges into one class: a single cursor advance, no loop
    program = lower_regex(parse("a|b"))
    static = analyze_static(program)
    assert static.delta == 1
    assert static.lookahead == 0
    assert not static.has_dynamic


def test_runtime_tracker_accumulates_in_loops():
    tracker = RuntimeTracker(["b0"])
    tracker.record(shift("f", "b0", 1))
    # simulate three loop iterations of f = f >> 1
    for _ in range(3):
        tracker.record(shift("f", "f", 1))
    assert tracker.lookup("f") == (4, 0)
    assert tracker.max_lookback == 4


def test_runtime_tracker_cancellation():
    tracker = RuntimeTracker(["b0"])
    tracker.record(shift("x", "b0", 2))
    tracker.record(shift("y", "x", -2))
    assert tracker.lookup("y") == (0, 2)
    # max_lookback remembers the transient requirement of x
    assert tracker.max_lookback == 2
    assert tracker.max_lookahead == 2


def test_entry_bounds_respected():
    env, lb, la = region_bounds([shift("x", "v", 1)],
                                entry={"v": (5, 0)})
    assert env["x"] == (6, 0)
    assert lb == 6


def test_bounded_repetition_static_delta():
    program = lower_regex(parse("a{4}"))
    static = analyze_static(program)
    assert static.lookback == 4
    assert not static.has_dynamic

"""Incremental recompilation (repro.core.incremental)."""

import repro
from repro.core.engine import BitGenEngine
from repro.core.incremental import group_signature, update_engine
from repro.parallel.config import ScanConfig

CONFIG = ScanConfig(grouping="fingerprint", loop_fallback=True)
RULES = [f"rule{i:03d}[0-9]+x" for i in range(40)]
DATA = b"hit rule007 42x and rule039 9x plus added55q " * 10


def test_one_pattern_diff_reuses_almost_everything():
    engine = BitGenEngine.compile(RULES, config=CONFIG)
    updated, report = update_engine(engine, RULES + ["added[0-9]+q"])
    assert report.patterns == len(RULES) + 1
    assert report.recompiled >= 1
    assert report.reused >= report.groups - 2
    assert updated.pattern_count == len(RULES) + 1


def test_update_results_match_cold_compile():
    engine = BitGenEngine.compile(RULES, config=CONFIG)
    new_rules = RULES[1:] + ["added[0-9]+q"]
    updated, _ = update_engine(engine, new_rules)
    cold = BitGenEngine.compile(new_rules, config=CONFIG)
    assert updated.match(DATA).ends == cold.match(DATA).ends


def test_identical_set_reuses_every_group():
    engine = BitGenEngine.compile(RULES, config=CONFIG)
    updated, report = update_engine(engine, list(RULES))
    assert report.recompiled == 0
    assert report.reused == report.groups
    assert updated.match(DATA).ends == engine.match(DATA).ends


def test_compile_key_change_forces_full_recompile():
    engine = BitGenEngine.compile(RULES, config=CONFIG)
    updated, report = update_engine(
        engine, RULES, config=CONFIG.replace(opt_level=1))
    assert report.reused == 0
    assert updated.config.opt_level == 1
    assert updated.match(DATA).ends == engine.match(DATA).ends


def test_donor_engine_not_mutated():
    engine = BitGenEngine.compile(RULES, config=CONFIG)
    before = [c.program for c in engine.groups]
    update_engine(engine, RULES[:10])
    assert [c.program for c in engine.groups] == before
    assert engine.pattern_count == len(RULES)


def test_group_signature_is_positional_content():
    engine = BitGenEngine.compile(RULES, config=CONFIG)
    nodes = engine._nodes
    sig = group_signature(nodes, engine.groups[0].group)
    assert all(isinstance(part, str) for part in sig)
    assert len(sig) == len(engine.groups[0].group.indices)


def test_matcher_update_in_place():
    matcher = repro.compile(RULES, config=CONFIG)
    baseline = matcher.scan(DATA).match_count()
    report = matcher.update(RULES + ["added[0-9]+q"])
    assert report.reused > 0
    assert matcher.pattern_count == len(RULES) + 1
    updated = matcher.scan(DATA)
    assert updated.match_count() > baseline          # "added55q" hits
    cold = repro.scan(RULES + ["added[0-9]+q"], DATA, config=CONFIG)
    assert updated.to_dict()["matches"] == cold.to_dict()["matches"]


def test_reuse_counter_increments():
    from repro.core.incremental import _REUSED

    engine = BitGenEngine.compile(RULES, config=CONFIG)
    before = _REUSED.value()
    _, report = update_engine(engine, RULES + ["added[0-9]+q"])
    assert _REUSED.value() == before + report.reused


def test_host_refresh_uses_donor():
    from repro.serve.host import EngineHost

    host = EngineHost()
    first = host.acquire("tenant", RULES, config=CONFIG)
    refreshed = host.refresh("tenant", RULES + ["added[0-9]+q"],
                             config=CONFIG)
    assert refreshed.fingerprint != first.fingerprint
    update = refreshed.extra.get("update")
    assert update is not None and update["reused"] > 0
    # the old engine stays resident and untouched
    assert host.get("tenant", first.fingerprint) is first
    assert first.matcher.pattern_count == len(RULES)
    # refresh of a resident set is a plain hit
    again = host.refresh("tenant", RULES + ["added[0-9]+q"],
                         config=CONFIG)
    assert again is refreshed


def test_host_refresh_without_donor_compiles_cold():
    from repro.serve.host import EngineHost

    host = EngineHost()
    hosted = host.refresh("fresh-tenant", RULES[:5], config=CONFIG)
    assert "update" not in hosted.extra
    assert hosted.matcher.pattern_count == 5

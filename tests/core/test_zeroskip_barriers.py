"""Zero Block Skipping and barrier planning/merging tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.barriers import plan_barriers
from repro.core.rebalance import rebalance_program
from repro.core.zeroskip import insert_guards, zero_consuming_positions
from repro.ir.instructions import Instr, Op, SkipGuard, iter_instrs
from repro.ir.interpreter import Interpreter
from repro.ir.lower import lower_group, lower_regex
from repro.regex.parser import parse

from ..conftest import random_text


def guards_of(program):
    out = []

    def visit(stmts):
        for stmt in stmts:
            if isinstance(stmt, SkipGuard):
                out.append(stmt)
            elif hasattr(stmt, "body"):
                visit(stmt.body)

    visit(program.statements)
    return out


# -- zero paths / guard insertion -----------------------------------------------

def test_zero_consuming_positions():
    assert zero_consuming_positions(Instr("d", Op.AND, ("a", "b"))) == (0, 1)
    assert zero_consuming_positions(
        Instr("d", Op.SHIFT, ("a",), shift=1)) == (0,)
    assert zero_consuming_positions(Instr("d", Op.ANDN, ("a", "b"))) == (0,)
    assert zero_consuming_positions(Instr("d", Op.OR, ("a", "b"))) == ()
    assert zero_consuming_positions(Instr("d", Op.NOT, ("a",))) == ()


def test_guards_inserted_on_literal_chain():
    program = lower_regex(parse("abcdef"))
    guarded = insert_guards(program, interval=4)
    assert guards_of(guarded), "a literal chain is one long zero path"
    guarded.validate()


def test_guard_semantics_preserved_when_honoured():
    program = insert_guards(lower_regex(parse("abcdef")))
    data = b"zzzz abcdef zzz abcde"
    plain = Interpreter(honour_guards=False).run(program, data)
    honoured = Interpreter(honour_guards=True).run(program, data)
    assert plain["R0"] == honoured["R0"]


def test_interval_one_inserts_more_guards():
    program = lower_regex(parse("abcdefgh"))
    sparse = guards_of(insert_guards(program, interval=8))
    dense = guards_of(insert_guards(program, interval=1))
    assert len(dense) > len(sparse)


def test_guards_never_span_while_loops():
    program = insert_guards(lower_regex(parse("a(bc)*d(ef)*g")))
    program.validate()  # validate() rejects guards spanning loops


def test_no_guard_skips_escaping_values():
    # The or-combination of branches must not be skipped away.
    program = insert_guards(lower_regex(parse("(abc)|d")), interval=1)
    data = b"zzdzz abc"
    plain = Interpreter(honour_guards=False).run(program, data)
    honoured = Interpreter(honour_guards=True).run(program, data)
    assert plain["R0"] == honoured["R0"]


GUARD_PATTERNS = ["abcdef", "(abc)|d", "a(bc)*d", "ab(cd|ce)f", "a{4}b",
                  "[xy]abc", "ab|ba|ac", "a(b|c)(d|e)f"]


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(GUARD_PATTERNS), st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=2**32))
def test_guard_equivalence_property(pattern, interval, seed):
    rng = random.Random(seed)
    data = random_text(rng, rng.randrange(0, 60), "abcdefz")
    program = insert_guards(lower_regex(parse(pattern)), interval=interval)
    plain = Interpreter(honour_guards=False).run(program, data)
    honoured = Interpreter(honour_guards=True).run(program, data)
    assert plain["R0"] == honoured["R0"], f"{pattern!r} on {data!r}"


def test_guards_compose_with_rebalancing():
    program = lower_group([parse("abcdef"), parse("a(bc)*d")])
    transformed = insert_guards(rebalance_program(program))
    transformed.validate()
    data = b"zz abcdef abcbcd zz"
    plain = Interpreter(honour_guards=False).run(transformed, data)
    honoured = Interpreter(honour_guards=True).run(transformed, data)
    for name in transformed.outputs:
        assert plain[name] == honoured[name]


# -- barrier planning ---------------------------------------------------------

def count_shifts(program):
    return sum(1 for i in iter_instrs(program.statements)
               if i.op is Op.SHIFT)


def test_merge_size_one_no_merging():
    program = lower_regex(parse("abcdef"))
    plan = plan_barriers(program, merge_size=1)
    assert plan.group_count == plan.shift_count == count_shifts(program)


def test_merging_reduces_groups_after_rebalance():
    program = rebalance_program(lower_regex(parse("abcdefgh")))
    unmerged = plan_barriers(program, merge_size=1)
    merged = plan_barriers(program, merge_size=8)
    assert merged.group_count < unmerged.group_count
    assert merged.shift_count == unmerged.shift_count


def test_merged_shifts_share_leader():
    program = rebalance_program(lower_regex(parse("abcd")))
    plan = plan_barriers(program, merge_size=8)
    leaders = 0
    for instr in iter_instrs(program.statements):
        if instr.op is Op.SHIFT:
            info = plan.lookup(instr)
            assert info is not None
            leaders += info.is_leader
    assert leaders == plan.group_count


def test_dependent_shifts_not_merged():
    # A shift consuming the previous shift group's output cannot merge.
    program = lower_regex(parse("abc"))  # chain: each shift depends on prior AND
    plan = plan_barriers(program, merge_size=8)
    assert plan.group_count == plan.shift_count


def test_redundant_copy_removal_counts_stores_once():
    # After rebalancing /abb/, both shifts apply to the same stream.
    program = rebalance_program(lower_regex(parse("abb")))
    plan = plan_barriers(program, merge_size=8)
    assert plan.max_group_stores <= 2


def test_store_budget_limits_merging():
    program = rebalance_program(lower_regex(parse("abcdefghij")))
    tight = plan_barriers(program, merge_size=32,
                          smem_capacity_bytes=2048, block_bytes=2048)
    loose = plan_barriers(program, merge_size=32,
                          smem_capacity_bytes=64 * 2048, block_bytes=2048)
    assert tight.group_count >= loose.group_count
    assert tight.max_group_stores <= 1


def test_plan_invalid_merge_size():
    program = lower_regex(parse("ab"))
    with pytest.raises(ValueError):
        plan_barriers(program, merge_size=0)

"""Literal prefilter gating (repro.core.prefilter).

The load-bearing property is bit-identity: a prefiltered scan must
return exactly the ungated scan's matches, for both gate
implementations and both execution backends.
"""

import pytest

from repro.core.engine import BitGenEngine
from repro.core.prefilter import PrefilterIndex, pattern_gate
from repro.parallel.config import PREFILTER_IMPLS, ScanConfig
from repro.regex.parser import parse

PATTERNS = [
    "needle[0-9]+",          # gated: requires "needle"
    "abc|xyz",               # gated: alternation of literals
    "foo(bar)*baz",          # gated: "foo"..."baz"
    "[a-z]+",                # ungated: no required literal
    "qq(ab|cd)zz",           # gated
]

#: input containing none of the gate literals
SPARSE = b"the quick brown fox jumps over 12345 lazy dogs " * 40
#: input firing some gates
DENSE = b"a needle42 here, xyz there, qqabzz foobarbaz done " * 40


def _ends(engine, data, config=None):
    return engine.match(data, config=config).ends


@pytest.mark.parametrize("backend", ["simulate", "compiled"])
@pytest.mark.parametrize("impl", PREFILTER_IMPLS)
@pytest.mark.parametrize("data", [SPARSE, DENSE, b"", b"x"])
def test_prefiltered_match_is_bit_identical(backend, impl, data):
    baseline = BitGenEngine.compile(
        PATTERNS, config=ScanConfig(loop_fallback=True))
    config = ScanConfig(backend=backend, prefilter=True,
                        prefilter_impl=impl, loop_fallback=True)
    engine = BitGenEngine.compile(PATTERNS, config=config)
    assert _ends(engine, data) == _ends(baseline, data)


@pytest.mark.parametrize("impl", PREFILTER_IMPLS)
def test_sparse_input_skips_gated_groups(impl):
    config = ScanConfig(prefilter=True, prefilter_impl=impl,
                        loop_fallback=True)
    engine = BitGenEngine.compile(PATTERNS, config=config)
    engine.match(SPARSE)
    report = engine.last_prefilter
    assert report is not None
    assert report.skipped == report.gated > 0
    # the factor-free pattern keeps its group always-on
    assert report.active >= 1


def test_cta_metrics_stay_aligned_when_groups_skip():
    config = ScanConfig(prefilter=True, loop_fallback=True)
    engine = BitGenEngine.compile(PATTERNS, config=config)
    result = engine.match(SPARSE)
    assert len(result.cta_metrics) == len(engine.groups)


def test_prefilter_is_dispatch_time_not_compile_time():
    plain = ScanConfig(loop_fallback=True)
    gated = ScanConfig(prefilter=True, loop_fallback=True)
    assert plain.compile_key() == gated.compile_key()
    # one engine, gate toggled per call
    engine = BitGenEngine.compile(PATTERNS, config=plain)
    ungated = _ends(engine, DENSE)
    assert _ends(engine, DENSE, config=gated) == ungated
    assert engine.last_prefilter is not None


@pytest.mark.parametrize("impl", PREFILTER_IMPLS)
def test_match_many_union_gating(impl):
    config = ScanConfig(backend="compiled", prefilter=True,
                        prefilter_impl=impl, loop_fallback=True)
    engine = BitGenEngine.compile(PATTERNS, config=config)
    baseline = BitGenEngine.compile(
        PATTERNS, config=ScanConfig(loop_fallback=True))
    streams = [SPARSE, DENSE, b"needle7", b""]
    results = engine.match_many(streams)
    for stream, result in zip(streams, results):
        assert result.ends == _ends(baseline, stream)
    assert engine.last_prefilter is not None
    assert engine.last_prefilter.input_bytes == sum(map(len, streams))


def test_screen_and_ac_agree_on_fired_literals():
    nodes = [parse(p) for p in PATTERNS]
    groups = BitGenEngine.compile(
        PATTERNS, config=ScanConfig(loop_fallback=True)).groups
    index = PrefilterIndex.build(nodes, [c.group for c in groups])
    for data in (SPARSE, DENSE, b"", b"needleneedle", b"zzxyzab"):
        assert index.fired_literals(data, "screen") \
            == index.fired_literals(data, "ac")


def test_pattern_gate_prepared_node_semantics():
    # factor-free: any single char
    assert pattern_gate(parse("[a-z]")) is None
    # required literal factor: one best factor suffices as the gate
    gate = pattern_gate(parse("xx(a|b)yy"))
    assert gate and gate <= {b"xx", b"yy"}
    # never-matching non-empty pattern: empty gate, not always-on
    assert pattern_gate(parse("")) == frozenset()


def test_unknown_impl_rejected():
    with pytest.raises(ValueError):
        ScanConfig(prefilter_impl="bloom")
    nodes = [parse("abcd")]
    groups = BitGenEngine.compile(
        ["abcd"], config=ScanConfig(loop_fallback=True)).groups
    index = PrefilterIndex.build(nodes, [c.group for c in groups])
    with pytest.raises(ValueError):
        index.fired_literals(b"abcd", "bloom")


def test_gate_counter_accounting():
    from repro.core.prefilter import _BUCKETS_SKIPPED

    config = ScanConfig(prefilter=True, loop_fallback=True)
    engine = BitGenEngine.compile(PATTERNS, config=config)
    before = _BUCKETS_SKIPPED.value()
    engine.match(SPARSE)
    assert _BUCKETS_SKIPPED.value() \
        == before + engine.last_prefilter.skipped

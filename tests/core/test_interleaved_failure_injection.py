"""Failure injection and edge behaviour of the interleaved executor."""

import pytest

from repro.core import BitGenEngine, OverlapLimitError, Scheme
from repro.core.interleaved import InterleavedExecutor
from repro.gpu.machine import CTAGeometry
from repro.ir.instructions import Instr, Op, WhileLoop
from repro.ir.interpreter import run_regexes
from repro.ir.lower import lower_regex
from repro.ir.program import Program
from repro.parallel.config import ScanConfig
from repro.regex.parser import parse

TINY = CTAGeometry(threads=8, word_bits=4)  # 32-bit blocks


def chain_input(repeats: int) -> bytes:
    return b"x" + b"ab" * repeats + b"c" + b"x"


def test_overlap_limit_raises_without_fallback():
    engine = BitGenEngine.compile(
        ["x(ab)*c"], config=ScanConfig(scheme=Scheme.DTM, geometry=TINY))
    with pytest.raises(OverlapLimitError):
        engine.match(chain_input(100))


def test_fallback_produces_correct_results():
    data = chain_input(100)
    reference = run_regexes(["x(ab)*c"], data)
    engine = BitGenEngine.compile(
        ["x(ab)*c"], config=ScanConfig(scheme=Scheme.DTM, geometry=TINY,
                                       loop_fallback=True))
    result = engine.match(data)
    assert result.ends[0] == reference["R0"]
    assert result.metrics.loop_fallbacks == 1


def test_fallback_not_triggered_for_short_chains():
    data = chain_input(2)
    engine = BitGenEngine.compile(
        ["x(ab)*c"], config=ScanConfig(scheme=Scheme.DTM, geometry=TINY,
                                       loop_fallback=True))
    result = engine.match(data)
    assert result.metrics.loop_fallbacks == 0
    assert result.ends[0] == run_regexes(["x(ab)*c"], data)["R0"]


def test_chain_just_below_limit_still_interleaved():
    # With 32-bit blocks the max overlap is 32 bits: a 10-step chain
    # crossing one boundary fits.
    data = b"x" * 29 + b"x" + b"ab" * 5 + b"c"
    engine = BitGenEngine.compile(
        ["x(ab)*c"], config=ScanConfig(scheme=Scheme.DTM, geometry=TINY,
                                       loop_fallback=True))
    result = engine.match(data)
    assert result.metrics.loop_fallbacks == 0
    assert result.ends[0] == run_regexes(["x(ab)*c"], data)["R0"]


def test_divergent_loop_detected():
    # A while loop whose condition never clears must be caught, not
    # spin forever.
    program = Program("diverge", [
        Instr("c", Op.CONST, const="ones"),
        WhileLoop("c", [Instr("t", Op.NOT, ("c",))]),
    ], {"R": "c"})
    program.validate()
    executor = InterleavedExecutor(geometry=TINY)
    with pytest.raises(RuntimeError, match="diverged"):
        executor.run(program, b"abcdefgh")


def test_base_scheme_unaffected_by_limit():
    # Sequential execution has no overlap limit at all.
    data = chain_input(200)
    engine = BitGenEngine.compile(
        ["x(ab)*c"], config=ScanConfig(scheme=Scheme.BASE, geometry=TINY))
    assert engine.match(data).ends[0] == \
        run_regexes(["x(ab)*c"], data)["R0"]


def test_dtm_minus_unaffected_by_limit():
    # DTM- materialises loop streams globally: also immune.
    data = chain_input(200)
    engine = BitGenEngine.compile(
        ["x(ab)*c"], config=ScanConfig(scheme=Scheme.DTM_MINUS,
                                       geometry=TINY))
    assert engine.match(data).ends[0] == \
        run_regexes(["x(ab)*c"], data)["R0"]


def test_lookahead_rerun_counted():
    # Left shifts come from rebalancing; build one directly.
    from repro.ir.program import ProgramBuilder

    builder = ProgramBuilder("lookahead")
    a = builder.match_cc(parse("a").cc)
    peeked = builder.advance(a, -3)   # needs 3 bits of future
    builder.mark_output("R", builder.and_(a, peeked))
    program = builder.finish()
    executor = InterleavedExecutor(geometry=TINY)
    result = executor.run(program, b"aaaaXaaa" * 12)
    from repro.ir.interpreter import Interpreter

    expected = Interpreter().run(program, b"aaaaXaaa" * 12)["R"]
    assert result.outputs["R"] == expected


def test_window_growth_on_match_heavy_input():
    # Every block full of star chains: dynamic overlap grows per block.
    data = b"x" + b"ab" * 12 + b"c" + (b"x" + b"ab" * 3 + b"c") * 10
    engine = BitGenEngine.compile(
        ["x(ab)*c"], config=ScanConfig(scheme=Scheme.DTM, geometry=TINY,
                                       loop_fallback=True))
    result = engine.match(data)
    assert result.ends[0] == run_regexes(["x(ab)*c"], data)["R0"]
    assert result.metrics.dynamic_overlap_max > 0

"""BitGenEngine public API, grouping, and codegen tests."""

import pytest

from repro.core import (BitGenEngine, Scheme, group_regexes, imbalance,
                        render_kernel, render_module)
from repro.core.barriers import plan_barriers
from repro.core.rebalance import rebalance_program
from repro.gpu.machine import CTAGeometry
from repro.ir.lower import lower_regex
from repro.parallel.config import ScanConfig
from repro.regex.parser import parse


# -- grouping (Section 7) -------------------------------------------------------

def test_grouping_balances_lengths():
    nodes = [parse("a" * n) for n in (50, 40, 30, 20, 10, 5, 5)]
    groups = group_regexes(nodes, 3)
    assert len(groups) == 3
    assert sum(len(g) for g in groups) == len(nodes)
    assert imbalance(groups) < 1.5


def test_grouping_single_group():
    nodes = [parse("ab"), parse("cd")]
    groups = group_regexes(nodes, 1)
    assert len(groups) == 1
    assert sorted(groups[0].indices) == [0, 1]


def test_grouping_more_groups_than_regexes():
    nodes = [parse("ab")]
    groups = group_regexes(nodes, 8)
    assert len(groups) == 1


def test_grouping_preserves_indices():
    nodes = [parse(p) for p in ("aaaa", "b", "cc")]
    groups = group_regexes(nodes, 2)
    seen = sorted(i for g in groups for i in g.indices)
    assert seen == [0, 1, 2]


def test_grouping_rejects_bad_count():
    with pytest.raises(ValueError):
        group_regexes([parse("a")], 0)


# -- engine API --------------------------------------------------------------------

def test_engine_quickstart_flow():
    engine = BitGenEngine.compile(["a(bc)*d", "colou?r"])
    result = engine.match(b"abcbcd has colour and color")
    assert result.ends[0] == [5]
    assert result.ends[1] == [16, 26]
    assert result.match_count() == 3
    assert result.matched_patterns() == [0, 1]


def test_engine_accepts_ast_nodes():
    engine = BitGenEngine.compile([parse("cat")])
    assert engine.match(b"bobcat").ends[0] == [5]


def test_engine_pattern_indices_stable_across_grouping():
    patterns = [f"{c}x" for c in "abcdefgh"]
    engine = BitGenEngine.compile(patterns,
                                  config=ScanConfig(cta_count=3))
    result = engine.match(b"ax bx cx dx ex fx gx hx")
    for index in range(len(patterns)):
        assert len(result.ends[index]) == 1, patterns[index]


def test_engine_metrics_per_cta():
    engine = BitGenEngine.compile(["ab", "cd", "ef"],
                                  config=ScanConfig(cta_count=3))
    result = engine.match(b"ab cd ef" * 10)
    assert len(result.cta_metrics) == len(engine.groups)
    assert result.metrics.thread_word_ops == sum(
        m.thread_word_ops for m in result.cta_metrics)


def test_engine_scheme_selection():
    for scheme in Scheme:
        engine = BitGenEngine.compile(["abc"],
                                      config=ScanConfig(scheme=scheme))
        assert engine.match(b"abc").ends[0] == [2]


def test_engine_program_stats():
    engine = BitGenEngine.compile(["a(bc)*d", "ef"])
    stats = engine.program_stats()
    assert stats["shift"] > 0
    assert stats["while"] == 1
    assert stats["and"] > 0


def test_empty_matches_result():
    engine = BitGenEngine.compile(["xyz"])
    result = engine.match(b"aaaa")
    assert result.match_count() == 0
    assert result.matched_patterns() == []


def test_same_matches_comparison():
    a = BitGenEngine.compile(
        ["ab"], config=ScanConfig(scheme=Scheme.BASE)).match(b"abab")
    b = BitGenEngine.compile(
        ["ab"], config=ScanConfig(scheme=Scheme.ZBS)).match(b"abab")
    assert a.same_matches(b)


# -- codegen -----------------------------------------------------------------------

def test_render_kernel_structure():
    program = lower_regex(parse("a(bc)*d"))
    source = render_kernel(program, cta_index=0)
    assert "__device__ void group_0" in source
    assert "while (block_any(" in source
    assert "__syncthreads();" in source
    assert "funnelshift_r" in source


def test_render_kernel_sync_count_matches_plan():
    program = rebalance_program(lower_regex(parse("abcd")))
    plan = plan_barriers(program, merge_size=8)
    source = render_kernel(program, plan=plan)
    syncs = source.count("__syncthreads();")
    assert syncs == 2 * plan.group_count


def test_render_kernel_guards_become_gotos():
    from repro.core.zeroskip import insert_guards

    program = insert_guards(lower_regex(parse("abcdef")))
    source = render_kernel(program)
    assert "goto L" in source
    # every goto has a matching label
    import re

    gotos = set(re.findall(r"goto (L\d+);", source))
    labels = set(re.findall(r"(L\d+):;", source))
    assert gotos <= labels


def test_render_module_dispatch():
    programs = [lower_regex(parse(p), name=f"R{i}")
                for i, p in enumerate(["ab", "cd"])]
    source = render_module(programs)
    assert "__global__ void bitgen_kernel" in source
    assert "case 0: group_0" in source
    assert "case 1: group_1" in source


def test_engine_render_kernels():
    engine = BitGenEngine.compile(["abc", "a(bc)*d"],
                                  config=ScanConfig(cta_count=2))
    source = engine.render_kernels()
    assert source.count("__device__") == len(engine.groups)


def test_match_many_streams():
    engine = BitGenEngine.compile(["ab", "cd"])
    results = engine.match_many([b"ab", b"cd cd", b""])
    assert len(results) == 3
    assert results[0].ends[0] == [1]
    assert results[1].ends[1] == [1, 4]
    assert results[2].match_count() == 0

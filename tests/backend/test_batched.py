"""Batched CTA dispatch must be bit-identical to one-at-a-time
execution — stacking programs that share a kernel (or streams that
share a program) into 2D calls is a pure scheduling change.
"""

import numpy as np
import pytest

from repro.backend import (compile_group, dispatch_programs,
                           dispatch_streams, compile_program)
from repro.core.engine import BitGenEngine
from repro.core.schemes import Scheme
from repro.parallel.config import ScanConfig
from repro.ir.interpreter import Interpreter
from repro.ir.lower import lower_group
from repro.regex.parser import parse

from tests.backend.test_cache import _literal_program

DATA = b"abxabcbbd aacd xxy cat dog ac bc qrs " * 20


def _programs(patterns):
    """MATCH_CC cursor matchers: same-shape literals share kernels, so
    batching actually fires; regex programs lowered via CCCompiler get
    per-structure kernels and go down the single-CTA path."""
    return [_literal_program(p) for p in patterns]


def _expected(program, data):
    return Interpreter().run(program, data)


def _as_int(words, length):
    return int.from_bytes(np.asarray(words).tobytes(), "little") \
        & ((1 << length) - 1)


def test_dispatch_programs_matches_interpreter():
    programs = _programs(["abc", "xyz", "qrs"]) + \
        [lower_group([parse(p)]) for p in ["a(b|c)*d", "x{2,4}y"]]
    compiled = compile_group(programs)
    # The three distinct-byte literals share one kernel → a 3-row batch.
    fingerprints = [c.kernel.fingerprint for c in compiled]
    assert len(set(fingerprints[:3])) == 1
    length = len(DATA) + 1
    for program, (raw, _stats) in zip(
            programs, dispatch_programs(compiled, DATA)):
        expected = _expected(program, DATA)
        assert set(raw) == set(expected)
        for name in expected:
            assert _as_int(raw[name], length) == expected[name].bits


def test_dispatch_matches_individual_runs():
    programs = _programs(["abc", "xyz", "qrs"])
    compiled = compile_group(programs)
    batched = dispatch_programs(compiled, DATA)
    for member, (raw, _stats) in zip(compiled, batched):
        solo, _ = member.run_data(DATA)
        for name in solo:
            assert np.array_equal(raw[name], solo[name])


def test_dispatch_streams_matches_interpreter():
    program = lower_group([parse(p) for p in ["ab", "a(b|c)*d"]])
    compiled = compile_program(program)
    streams = [DATA, DATA[:96], b"", DATA[:96], b"dacb" * 40]
    results = dispatch_streams(compiled, streams)
    for stream, (raw, _stats) in zip(streams, results):
        expected = _expected(program, stream)
        length = len(stream) + 1
        for name in expected:
            assert _as_int(raw[name], length) == expected[name].bits


def test_batched_outputs_are_independent_copies():
    compiled = compile_group(_programs(["abc", "xyz"]))
    first, second = dispatch_programs(compiled, DATA)
    first[0]["R0"][:] = 0
    solo, _ = compiled[1].run_data(DATA)
    assert np.array_equal(second[0]["R0"], solo["R0"])


@pytest.mark.parametrize("scheme", [Scheme.BASE, Scheme.DTM, Scheme.ZBS])
def test_engine_backend_equivalence(scheme):
    patterns = ["ab", "a(b|c)*d", "x{2,4}y", "cat", "dog", "[ab]c"]
    simulate = BitGenEngine.compile(patterns,
                                    config=ScanConfig(scheme=scheme))
    compiled = BitGenEngine.compile(
        patterns, config=ScanConfig(scheme=scheme, backend="compiled"))
    assert simulate.match(DATA).ends == compiled.match(DATA).ends


def test_engine_match_many_backend_equivalence():
    patterns = ["ab", "a(b|c)*d", "cat"]
    streams = [DATA, DATA[:100], b"", DATA[:100]]
    simulate = BitGenEngine.compile(patterns)
    compiled = BitGenEngine.compile(
        patterns, config=ScanConfig(backend="compiled"))
    for left, right in zip(simulate.match_many(streams),
                           compiled.match_many(streams)):
        assert left.ends == right.ends


def test_sequential_compiled_metrics_match_simulation():
    from repro.core.sequential import SequentialExecutor

    program = lower_group([parse(p) for p in ["a(b|c)*d", "a+b"]])
    simulate = SequentialExecutor().run(program, DATA)
    compiled = SequentialExecutor(backend="compiled").run(program, DATA)
    for name in simulate.outputs:
        assert compiled.outputs[name].bits == simulate.outputs[name].bits
    for counter in ("thread_word_ops", "loop_iterations", "barriers",
                    "fused_loops", "dram_read_bytes", "dram_write_bytes",
                    "intermediate_streams", "peak_intermediate_bytes",
                    "blocks_processed", "output_bits"):
        assert getattr(compiled.metrics, counter) == \
            getattr(simulate.metrics, counter), counter

"""Kernel cache keying: structural equality shares a code object,
semantic differences (shift distances, guard mode) do not, and byte
constants are parameters rather than part of the key.
"""

import pytest

from repro.backend import KernelCache, canonicalize, compile_program
from repro.backend.codegen import CompileError
from repro.ir.program import ProgramBuilder
from repro.regex.charclass import CharClass


def _literal_program(text: str):
    """Cursor-style literal matcher over MATCH_CC primitives — the
    bytes stay parameters, so same-shape literals share a kernel.
    (Programs lowered through CCCompiler expand classes into basis
    boolean ops, baking the bytes into the structure.)"""
    builder = ProgramBuilder()
    cursor = builder.ones()
    for byte in text.encode():
        matched = builder.match_cc(CharClass.single(byte))
        cursor = builder.advance(builder.and_(cursor, matched), 1)
    builder.mark_output("R0", cursor)
    return builder.finish()


def _shift_program(distance: int):
    builder = ProgramBuilder()
    cursor = builder.advance("b0", distance)
    builder.mark_output("R0", builder.and_("b1", cursor))
    return builder.finish()


def test_distinct_bytes_share_one_kernel():
    # Same-length literals with pairwise-distinct bytes lower to
    # structurally identical programs: the bytes become parameters.
    cache = KernelCache()
    kernels = {compile_program(_literal_program(text),
                               cache=cache).kernel.fingerprint
               for text in ("abc", "xyz", "qrs")}
    assert len(kernels) == 1
    assert cache.stats.lookups == 3
    assert cache.stats.misses == 1
    assert cache.stats.hits == 2
    assert cache.stats.hit_rate() == pytest.approx(2 / 3)
    assert len(cache) == 1


def test_repeated_bytes_change_structure():
    # "aaa" CSEs its repeated character class, so its program is a
    # different shape and correctly takes a different kernel.
    cache = KernelCache()
    abc = compile_program(_literal_program("abc"), cache=cache)
    aaa = compile_program(_literal_program("aaa"), cache=cache)
    assert abc.kernel.fingerprint != aaa.kernel.fingerprint


def test_shift_distance_is_structural():
    cache = KernelCache()
    one = compile_program(_shift_program(1), cache=cache)
    two = compile_program(_shift_program(2), cache=cache)
    again = compile_program(_shift_program(1), cache=cache)
    assert one.kernel.fingerprint != two.kernel.fingerprint
    assert again.kernel is one.kernel
    assert cache.stats.misses == 2
    assert cache.stats.hits == 1


def test_variable_names_are_canonicalised():
    from repro.ir.instructions import Instr, Op
    from repro.ir.program import Program

    def build(prefix):
        return Program(
            name=prefix,
            statements=[
                Instr(op=Op.AND, dest=f"{prefix}_a", args=("b0", "b1")),
                Instr(op=Op.OR, dest=f"{prefix}_b",
                      args=(f"{prefix}_a", "b2")),
            ],
            outputs={"R0": f"{prefix}_b"})

    cache = KernelCache()
    left = compile_program(build("left"), cache=cache)
    right = compile_program(build("completely_different"), cache=cache)
    assert left.kernel is right.kernel


def test_honour_guards_is_part_of_the_key():
    program = _literal_program("abc")
    assert canonicalize(program, honour_guards=True).digest != \
        canonicalize(program, honour_guards=False).digest


def test_multibyte_match_cc_rejected():
    from repro.ir.instructions import Instr, Op
    from repro.ir.program import Program

    program = Program(
        name="multibyte",
        statements=[Instr(op=Op.MATCH_CC, dest="m", args=(),
                          cc=CharClass.of_chars("ab"))],
        outputs={"R0": "m"})
    with pytest.raises(CompileError):
        compile_program(program, cache=KernelCache())


def test_global_cache_reports_hits():
    from repro.backend import kernel_cache

    cache = kernel_cache()
    before = cache.stats.lookups
    compile_program(_literal_program("abc"))
    compile_program(_literal_program("abc"))
    assert cache.stats.lookups == before + 2

"""Property tests: the compiled NumPy backend is bit-identical to the
reference big-integer interpreter.

Random regex groups are lowered exactly as the engine lowers them
(including the Shift Rebalancing and Zero Block Skipping transforms),
then executed by both substrates over random inputs.  Guards are tested
both honoured and ignored — a guard may only skip work, never change a
bit.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rebalance import rebalance_program
from repro.core.zeroskip import insert_guards
from repro.ir.interpreter import Interpreter
from repro.ir.lower import lower_group
from repro.ir.optimize import optimize_program

from tests.integration.test_differential_fuzz import (random_input,
                                                      random_regex)


def _assert_same_outputs(program, data, honour_guards):
    reference = Interpreter(honour_guards=honour_guards)
    compiled = Interpreter(honour_guards=honour_guards,
                           backend="compiled")
    expected = reference.run(program, data)
    actual = compiled.run(program, data)
    assert set(expected) == set(actual)
    for name in expected:
        assert actual[name].length == expected[name].length
        assert actual[name].bits == expected[name].bits, name
    # Dynamic behaviour must agree too: same loop trip counts.
    assert compiled.loop_iteration_counts == \
        reference.loop_iteration_counts


@pytest.mark.slow
@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=2**64),
       st.booleans(), st.booleans())
def test_compiled_matches_interpreter(seed, transform, honour_guards):
    rng = random.Random(seed)
    nodes = [random_regex(rng, depth=2)
             for _ in range(rng.randint(1, 3))]
    program = optimize_program(lower_group(nodes))
    if transform:
        program = insert_guards(rebalance_program(program), interval=4)
    _assert_same_outputs(program, random_input(rng), honour_guards)


def test_compiled_on_empty_input():
    program = lower_group([random_regex(random.Random(7), depth=2)])
    _assert_same_outputs(program, b"", honour_guards=False)
    _assert_same_outputs(program, b"", honour_guards=True)


def test_compiled_while_loop_and_guards():
    from repro.regex.parser import parse

    program = lower_group([parse(p)
                           for p in ["a(b|c)*d", "x{2,4}y", "a+b"]])
    program = insert_guards(rebalance_program(program), interval=4)
    data = b"abxabcbbd aacd xxy ab aab bbbd " * 9
    _assert_same_outputs(program, data, honour_guards=False)
    _assert_same_outputs(program, data, honour_guards=True)


def test_interpreter_rejects_unknown_backend():
    with pytest.raises(ValueError):
        Interpreter(backend="cuda")

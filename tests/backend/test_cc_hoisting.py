"""CC parameter-slot deduplication and prologue hoisting (codegen v2).

Identical character classes must collapse to one parameter slot during
canonicalisation, and the generated source must compute each slot's
8-term basis expression exactly once — in the prologue — no matter how
many MATCH_CC consumers (or loop iterations) reference it.
"""

from __future__ import annotations

import pytest

from repro.backend.codegen import CODEGEN_VERSION, generate_source
from repro.backend.fingerprint import canonicalize, fingerprint
from repro.ir.instructions import Instr, Op, WhileLoop
from repro.ir.interpreter import Interpreter
from repro.ir.program import Program
from repro.regex.charclass import CharClass

A = CharClass.of_char("a")
B = CharClass.of_char("b")


def cc_program():
    # Three MATCH_CC of class 'a' (one inside a loop) and one of 'b',
    # written as raw statements because ProgramBuilder value-numbers
    # match_cc calls away at construction time.
    program = Program("t", [
        Instr("x", Op.MATCH_CC, cc=A),
        Instr("y", Op.MATCH_CC, cc=A),
        Instr("z", Op.MATCH_CC, cc=B),
        Instr("c", Op.AND, ("x", "y")),
        WhileLoop("c", [
            Instr("w", Op.MATCH_CC, cc=A),
            Instr("t", Op.SHIFT, ("c",), shift=1),
            Instr("c", Op.AND, ("t", "w")),     # drains to zero
        ]),
        Instr("r", Op.OR, ("c", "z")),
    ], {"R": "r"})
    program.validate()
    return program


def test_identical_classes_share_one_slot():
    canonical = canonicalize(cc_program())
    assert canonical.cc_classes == [A, B]


def test_source_hoists_each_slot_once():
    source = generate_source(canonicalize(cc_program()))
    assert source.count("_cc0 = TEXT &") == 1
    assert source.count("_cc1 = TEXT &") == 1
    # Consumers (including the loop body) only reference the temps.
    assert "P[..., 0, 0, None]" in source
    assert source.count("P[..., 0, 0, None]") == 1


def test_hoisted_kernel_matches_interpreter():
    program = cc_program()
    data = b"aababb aa bb ab"
    reference = Interpreter().run(program, data)
    compiled = Interpreter(backend="compiled").run(program, data)
    assert compiled == reference


def test_slot_count_invariant_under_duplicates():
    # A program with N duplicate classes fingerprints identically to
    # the same structure over distinct variables of one class — both
    # shapes compile to one kernel with one parameter slot.
    single = Program("s", [
        Instr("x", Op.MATCH_CC, cc=A),
        Instr("y", Op.MATCH_CC, cc=A),
        Instr("r", Op.OR, ("x", "y")),
    ], {"R": "r"})
    other = Program("o", [
        Instr("p", Op.MATCH_CC, cc=B),
        Instr("q", Op.MATCH_CC, cc=B),
        Instr("out", Op.OR, ("p", "q")),
    ], {"R": "out"})
    assert fingerprint(single) == fingerprint(other)
    assert len(canonicalize(single).cc_classes) == 1


def test_codegen_version_bumped_for_hoisting():
    assert CODEGEN_VERSION >= 2

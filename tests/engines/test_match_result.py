"""MatchResult container semantics."""

from repro.engines.base import MatchResult


def test_defaults_fill_all_patterns():
    result = MatchResult(pattern_count=3)
    assert result.ends == {0: [], 1: [], 2: []}
    assert result.match_count() == 0


def test_match_count_and_matched_patterns():
    result = MatchResult(pattern_count=3,
                         ends={0: [1, 5], 2: [9]})
    assert result.match_count() == 3
    assert result.matched_patterns() == [0, 2]


def test_same_matches_ignores_order_and_duplicates():
    a = MatchResult(pattern_count=1, ends={0: [3, 1, 3]})
    b = MatchResult(pattern_count=1, ends={0: [1, 3]})
    assert a.same_matches(b)


def test_same_matches_detects_differences():
    a = MatchResult(pattern_count=1, ends={0: [1]})
    b = MatchResult(pattern_count=1, ends={0: [2]})
    assert not a.same_matches(b)


def test_same_matches_pattern_count_mismatch():
    a = MatchResult(pattern_count=1)
    b = MatchResult(pattern_count=2)
    assert not a.same_matches(b)

"""RE2-style engine, regex reversal, and match-start recovery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitGenEngine
from repro.engines.re2 import RE2Engine
from repro.regex.parser import parse
from repro.regex.reverse import reverse

from ..conftest import random_text


def oracle_start_positions(pattern, data):
    import re

    compiled = re.compile(pattern)
    text = data.decode("latin-1")
    starts = []
    for start in range(len(text)):
        for end in range(start + 1, len(text) + 1):
            if compiled.fullmatch(text, start, end):
                starts.append(start)
                break
    return starts


# -- RE2 -------------------------------------------------------------------------

def test_re2_simple():
    engine = RE2Engine.compile(["cat", "a+b"])
    result = engine.match(b"cat aab")
    assert result.ends[0] == [2]
    assert result.ends[1] == [6]
    assert engine.last_stats.dfa_states > 0
    assert not engine.last_stats.fell_back_to_nfa


def test_re2_fallback_on_blowup():
    engine = RE2Engine.compile(["[ab]*a[ab]{10}"], max_dfa_states=64)
    assert engine.dfa is None
    data = b"ab" * 20 + b"a" + b"b" * 10
    result = engine.match(data)
    assert engine.last_stats.fell_back_to_nfa
    assert result.match_count() > 0


def test_re2_agrees_with_bitgen():
    patterns = ["a(bc)*d", "cat|dog", "[0-9]+"]
    rng = random.Random(2)
    for _ in range(10):
        data = random_text(rng, 60, "abcd019 tog")
        a = RE2Engine.compile(patterns).match(data)
        b = BitGenEngine.compile(patterns).match(data)
        assert a.same_matches(b), data


# -- reversal -----------------------------------------------------------------------

def test_reverse_literal():
    assert reverse(parse("abc")) == parse("cba")


def test_reverse_nested():
    assert reverse(parse("ab(cd)*ef")) == parse("fe(dc)*ba")


def test_reverse_alt_and_rep():
    assert reverse(parse("(ab|cd){2,3}x")) == parse("x(ba|dc){2,3}")


def test_reverse_anchors_swap():
    node = reverse(parse("^ab$"))
    rendered = parse("^ba$")
    assert node == rendered


def test_reverse_involution():
    for pattern in ["a(bc)*d", "x|yz", "a{2,}b?"]:
        node = parse(pattern)
        assert reverse(reverse(node)) == node


# -- match starts ----------------------------------------------------------------------

@pytest.mark.parametrize("pattern,data", [
    ("cat", b"bobcat cat"),
    ("a(bc)*d", b"xabcbcd ad"),
    ("a+b", b"aaab ab"),
    ("(ab|ba)c", b"abc bac"),
])
def test_match_starts_directed(pattern, data):
    engine = BitGenEngine.compile([pattern])
    starts = engine.match_starts(data).ends[0]
    assert starts == oracle_start_positions(pattern, data)


@settings(max_examples=25, deadline=None)
@given(st.sampled_from(["ab", "a*b", "(ab)+", "a(b|c)d", "[ab]{2}"]),
       st.integers(min_value=0, max_value=2**32))
def test_match_starts_property(pattern, seed):
    rng = random.Random(seed)
    data = random_text(rng, rng.randrange(0, 40), "abcd")
    engine = BitGenEngine.compile([pattern])
    assert engine.match_starts(data).ends[0] == \
        oracle_start_positions(pattern, data)


def test_starts_and_ends_consistent():
    engine = BitGenEngine.compile(["cat"])
    data = b"a cat and a catalogue"
    ends = engine.match(data).ends[0]
    starts = engine.match_starts(data).ends[0]
    assert len(ends) == len(starts) == 2
    assert all(s + 2 == e for s, e in zip(starts, ends))

"""Baseline engines: exactness (all engines agree) and engine-specific
behaviour (decomposition, prefiltering, access accounting)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitGenEngine
from repro.engines import (HyperscanEngine, ICgrepEngine, NgAPEngine,
                           literal_bytes, required_factor)
from repro.regex.parser import parse

from ..conftest import oracle_end_positions, random_text

PATTERNS = ["cat", "a(bc)*d", "(abc)|d", "[a-c]+x", "ab{2,4}c", "dog",
            "c(a|o)t", "xy+z"]

ENGINES = [ICgrepEngine, NgAPEngine, HyperscanEngine, BitGenEngine]


@pytest.mark.parametrize("engine_cls", ENGINES,
                         ids=lambda c: c.name)
def test_engine_vs_oracle(engine_cls):
    data = b"the cat sat on abcbcd, a dog saw (abc) d! abbbc xyyyz coat"
    engine = engine_cls.compile(PATTERNS)
    result = engine.match(data)
    for index, pattern in enumerate(PATTERNS):
        want = oracle_end_positions(pattern, data)
        assert sorted(result.ends[index]) == want, pattern


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32))
def test_all_engines_agree_property(seed):
    rng = random.Random(seed)
    data = random_text(rng, rng.randrange(0, 120), "abcdxyzt ")
    results = [cls.compile(PATTERNS).match(data) for cls in ENGINES]
    for other in results[1:]:
        assert results[0].same_matches(other), \
            f"engines disagree on {data!r}"


def test_engines_empty_input():
    for cls in ENGINES:
        result = cls.compile(PATTERNS).match(b"")
        assert result.match_count() == 0


# -- icgrep ---------------------------------------------------------------------

def test_icgrep_stats_populated():
    engine = ICgrepEngine.compile(["a(bc)*d"])
    engine.match(b"abcbcd" * 4)
    stats = engine.last_stats
    assert stats.instructions_executed > 0
    assert stats.simd_word_ops >= stats.instructions_executed
    assert stats.loop_iterations >= 2
    assert stats.input_bytes == 24


def test_icgrep_simd_width_scales_words():
    wide = ICgrepEngine.compile(["abc"], simd_bits=512)
    narrow = ICgrepEngine.compile(["abc"], simd_bits=128)
    data = b"abc" * 400
    wide.match(data)
    narrow.match(data)
    assert narrow.last_stats.simd_word_ops > wide.last_stats.simd_word_ops


# -- ngAP -------------------------------------------------------------------------

def test_ngap_counts_lookups():
    engine = NgAPEngine.compile(["abc", "abd"])
    engine.match(b"ababcabd")
    stats = engine.last_stats
    assert stats.nfa.transition_lookups > 0
    assert stats.state_count == 6
    assert stats.input_bytes == 8
    assert stats.avg_parallelism() >= 1.0


def test_ngap_low_activity_input_has_short_worklist():
    engine = NgAPEngine.compile(["virus", "troja"])
    clean = b"the quick brown fox jumps over ..." * 4
    engine.match(clean)
    # Only start states are ever candidates on non-matching input.
    assert engine.last_stats.avg_parallelism() <= 3.0


# -- Hyperscan decomposition ----------------------------------------------------

def test_literal_bytes_extraction():
    assert literal_bytes(parse("cat")) == b"cat"
    assert literal_bytes(parse("a")) == b"a"
    assert literal_bytes(parse("ca?t")) is None
    assert literal_bytes(parse("[ab]c")) is None


def test_required_factor_extraction():
    assert required_factor(parse("abc[0-9]def?")) == b"abc"
    assert required_factor(parse("x(y|z)longlit")) == b"longlit"
    assert required_factor(parse("(a|b)(c|d)")) is None
    assert required_factor(parse("a[0-9]b")) is None  # runs of length 1


def test_hyperscan_classifies_patterns():
    engine = HyperscanEngine.compile(["cat", "dog", "a(bc)*d", "ab[0-9]+"])
    assert engine.match(b"cat dog abcd ab7").match_count() == 4
    stats = engine.last_stats
    assert stats.literal_patterns == 2
    # ab[0-9]+ is unbounded but newline-free: line-confirmable tier
    assert stats.confirmable_patterns == 1
    assert stats.complex_patterns == 1


def test_hyperscan_prefilter_excludes_patterns():
    engine = HyperscanEngine.compile(["needle[0-9]*x", "cat"])
    engine.match(b"haystack without the n-word, just a cat")
    stats = engine.last_stats
    assert stats.prefiltered_out == 1
    assert stats.nfa is None or stats.nfa_scanned == 0


def test_hyperscan_prefilter_keeps_matching_patterns():
    engine = HyperscanEngine.compile(["needle[0-9]+"])
    result = engine.match(b"a needle42 in a haystack")
    assert result.ends[0] == [8, 9]  # needle4, needle42
    assert engine.last_stats.prefiltered_out == 0


def test_hyperscan_pure_literal_set_never_builds_nfa():
    engine = HyperscanEngine.compile(["alpha", "beta", "gamma"])
    engine.match(b"alpha beta gamma" * 10)
    assert engine.last_stats.nfa is None
    assert engine.last_stats.literal_fraction() == 1.0


def test_hyperscan_overlapping_literal_matches():
    engine = HyperscanEngine.compile(["aa", "aaa"])
    result = engine.match(b"aaaa")
    assert result.ends[0] == [1, 2, 3]
    assert result.ends[1] == [2, 3]

"""Hyperscan windowed confirmation: interval merging, line bounding,
and boundary exactness."""

import random

import pytest

from repro.engines.hyperscan import (HyperscanEngine, excludes_newline,
                                     max_match_length, merge_intervals)
from repro.regex.parser import parse

from ..conftest import oracle_end_positions


def test_merge_intervals():
    assert merge_intervals([(5, 9), (0, 3), (2, 6)]) == [(0, 9)]
    assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]
    assert merge_intervals([]) == []
    assert merge_intervals([(1, 4), (4, 6)]) == [(1, 6)]


def test_max_match_length():
    assert max_match_length(parse("abc")) == 3
    assert max_match_length(parse("a{2,5}b")) == 6
    assert max_match_length(parse("ab|cdef")) == 4
    assert max_match_length(parse("a*")) is None
    assert max_match_length(parse("a{2,}")) is None
    assert max_match_length(parse("()*")) == 0


def test_excludes_newline():
    assert excludes_newline(parse("abc.*def"))       # dot excludes \n
    assert not excludes_newline(parse("ab\\ncd"))
    assert not excludes_newline(parse("ab[^x]cd"))   # [^x] includes \n


def test_confirmation_window_exact_at_edges():
    # Matches at the very start and very end of the input.
    engine = HyperscanEngine.compile(["ab[0-9]cd"])
    for data in (b"ab5cd tail", b"head ab5cd", b"ab5cd"):
        want = oracle_end_positions("ab[0-9]cd", data)
        assert sorted(engine.match(data).ends[0]) == want, data


def test_line_window_confirmation_correct():
    # Unbounded .* pattern, matches confined to lines.
    pattern = "start.*end"
    engine = HyperscanEngine.compile([pattern])
    data = b"x start middle end y\nstart\nnope end\nstart end"
    assert sorted(engine.match(data).ends[0]) == \
        oracle_end_positions(pattern, data)
    assert engine.last_stats.confirmable_patterns == 1


def test_line_window_does_not_cross_newlines():
    engine = HyperscanEngine.compile(["ab.*cd"])
    data = b"ab\ncd"          # split across lines: no match
    assert engine.match(data).ends[0] == []


def test_overlapping_windows_merge():
    engine = HyperscanEngine.compile(["ab[0-9]{0,3}ab"])
    data = b"ab1ab2ab3ab"     # dense hits -> merged windows, exact ends
    want = oracle_end_positions("ab[0-9]{0,3}ab", data)
    assert sorted(engine.match(data).ends[0]) == want
    assert engine.last_stats.confirm_windows >= 1


def test_confirm_bytes_less_than_full_scan_on_sparse_input():
    engine = HyperscanEngine.compile(["needle[0-9]{2}tail"])
    data = b"x" * 5000 + b"needle42tail" + b"x" * 5000
    result = engine.match(data)
    assert result.ends[0] == [5011]
    stats = engine.last_stats
    assert stats.confirm_bytes < len(data) // 10, \
        "confirmation touches a tiny fraction of a sparse input"


def test_randomised_confirmation_equivalence(rng):
    patterns = ["ab[0-9]{1,2}cd", "x.*y", "foo[a-z]bar"]
    engine = HyperscanEngine.compile(patterns)
    for _ in range(15):
        n = rng.randrange(0, 120)
        data = bytes(rng.choice(b"abcdxy019 fo\n") for _ in range(n))
        result = engine.match(data)
        for index, pattern in enumerate(patterns):
            assert sorted(result.ends[index]) == \
                oracle_end_positions(pattern, data), (pattern, data)

"""RetryPolicy backoff math and ScanAbortedError plumbing."""

from __future__ import annotations

import random

import pytest

from repro.parallel.config import ScanConfig
from repro.parallel.report import ShardFault
from repro.resilience.policy import (ON_FAULT_POLICIES, RetryPolicy,
                                     ScanAbortedError)


def test_policy_vocabulary_matches_config():
    from repro.parallel import config

    assert ON_FAULT_POLICIES == config.ON_FAULT_POLICIES
    assert ON_FAULT_POLICIES == ("degrade", "retry", "fail")


def test_delays_double_without_jitter():
    policy = RetryPolicy(max_retries=4, backoff_s=0.1, jitter=0.0)
    assert policy.delay_s(1) == pytest.approx(0.1)
    assert policy.delay_s(2) == pytest.approx(0.2)
    assert policy.delay_s(3) == pytest.approx(0.4)
    assert policy.delay_s(4) == pytest.approx(0.8)


def test_jitter_is_additive_only():
    policy = RetryPolicy(max_retries=1, backoff_s=0.1, jitter=0.5)
    rng = random.Random(42)
    for _ in range(50):
        delay = policy.delay_s(1, rng)
        assert 0.1 <= delay <= 0.1 * 1.5 + 1e-9


def test_delay_cap():
    policy = RetryPolicy(max_retries=10, backoff_s=1.0, jitter=0.0,
                         max_delay_s=3.0)
    assert policy.delay_s(10) == 3.0


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_s=-0.1)


def test_from_config():
    config = ScanConfig(max_retries=5, retry_backoff=0.25)
    policy = RetryPolicy.from_config(config)
    assert policy.max_retries == 5
    assert policy.backoff_s == 0.25


def test_scan_aborted_error_carries_the_fault():
    fault = ShardFault(shard=2, kind="timeout", error="worker exceeded 1s",
                       fallback="abort")
    error = ScanAbortedError(fault)
    assert error.fault is fault
    assert "shard 2" in str(error)
    assert "timeout" in str(error)


def test_config_validates_resilience_fields():
    with pytest.raises(ValueError):
        ScanConfig(on_fault="panic")
    with pytest.raises(ValueError):
        ScanConfig(max_retries=-1)
    with pytest.raises(ValueError):
        ScanConfig(retry_backoff=-1.0)
    with pytest.raises(ValueError):
        ScanConfig(deadline_s=0)
    assert ScanConfig(on_fault="retry", deadline_s=1.5).deadline_s == 1.5

"""Deadline: one monotonic budget for every blocking wait."""

from __future__ import annotations

import pytest

from repro.resilience.deadline import Deadline


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_start_propagates_none():
    assert Deadline.start(None) is None
    assert Deadline.start(1.0) is not None


def test_budget_must_be_positive():
    with pytest.raises(ValueError):
        Deadline(0)
    with pytest.raises(ValueError):
        Deadline(-1.0)


def test_remaining_decrements_with_the_clock():
    clock = FakeClock()
    deadline = Deadline(2.0, clock=clock)
    assert deadline.remaining() == pytest.approx(2.0)
    clock.advance(0.5)
    assert deadline.remaining() == pytest.approx(1.5)
    assert not deadline.expired()
    clock.advance(1.5)
    assert deadline.expired()
    clock.advance(1.0)
    assert deadline.remaining() == pytest.approx(-1.0)


def test_wait_budget_is_min_of_timeout_and_remaining():
    clock = FakeClock()
    deadline = Deadline(2.0, clock=clock)
    # per-wait timeout smaller than the budget: timeout wins
    assert deadline.wait_budget(0.5) == pytest.approx(0.5)
    # unbounded per-wait timeout: the budget caps it
    assert deadline.wait_budget(None) == pytest.approx(2.0)
    clock.advance(1.9)
    assert deadline.wait_budget(0.5) == pytest.approx(0.1)


def test_expired_deadline_floors_waits_at_zero():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    clock.advance(5.0)
    assert deadline.wait_budget(10.0) == 0.0
    assert deadline.wait_budget(None) == 0.0

"""The chaos framework: plans, the spec grammar, seeded draws,
suppression, and the legacy-env shim."""

from __future__ import annotations

import pytest

from repro.resilience import chaos
from repro.resilience.chaos import (ChaosPlan, ChaosRule, InjectedFault,
                                    _ChaosState)


@pytest.fixture(autouse=True)
def clean_chaos(monkeypatch):
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    monkeypatch.delenv(chaos.LEGACY_FAULT_ENV, raising=False)
    chaos.reset()
    yield
    chaos.reset()


# -- rules and plans ---------------------------------------------------------


def test_rule_validation():
    with pytest.raises(ValueError):
        ChaosRule(site="worker.*", kind="meteor")
    with pytest.raises(ValueError):
        ChaosRule(site="worker.*", kind="exception", probability=1.5)
    with pytest.raises(ValueError):
        ChaosRule(site="worker.*", kind="exception", max_count=0)


def test_rule_site_globbing():
    rule = ChaosRule(site="worker.*", kind="exception")
    assert rule.matches("worker.stream")
    assert rule.matches("worker.cell")
    assert not rule.matches("pool.acquire")
    exact = ChaosRule(site="pool.acquire", kind="pool")
    assert exact.matches("pool.acquire")
    assert not exact.matches("pool.acquire.retry")


def test_spec_round_trip():
    plan = ChaosPlan(seed=7, rules=(
        ChaosRule(site="worker.*", kind="exception", probability=0.05),
        ChaosRule(site="pool.acquire", kind="pool", probability=0.1,
                  max_count=2)))
    spec = plan.to_spec()
    assert spec == "seed=7;worker.*:exception:0.05;pool.acquire:pool:0.1:2"
    assert ChaosPlan.parse(spec) == plan


def test_parse_rejects_malformed_specs():
    for bad in ("", "seed=7", "worker.*", "worker.*:exception:x",
                "worker.*:exception:0.5:x", "seed=x;worker.*:exception",
                "worker.*:exception:0.5:1:extra"):
        with pytest.raises(ValueError):
            ChaosPlan.parse(bad)


def test_parse_defaults():
    plan = ChaosPlan.parse("worker.stream:timeout")
    assert plan.seed == 0
    rule, = plan.rules
    assert rule.probability == 1.0
    assert rule.max_count is None


# -- seeded draws ------------------------------------------------------------


def test_same_seed_same_draw_sequence():
    plan = ChaosPlan(seed=1234, rules=(
        ChaosRule(site="worker.*", kind="exception", probability=0.3),))
    runs = []
    for _ in range(2):
        state = _ChaosState(plan)
        runs.append([state.draw("worker.stream") for _ in range(200)])
    assert runs[0] == runs[1]
    fired = sum(1 for kind in runs[0] if kind)
    assert 20 < fired < 100          # ~60 expected at p=0.3


def test_max_count_bounds_injections():
    plan = ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="exception", max_count=2),))
    state = _ChaosState(plan)
    kinds = [state.draw("worker.stream") for _ in range(10)]
    assert kinds.count("exception") == 2
    assert state.injections() == 2


def test_first_matching_firing_rule_wins():
    plan = ChaosPlan(rules=(
        ChaosRule(site="worker.stream", kind="timeout", max_count=1),
        ChaosRule(site="worker.*", kind="exception"),))
    state = _ChaosState(plan)
    assert state.draw("worker.stream") == "timeout"
    assert state.draw("worker.stream") == "exception"  # first rule spent
    assert state.draw("worker.group") == "exception"


# -- arming / injection ------------------------------------------------------


def test_nothing_armed_is_a_no_op():
    assert not chaos.armed()
    chaos.maybe_inject("worker.stream")   # must not raise
    assert chaos.injection_count() == 0


def test_installed_plan_injects_and_counts():
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="exception"),)))
    assert chaos.armed()
    with pytest.raises(InjectedFault, match="worker.stream"):
        chaos.maybe_inject("worker.stream")
    chaos.maybe_inject("pool.acquire")    # site not matched: no-op
    assert chaos.injection_count() == 1
    chaos.uninstall()
    assert not chaos.armed()


def test_env_spec_arms(monkeypatch):
    monkeypatch.setenv(chaos.CHAOS_ENV,
                       "seed=3;pool.acquire:pool:1.0:1")
    assert chaos.armed()
    with pytest.raises(InjectedFault):
        chaos.maybe_inject("pool.acquire")
    chaos.maybe_inject("pool.acquire")    # max_count=1 exhausted
    assert chaos.injection_count() == 1


def test_env_respec_rearms(monkeypatch):
    monkeypatch.setenv(chaos.CHAOS_ENV, "worker.*:exception:0")
    chaos.maybe_inject("worker.stream")   # p=0: never fires
    monkeypatch.setenv(chaos.CHAOS_ENV, "worker.*:exception:1")
    with pytest.raises(InjectedFault):
        chaos.maybe_inject("worker.stream")


def test_legacy_env_shim(monkeypatch):
    monkeypatch.setenv(chaos.LEGACY_FAULT_ENV, "1")
    assert chaos.armed()
    with pytest.raises(InjectedFault):
        chaos.maybe_inject("worker.group")
    chaos.maybe_inject("pool.acquire")    # legacy hook is worker-only
    monkeypatch.setenv(chaos.LEGACY_FAULT_ENV, "timeout")
    monkeypatch.setenv(chaos.SLEEP_ENV, "0.01")
    chaos.maybe_inject("worker.stream")   # sleeps, does not raise


def test_installed_plan_wins_over_env(monkeypatch):
    monkeypatch.setenv(chaos.CHAOS_ENV, "worker.*:timeout")
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="exception"),)))
    with pytest.raises(InjectedFault):
        chaos.maybe_inject("worker.stream")


def test_suppress_blocks_injection():
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="exception"),)))
    with chaos.suppress():
        chaos.maybe_inject("worker.stream")   # no raise
        with chaos.suppress():
            chaos.maybe_inject("worker.stream")
        chaos.maybe_inject("worker.stream")   # still suppressed
    with pytest.raises(InjectedFault):
        chaos.maybe_inject("worker.stream")


def test_sleep_seconds_env(monkeypatch):
    monkeypatch.setenv(chaos.SLEEP_ENV, "0.125")
    assert chaos.sleep_seconds() == 0.125
    monkeypatch.setenv(chaos.SLEEP_ENV, "not-a-float")
    assert chaos.sleep_seconds() == chaos.DEFAULT_SLEEP_SECONDS
    monkeypatch.delenv(chaos.SLEEP_ENV)
    assert chaos.sleep_seconds() == chaos.DEFAULT_SLEEP_SECONDS

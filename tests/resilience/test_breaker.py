"""CircuitBreaker state machine: closed -> open -> half-open probe."""

from __future__ import annotations

import pytest

from repro import obs
from repro.resilience.breaker import (CLOSED, HALF_OPEN, OPEN,
                                      STATE_CODES, CircuitBreaker)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(threshold=3, cooldown=10.0, clock=None, name="test-breaker"):
    return CircuitBreaker(name=name, threshold=threshold,
                          cooldown_s=cooldown,
                          clock=clock if clock is not None else FakeClock())


def test_starts_closed_and_allows():
    breaker = make()
    assert breaker.state() == CLOSED
    assert breaker.allow()
    assert breaker.failures() == 0


def test_opens_after_threshold_consecutive_failures():
    breaker = make(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state() == CLOSED
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state() == OPEN
    assert not breaker.allow()


def test_success_resets_the_consecutive_count():
    breaker = make(threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state() == CLOSED
    assert breaker.failures() == 1


def test_half_open_probe_after_cooldown():
    clock = FakeClock()
    breaker = make(threshold=1, cooldown=10.0, clock=clock)
    breaker.record_failure()
    assert breaker.state() == OPEN
    assert not breaker.allow()
    clock.advance(9.9)
    assert not breaker.allow()
    clock.advance(0.2)
    # The first allow() after the cooldown IS the probe...
    assert breaker.allow()
    assert breaker.state() == HALF_OPEN
    # ...and exactly one probe flies at a time.
    assert not breaker.allow()


def test_probe_success_closes():
    clock = FakeClock()
    breaker = make(threshold=1, cooldown=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.5)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state() == CLOSED
    assert breaker.allow()


def test_probe_failure_reopens_and_restarts_cooldown():
    clock = FakeClock()
    breaker = make(threshold=1, cooldown=10.0, clock=clock)
    breaker.record_failure()
    clock.advance(10.5)
    assert breaker.allow()          # probe
    breaker.record_failure()        # probe failed
    assert breaker.state() == OPEN
    clock.advance(9.0)              # cooldown restarted at the re-open
    assert not breaker.allow()
    clock.advance(1.5)
    assert breaker.allow()


def test_reset_returns_to_clean_closed():
    breaker = make(threshold=1)
    breaker.record_failure()
    assert breaker.state() == OPEN
    breaker.reset()
    assert breaker.state() == CLOSED
    assert breaker.failures() == 0
    assert breaker.allow()


def test_state_gauge_tracks_transitions():
    gauge = obs.registry().gauge(
        "repro_breaker_state",
        "Circuit-breaker state by name: 0 closed, 1 open, 2 half-open")
    clock = FakeClock()
    breaker = make(threshold=1, cooldown=1.0, clock=clock,
                   name="gauge-probe")
    assert gauge.value(name="gauge-probe") == STATE_CODES[CLOSED]
    breaker.record_failure()
    assert gauge.value(name="gauge-probe") == STATE_CODES[OPEN]
    clock.advance(2.0)
    breaker.allow()
    assert gauge.value(name="gauge-probe") == STATE_CODES[HALF_OPEN]
    breaker.record_success()
    assert gauge.value(name="gauge-probe") == STATE_CODES[CLOSED]


def test_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_s=-1.0)

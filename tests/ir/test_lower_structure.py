"""Structural checks on lowered programs (the paper's Figure 2 /
Listing 3 shapes)."""

import pytest

from repro.ir.instructions import Instr, Op, WhileLoop, iter_instrs
from repro.ir.lower import LoweringError, lower_group, lower_regex
from repro.regex.parser import parse


def ops_of(program):
    return [i.op for i in iter_instrs(program.statements)]


def test_single_char_shape():
    # match(cc) ops + one AND with the initial marker + one advance
    program = lower_regex(parse("a"))
    ops = ops_of(program)
    assert ops.count(Op.SHIFT) == 1
    assert program.while_count() == 0


def test_listing3_star_shape():
    # /a(bc)*d/: one while loop whose body applies two shifted ANDs
    # (the two character classes of the star body) plus the fixpoint
    # bookkeeping (ANDN of the accumulator, OR accumulate, two copies).
    program = lower_regex(parse("a(bc)*d"))
    loops = [s for s in program.statements if isinstance(s, WhileLoop)]
    assert len(loops) == 1
    body_ops = [i.op for i in iter_instrs(loops[0].body)]
    assert body_ops.count(Op.SHIFT) == 2
    assert Op.ANDN in body_ops
    assert body_ops.count(Op.COPY) == 2   # frontier and accumulator


def test_bounded_repetition_unrolls():
    # R{2,4}: 2 mandatory + 2 optional applications, OR-accumulated
    two_to_four = lower_regex(parse("a{2,4}"))
    exact_two = lower_regex(parse("a{2}"))
    assert ops_of(two_to_four).count(Op.SHIFT) == 4
    assert ops_of(exact_two).count(Op.SHIFT) == 2
    assert ops_of(two_to_four).count(Op.OR) - \
        ops_of(exact_two).count(Op.OR) == 2


def test_open_bound_becomes_star():
    program = lower_regex(parse("a{2,}"))
    assert program.while_count() == 1


def test_anchor_uses_const_streams():
    program = lower_regex(parse("^a$"))
    consts = {i.const for i in iter_instrs(program.statements)
              if i.op is Op.CONST}
    assert "start" in consts
    assert "end" in consts


def test_alternation_is_or():
    program = lower_regex(parse("ab|cd"))
    assert Op.OR in ops_of(program)


def test_group_outputs_named_by_index():
    program = lower_group([parse("a"), parse("b")], names=["R3", "R9"])
    assert set(program.outputs) == {"R3", "R9"}


def test_group_name_mismatch_rejected():
    with pytest.raises(ValueError):
        lower_group([parse("a")], names=["R0", "R1"])


def test_shared_class_lowered_once():
    # both regexes use [0-9]; the match stream must be computed once
    program = lower_group([parse("[0-9]a"), parse("[0-9]b")])
    single = lower_group([parse("[0-9]a")])
    other = lower_group([parse("[0-9]b")])
    assert program.instruction_count() < \
        single.instruction_count() + other.instruction_count()


def test_programs_validate_for_benchmark_generators():
    import random

    from repro.workloads import generators as gen

    rng = random.Random(3)
    for maker in (gen.brill_pattern, gen.snort_pattern,
                  gen.protein_pattern, gen.dotstar_pattern):
        program = lower_group([parse(maker(rng, 30)) for _ in range(3)])
        program.validate()
        assert program.outputs

"""Copy propagation and dead-code elimination."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.zeroskip import insert_guards
from repro.ir.instructions import Instr, Op, SkipGuard, iter_instrs
from repro.ir.interpreter import Interpreter
from repro.ir.lower import lower_group, lower_regex
from repro.ir.optimize import optimize_program
from repro.ir.program import Program, ProgramBuilder
from repro.regex.parser import parse

from ..conftest import random_text


def count_instrs(program):
    return program.instruction_count()


def run(program, data, honour_guards=False):
    return Interpreter(honour_guards=honour_guards).run(program, data)


def test_removes_dead_code():
    builder = ProgramBuilder("dead")
    a = builder.match_cc(parse("a").cc)
    b = builder.match_cc(parse("b").cc)   # never used downstream
    live = builder.advance(a, 1)
    builder.mark_output("R", live)
    program = builder.finish()
    optimized = optimize_program(program)
    assert count_instrs(optimized) < count_instrs(program)
    data = b"abab"
    assert run(program, data)["R"] == run(optimized, data)["R"]


def test_propagates_copies():
    builder = ProgramBuilder("copies")
    a = builder.match_cc(parse("a").cc)
    c1 = builder.copy(a)
    # a COPY of an immutable value should disappear entirely
    builder.mark_output("R", builder.advance(c1, 1))
    # never reassigned, so c1 is effectively immutable... but copy()
    # marks it mutable; build the chain manually instead:
    program = builder.finish()
    statements = [s for s in program.statements]
    statements.append(Instr("t_alias", Op.COPY, (a,)))
    statements.append(Instr("t_use", Op.SHIFT, ("t_alias",), shift=1))
    program2 = Program("manual", statements, {"R": "t_use"})
    optimized = optimize_program(program2)
    ops = [i.op for i in iter_instrs(optimized.statements)]
    assert Op.COPY not in ops


def test_loop_carried_copies_survive():
    program = lower_regex(parse("a(bc)*d"))
    optimized = optimize_program(program)
    data = b"abcbcd ad xx"
    assert run(program, data)["R0"] == run(optimized, data)["R0"]
    assert optimized.while_count() == 1


def test_outputs_never_removed():
    program = lower_regex(parse("abc"))
    optimized = optimize_program(program)
    assert set(optimized.outputs) == set(program.outputs)
    optimized.validate()


def test_guard_skip_counts_stay_aligned():
    program = insert_guards(lower_regex(parse("abcdef")), interval=2)
    optimized = optimize_program(program)
    optimized.validate()
    data = b"zz abcdef zz abcde"
    plain = run(optimized, data, honour_guards=False)
    honoured = run(optimized, data, honour_guards=True)
    assert plain["R0"] == honoured["R0"]


def test_idempotent():
    program = optimize_program(lower_regex(parse("a(b|c)*d")))
    again = optimize_program(program)
    assert count_instrs(again) == count_instrs(program)


PATTERNS = ["abc", "a(bc)*d", "(ab|cd)+e", "a{2,4}b", "x?y?z",
            "[ab]c[de]", "a(b(c|d))*e"]


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(PATTERNS), st.integers(min_value=0, max_value=2**32))
def test_optimize_equivalence_property(pattern, seed):
    rng = random.Random(seed)
    data = random_text(rng, rng.randrange(0, 50), "abcdez")
    program = lower_group([parse(pattern)])
    optimized = optimize_program(program)
    assert run(program, data)["R0"] == run(optimized, data)["R0"], \
        f"{pattern!r} on {data!r}"


def test_optimize_shrinks_group_programs():
    nodes = [parse(p) for p in PATTERNS]
    program = lower_group(nodes)
    optimized = optimize_program(program)
    assert count_instrs(optimized) <= count_instrs(program)

"""Character-class compiler: compiled boolean ops must equal membership."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.bitstream.bitvector import BitVector
from repro.ir.cc_compiler import CCCompiler
from repro.ir.interpreter import Interpreter, make_environment
from repro.ir.program import ProgramBuilder
from repro.regex.charclass import CharClass


def compile_and_run(cc: CharClass, data: bytes) -> BitVector:
    builder = ProgramBuilder("cc_test")
    compiler = CCCompiler(builder)
    var = compiler.compile(cc)
    builder.mark_output("cc", var)
    program = builder.finish()
    return Interpreter().run(program, data)["cc"]


def expected_stream(cc: CharClass, data: bytes) -> BitVector:
    positions = [i for i, byte in enumerate(data) if cc.contains(byte)]
    return BitVector.from_positions(positions, len(data) + 1)


ALL_BYTES = bytes(range(256))


def test_single_char():
    assert compile_and_run(CharClass.of_char("a"), b"banana") == \
        expected_stream(CharClass.of_char("a"), b"banana")


def test_range_class():
    cc = CharClass.range("a", "z")
    data = b"Hello, World! 123"
    assert compile_and_run(cc, data) == expected_stream(cc, data)


def test_negated_class_handles_padding():
    # [^a] contains NUL, so the final cursor slot must stay 0.
    cc = CharClass.of_char("a").complement()
    data = b"aba"
    result = compile_and_run(cc, data)
    assert result == expected_stream(cc, data)
    assert not result.test(len(data))  # no phantom match at the cursor slot


def test_any_byte_class():
    cc = CharClass.any_byte()
    data = b"xyz"
    result = compile_and_run(cc, data)
    assert result.positions() == [0, 1, 2]


def test_empty_class():
    assert not compile_and_run(CharClass.empty(), b"abc").any()


def test_exhaustive_over_all_bytes():
    for cc in [CharClass.of_char("a"), CharClass.range("0", "9"),
               CharClass(((0, 10), (250, 255))),
               CharClass.dot(), CharClass.of_chars("\x00\xff")]:
        assert compile_and_run(cc, ALL_BYTES) == expected_stream(cc, ALL_BYTES)


def test_shared_subexpressions_deduplicated():
    builder = ProgramBuilder("cse")
    compiler = CCCompiler(builder)
    v1 = compiler.compile(CharClass.of_char("a"))
    v2 = compiler.compile(CharClass.of_char("a"))
    assert v1 == v2
    # 'a' (0x61) and 'q' (0x71) share their low four bit planes, so the
    # Shannon suffix expressions are reused.
    baseline = builder.program.instruction_count()
    compiler.compile(CharClass.of_char("q"))
    grown = builder.program.instruction_count() - baseline
    fresh_builder = ProgramBuilder("solo")
    CCCompiler(fresh_builder).compile(CharClass.of_char("q"))
    solo = fresh_builder.program.instruction_count()
    assert grown < solo


@given(st.sets(st.integers(min_value=0, max_value=255), max_size=30))
def test_arbitrary_classes(values):
    cc = CharClass(tuple((v, v) for v in values))
    data = bytes(random.Random(42).randrange(256) for _ in range(64))
    assert compile_and_run(cc, data) == expected_stream(cc, data)


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255))
def test_arbitrary_ranges(a, b):
    lo, hi = min(a, b), max(a, b)
    cc = CharClass(((lo, hi),))
    assert compile_and_run(cc, ALL_BYTES) == expected_stream(cc, ALL_BYTES)

"""Cross-pattern prologue factoring (repro.ir.passes.factor)."""

from repro.core.zeroskip import insert_guards
from repro.ir.instructions import Instr, Op, WhileLoop, iter_instrs
from repro.ir.interpreter import Interpreter
from repro.ir.lower import lower_group
from repro.ir.passes import factor_prologue
from repro.ir.program import Program
from repro.regex.parser import parse


def run(program, data):
    return Interpreter().run(program, data)


def _loop_program():
    """A loop recomputing an invariant AND every iteration."""
    cc_a = parse("a").cc
    cc_b = parse("b").cc
    statements = [
        Instr("sa", Op.MATCH_CC, (), cc=cc_a),
        Instr("sb", Op.MATCH_CC, (), cc=cc_b),
        Instr("m", Op.COPY, ("sa",)),
        WhileLoop("m", [
            Instr("inv", Op.OR, ("sa", "sb")),
            Instr("m", Op.ANDN, ("m", "inv")),
        ]),
        Instr("out", Op.OR, ("m", "sb")),
    ]
    return Program("licm", statements, {"R": "out"})


def test_licm_hoists_invariant_out_of_loop():
    program = _loop_program()
    optimized, changes = factor_prologue(program)
    assert changes > 0
    (loop,) = [s for s in optimized.statements
               if isinstance(s, WhileLoop)]
    body_dests = [s.dest for s in loop.body if isinstance(s, Instr)]
    assert "inv" not in body_dests
    top_dests = [s.dest for s in optimized.statements
                 if isinstance(s, Instr)]
    assert top_dests.index("inv") < len(optimized.statements) - 1
    data = b"abab"
    assert run(program, data)["R"] == run(optimized, data)["R"]


def test_loop_carried_definitions_stay_in_loop():
    program = _loop_program()
    optimized, _ = factor_prologue(program)
    (loop,) = [s for s in optimized.statements
               if isinstance(s, WhileLoop)]
    assert any(isinstance(s, Instr) and s.dest == "m"
               for s in loop.body)


def test_shared_prologue_groups_at_top():
    # Two member chains drawing from the same MATCH_CC pool, with the
    # shared definitions interleaved between per-pattern work.
    cc_a = parse("a").cc
    cc_b = parse("b").cc
    statements = [
        Instr("sa", Op.MATCH_CC, (), cc=cc_a),
        Instr("p0", Op.SHIFT, ("sa",), shift=1),
        Instr("sb", Op.MATCH_CC, (), cc=cc_b),
        Instr("p1", Op.AND, ("p0", "sb")),
        Instr("p2", Op.SHIFT, ("sb",), shift=1),
        Instr("p3", Op.AND, ("p2", "sa")),
    ]
    program = Program("prologue", statements, {"R0": "p1", "R1": "p3"})
    optimized, changes = factor_prologue(program)
    assert changes > 0
    dests = [s.dest for s in optimized.statements
             if isinstance(s, Instr)]
    # the MATCH_CC pool leads, member chains follow
    assert dests[:2] == ["sa", "sb"]
    data = b"abba"
    before, after = run(program, data), run(optimized, data)
    assert before["R0"] == after["R0"]
    assert before["R1"] == after["R1"]


def test_idempotent():
    program = _loop_program()
    once, changes = factor_prologue(program)
    assert changes > 0
    twice, rerun_changes = factor_prologue(once)
    assert rerun_changes == 0
    assert twice is once


def test_refuses_guarded_programs():
    program = lower_group([parse("a(bc)*d")], names=["R0"])
    guarded = insert_guards(program, interval=4)
    result, changes = factor_prologue(guarded)
    assert changes == 0
    assert result is guarded


def test_semantics_preserved_on_lowered_group():
    nodes = [parse("ab[cd]*e"), parse("ab[cd]*f"), parse("x(yz)+")]
    program = lower_group(nodes, names=["R0", "R1", "R2"])
    optimized, _ = factor_prologue(program)
    data = b"abcde abddf xyzyz abe"
    before, after = run(program, data), run(optimized, data)
    for name in ("R0", "R1", "R2"):
        assert before[name] == after[name]


def test_outputs_never_dropped():
    program = lower_group([parse("ab"), parse("cd")],
                          names=["R0", "R1"])
    optimized, _ = factor_prologue(program)
    assert set(optimized.outputs) == {"R0", "R1"}
    defined = {s.dest for s in iter_instrs(optimized.statements)}
    assert set(optimized.outputs.values()) <= defined | set(
        optimized.inputs)

"""End-to-end lowering + reference interpretation vs the brute-force oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.interpreter import Interpreter, match_positions, run_regexes
from repro.ir.lower import lower_group, lower_regex
from repro.regex.parser import parse

from ..conftest import oracle_end_positions, random_text


def bitgen_ends(pattern: str, data: bytes):
    return run_regexes([pattern], data)["R0"]


def check_against_oracle(pattern: str, data: bytes):
    got = bitgen_ends(pattern, data)
    want = oracle_end_positions(pattern, data)
    assert got == want, (
        f"pattern={pattern!r} data={data!r}: got {got}, want {want}")


# -- paper examples -----------------------------------------------------------

def test_paper_cat_example():
    # Section 2: /cat/ on "bobcat" -> S_cat = 000001
    assert bitgen_ends("cat", b"bobcat") == [5]


def test_paper_figure3_example():
    # Figure 3: /(abc)|d/ on "abcdabce" matches at positions 2, 3, 6
    assert bitgen_ends("(abc)|d", b"abcdabce") == [2, 3, 6]


def test_paper_listing3_example():
    # Listing 3: /a(bc)*d/
    assert bitgen_ends("a(bc)*d", b"adxabcbcd") == [1, 8]


# -- directed coverage ---------------------------------------------------------

DIRECTED_CASES = [
    ("a", b"banana"),
    ("ab", b"ababab"),
    ("a*b", b"aaab b"),
    ("(ab)*c", b"ababc c abc"),
    ("a|bc", b"xabcx"),
    ("a+", b"aaa"),
    ("a?b", b"ab b"),
    ("[a-c]+d", b"abcd bd xd"),
    ("a{2,3}", b"aaaa"),
    ("a{2,}", b"aaaa"),
    ("a{3}", b"aaaa"),
    ("(a|b){2}c", b"abc bac aac"),
    (".a", b"xa\na"),
    ("a.c", b"abc a\nc axc"),
    ("(ab|a)b", b"abb ab"),
    ("x(yz)*", b"xyzyz x"),
    ("[^a]b", b"ab bb cb"),
    ("(a*)(b*)", b"aabb"),
    ("(ab*)+", b"abbab"),
    ("a(b|c)*d", b"abcbcd ad axd"),
]


@pytest.mark.parametrize("pattern,data", DIRECTED_CASES,
                         ids=[p for p, _ in DIRECTED_CASES])
def test_directed_vs_oracle(pattern, data):
    check_against_oracle(pattern, data)


def test_empty_input():
    assert bitgen_ends("a", b"") == []
    assert bitgen_ends("a*", b"") == []


def test_empty_regex_matches_nothing_nonempty():
    # The empty regex only makes empty matches, which are not reported.
    assert bitgen_ends("", b"abc") == []


def test_anchors_start():
    outs = run_regexes(["^ab"], b"abab")
    assert outs["R0"] == [1]


def test_anchors_end():
    outs = run_regexes(["ab$"], b"abab")
    assert outs["R0"] == [3]


def test_anchors_both():
    assert run_regexes(["^abc$"], b"abc")["R0"] == [2]
    assert run_regexes(["^abc$"], b"xabc")["R0"] == []


def test_multi_regex_group_shares_ccs():
    group = lower_group([parse("abc"), parse("abd"), parse("a[bc]e")])
    outputs = Interpreter().run(group, b"abc abd abe ace")
    ends = match_positions(outputs)
    assert ends["R0"] == [2]
    assert ends["R1"] == [6]
    assert ends["R2"] == [10, 14]


def test_group_smaller_than_separate_programs():
    patterns = ["abc", "abd", "abe"]
    group = lower_group([parse(p) for p in patterns])
    separate = sum(lower_regex(parse(p)).instruction_count()
                   for p in patterns)
    assert group.instruction_count() < separate


def test_binary_bytes():
    data = bytes([0, 1, 2, 0xFF, 0, 1])
    outs = run_regexes([r"\x00\x01"], data)
    assert outs["R0"] == [1, 5]


def test_long_star_chain():
    data = b"a" + b"bc" * 50 + b"d"
    assert bitgen_ends("a(bc)*d", data) == [len(data) - 1]


def test_loop_iteration_counts_recorded():
    interp = Interpreter()
    program = lower_regex(parse("a(bc)*d"))
    interp.run(program, b"a" + b"bc" * 10 + b"d")
    assert interp.loop_iteration_counts
    assert max(interp.loop_iteration_counts) >= 10


# -- randomized property tests ---------------------------------------------------

PATTERN_POOL = [
    "a", "ab", "a*", "(ab)*a", "a|b", "[ab]c", "a+b", "a?b?c",
    "(a|b)*c", "a{1,3}b", "ab|ba", "a(ba)*b", "[abc]{2}", "(ab|ba)*c",
    "c(a|b)+", "a.b", "(a|b)(c|d)", "ab{2,4}", "(abc)|(cba)", "a[^b]c",
]


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(PATTERN_POOL), st.integers(min_value=0, max_value=2**32))
def test_random_inputs_vs_oracle(pattern, seed):
    rng = random.Random(seed)
    data = random_text(rng, rng.randrange(0, 40), "abcd")
    check_against_oracle(pattern, data)


@settings(max_examples=30, deadline=None)
@given(st.text(alphabet="abc", max_size=25))
def test_literal_patterns_any_text(text):
    rng = random.Random(1234)
    data = random_text(rng, 30, "abc")
    pattern = "abc"
    check_against_oracle(pattern, data)


def test_validate_accepts_lowered_programs():
    for pattern in PATTERN_POOL:
        program = lower_regex(parse(pattern))
        program.validate()
        assert program.render()

"""Program representation, builder CSE, validation, and DFG tests."""

import pytest

from repro.ir.dfg import RegionDFG, split_regions
from repro.ir.instructions import (CONST_ONES, Instr, Op, SkipGuard,
                                   WhileLoop, count_ops)
from repro.ir.lower import lower_regex
from repro.ir.program import Program, ProgramBuilder
from repro.regex.charclass import CharClass
from repro.regex.parser import parse


# -- instruction construction -----------------------------------------------------

def test_instr_arity_checked():
    with pytest.raises(ValueError):
        Instr("x", Op.AND, ("a",))
    with pytest.raises(ValueError):
        Instr("x", Op.NOT, ("a", "b"))


def test_zero_shift_rejected():
    with pytest.raises(ValueError):
        Instr("x", Op.SHIFT, ("a",), shift=0)


def test_bad_const_kind():
    with pytest.raises(ValueError):
        Instr("x", Op.CONST, const="whatever")


def test_match_cc_needs_class():
    with pytest.raises(ValueError):
        Instr("x", Op.MATCH_CC)


def test_render_forms():
    assert Instr("x", Op.SHIFT, ("a",), shift=2).render() == "x = a >> 2"
    assert Instr("x", Op.SHIFT, ("a",), shift=-2).render() == "x = a << 2"
    assert Instr("x", Op.ANDN, ("a", "b")).render() == "x = a &~ b"
    assert SkipGuard("c", 3).render() == "if (!c) goto +3"


def test_count_ops_categories():
    stmts = [Instr("a", Op.ANDN, ("b0", "b1")),
             Instr("b", Op.XOR, ("a", "b0")),
             WhileLoop("b", [Instr("b", Op.SHIFT, ("b",), shift=1)])]
    counts = count_ops(stmts)
    assert counts == {"and": 1, "or": 1, "not": 1, "shift": 1, "while": 1}


# -- builder CSE --------------------------------------------------------------------

def test_builder_dedups_pure_expressions():
    builder = ProgramBuilder("cse")
    x = builder.and_("b0", "b1")
    y = builder.and_("b1", "b0")   # AND is commutative in the key
    assert x == y
    z = builder.or_("b0", "b1")
    assert z != x


def test_builder_does_not_dedupe_mutable():
    builder = ProgramBuilder("mut")
    a = builder.copy(builder.ones())
    x = builder.not_(a)
    builder.assign(a, x)
    y = builder.not_(a)
    assert x != y, "values of reassigned variables are iteration-local"


def test_builder_cache_not_poisoned_by_loop_definitions():
    builder = ProgramBuilder("loop")
    cond = builder.copy(builder.ones())
    with builder.while_loop(cond):
        inner = builder.and_("b0", "b1")
        builder.assign(cond, builder.zeros())
    outer = builder.and_("b0", "b1")
    # The loop-internal value may never execute; the top-level use must
    # get its own definition.
    assert outer != inner
    builder.mark_output("R", outer)
    builder.finish().validate()


# -- validation ----------------------------------------------------------------------

def test_validate_undefined_operand():
    program = Program("bad", [Instr("x", Op.NOT, ("ghost",))], {})
    with pytest.raises(ValueError):
        program.validate()


def test_validate_undefined_output():
    program = Program("bad", [], {"R": "ghost"})
    with pytest.raises(ValueError):
        program.validate()


def test_validate_guard_overruns():
    program = Program("bad", [
        Instr("a", Op.CONST, const=CONST_ONES),
        SkipGuard("a", 5),
    ], {})
    with pytest.raises(ValueError):
        program.validate()


def test_validate_guard_over_loop():
    program = Program("bad", [
        Instr("a", Op.CONST, const=CONST_ONES),
        SkipGuard("a", 1),
        WhileLoop("a", []),
    ], {})
    with pytest.raises(ValueError):
        program.validate()


def test_render_and_variables():
    program = lower_regex(parse("a(b)*c"))
    text = program.render()
    assert "while (" in text
    assert "# output R0" in text
    names = program.variables()
    assert len(names) == len(set(names))


# -- region DFG ---------------------------------------------------------------------

def region_of(pattern):
    program = lower_regex(parse(pattern))
    regions = split_regions(program.statements)
    return max(regions, key=len)


def test_split_regions_boundaries():
    program = lower_regex(parse("a(b)*c"))
    regions = split_regions(program.statements)
    assert len(regions) >= 3  # before loop, body, after loop


def test_dfg_producers_and_consumers():
    instrs = [Instr("a", Op.NOT, ("b0",)),
              Instr("b", Op.SHIFT, ("a",), shift=1),
              Instr("c", Op.AND, ("a", "b"))]
    dfg = RegionDFG.build(instrs)
    assert dfg.producers[0] == (None,)          # region input
    assert dfg.producers[1] == (0,)
    assert dfg.producers[2] == (0, 1)
    assert (2, 0) in dfg.consumers[0]
    assert dfg.external_uses == {"b0": [(0, 0)]}


def test_dfg_depth_and_critical_path():
    instrs = [Instr("a", Op.NOT, ("b0",)),
              Instr("b", Op.NOT, ("a",)),
              Instr("c", Op.NOT, ("b1",))]
    dfg = RegionDFG.build(instrs)
    assert dfg.depth(0) == 1
    assert dfg.depth(1) == 2
    assert dfg.depth(2) == 1
    assert dfg.critical_path_length() == 2


def test_dfg_redefinition_uses_latest():
    instrs = [Instr("a", Op.NOT, ("b0",)),
              Instr("a", Op.NOT, ("b1",)),
              Instr("c", Op.NOT, ("a",))]
    dfg = RegionDFG.build(instrs)
    assert dfg.producers[2] == (1,)

"""The opt_level-2 pass pipeline: CSE, algebraic folding, shift
coalescing — unit behaviour, guard/loop conservatism, fixpoint
idempotence, and bit-identity across optimization levels."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.zeroskip import insert_guards
from repro.ir.instructions import Instr, Op, SkipGuard, iter_instrs
from repro.ir.interpreter import Interpreter
from repro.ir.lower import lower_group, lower_regex
from repro.ir.optimize import optimize_program
from repro.ir.passes import (PipelineReport, coalesce_shift_chains,
                             eliminate_common_subexpressions,
                             optimize_pipeline, simplify_algebraic)
from repro.ir.program import Program
from repro.regex.charclass import CharClass
from repro.regex.parser import parse

from ..conftest import random_text

A = CharClass.of_char("a")
B = CharClass.of_char("b")


def run(program, data, honour_guards=False):
    return Interpreter(honour_guards=honour_guards).run(program, data)


def count_instrs(program):
    return program.instruction_count()


def ops_of(program):
    return [i.op for i in iter_instrs(program.statements)]


def prog(stmts, outputs):
    program = Program("t", list(stmts), dict(outputs))
    program.validate()
    return program


# -- CSE ----------------------------------------------------------------------


def test_cse_rewrites_duplicate_to_copy():
    program = prog([
        Instr("x", Op.MATCH_CC, cc=A),
        Instr("y", Op.MATCH_CC, cc=A),
        Instr("r", Op.AND, ("x", "y")),
    ], {"R": "r"})
    result, changes = eliminate_common_subexpressions(program)
    assert changes == 1
    dup = [i for i in iter_instrs(result.statements) if i.dest == "y"][0]
    assert dup.op is Op.COPY and dup.args == ("x",)
    assert run(program, b"aa")["R"] == run(result, b"aa")["R"]


def test_cse_commutative_operand_order():
    program = prog([
        Instr("x", Op.MATCH_CC, cc=A),
        Instr("y", Op.MATCH_CC, cc=B),
        Instr("p", Op.OR, ("x", "y")),
        Instr("q", Op.OR, ("y", "x")),
        Instr("r", Op.AND, ("p", "q")),
    ], {"R": "r"})
    result, changes = eliminate_common_subexpressions(program)
    assert changes == 1
    q = [i for i in iter_instrs(result.statements) if i.dest == "q"][0]
    assert q.op is Op.COPY and q.args == ("p",)


def test_cse_shift_is_not_commutative_sensitive():
    # Different shift distances must never merge.
    program = prog([
        Instr("x", Op.MATCH_CC, cc=A),
        Instr("p", Op.SHIFT, ("x",), shift=1),
        Instr("q", Op.SHIFT, ("x",), shift=2),
        Instr("r", Op.AND, ("p", "q")),
    ], {"R": "r"})
    _, changes = eliminate_common_subexpressions(program)
    assert changes == 0


def test_cse_keeps_statement_counts_for_guards():
    base = insert_guards(lower_regex(parse("abcdef")), interval=2)
    result, _ = eliminate_common_subexpressions(base)
    result.validate()
    guards = lambda p: [s for s in p.statements
                        if isinstance(s, SkipGuard)]
    assert [g.skip_count for g in guards(result)] \
        == [g.skip_count for g in guards(base)]
    data = b"xx abcdef abcde"
    assert run(result, data, honour_guards=True)["R0"] \
        == run(base, data, honour_guards=False)["R0"]


def test_cse_does_not_register_guarded_defs():
    # d1 sits inside a guard span; a later twin must NOT alias to it,
    # because d1 may be zero-filled when the guard fires.
    program = Program("t", [
        Instr("x", Op.MATCH_CC, cc=A),
        SkipGuard("x", 1),
        Instr("d1", Op.SHIFT, ("x",), shift=1),
        Instr("d2", Op.SHIFT, ("x",), shift=1),
        Instr("r", Op.OR, ("d1", "d2")),
    ], {"R": "r"})
    program.validate()
    result, _ = eliminate_common_subexpressions(program)
    d2 = [i for i in iter_instrs(result.statements)
          if i.dest == "d2"][0]
    assert d2.op is Op.SHIFT        # untouched: no in-span source


def test_cse_loop_scope_does_not_leak():
    # A definition inside a loop body (which may run zero times) must
    # not serve statements after the loop.
    from repro.ir.instructions import WhileLoop
    program = Program("t", [
        Instr("x", Op.MATCH_CC, cc=A),
        Instr("c", Op.COPY, ("x",)),
        WhileLoop("c", [
            Instr("inner", Op.SHIFT, ("x",), shift=1),
            Instr("c", Op.AND, ("c", "inner")),
        ]),
        Instr("after", Op.SHIFT, ("x",), shift=1),
        Instr("r", Op.OR, ("after", "c")),
    ], {"R": "r"})
    program.validate()
    result, _ = eliminate_common_subexpressions(program)
    after = [i for i in iter_instrs(result.statements)
             if i.dest == "after"][0]
    assert after.op is Op.SHIFT     # not rewritten to COPY(inner)


# -- algebraic ----------------------------------------------------------------


def test_algebraic_identities():
    program = prog([
        Instr("x", Op.MATCH_CC, cc=A),
        Instr("z", Op.CONST, const="zero"),
        Instr("o", Op.CONST, const="ones"),
        Instr("a", Op.AND, ("x", "x")),      # -> x
        Instr("b", Op.OR, ("x", "z")),       # -> x
        Instr("c", Op.AND, ("x", "z")),      # -> zero
        Instr("d", Op.XOR, ("x", "x")),      # -> const zero
        Instr("e", Op.ANDN, ("x", "z")),     # -> x
        Instr("f", Op.AND, ("x", "o")),      # -> x
        Instr("n1", Op.NOT, ("x",)),
        Instr("n2", Op.NOT, ("n1",)),        # -> x
        Instr("r1", Op.OR, ("a", "b")),
        Instr("r2", Op.OR, ("c", "d")),
        Instr("r3", Op.OR, ("e", "f")),
        Instr("r4", Op.OR, ("r1", "r2")),
        Instr("r5", Op.OR, ("r4", "n2")),
        Instr("r", Op.OR, ("r5", "r3")),
    ], {"R": "r"})
    result, changes = simplify_algebraic(program)
    assert changes >= 7
    by_dest = {i.dest: i for i in iter_instrs(result.statements)}
    assert by_dest["a"].op is Op.COPY
    assert by_dest["c"].op is Op.COPY and by_dest["c"].args == ("z",)
    assert by_dest["d"].op is Op.CONST and by_dest["d"].const == "zero"
    assert by_dest["n2"].op is Op.COPY and by_dest["n2"].args == ("x",)
    for data in (b"abab", b"", b"zzz"):
        assert run(program, data)["R"] == run(result, data)["R"]


def test_algebraic_folds_cascade_within_one_run():
    # d = x & z -> copy z; then e = d | y should see d as zero via the
    # next round of the pipeline (copy-prop first), but the direct
    # known-const cascade already folds f = z2 & y in one pass.
    program = prog([
        Instr("z", Op.CONST, const="zero"),
        Instr("x", Op.MATCH_CC, cc=A),
        Instr("z2", Op.AND, ("x", "z")),      # rewritten to COPY z
        Instr("f", Op.XOR, ("x", "x")),       # -> CONST zero, registered
        Instr("g", Op.OR, ("x", "f")),        # folds against the new const
        Instr("r", Op.OR, ("z2", "g")),
    ], {"R": "r"})
    result, changes = simplify_algebraic(program)
    by_dest = {i.dest: i for i in iter_instrs(result.statements)}
    assert by_dest["g"].op is Op.COPY and by_dest["g"].args == ("x",)
    assert run(program, b"ab")["R"] == run(result, b"ab")["R"]


def test_algebraic_ignores_guarded_consts():
    # A CONST ones defined inside a guard span is zero-filled when the
    # guard fires — it must not seed folds outside the span.
    program = Program("t", [
        Instr("x", Op.MATCH_CC, cc=A),
        SkipGuard("x", 1),
        Instr("o", Op.CONST, const="ones"),
        Instr("u", Op.AND, ("x", "o")),
        Instr("r", Op.OR, ("u", "x")),
    ], {"R": "r"})
    program.validate()
    result, _ = simplify_algebraic(program)
    u = [i for i in iter_instrs(result.statements) if i.dest == "u"][0]
    assert u.op is Op.AND          # not folded to COPY x


# -- shift coalescing ---------------------------------------------------------


def test_shift_chain_merges():
    program = prog([
        Instr("x", Op.MATCH_CC, cc=A),
        Instr("s1", Op.SHIFT, ("x",), shift=2),
        Instr("s2", Op.SHIFT, ("s1",), shift=3),
        Instr("r", Op.COPY, ("s2",)),
    ], {"R": "r"})
    result, changes = coalesce_shift_chains(program)
    assert changes == 1
    s2 = [i for i in iter_instrs(result.statements) if i.dest == "s2"][0]
    assert s2.args == ("x",) and s2.shift == 5
    for data in (b"aaaa abab", b""):
        assert run(program, data)["R"] == run(result, data)["R"]


def test_shift_chain_transitive_in_one_pass():
    program = prog([
        Instr("x", Op.MATCH_CC, cc=A),
        Instr("s1", Op.SHIFT, ("x",), shift=1),
        Instr("s2", Op.SHIFT, ("s1",), shift=1),
        Instr("s3", Op.SHIFT, ("s2",), shift=1),
        Instr("r", Op.COPY, ("s3",)),
    ], {"R": "r"})
    result, changes = coalesce_shift_chains(program)
    assert changes == 2
    s3 = [i for i in iter_instrs(result.statements) if i.dest == "s3"][0]
    assert s3.args == ("x",) and s3.shift == 3


def test_opposite_sign_shifts_do_not_merge():
    # (x >> 2) << 1 loses the bits shifted past the end; folding it to
    # x >> 1 would resurrect them.
    program = prog([
        Instr("x", Op.MATCH_CC, cc=A),
        Instr("s1", Op.SHIFT, ("x",), shift=2),
        Instr("s2", Op.SHIFT, ("s1",), shift=-1),
        Instr("r", Op.COPY, ("s2",)),
    ], {"R": "r"})
    result, changes = coalesce_shift_chains(program)
    assert changes == 0
    assert run(program, b"aaaa")["R"] == run(result, b"aaaa")["R"]


# -- pipeline -----------------------------------------------------------------


TABLE2_PATTERNS = ["abc", "a(bc)*d", "(ab|cd)+e", "a{2,4}b", "x?y?z",
                   "[ab]c[de]", "a(b(c|d))*e", "colou?r", "cat|dog",
                   "[0-9][0-9]", "virus[0-9]+", "GET /[a-z]+"]


def test_pipeline_reports_per_pass_deltas():
    program = lower_group([parse(p) for p in TABLE2_PATTERNS])
    optimized, report = optimize_pipeline(program, level=2)
    assert isinstance(report, PipelineReport)
    assert report.before == count_instrs(program)
    assert report.after == count_instrs(optimized)
    assert report.ops_removed == report.before - report.after
    names = {d.name for d in report.passes}
    assert names == {"copy_prop", "cse", "algebraic",
                     "shift_coalesce", "dce"}
    assert sum(d.ops_removed for d in report.passes) \
        == report.ops_removed


def test_pipeline_idempotent():
    program = lower_group([parse(p) for p in TABLE2_PATTERNS])
    once, _ = optimize_pipeline(program, level=2)
    twice, report = optimize_pipeline(once, level=2)
    assert report.ops_removed == 0
    assert all(d.rewrites == 0 for d in report.passes)
    assert count_instrs(twice) == count_instrs(once)


def test_pipeline_level1_matches_classic_cleanups():
    program = lower_group([parse(p) for p in TABLE2_PATTERNS])
    classic = optimize_program(program)
    level1, _ = optimize_pipeline(program, level=1)
    assert count_instrs(level1) == count_instrs(classic)


def test_pipeline_level0_is_identity():
    program = lower_group([parse("a(bc)*d")])
    same, report = optimize_pipeline(program, level=0)
    assert same is program
    assert report.ops_removed == 0 and report.passes == []


def test_pipeline_never_grows_programs():
    for pattern in TABLE2_PATTERNS:
        program = lower_group([parse(pattern)])
        optimized, _ = optimize_pipeline(program, level=2)
        assert count_instrs(optimized) <= count_instrs(program)


def test_pipeline_guard_consistency():
    base = insert_guards(lower_regex(parse("virus[0-9]+")), interval=2)
    optimized, _ = optimize_pipeline(base, level=2)
    optimized.validate()
    data = b"xx virus123 virus zz virus7"
    assert run(optimized, data, honour_guards=True)["R0"] \
        == run(base, data, honour_guards=False)["R0"]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(TABLE2_PATTERNS), min_size=1,
                max_size=4, unique=True),
       st.integers(min_value=0, max_value=2**32))
def test_opt_levels_bit_identical_property(patterns, seed):
    rng = random.Random(seed)
    data = random_text(rng, rng.randrange(0, 60), "abcdexyz0123 GET/")
    program = lower_group([parse(p) for p in patterns])
    reference = run(program, data)
    for level in (1, 2):
        optimized, _ = optimize_pipeline(program, level)
        assert run(optimized, data) == reference, \
            f"level {level} diverged on {patterns!r} / {data!r}"


# -- engine-level acceptance: opt levels never change matches ----------------


from repro.core import SCHEME_LADDER
from repro.core.engine import BitGenEngine
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import ScanConfig

TINY_GEO = CTAGeometry(threads=8, word_bits=4)

ENGINE_PATTERNS = ["a(bc)*d", "cat|dog", "virus[0-9]+", "[ab]c[de]",
                   "colou?r", "x?y?z"]
ENGINE_DATA = (b"abcbcd cat virus42 acd bce colour color xyz yz "
               b"dog abcd catdog virus7 " * 4)


def _engine_matches(scheme, backend, level):
    engine = BitGenEngine.compile(
        ENGINE_PATTERNS,
        config=ScanConfig(scheme=scheme, backend=backend,
                          geometry=TINY_GEO, cta_count=2,
                          loop_fallback=True, opt_level=level))
    return engine.match(ENGINE_DATA).ends, engine


@pytest.mark.parametrize("backend", ["simulate", "compiled"])
@pytest.mark.parametrize("scheme", SCHEME_LADDER, ids=lambda s: s.value)
def test_engine_opt_levels_bit_identical(scheme, backend):
    baseline, _ = _engine_matches(scheme, backend, 0)
    for level in (1, 2):
        ends, _ = _engine_matches(scheme, backend, level)
        assert ends == baseline, \
            f"{scheme.value}/{backend} diverged at opt_level={level}"


def test_engine_reports_optimization_stats():
    _, engine = _engine_matches(SCHEME_LADDER[-1], "simulate", 2)
    stats = engine.optimization_stats()
    assert stats["opt_level"] == 2
    assert stats["ops_removed"] > 0
    assert stats["instrs_after"] \
        == stats["instrs_before"] - stats["ops_removed"]
    assert set(stats["passes"]) == {"copy_prop", "cse", "algebraic",
                                    "shift_coalesce", "dce", "factor"}
    totals = engine.program_stats()
    assert totals["optimized_away"] == stats["ops_removed"]


def test_engine_opt_level0_reports_nothing():
    _, engine = _engine_matches(SCHEME_LADDER[-1], "simulate", 0)
    stats = engine.optimization_stats()
    assert stats["opt_level"] == 0
    assert stats["ops_removed"] == 0
    assert stats["passes"] == {}


def test_engine_opt2_executes_fewer_ops():
    # The acceptance criterion behind BENCH_ir_opt.json, in miniature:
    # level 2 must compile strictly smaller programs than level 0.
    _, at0 = _engine_matches(SCHEME_LADDER[-1], "simulate", 0)
    _, at2 = _engine_matches(SCHEME_LADDER[-1], "simulate", 2)
    assert at2.program_stats()["instrs"] \
        < at0.program_stats()["instrs"]

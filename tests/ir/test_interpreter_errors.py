"""Interpreter error paths and constant-stream semantics."""

import pytest

from repro.bitstream.bitvector import BitVector
from repro.ir.instructions import (CONST_END, CONST_ONES, CONST_START,
                                   CONST_TEXT, CONST_ZERO, Instr, Op,
                                   WhileLoop)
from repro.ir.interpreter import (ExecutionError, Interpreter,
                                  const_stream, eval_instr,
                                  make_environment)
from repro.ir.program import Program
from repro.regex.charclass import CharClass


def test_const_streams():
    assert const_stream(CONST_ZERO, 5) == BitVector.zeros(5)
    assert const_stream(CONST_ONES, 5) == BitVector.ones(5)
    assert const_stream(CONST_START, 5).positions() == [0]
    assert const_stream(CONST_END, 5).positions() == [4]
    # text mask: all byte positions, not the final cursor slot
    assert const_stream(CONST_TEXT, 5).positions() == [0, 1, 2, 3]


def test_const_stream_unknown_kind():
    with pytest.raises(ExecutionError):
        const_stream("nope", 4)


def test_environment_has_basis_and_padding():
    env = make_environment(b"ab")
    assert set(env) == {f"b{i}" for i in range(8)}
    assert all(v.length == 3 for v in env.values())  # n + 1 cursor slot


def test_undefined_variable():
    program = Program("bad", [Instr("x", Op.NOT, ("ghost",))], {})
    with pytest.raises(ExecutionError, match="undefined"):
        # bypass validate() to hit the runtime check
        Interpreter()._exec_block(program.statements,
                                  make_environment(b"a"), 2)


def test_match_cc_multibyte_rejected():
    instr = Instr("x", Op.MATCH_CC, cc=CharClass.range("a", "z"))
    with pytest.raises(ExecutionError, match="singleton"):
        eval_instr(instr, make_environment(b"abc"), 4)


def test_match_cc_empty_class_is_zero():
    instr = Instr("x", Op.MATCH_CC, cc=CharClass.empty())
    assert not eval_instr(instr, make_environment(b"abc"), 4).any()


def test_match_cc_singleton_matches():
    instr = Instr("x", Op.MATCH_CC, cc=CharClass.of_char("b"))
    value = eval_instr(instr, make_environment(b"abcb"), 5)
    assert value.positions() == [1, 3]


def test_while_divergence_detected():
    program = Program("spin", [
        Instr("c", Op.CONST, const=CONST_ONES),
        WhileLoop("c", [Instr("junk", Op.NOT, ("c",))]),
    ], {"R": "c"})
    with pytest.raises(ExecutionError, match="exceeded"):
        Interpreter(max_loop_iterations=5).run(program, b"abcdef")


def test_instruction_counter():
    program = Program("count", [
        Instr("a", Op.CONST, const=CONST_ONES),
        Instr("b", Op.NOT, ("a",)),
    ], {"R": "b"})
    interp = Interpreter()
    interp.run(program, b"xy")
    assert interp.instructions_executed == 2

"""Workload generators and application builders."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regex.parser import parse
from repro.workloads import (ALL_APPS, AppSpec, app_by_name, build_input,
                             sample_match)
from repro.workloads import generators as gen
from repro.workloads.inputs import BACKGROUNDS, plant_matches


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
def test_all_apps_build_and_parse(app):
    workload = app.build(scale=0.01, seed=1)
    assert len(workload.patterns) >= 2
    assert len(workload.nodes) == len(workload.patterns)
    assert len(workload.data) >= 1024
    for pattern in workload.patterns:
        parse(pattern)  # re-parse: all generated patterns are valid


def test_builds_are_deterministic():
    a = app_by_name("Snort").build(scale=0.01, seed=9)
    b = app_by_name("Snort").build(scale=0.01, seed=9)
    assert a.patterns == b.patterns
    assert a.data == b.data


def test_different_seeds_differ():
    a = app_by_name("Snort").build(scale=0.01, seed=1)
    b = app_by_name("Snort").build(scale=0.01, seed=2)
    assert a.patterns != b.patterns


def test_scale_controls_size():
    small = app_by_name("Yara").build(scale=0.005, seed=0)
    large = app_by_name("Yara").build(scale=0.02, seed=0)
    assert len(large.patterns) > len(small.patterns)
    assert len(large.data) > len(small.data)


def test_unknown_app_raises():
    with pytest.raises(KeyError):
        app_by_name("NotAnApp")


def test_yara_has_no_loops():
    workload = app_by_name("Yara").build(scale=0.01, seed=0)
    from repro.ir.lower import lower_group

    program = lower_group(workload.nodes[:10])
    assert program.while_count() == 0


def test_brill_has_loops():
    workload = app_by_name("Brill").build(scale=0.01, seed=0)
    from repro.ir.lower import lower_group

    program = lower_group(workload.nodes[:10])
    assert program.while_count() > 0


@pytest.mark.parametrize("name", sorted(BACKGROUNDS))
def test_backgrounds(name):
    rng = random.Random(0)
    data = BACKGROUNDS[name](rng, 2048)
    assert len(data) == 2048


def test_text_background_has_lines():
    rng = random.Random(0)
    data = BACKGROUNDS["text"](rng, 4096)
    lines = data.split(b"\n")
    assert len(lines) > 10
    assert max(len(line) for line in lines) < 200


def test_unknown_background_raises():
    rng = random.Random(0)
    with pytest.raises(KeyError):
        build_input(rng, 100, "nope")


def test_plant_matches_inserts_matches():
    rng = random.Random(0)
    node = parse("virusxyz")
    data = plant_matches(rng, b"a" * 4096, [node], density=4.0)
    assert b"virusxyz" in data


def test_plant_matches_zero_density_noop():
    rng = random.Random(0)
    background = b"a" * 512
    assert plant_matches(rng, background, [parse("xy")], 0.0) == background


SAMPLE_PATTERNS = ["abc", "a(bc)*d", "[a-f]{2,4}", "x|yz", "a+b?",
                   "(ab|cd)ef", r"\x00\xff"]


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(SAMPLE_PATTERNS),
       st.integers(min_value=0, max_value=2**32))
def test_sample_match_produces_matches(pattern, seed):
    """Strings from sample_match must actually match the pattern."""
    import re as stdre

    rng = random.Random(seed)
    node = parse(pattern)
    text = sample_match(rng, node)
    assert text is not None
    std = stdre.compile(pattern.replace("\\x00", "\\x00"))
    assert stdre.fullmatch(pattern, text.decode("latin-1")), \
        f"{text!r} does not match {pattern!r}"


def test_sample_match_empty_class_is_none():
    rng = random.Random(0)
    from repro.regex import ast
    from repro.regex.charclass import CharClass

    assert sample_match(rng, ast.Lit(CharClass.empty())) is None


def test_target_length_clamped():
    rng = random.Random(0)
    for _ in range(100):
        length = gen.target_length(rng, 50, 20)
        assert 2 <= length <= 110


def test_generators_respect_grammar():
    rng = random.Random(0)
    for maker in (gen.literal_pattern, gen.ranged_pattern,
                  gen.dotstar_pattern, gen.protein_pattern,
                  gen.brill_pattern, gen.snort_pattern, gen.yara_pattern,
                  gen.bro_pattern, gen.tcp_pattern,
                  gen.hex_signature_pattern):
        for _ in range(5):
            parse(maker(rng, 40))

"""Empty-match stripping: se/zw transforms and end-to-end semantics for
nullable patterns."""

import pytest

from repro.ir.interpreter import run_regexes
from repro.regex import ast
from repro.regex.charclass import CharClass
from repro.regex.nonempty import strip_empty, zero_width
from repro.regex.parser import parse

from ..conftest import oracle_end_positions


def lit(c):
    return ast.Lit(CharClass.of_char(c))


def test_strip_lit_identity():
    assert strip_empty(lit("a")) == lit("a")


def test_strip_empty_regex():
    assert strip_empty(ast.Empty()) is None


def test_strip_anchor():
    assert strip_empty(ast.Anchor("^")) is None


def test_strip_star_becomes_plus():
    result = strip_empty(ast.Star(lit("a")))
    assert result == ast.seq(lit("a"), ast.Star(lit("a")))


def test_strip_seq_simple():
    node = parse("ab")
    assert strip_empty(node) == node


def test_strip_seq_nullable_prefix():
    # a*b nonempty = a+b | b
    node = parse("a*b")
    result = strip_empty(node)
    assert isinstance(result, ast.Alt)
    assert len(result.branches) == 2


def test_strip_optional():
    # a? nonempty = a
    assert strip_empty(parse("a?")) == lit("a")


def test_zero_width_lit_none():
    assert zero_width(lit("a")) is None


def test_zero_width_star_is_empty():
    assert zero_width(ast.Star(lit("a"))) == ast.Empty()


def test_zero_width_anchor_preserved():
    assert zero_width(ast.Anchor("^")) == ast.Anchor("^")


def test_zero_width_seq_of_anchors():
    node = ast.seq(ast.Anchor("^"), ast.Star(lit("a")))
    assert zero_width(node) == ast.Anchor("^")


def test_zero_width_alt_empty_absorbs():
    node = ast.alt(ast.Anchor("^"), ast.Star(lit("a")))
    assert zero_width(node) == ast.Empty()


def test_rep_zero_bound():
    assert strip_empty(ast.Rep(lit("a"), 0, 0)) is None


@pytest.mark.parametrize("pattern,data", [
    ("a*", b"baab"),
    ("a?", b"ba"),
    ("(a?)(b?)", b"ab ba"),
    ("(a*)*b", b"aab b"),
    ("(a|b*)c", b"bbc c ac"),
    ("(a*)*", b"aa"),
    ("(a?b?)*c", b"abc bac c"),
    ("x(a*)(b*)y", b"xy xaby xbay"),
])
def test_nullable_patterns_vs_oracle(pattern, data):
    got = run_regexes([pattern], data)["R0"]
    want = oracle_end_positions(pattern, data)
    assert got == want, f"{pattern!r} on {data!r}: {got} != {want}"


def test_anchored_nullable():
    # ^a* : non-empty matches are runs of a's starting at position 0
    got = run_regexes(["^a*"], b"aab")["R0"]
    assert got == [0, 1]
    got = run_regexes(["^a*"], b"baa")["R0"]
    assert got == []

"""AST constructors and normalisation."""

import pytest

from repro.regex import ast
from repro.regex.charclass import CharClass
from repro.regex.parser import parse
from repro.regex.simplify import char_length, count_nodes, simplify


def lit(c):
    return ast.Lit(CharClass.of_char(c))


def test_seq_flattens():
    node = ast.seq(lit("a"), ast.seq(lit("b"), lit("c")))
    assert isinstance(node, ast.Seq)
    assert len(node.parts) == 3


def test_seq_drops_empty():
    assert ast.seq(ast.Empty(), lit("a")) == lit("a")
    assert ast.seq(ast.Empty(), ast.Empty()) == ast.Empty()


def test_alt_flattens_and_dedups():
    node = ast.alt(lit("a"), ast.alt(lit("b"), lit("a")))
    assert isinstance(node, ast.Alt)
    assert len(node.branches) == 2


def test_alt_single_branch():
    assert ast.alt(lit("a")) == lit("a")


def test_rep_validation():
    with pytest.raises(ValueError):
        ast.Rep(lit("a"), 3, 2)
    with pytest.raises(ValueError):
        ast.Rep(lit("a"), -1, 2)


def test_walk_preorder():
    node = parse("a(b|c)")
    kinds = [type(n).__name__ for n in node.walk()]
    assert kinds[0] == "Seq"
    assert "Alt" in kinds


def test_nodes_immutable():
    node = lit("a")
    with pytest.raises(AttributeError):
        node.cc = CharClass.of_char("b")


def test_simplify_merges_alt_of_lits():
    node = simplify(parse("a|b|c"))
    assert node == ast.Lit(CharClass.of_chars("abc"))


def test_simplify_star_of_star():
    node = simplify(ast.Star(ast.Star(lit("a"))))
    assert node == ast.Star(lit("a"))


def test_simplify_rep_identities():
    assert simplify(ast.Rep(lit("a"), 1, 1)) == lit("a")
    assert simplify(ast.Rep(lit("a"), 0, 0)) == ast.Empty()
    assert simplify(ast.Rep(lit("a"), 0, None)) == ast.Star(lit("a"))


def test_simplify_star_of_optional():
    node = simplify(ast.Star(ast.Rep(lit("a"), 0, 1)))
    assert node == ast.Star(lit("a"))


def test_simplify_preserves_mixed_alt():
    node = simplify(parse("ab|c"))
    assert isinstance(node, ast.Alt)


def test_count_nodes():
    assert count_nodes(lit("a")) == 1
    assert count_nodes(parse("ab")) == 3  # Seq + 2 Lits


def test_char_length():
    assert char_length(parse("abc")) == 3
    assert char_length(parse("a{4}")) == 5  # Lit + Rep(lo=4)
    assert char_length(parse("(ab)*")) >= 2


def test_structural_equality_across_parses():
    assert parse("a(b|c)d") == parse("a(b|c)d")
    assert parse("abc") != parse("abd")

"""Unit and property tests for CharClass set algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.regex.charclass import (ALPHABET_SIZE, DIGIT, SPACE, WORD,
                                   CharClass)


def test_empty_class():
    cc = CharClass.empty()
    assert cc.is_empty()
    assert len(cc) == 0
    assert not cc.contains(0)


def test_single_and_of_char():
    assert CharClass.single(97) == CharClass.of_char("a")
    assert CharClass.of_char("a").single_byte() == 97
    assert 97 in CharClass.of_char("a")
    assert 98 not in CharClass.of_char("a")


def test_range_membership():
    cc = CharClass.range("a", "z")
    assert all(cc.contains(b) for b in range(97, 123))
    assert not cc.contains(96)
    assert not cc.contains(123)
    assert len(cc) == 26


def test_ranges_coalesce():
    cc = CharClass(((10, 20), (15, 30), (31, 40)))
    assert cc.ranges == ((10, 40),)


def test_adjacent_singletons_coalesce():
    cc = CharClass.of_chars("abc")
    assert cc.ranges == ((97, 99),)


def test_out_of_bounds_range_rejected():
    with pytest.raises(ValueError):
        CharClass(((0, 256),))
    with pytest.raises(ValueError):
        CharClass(((-1, 5),))
    with pytest.raises(ValueError):
        CharClass(((9, 3),))


def test_union_intersection_difference():
    lower = CharClass.range("a", "m")
    upper = CharClass.range("h", "z")
    both = lower.union(upper)
    assert both == CharClass.range("a", "z")
    inter = lower.intersection(upper)
    assert inter == CharClass.range("h", "m")
    diff = lower.difference(upper)
    assert diff == CharClass.range("a", "g")


def test_complement_roundtrip():
    cc = CharClass.of_chars("aeiou")
    assert cc.complement().complement() == cc
    assert len(cc) + len(cc.complement()) == ALPHABET_SIZE


def test_dot_excludes_newline():
    dot = CharClass.dot()
    assert not dot.contains(ord("\n"))
    assert dot.contains(ord("a"))
    assert len(dot) == ALPHABET_SIZE - 1


def test_any_byte():
    assert len(CharClass.any_byte()) == ALPHABET_SIZE


def test_named_classes():
    assert all(DIGIT.contains(ord(c)) for c in "0123456789")
    assert WORD.contains(ord("_"))
    assert not WORD.contains(ord("-"))
    assert SPACE.contains(ord(" "))
    assert SPACE.contains(ord("\t"))


def test_single_byte_raises_on_multi():
    with pytest.raises(ValueError):
        CharClass.range("a", "b").single_byte()


def test_table_matches_contains():
    cc = CharClass(((5, 9), (200, 210)))
    table = cc.table()
    for byte in range(ALPHABET_SIZE):
        assert table[byte] == cc.contains(byte)


def test_bytes_iteration_sorted():
    cc = CharClass(((200, 202), (5, 6)))
    assert list(cc.bytes()) == [5, 6, 200, 201, 202]


def test_immutability():
    cc = CharClass.of_char("a")
    with pytest.raises(AttributeError):
        cc.ranges = ()


def test_hash_and_eq():
    a = CharClass.of_chars("abc")
    b = CharClass.range("a", "c")
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


byte_sets = st.sets(st.integers(min_value=0, max_value=255), max_size=40)


def _from_set(values):
    return CharClass(tuple((v, v) for v in values))


@given(byte_sets, byte_sets)
def test_union_is_set_union(xs, ys):
    cc = _from_set(xs).union(_from_set(ys))
    assert set(cc.bytes()) == xs | ys


@given(byte_sets, byte_sets)
def test_difference_is_set_difference(xs, ys):
    cc = _from_set(xs).difference(_from_set(ys))
    assert set(cc.bytes()) == xs - ys


@given(byte_sets, byte_sets)
def test_intersection_is_set_intersection(xs, ys):
    cc = _from_set(xs).intersection(_from_set(ys))
    assert set(cc.bytes()) == xs & ys


@given(byte_sets)
def test_complement_is_set_complement(xs):
    cc = _from_set(xs).complement()
    assert set(cc.bytes()) == set(range(256)) - xs


@given(byte_sets)
def test_mask_roundtrip(xs):
    cc = _from_set(xs)
    assert CharClass._from_mask(cc._mask()) == cc

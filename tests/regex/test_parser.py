"""Parser tests: grammar coverage and error reporting."""

import pytest

from repro.regex import ast
from repro.regex.charclass import CharClass
from repro.regex.parser import RegexSyntaxError, parse


def test_single_char():
    assert parse("a") == ast.Lit(CharClass.of_char("a"))


def test_literal_string():
    node = parse("cat")
    assert isinstance(node, ast.Seq)
    assert node == ast.literal("cat")


def test_alternation():
    node = parse("a|b|c")
    assert isinstance(node, ast.Alt)
    assert len(node.branches) == 3


def test_alternation_precedence():
    # ab|cd parses as (ab)|(cd), not a(b|c)d
    node = parse("ab|cd")
    assert node == ast.alt(ast.literal("ab"), ast.literal("cd"))


def test_star():
    assert parse("a*") == ast.Star(ast.Lit(CharClass.of_char("a")))


def test_plus_is_derived():
    a = ast.Lit(CharClass.of_char("a"))
    assert parse("a+") == ast.seq(a, ast.Star(a))


def test_optional():
    a = ast.Lit(CharClass.of_char("a"))
    assert parse("a?") == ast.Rep(a, 0, 1)


def test_grouping_changes_structure():
    assert parse("(ab)*") == ast.Star(ast.literal("ab"))
    assert parse("a(b|c)d") == ast.seq(
        ast.Lit(CharClass.of_char("a")),
        ast.alt(ast.Lit(CharClass.of_char("b")), ast.Lit(CharClass.of_char("c"))),
        ast.Lit(CharClass.of_char("d")))


def test_bounded_repetition():
    a = ast.Lit(CharClass.of_char("a"))
    assert parse("a{2,5}") == ast.Rep(a, 2, 5)
    assert parse("a{3}") == ast.Rep(a, 3, 3)
    assert parse("a{2,}") == ast.Rep(a, 2, None)


def test_char_class_basic():
    assert parse("[abc]") == ast.Lit(CharClass.of_chars("abc"))
    assert parse("[a-z]") == ast.Lit(CharClass.range("a", "z"))


def test_char_class_negated():
    node = parse("[^a]")
    assert isinstance(node, ast.Lit)
    assert not node.cc.contains(ord("a"))
    assert node.cc.contains(ord("b"))
    assert len(node.cc) == 255


def test_char_class_multi_range():
    node = parse("[a-z0-9_]")
    assert node.cc.contains(ord("m"))
    assert node.cc.contains(ord("5"))
    assert node.cc.contains(ord("_"))
    assert not node.cc.contains(ord("-"))


def test_char_class_literal_bracket_members():
    node = parse("[]a]")  # ']' first is literal
    assert node.cc == CharClass.of_chars("]a")


def test_char_class_trailing_dash_literal():
    node = parse("[a-]")
    assert node.cc == CharClass.of_chars("a-")


def test_char_class_escape_class_inside():
    node = parse("[\\d.]")
    assert node.cc.contains(ord("5"))
    assert node.cc.contains(ord("."))
    assert not node.cc.contains(ord("a"))


def test_dot():
    node = parse(".")
    assert node == ast.Lit(CharClass.dot())


def test_anchors():
    node = parse("^abc$")
    assert isinstance(node, ast.Seq)
    assert node.parts[0] == ast.Anchor("^")
    assert node.parts[-1] == ast.Anchor("$")


def test_escapes():
    assert parse(r"\d") == ast.Lit(CharClass.range("0", "9"))
    assert parse(r"\n") == ast.Lit(CharClass.of_char("\n"))
    assert parse(r"\.") == ast.Lit(CharClass.of_char("."))
    assert parse(r"\\") == ast.Lit(CharClass.of_char("\\"))
    assert parse(r"\x41") == ast.Lit(CharClass.of_char("A"))


def test_hex_escape_invalid():
    with pytest.raises(RegexSyntaxError):
        parse(r"\xzz")


def test_empty_pattern():
    assert parse("") == ast.Empty()


def test_empty_alternation_branch():
    node = parse("a|")
    assert isinstance(node, ast.Alt)
    assert node.branches[1] == ast.Empty()


def test_nested_groups():
    node = parse("((a|b)c)*")
    assert isinstance(node, ast.Star)


@pytest.mark.parametrize("bad", [
    "(", ")", "(a", "a)", "[", "[a", "*", "+a*b(", "a{2,1}",
    "a**junk(", "[z-a]", "a{99999}",
])
def test_syntax_errors(bad):
    with pytest.raises(RegexSyntaxError):
        parse(bad)


def test_error_reports_position():
    with pytest.raises(RegexSyntaxError) as excinfo:
        parse("ab(cd")
    assert "position" in str(excinfo.value)


def test_quantifier_chains():
    # (a*)? etc. are accepted
    node = parse("a*?")
    assert node == ast.Rep(ast.Star(ast.Lit(CharClass.of_char("a"))), 0, 1)


def test_brace_without_number_is_literal():
    node = parse("a{x")
    # '{' with no digits is a literal brace
    assert node == ast.seq(ast.Lit(CharClass.of_char("a")),
                           ast.literal("{"),
                           ast.Lit(CharClass.of_char("x")))


def test_non_capturing_group():
    assert parse("a(?:bc)*d") == parse("a(bc)*d")
    assert parse("(?:ab|cd)e") == parse("(ab|cd)e")


def test_non_capturing_group_malformed():
    with pytest.raises(RegexSyntaxError):
        parse("a(?bc)")


def test_ignore_case_flag():
    node = parse("(?i)ab")
    assert isinstance(node, ast.Seq)
    assert node.parts[0].cc == CharClass.of_chars("aA")
    assert node.parts[1].cc == CharClass.of_chars("bB")


def test_ignore_case_folds_classes_and_groups():
    node = parse("(?i)[a-c]|X")
    folded = node
    assert isinstance(folded, ast.Alt)
    assert folded.branches[0].cc == CharClass.of_chars("abcABC")
    assert folded.branches[1].cc == CharClass.of_chars("xX")


def test_ignore_case_leaves_nonalpha():
    node = parse("(?i)a1")
    assert node.parts[1].cc == CharClass.of_char("1")

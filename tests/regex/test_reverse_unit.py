"""Reversal transform: language-level property tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.interpreter import run_regexes
from repro.regex.parser import parse
from repro.regex.reverse import reverse

from ..conftest import random_text

PATTERNS = ["abc", "a(bc)*d", "(ab|cd)e", "a{2,4}b", "x?yz", "[ab]c+"]


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(PATTERNS), st.integers(min_value=0, max_value=2**32))
def test_reverse_language_property(pattern, seed):
    """w matches R  <=>  w[::-1] matches reverse(R): all-match end
    positions over reversed input mirror the start positions."""
    rng = random.Random(seed)
    data = random_text(rng, rng.randrange(0, 40), "abcdxyz")
    node = parse(pattern)
    forward_ends = set(run_regexes([node], data)["R0"])
    mirrored_ends = set(run_regexes([reverse(node)], data[::-1])["R0"])

    # every forward match [s, e] appears reversed ending at n-1-s
    import re

    n = len(data)
    text = data.decode("latin-1")
    compiled = re.compile(pattern)
    for end in forward_ends:
        starts = [s for s in range(end + 1)
                  if compiled.fullmatch(text, s, end + 1)]
        assert starts, f"oracle start missing for end {end}"
        assert any(n - 1 - s in mirrored_ends for s in starts)
    for mirrored in mirrored_ends:
        start = n - 1 - mirrored
        assert any(compiled.fullmatch(text, start, e + 1)
                   for e in range(start, n)), \
            f"reversed match at {mirrored} has no forward witness"

"""Shared fixtures and the brute-force match oracle."""

from __future__ import annotations

import random
import re
import sys
from typing import Dict, List, Sequence

import pytest


@pytest.fixture(autouse=True)
def _resilience_isolation():
    """Disarm chaos and close the pool circuit breaker around every
    test — resilience state is process-global and must never leak
    between tests.  Touches the modules only if already imported, so
    the fixture costs nothing for the non-parallel suite."""
    yield
    chaos_mod = sys.modules.get("repro.resilience.chaos")
    if chaos_mod is not None:
        chaos_mod.reset()
    pool_mod = sys.modules.get("repro.parallel.pool")
    if pool_mod is not None:
        pool_mod._BREAKER.reset()


def oracle_end_positions(pattern: str, data: bytes) -> List[int]:
    """All-match semantics oracle: position i is reported when some
    non-empty substring ending at i fully matches ``pattern``.

    Uses Python's ``re`` with fullmatch over every substring — O(n^2)
    but independent of every implementation under test.
    """
    text = data.decode("latin-1")
    compiled = re.compile(pattern, re.DOTALL if False else 0)
    ends = []
    n = len(text)
    for end in range(1, n + 1):
        for start in range(end - 1, -1, -1):
            if compiled.fullmatch(text, start, end):
                ends.append(end - 1)
                break
    return ends


def random_text(rng: random.Random, length: int,
                alphabet: str = "abcd") -> bytes:
    return "".join(rng.choice(alphabet) for _ in range(length)).encode()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xB17C0DE)

"""Hyperscan-style CPU engine.

Hyperscan (Wang et al., NSDI'19) wins on literal-heavy rule sets by
*decomposition*: patterns that are plain strings go to a SIMD
multi-string matcher, and complex patterns are anchored to a required
literal factor so the expensive automaton only runs near factor hits.
This engine reproduces that architecture with three exact tiers:

* **pure literals** — matched directly by one Aho–Corasick scan;
* **confirmable patterns** — a mandatory literal factor *and* a bounded
  maximum match length: every match contains the factor, so the
  pattern's own NFA scans only merged windows around factor hits;
* **full-scan patterns** — no usable factor (or unbounded length with
  no factor): matched by one combined NFA scan.  Patterns whose factor
  never occurs in the input are excluded entirely (prefiltering).

All tiers are exact, so outputs match every other engine; the stats
drive the HS-1T/HS-MT cost model (multi-threaded scaling is modelled in
``repro.perf`` with the paper's measured 1.76x overall ceiling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..automata.aho_corasick import ACStats, AhoCorasick
from ..automata.nfa import MultiPatternNFA, NFAStats
from ..regex import ast
# Factor extraction moved to repro.regex.factors so the main BitGen
# pipeline's prefilter gate (repro.core.prefilter) shares it; the names
# are re-exported here for compatibility.
from ..regex.factors import (MIN_FACTOR_LENGTH, excludes_newline,
                             literal_bytes, max_match_length,
                             required_factor)
from ..regex.parser import parse
from ..regex.simplify import simplify
from .base import Engine, MatchResult

__all__ = [
    "MIN_FACTOR_LENGTH", "MAX_CONFIRM_LENGTH", "MAX_LINE_WINDOW",
    "HyperscanEngine", "HyperscanStats", "excludes_newline",
    "literal_bytes", "max_match_length", "merge_intervals",
    "required_factor",
]

#: confirmation is worthwhile only for reasonably short patterns;
#: beyond this the windows degenerate into full scans
MAX_CONFIRM_LENGTH = 512
#: cap on a line-bounded confirmation window
MAX_LINE_WINDOW = 4096


def merge_intervals(intervals: List[Tuple[int, int]]
                    ) -> List[Tuple[int, int]]:
    """Coalesce overlapping/adjacent [start, end) intervals."""
    intervals.sort()
    merged: List[Tuple[int, int]] = []
    for start, end in intervals:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


@dataclass
class HyperscanStats:
    """Work counters for one match run."""

    ac: ACStats = field(default_factory=ACStats)
    nfa: Optional[NFAStats] = None
    confirm: NFAStats = field(default_factory=NFAStats)
    literal_patterns: int = 0
    confirmable_patterns: int = 0
    complex_patterns: int = 0
    prefiltered_out: int = 0
    nfa_scanned: int = 0
    confirm_windows: int = 0
    confirm_bytes: int = 0
    input_bytes: int = 0
    ac_nodes: int = 0

    def literal_fraction(self) -> float:
        total = (self.literal_patterns + self.confirmable_patterns
                 + self.complex_patterns)
        if total == 0:
            return 1.0
        return self.literal_patterns / total


@dataclass
class _Confirmable:
    pattern_id: int
    node: ast.Regex
    factor: bytes
    #: bounded maximum match length, or None for line-bounded patterns
    max_length: Optional[int]
    slot: int                       # AC pattern slot of the factor
    nfa: Optional[MultiPatternNFA] = None


class HyperscanEngine(Engine):
    """Decomposition + prefilter + windowed-confirmation matcher."""

    name = "Hyperscan"

    def __init__(self, literal_ids: List[int], literals: List[bytes],
                 confirmables: List[_Confirmable],
                 full_ids: List[int], full_nodes: List[ast.Regex],
                 full_factors: Dict[int, int],
                 ac_patterns: List[bytes], pattern_count: int):
        self.literal_ids = literal_ids
        self.confirmables = confirmables
        self.full_ids = full_ids
        self.full_nodes = full_nodes
        self.full_factors = full_factors  # pattern id -> AC slot
        self.pattern_count = pattern_count
        self.ac = AhoCorasick.build(ac_patterns) if ac_patterns else None
        self._full_nfa_cache: Dict[frozenset, MultiPatternNFA] = {}
        self.last_stats = HyperscanStats()

    @classmethod
    def compile(cls, patterns: Sequence[str]) -> "HyperscanEngine":
        nodes = [simplify(parse(p)) if isinstance(p, str) else simplify(p)
                 for p in patterns]
        literal_ids: List[int] = []
        literals: List[bytes] = []
        confirmables: List[_Confirmable] = []
        full_ids: List[int] = []
        full_nodes: List[ast.Regex] = []
        pending_factor: Dict[int, bytes] = {}

        for pid, node in enumerate(nodes):
            text = literal_bytes(node)
            if text:
                literal_ids.append(pid)
                literals.append(text)
                continue
            factor = required_factor(node)
            longest = max_match_length(node)
            if factor is not None and longest is not None \
                    and longest <= MAX_CONFIRM_LENGTH:
                confirmables.append(_Confirmable(pid, node, factor,
                                                 longest, slot=-1))
                continue
            if factor is not None and excludes_newline(node):
                # Unbounded but newline-free: matches are line-local.
                confirmables.append(_Confirmable(pid, node, factor,
                                                 None, slot=-1))
                continue
            full_ids.append(pid)
            full_nodes.append(node)
            if factor is not None:
                pending_factor[pid] = factor

        ac_patterns = list(literals)
        for item in confirmables:
            item.slot = len(ac_patterns)
            ac_patterns.append(item.factor)
        full_factors: Dict[int, int] = {}
        for pid, factor in pending_factor.items():
            full_factors[pid] = len(ac_patterns)
            ac_patterns.append(factor)
        return cls(literal_ids, literals, confirmables, full_ids,
                   full_nodes, full_factors, ac_patterns, len(nodes))

    # -- matching ------------------------------------------------------------

    def match(self, data: bytes) -> MatchResult:
        result = MatchResult(pattern_count=self.pattern_count)
        stats = HyperscanStats(
            literal_patterns=len(self.literal_ids),
            confirmable_patterns=len(self.confirmables),
            complex_patterns=len(self.full_ids),
            input_bytes=len(data),
            ac_nodes=self.ac.node_count if self.ac else 0)

        slot_hits: Dict[int, List[int]] = {}
        if self.ac is not None:
            hits, stats.ac = self.ac.scan(data)
            for slot, end in hits:
                if slot < len(self.literal_ids):
                    result.ends[self.literal_ids[slot]].append(end)
                else:
                    slot_hits.setdefault(slot, []).append(end)
        for pid in self.literal_ids:
            result.ends[pid] = sorted(set(result.ends[pid]))

        self._confirm(data, slot_hits, result, stats)
        self._full_scan(data, slot_hits, result, stats)
        self.last_stats = stats
        return result

    def _confirm(self, data: bytes, slot_hits: Dict[int, List[int]],
                 result: MatchResult, stats: HyperscanStats) -> None:
        for item in self.confirmables:
            hits = slot_hits.get(item.slot)
            if not hits:
                stats.prefiltered_out += 1
                continue
            windows = merge_intervals([self._window(data, item, end)
                                       for end in hits])
            if item.nfa is None:
                item.nfa = MultiPatternNFA.build([item.node])
            ends: Set[int] = set()
            for start, stop in windows:
                stats.confirm_windows += 1
                stats.confirm_bytes += stop - start
                matches, window_stats = item.nfa.run(data[start:stop])
                _accumulate(stats.confirm, window_stats)
                ends.update(pos + start for pos in matches[0])
            result.ends[item.pattern_id] = sorted(ends)

    @staticmethod
    def _window(data: bytes, item: _Confirmable,
                end: int) -> Tuple[int, int]:
        """Confirmation window around a factor hit ending at ``end``."""
        if item.max_length is not None:
            return (max(0, end - item.max_length + 1),
                    min(len(data),
                        end + item.max_length - len(item.factor) + 1))
        # Line-bounded: the enclosing line, capped.
        floor = max(0, end - MAX_LINE_WINDOW)
        start = data.rfind(b"\n", floor, end) + 1
        if start == 0 and floor > 0:
            start = floor
        stop = data.find(b"\n", end, end + MAX_LINE_WINDOW)
        if stop == -1:
            stop = min(len(data), end + MAX_LINE_WINDOW)
        return (start, stop)

    def _full_scan(self, data: bytes, slot_hits: Dict[int, List[int]],
                   result: MatchResult, stats: HyperscanStats) -> None:
        survivors: List[int] = []
        for pid in self.full_ids:
            slot = self.full_factors.get(pid)
            if slot is not None and not slot_hits.get(slot):
                stats.prefiltered_out += 1
                continue
            survivors.append(pid)
        if not survivors:
            return
        key = frozenset(survivors)
        nfa = self._full_nfa_cache.get(key)
        if nfa is None:
            index = {pid: i for i, pid in enumerate(self.full_ids)}
            nfa = MultiPatternNFA.build([self.full_nodes[index[p]]
                                         for p in survivors])
            self._full_nfa_cache[key] = nfa
        matches, stats.nfa = nfa.run(data)
        stats.nfa_scanned = len(survivors)
        for local, pid in enumerate(survivors):
            result.ends[pid] = sorted(set(matches[local]))


def _accumulate(total: NFAStats, part: NFAStats) -> None:
    total.symbols += part.symbols
    total.active_state_visits += part.active_state_visits
    total.transition_lookups += part.transition_lookups
    total.start_checks += part.start_checks
    total.matches += part.matches
    total.max_active = max(total.max_active, part.max_active)

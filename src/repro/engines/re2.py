"""RE2-style DFA engine.

The related-work CPU design point (Section 9: "RE2 avoids [backtracking
blowup] by compiling regexes into DFAs, ensuring linear-time
performance"): one subset-construction DFA over the whole pattern set,
one table lookup per input byte.  Its weakness is exactly what the
paper cites for multi-regex workloads — the combined automaton can blow
up exponentially, so construction is budgeted and falls back to NFA
simulation (mirroring RE2's own DFA-state-cache fallback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..automata.dfa import DFA, DFATooLarge
from ..automata.nfa import MultiPatternNFA
from ..regex.parser import parse
from .base import Engine, MatchResult


@dataclass
class RE2Stats:
    """Work counters for one match run."""

    dfa_states: int = 0
    table_steps: int = 0
    fell_back_to_nfa: bool = False
    input_bytes: int = 0


class RE2Engine(Engine):
    """Budgeted subset-DFA matcher with NFA fallback."""

    name = "RE2"

    def __init__(self, nfa: MultiPatternNFA, dfa, pattern_count: int):
        self.nfa = nfa
        self.dfa = dfa
        self.pattern_count = pattern_count
        self.last_stats = RE2Stats()

    @classmethod
    def compile(cls, patterns: Sequence[str],
                max_dfa_states: int = 8192) -> "RE2Engine":
        nodes = [parse(p) if isinstance(p, str) else p for p in patterns]
        nfa = MultiPatternNFA.build(nodes)
        try:
            dfa = DFA.build(nfa, max_states=max_dfa_states)
        except DFATooLarge:
            dfa = None
        return cls(nfa, dfa, len(nodes))

    def match(self, data: bytes) -> MatchResult:
        if self.dfa is not None:
            matches = self.dfa.run(data)
            self.last_stats = RE2Stats(dfa_states=self.dfa.state_count,
                                       table_steps=len(data),
                                       input_bytes=len(data))
        else:
            matches, _nfa_stats = self.nfa.run(data)
            self.last_stats = RE2Stats(fell_back_to_nfa=True,
                                       input_bytes=len(data))
        return MatchResult(
            pattern_count=self.pattern_count,
            ends={pid: sorted(set(ends))
                  for pid, ends in matches.items()})

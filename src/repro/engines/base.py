"""Common engine interface and match results.

Every engine in this reproduction — BitGen and the three baselines —
compiles a pattern set once and then matches byte streams, reporting
*all-match* end positions per pattern (Section 2), so outputs are
directly comparable across engines.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class MatchResult:
    """Per-pattern match end positions for one input stream."""

    pattern_count: int
    ends: Dict[int, List[int]] = field(default_factory=dict)

    def __post_init__(self):
        for index in range(self.pattern_count):
            self.ends.setdefault(index, [])

    def match_count(self) -> int:
        return sum(len(v) for v in self.ends.values())

    def matched_patterns(self) -> List[int]:
        return [index for index, ends in sorted(self.ends.items()) if ends]

    def same_matches(self, other: "MatchResult") -> bool:
        if self.pattern_count != other.pattern_count:
            return False
        return all(sorted(set(self.ends[i])) == sorted(set(other.ends[i]))
                   for i in range(self.pattern_count))


class Engine(abc.ABC):
    """A compiled multi-pattern matcher."""

    name: str = "engine"

    @abc.abstractmethod
    def match(self, data: bytes) -> MatchResult:
        """Match all compiled patterns against ``data``."""

    @classmethod
    @abc.abstractmethod
    def compile(cls, patterns: Sequence[str], **options) -> "Engine":
        """Compile a pattern set."""

"""Comparison engines: icgrep, ngAP, and Hyperscan analogues, plus the
shared engine interface BitGen also implements."""

from .base import Engine, MatchResult
from .hyperscan import (HyperscanEngine, HyperscanStats, literal_bytes,
                        required_factor)
from .icgrep import ICgrepEngine, ICgrepStats
from .ngap import NgAPEngine, NgAPStats
from .re2 import RE2Engine, RE2Stats

__all__ = [
    "Engine", "HyperscanEngine", "HyperscanStats", "ICgrepEngine",
    "ICgrepStats", "MatchResult", "NgAPEngine", "NgAPStats", "RE2Engine",
    "RE2Stats", "literal_bytes", "required_factor",
]

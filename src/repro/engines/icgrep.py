"""icgrep-style CPU bitstream engine.

The Parabix/icgrep execution model (Cameron et al., PACT'14): the same
regex→bitstream compilation BitGen consumes, executed sequentially on a
CPU with wide SIMD registers.  Functionally this is the reference
interpreter; the engine adds the work accounting the CPU cost model
uses (SIMD word operations at the configured register width).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..ir.interpreter import Interpreter, match_positions
from ..ir.lower import lower_group
from ..regex.parser import parse
from .base import Engine, MatchResult

#: AVX-512: icgrep's widest configuration on the evaluated Xeon.
DEFAULT_SIMD_BITS = 512


@dataclass
class ICgrepStats:
    """Work counters for one match run."""

    instructions_executed: int = 0
    simd_word_ops: int = 0
    loop_iterations: int = 0
    input_bytes: int = 0


class ICgrepEngine(Engine):
    """Single-threaded CPU bitstream matcher."""

    name = "icgrep"

    def __init__(self, program, pattern_count: int, simd_bits: int):
        self.program = program
        self.pattern_count = pattern_count
        self.simd_bits = simd_bits
        self.last_stats = ICgrepStats()

    @classmethod
    def compile(cls, patterns: Sequence[str],
                simd_bits: int = DEFAULT_SIMD_BITS) -> "ICgrepEngine":
        nodes = [parse(p) if isinstance(p, str) else p for p in patterns]
        program = lower_group(nodes)
        return cls(program, len(nodes), simd_bits)

    def match(self, data: bytes) -> MatchResult:
        interpreter = Interpreter()
        outputs = interpreter.run(self.program, data)
        ends = match_positions(outputs)
        words = -(-(len(data) + 1) // self.simd_bits)
        self.last_stats = ICgrepStats(
            instructions_executed=interpreter.instructions_executed,
            simd_word_ops=interpreter.instructions_executed * words,
            loop_iterations=sum(interpreter.loop_iteration_counts),
            input_bytes=len(data))
        return MatchResult(
            pattern_count=self.pattern_count,
            ends={int(name[1:]): positions
                  for name, positions in ends.items()})

"""ngAP-style GPU NFA engine.

The comparison GPU baseline (Ge et al., ASPLOS'24): automata processing
with a worklist that exposes symbol-level parallelism.  The execution
model is one state-transition table lookup per (active state, symbol)
pair — the irregular memory traffic the paper identifies as its
bottleneck — with GPU utilisation limited by how many worklist entries
exist at a time (Section 8.1: short worklists on low-activity inputs
"fail to saturate GPU resources", e.g. ClamAV).

The simulation performs real matching on the combined Glushkov NFA and
counts the accesses; ``repro.perf.model`` turns them into time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..automata.nfa import MultiPatternNFA, NFAStats
from ..regex.parser import parse
from .base import Engine, MatchResult


@dataclass
class NgAPStats:
    """Work counters for one match run."""

    nfa: NFAStats = field(default_factory=NFAStats)
    state_count: int = 0
    transition_count: int = 0
    input_bytes: int = 0
    #: worklist entries processed (candidate states per symbol)
    worklist_items: int = 0

    def avg_parallelism(self) -> float:
        """Average worklist occupancy — the engine's exposed parallelism."""
        if self.input_bytes == 0:
            return 0.0
        return self.worklist_items / self.input_bytes


class NgAPEngine(Engine):
    """Worklist NFA matcher with access accounting."""

    name = "ngAP"

    def __init__(self, nfa: MultiPatternNFA):
        self.nfa = nfa
        self.last_stats = NgAPStats()

    @classmethod
    def compile(cls, patterns: Sequence[str]) -> "NgAPEngine":
        nodes = [parse(p) if isinstance(p, str) else p for p in patterns]
        return cls(MultiPatternNFA.build(nodes))

    def match(self, data: bytes) -> MatchResult:
        matches, stats = self.nfa.run(data)
        self.last_stats = NgAPStats(
            nfa=stats,
            state_count=self.nfa.state_count,
            transition_count=self.nfa.transition_count(),
            input_bytes=len(data),
            worklist_items=stats.active_state_visits)
        return MatchResult(
            pattern_count=self.nfa.pattern_count,
            ends={pid: sorted(set(ends))
                  for pid, ends in matches.items()})

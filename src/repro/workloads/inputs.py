"""Input-stream synthesis.

Each application gets an input of the right *texture* (English-ish text,
binary payloads, protein sequences, network traffic) with matches of the
pattern set planted at a controlled density, so match-dependent effects
(worklist activity for ngAP, zero-block sparsity for ZBS) behave like
the real suites: scanning workloads (ClamAV, Yara) are match-sparse,
text workloads (Brill) are match-dense.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..regex import ast
from .generators import PROTEIN, sample_match


def text_background(rng: random.Random, size: int) -> bytes:
    """English-like word soup, line-structured like real corpora
    (lines bound how far ``.*`` chains can run)."""
    words = ["the", "quick", "brown", "fox", "jumps", "over", "lazy",
             "dog", "and", "cat", "runs", "to", "a", "house", "was",
             "on", "in", "of", "is", "at"]
    out = bytearray()
    line_len = 0
    while len(out) < size:
        out.extend(rng.choice(words).encode())
        line_len += 1
        if line_len >= rng.randint(8, 14):
            out.append(ord("\n"))
            line_len = 0
        else:
            out.append(ord(" "))
    return bytes(out[:size])


def binary_background(rng: random.Random, size: int) -> bytes:
    """Printable-biased binary payloads (executables are not uniform)."""
    out = bytearray()
    while len(out) < size:
        if rng.random() < 0.7:
            out.append(rng.randrange(0x20, 0x7f))
        else:
            out.append(rng.randrange(256))
    return bytes(out[:size])


def hexish_background(rng: random.Random, size: int) -> bytes:
    return bytes(rng.choice(b"0123456789abcdef") for _ in range(size))


def protein_background(rng: random.Random, size: int) -> bytes:
    return bytes(ord(rng.choice(PROTEIN)) for _ in range(size))


def network_background(rng: random.Random, size: int) -> bytes:
    """HTTP-flavoured request lines."""
    verbs = [b"GET", b"POST", b"PUT"]
    paths = [b"/index.html", b"/api/v1/items", b"/images/logo.png",
             b"/search?q=test", b"/static/app.js"]
    headers = [b"Host: example.com", b"User-Agent: Mozilla/5.0",
               b"Accept: */*", b"Cookie: session=deadbeef"]
    out = bytearray()
    while len(out) < size:
        out.extend(rng.choice(verbs) + b" " + rng.choice(paths)
                   + b" HTTP/1.1\n")
        for _ in range(rng.randint(1, 3)):
            out.extend(rng.choice(headers) + b"\n")
        out.append(ord("\n"))
    return bytes(out[:size])


BACKGROUNDS = {
    "text": text_background,
    "binary": binary_background,
    "hex": hexish_background,
    "protein": protein_background,
    "network": network_background,
}


def plant_matches(rng: random.Random, background: bytes,
                  nodes: Sequence[ast.Regex],
                  density: float) -> bytes:
    """Overwrite the background with substrings matching random patterns,
    roughly ``density`` planted matches per kilobyte."""
    if not nodes or density <= 0 or not background:
        return background
    data = bytearray(background)
    plant_count = max(1, int(len(background) / 1024 * density))
    for _ in range(plant_count):
        node = rng.choice(nodes)
        piece = sample_match(rng, node)
        if not piece or len(piece) >= len(data):
            continue
        offset = rng.randrange(0, len(data) - len(piece))
        data[offset:offset + len(piece)] = piece
    return bytes(data)


def build_input(rng: random.Random, size: int, background: str,
                nodes: Sequence[ast.Regex] = (),
                density: float = 0.0) -> bytes:
    """Background of the given texture with planted matches."""
    maker = BACKGROUNDS.get(background)
    if maker is None:
        raise KeyError(f"unknown background {background!r}")
    return plant_matches(rng, maker(rng, size), list(nodes), density)

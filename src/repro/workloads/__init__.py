"""Benchmark workloads: the ten evaluated applications, regex-set
generators, and input synthesis."""

from .apps import (ALL_APPS, APPS_BY_NAME, FULL_INPUT_BYTES, AppSpec,
                   Workload, app_by_name)
from .generators import sample_match, target_length
from .inputs import BACKGROUNDS, build_input, plant_matches

__all__ = [
    "ALL_APPS", "APPS_BY_NAME", "AppSpec", "BACKGROUNDS",
    "FULL_INPUT_BYTES", "Workload", "app_by_name", "build_input",
    "plant_matches", "sample_match", "target_length",
]

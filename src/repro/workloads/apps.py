"""The ten evaluated applications (Table 1).

Each :class:`AppSpec` carries the published statistics of the original
rule set (pattern count, length mean/SD), the structural generator that
reproduces its character, the input texture, and its planted-match
density.  ``build(scale=...)`` instantiates a deterministic scaled-down
workload: pattern count and input size shrink together so benchmark
runtimes stay tractable in a pure-Python simulator, while per-pattern
structure — which drives every effect the paper measures — is
unchanged.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..regex import ast
from ..regex.parser import parse
from . import generators as gen
from .inputs import build_input

#: the paper's input size (Section 7: 10^6 bytes per application)
FULL_INPUT_BYTES = 1_000_000


@dataclass(frozen=True)
class AppSpec:
    """One benchmark application."""

    name: str
    regex_count: int           # Table 1 "#Regex"
    length_mean: float         # Table 1 "Avg."
    length_sd: float           # Table 1 "SD."
    generator: Callable[[random.Random, int], str]
    background: str
    match_density: float       # planted matches per KiB
    description: str = ""

    def build(self, scale: float = 1.0, input_bytes: int = FULL_INPUT_BYTES,
              seed: int = 0) -> "Workload":
        """Deterministically instantiate this application."""
        rng = random.Random((zlib.crc32(self.name.encode()) ^ seed)
                            & 0xFFFFFFFF)
        count = max(2, int(self.regex_count * scale))
        patterns: List[str] = []
        while len(patterns) < count:
            length = gen.target_length(rng, self.length_mean,
                                       self.length_sd)
            pattern = self.generator(rng, length)
            patterns.append(pattern)
        nodes = [parse(p) for p in patterns]
        size = max(1024, int(input_bytes * scale)) if scale < 1.0 \
            else input_bytes
        data = build_input(rng, size, self.background, nodes,
                           self.match_density)
        return Workload(spec=self, patterns=patterns, nodes=nodes,
                        data=data)


@dataclass
class Workload:
    """An instantiated application: patterns plus input stream."""

    spec: AppSpec
    patterns: List[str]
    nodes: List[ast.Regex]
    data: bytes

    @property
    def name(self) -> str:
        return self.spec.name


BRILL = AppSpec(
    name="Brill", regex_count=1849, length_mean=44.4, length_sd=16.9,
    generator=gen.brill_pattern, background="text", match_density=6.0,
    description="POS-tagging rules: alternation and Kleene heavy "
                "(control-intensive; most while loops in Table 1)")

CLAMAV = AppSpec(
    name="ClamAV", regex_count=491, length_mean=359.7, length_sd=310.7,
    generator=gen.hex_signature_pattern, background="binary",
    match_density=0.02,
    description="virus byte signatures: very long literals with bounded "
                "gaps; match-sparse scanning")

DOTSTAR = AppSpec(
    name="Dotstar", regex_count=1279, length_mean=52.8, length_sd=30.8,
    generator=gen.dotstar_pattern, background="text", match_density=0.3,
    description="literal fragments separated by .* / bounded gaps")

PROTOMATA = AppSpec(
    name="Protomata", regex_count=2338, length_mean=96.5, length_sd=36.2,
    generator=gen.protein_pattern, background="protein", match_density=4.0,
    description="protein motifs: class/alternation heavy (most ORs)")

SNORT = AppSpec(
    name="Snort", regex_count=1873, length_mean=50.5, length_sd=41.5,
    generator=gen.snort_pattern, background="network", match_density=1.0,
    description="intrusion-detection content rules")

YARA = AppSpec(
    name="Yara", regex_count=3358, length_mean=32.5, length_sd=24.9,
    generator=gen.yara_pattern, background="binary", match_density=0.05,
    description="malware strings: literal/shift heavy, almost no loops")

BRO217 = AppSpec(
    name="Bro217", regex_count=227, length_mean=34.1, length_sd=27.9,
    generator=gen.bro_pattern, background="network", match_density=0.5,
    description="Zeek HTTP signatures")

EXACTMATCH = AppSpec(
    name="ExactMatch", regex_count=298, length_mean=52.9, length_sd=19.2,
    generator=gen.literal_pattern, background="text", match_density=0.1,
    description="pure string literals")

RANGES1 = AppSpec(
    name="Ranges1", regex_count=298, length_mean=54.3, length_sd=19.4,
    generator=gen.ranged_pattern, background="text", match_density=0.5,
    description="literals with character ranges")

TCP = AppSpec(
    name="TCP", regex_count=300, length_mean=53.9, length_sd=21.4,
    generator=gen.tcp_pattern, background="network", match_density=0.5,
    description="TCP-stream signatures")

ALL_APPS: Sequence[AppSpec] = (BRILL, CLAMAV, DOTSTAR, PROTOMATA, SNORT,
                               YARA, BRO217, EXACTMATCH, RANGES1, TCP)

APPS_BY_NAME: Dict[str, AppSpec] = {app.name: app for app in ALL_APPS}


def app_by_name(name: str) -> AppSpec:
    try:
        return APPS_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}; known: "
                       f"{sorted(APPS_BY_NAME)}") from None

"""Seeded regex-set generators.

The paper's benchmarks come from AutomataZoo, ANMLzoo, and the Becchi
Regex suite; those rule sets are not redistributable here, so each
application is represented by a deterministic generator matched to its
published statistics (Table 1: pattern count, length mean/SD) and to
the *structural* character that drives the paper's effects: literal
density (Yara, ExactMatch, ClamAV), character-class density (Protomata,
Ranges1), ``.*`` gaps (Dotstar), and control-flow density (Brill).

Every generator takes a seeded ``random.Random`` plus a target length
and returns a pattern string in the supported grammar.
"""

from __future__ import annotations

import random
import string
from typing import List, Optional

from ..regex import ast

LOWER = string.ascii_lowercase
WORDCHARS = string.ascii_lowercase + string.ascii_uppercase + string.digits
HEX = "0123456789abcdef"
PROTEIN = "ACDEFGHIKLMNPQRSTVWY"


def literal_pattern(rng: random.Random, length: int,
                    alphabet: str = LOWER) -> str:
    """A plain string pattern (ExactMatch, and the literal parts of
    Yara/ClamAV signatures)."""
    length = max(1, length)
    return "".join(rng.choice(alphabet) for _ in range(length))


def byte_literal(rng: random.Random, count: int) -> str:
    r"""``count`` random bytes as an escaped pattern (``\xNN`` form)."""
    return "".join(f"\\x{rng.randrange(256):02x}" for _ in range(count))


def hex_signature_pattern(rng: random.Random, length: int,
                          gap_probability: float = 0.08) -> str:
    """ClamAV-style virus signature: a long byte-sequence literal with
    occasional bounded wildcard gaps (ClamAV's ``{n-m}``).  ``length``
    counts signature hex digits, i.e. two per byte, matching how
    Table 1 measures ClamAV pattern lengths."""
    parts: List[str] = []
    remaining = max(4, int(length * 0.7))
    while remaining > 0:
        run = min(remaining, rng.randint(2, 8))
        parts.append(byte_literal(rng, run))
        remaining -= run
        if remaining > 2 and rng.random() < gap_probability:
            lo = rng.randint(0, 2)
            hi = lo + rng.randint(1, 3)
            parts.append(f"[^\\n]{{{lo},{hi}}}")
            remaining -= 1
    return "".join(parts)


def ranged_pattern(rng: random.Random, length: int) -> str:
    """Ranges1-style: literals interspersed with character ranges."""
    out: List[str] = []
    budget = max(2, length)
    while budget > 0:
        roll = rng.random()
        if roll < 0.6:
            out.append(rng.choice(LOWER))
            budget -= 1
        elif roll < 0.85:
            lo = rng.choice(LOWER[:20])
            hi = chr(min(ord(lo) + rng.randint(1, 5), ord("z")))
            out.append(f"[{lo}-{hi}]")
            budget -= 5
        elif roll < 0.96:
            klass = "".join(rng.sample(LOWER, rng.randint(2, 4)))
            out.append(f"[{klass}]")
            budget -= len(klass) + 2
        else:
            out.append(rng.choice(LOWER) + "+")
            budget -= 2
    return "".join(out)


def dotstar_pattern(rng: random.Random, length: int,
                    star_probability: float = 0.15) -> str:
    """Dotstar-suite style: literal fragments separated by ``.*`` or by
    bounded any-character gaps."""
    fragments = rng.randint(2, 3)
    frag_len = max(2, length // fragments - 2)
    parts: List[str] = []
    for index in range(fragments):
        parts.append(literal_pattern(rng, frag_len + rng.randint(-1, 1)))
        if index + 1 < fragments:
            if rng.random() < star_probability:
                parts.append(".*")
            else:
                lo = rng.randint(0, 2)
                parts.append(f".{{{lo},{lo + rng.randint(1, 4)}}}")
    return "".join(parts)


def protein_pattern(rng: random.Random, length: int) -> str:
    """Protomata-style protein motif: amino-acid classes, alternation,
    and bounded repetition (PROSITE signatures)."""
    out: List[str] = []
    budget = max(3, length)
    while budget > 0:
        roll = rng.random()
        if roll < 0.35:
            out.append(rng.choice(PROTEIN))
            budget -= 1
        elif roll < 0.75:
            klass = "".join(rng.sample(PROTEIN, rng.randint(2, 5)))
            out.append(f"[{klass}]")
            budget -= len(klass) + 2
        elif roll < 0.9:
            a = rng.choice(PROTEIN)
            b = rng.choice(PROTEIN)
            out.append(f"({a}|{b})")
            budget -= 5
        else:
            lo = rng.randint(1, 3)
            rep = f"{rng.choice(PROTEIN)}{{{lo},{lo + rng.randint(0, 2)}}}"
            out.append(rep)
            budget -= len(rep)
    return "".join(out)


def brill_pattern(rng: random.Random, length: int) -> str:
    """Brill-style tagging rule: word fragments, alternations over short
    words, and Kleene groups — the control-flow-heavy workload."""
    words = ["the", "a", "an", "to", "of", "in", "is", "was", "on", "at"]
    out: List[str] = []
    budget = max(4, length)
    stars = 0
    while budget > 0:
        roll = rng.random()
        if roll < 0.35:
            fragment = literal_pattern(rng, rng.randint(2, 5))
            out.append(fragment)
            budget -= len(fragment)
        elif roll < 0.6:
            a, b = rng.sample(words, 2)
            out.append(f"({a}|{b})")
            budget -= len(a) + len(b) + 3
        elif roll < 0.9 or stars >= 3:
            out.append("[a-z]")
            budget -= 5
        else:
            group = literal_pattern(rng, rng.randint(1, 2))
            out.append(f"({group})*")
            budget -= len(group) + 3
            stars += 1
    return "".join(out)


def snort_pattern(rng: random.Random, length: int) -> str:
    """Snort-style content rule: keyword literal + classes + optional
    repetition tail."""
    keywords = ["GET", "POST", "HTTP", "admin", "login", "passwd", "cmd",
                "exec", "shell", "root", "select", "union"]
    out: List[str] = [rng.choice(keywords)]
    budget = max(3, length - len(out[0]))
    while budget > 0:
        roll = rng.random()
        if roll < 0.55:
            fragment = literal_pattern(rng, rng.randint(2, 5),
                                       WORDCHARS + "._-/=")
            out.append(fragment)
            budget -= len(fragment)
        elif roll < 0.75:
            out.append("[a-zA-Z0-9]")
            budget -= 10
        elif roll < 0.95:
            lo = rng.randint(1, 3)
            gap = f"[^\\n]{{{lo},{lo + 2}}}"
            out.append(gap)
            budget -= len(gap)
        else:
            out.append("(/|%2f)*")
            budget -= 8
    return "".join(out)


def yara_pattern(rng: random.Random, length: int) -> str:
    """Yara-style malware string: byte-sequence literal with occasional
    one-byte wildcard classes, and essentially no loops (Table 1: 7
    whiles in 3358 patterns).  ``length`` counts hex digits (two per
    byte), as in Table 1."""
    out: List[str] = []
    budget = max(2, length) // 2
    while budget > 0:
        if rng.random() < 0.9:
            run = min(budget, rng.randint(1, 4))
            out.append(byte_literal(rng, run))
            budget -= run
        else:
            a, b = rng.randrange(256), rng.randrange(256)
            out.append(f"[\\x{a:02x}\\x{b:02x}]")
            budget -= 1
    return "".join(out)


def bro_pattern(rng: random.Random, length: int) -> str:
    """Bro/Zeek HTTP signature: header-ish literal with classes."""
    heads = ["User-Agent", "Host", "Cookie", "GET /", "POST /", "Referer"]
    out = [rng.choice(heads)]
    budget = max(2, length - len(out[0]))
    while budget > 0:
        if rng.random() < 0.6:
            fragment = literal_pattern(rng, rng.randint(1, 4))
            out.append(fragment)
            budget -= len(fragment)
        else:
            out.append("[a-z0-9]")
            budget -= 8
    return "".join(out)


def tcp_pattern(rng: random.Random, length: int) -> str:
    """TCP-suite style: mixed literal/class with rare unbounded parts."""
    out: List[str] = []
    budget = max(2, length)
    while budget > 0:
        roll = rng.random()
        if roll < 0.5:
            fragment = literal_pattern(rng, rng.randint(2, 5))
            out.append(fragment)
            budget -= len(fragment)
        elif roll < 0.88:
            out.append("[0-9a-f]")
            budget -= 7
        elif roll < 0.97:
            out.append(f"{rng.choice(LOWER)}{{2,4}}")
            budget -= 7
        else:
            out.append(f"({rng.choice(LOWER)})+")
            budget -= 4
    return "".join(out)


def target_length(rng: random.Random, mean: float, sd: float) -> int:
    """Draw a pattern length near the published mean/SD (clamped)."""
    return max(2, min(int(rng.gauss(mean, sd)), int(mean + 3 * sd)))


def sample_match(rng: random.Random, node: ast.Regex,
                 max_star: int = 3) -> Optional[bytes]:
    """A random byte string matching ``node`` (for planting matches in
    inputs).  None when the node cannot match (empty class)."""
    if isinstance(node, ast.Empty):
        return b""
    if isinstance(node, ast.Anchor):
        return b""
    if isinstance(node, ast.Lit):
        choices = list(node.cc.bytes())
        if not choices:
            return None
        return bytes([rng.choice(choices)])
    if isinstance(node, ast.Seq):
        out = bytearray()
        for part in node.parts:
            piece = sample_match(rng, part, max_star)
            if piece is None:
                return None
            out.extend(piece)
        return bytes(out)
    if isinstance(node, ast.Alt):
        branches = list(node.branches)
        rng.shuffle(branches)
        for branch in branches:
            piece = sample_match(rng, branch, max_star)
            if piece is not None:
                return piece
        return None
    if isinstance(node, ast.Star):
        reps = rng.randint(0, max_star)
        out = bytearray()
        for _ in range(reps):
            piece = sample_match(rng, node.body, max_star)
            if piece is None:
                break
            out.extend(piece)
        return bytes(out)
    if isinstance(node, ast.Rep):
        hi = node.lo + max_star if node.hi is None else node.hi
        reps = rng.randint(node.lo, max(node.lo, min(hi, node.lo + max_star)))
        out = bytearray()
        for _ in range(reps):
            piece = sample_match(rng, node.body, max_star)
            if piece is None:
                return None if reps > 0 and node.lo > 0 else bytes(out)
            out.extend(piece)
        return bytes(out)
    raise TypeError(f"unknown node {node!r}")

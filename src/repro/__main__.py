"""Command-line multi-pattern matcher.

Usage examples::

    python -m repro 'a(bc)*d' 'cat|dog' --text 'abcbcd hot dog'
    python -m repro -f rules.txt -i payload.bin --engine hyperscan
    python -m repro 'colou?r' --text '...' --scheme SR --stats
    python -m repro 'a(bc)*d' --kernel          # print the CUDA-like kernel
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .core.engine import BitGenEngine
from .core.schemes import Scheme
from .engines.base import Engine
from .engines.hyperscan import HyperscanEngine
from .engines.icgrep import ICgrepEngine
from .engines.ngap import NgAPEngine
from .engines.re2 import RE2Engine

ENGINES = {
    "bitgen": BitGenEngine,
    "hyperscan": HyperscanEngine,
    "ngap": NgAPEngine,
    "icgrep": ICgrepEngine,
    "re2": RE2Engine,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-pattern regex matching with the BitGen "
                    "reproduction (and its baseline engines).")
    parser.add_argument("patterns", nargs="*",
                        help="regex patterns to match")
    parser.add_argument("-f", "--patterns-file",
                        help="file with one pattern per line")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("-i", "--input", help="input file to scan")
    source.add_argument("--text", help="inline input text")
    parser.add_argument("--engine", choices=sorted(ENGINES),
                        default="bitgen")
    parser.add_argument("--scheme", choices=[s.name for s in Scheme],
                        default="ZBS",
                        help="BitGen execution scheme (bitgen engine only)")
    parser.add_argument("--stats", action="store_true",
                        help="print engine work statistics")
    parser.add_argument("--spans", action="store_true",
                        help="also report match start positions "
                             "(bitgen engine only)")
    parser.add_argument("--kernel", action="store_true",
                        help="print the generated CUDA-like kernel and exit")
    parser.add_argument("--limit", type=int, default=10,
                        help="max positions printed per pattern")
    return parser


def load_patterns(args) -> List[str]:
    patterns = list(args.patterns)
    if args.patterns_file:
        with open(args.patterns_file) as handle:
            patterns.extend(line.rstrip("\n") for line in handle
                            if line.strip() and not line.startswith("#"))
    if not patterns:
        raise SystemExit("no patterns given (positional or -f)")
    return patterns


def load_input(args) -> bytes:
    if args.text is not None:
        return args.text.encode()
    if args.input:
        with open(args.input, "rb") as handle:
            return handle.read()
    return sys.stdin.buffer.read()


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    patterns = load_patterns(args)

    if args.engine == "bitgen":
        engine: Engine = BitGenEngine.compile(
            patterns, scheme=Scheme[args.scheme], loop_fallback=True)
    else:
        engine = ENGINES[args.engine].compile(patterns)

    if args.kernel:
        if not isinstance(engine, BitGenEngine):
            raise SystemExit("--kernel requires --engine bitgen")
        print(engine.render_kernels())
        return 0

    data = load_input(args)
    result = engine.match(data)
    starts = engine.match_starts(data) \
        if args.spans and isinstance(engine, BitGenEngine) else None

    for index, pattern in enumerate(patterns):
        ends = result.ends[index]
        shown = ", ".join(map(str, ends[:args.limit]))
        suffix = ", ..." if len(ends) > args.limit else ""
        print(f"/{pattern}/: {len(ends)} match(es)"
              + (f" ending at [{shown}{suffix}]" if ends else ""))
        if starts is not None and starts.ends[index]:
            begin = ", ".join(map(str, starts.ends[index][:args.limit]))
            print(f"    starts at [{begin}]")

    if args.stats:
        if isinstance(engine, BitGenEngine):
            print(f"\n{result.metrics.summary()}")
        else:
            print(f"\n{engine.last_stats}")
    return 0 if result.match_count() else 1


if __name__ == "__main__":
    sys.exit(main())

"""Command-line multi-pattern matcher.

Usage examples::

    python -m repro 'a(bc)*d' 'cat|dog' --text 'abcbcd hot dog'
    python -m repro -f rules.txt -i payload.bin --engine hyperscan
    python -m repro 'colou?r' --text '...' --scheme SR --stats
    python -m repro 'a(bc)*d' --kernel          # print the CUDA-like kernel
    python -m repro scan --patterns rules.txt --workers 4 data.bin
    python -m repro trace Bro217 --export chrome -o trace.json
    python -m repro serve --port 8321        # persistent matching gateway
    python -m repro serve --self-test        # end-to-end smoke, exit 0/1
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .core.engine import BitGenEngine
from .core.schemes import Scheme
from .engines.base import Engine
from .engines.hyperscan import HyperscanEngine
from .engines.icgrep import ICgrepEngine
from .engines.ngap import NgAPEngine
from .engines.re2 import RE2Engine
from .api import load_patterns_file
from .parallel.config import (BACKENDS, EXECUTORS, GROUPINGS,
                              ON_FAULT_POLICIES, PREFILTER_IMPLS,
                              SHARD_POLICIES, START_METHODS, ScanConfig)

ENGINES = {
    "bitgen": BitGenEngine,
    "hyperscan": HyperscanEngine,
    "ngap": NgAPEngine,
    "icgrep": ICgrepEngine,
    "re2": RE2Engine,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-pattern regex matching with the BitGen "
                    "reproduction (and its baseline engines).")
    parser.add_argument("patterns", nargs="*",
                        help="regex patterns to match")
    parser.add_argument("-f", "--patterns-file",
                        help="file with one pattern per line")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("-i", "--input", help="input file to scan")
    source.add_argument("--text", help="inline input text")
    parser.add_argument("--engine", choices=sorted(ENGINES),
                        default="bitgen")
    parser.add_argument("--scheme", choices=[s.name for s in Scheme],
                        default="ZBS",
                        help="BitGen execution scheme (bitgen engine only)")
    parser.add_argument("--stats", action="store_true",
                        help="print engine work statistics")
    parser.add_argument("--spans", action="store_true",
                        help="also report match start positions "
                             "(bitgen engine only)")
    parser.add_argument("--kernel", action="store_true",
                        help="print the generated CUDA-like kernel and exit")
    parser.add_argument("--limit", type=int, default=10,
                        help="max positions printed per pattern")
    return parser


def load_patterns(args) -> List[str]:
    patterns = list(args.patterns)
    if args.patterns_file:
        patterns.extend(load_patterns_file(args.patterns_file))
    if not patterns:
        raise SystemExit("no patterns given (positional or -f)")
    return patterns


def load_input(args) -> bytes:
    if args.text is not None:
        return args.text.encode()
    if args.input:
        with open(args.input, "rb") as handle:
            return handle.read()
    return sys.stdin.buffer.read()


def build_scan_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro scan",
        description="Sharded parallel scan emitting a ScanReport as "
                    "JSON (one report per input file).")
    parser.add_argument("inputs", nargs="*", metavar="FILE",
                        help="input files to scan (stdin when omitted)")
    parser.add_argument("--patterns", "--patterns-file",
                        dest="patterns", metavar="FILE",
                        help="rule-set file: one pattern per line, "
                             "blank lines and '#' comments skipped")
    parser.add_argument("--prefilter", action="store_true",
                        help="gate kernel dispatch on a literal "
                             "prefilter pass (identical matches, "
                             "skips groups whose required literals "
                             "are absent)")
    parser.add_argument("--prefilter-impl", choices=PREFILTER_IMPLS,
                        default="screen",
                        help="prefilter gate implementation")
    parser.add_argument("--grouping", choices=GROUPINGS,
                        default="balanced",
                        help="regex grouping strategy (fingerprint "
                             "scales best to large rule sets)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker shards (1 = serial)")
    parser.add_argument("--executor", choices=EXECUTORS, default="process")
    parser.add_argument("--start-method", choices=START_METHODS,
                        default=None,
                        help="process-pool start method (default: "
                             "$REPRO_PARALLEL_START_METHOD, else fork "
                             "where available)")
    parser.add_argument("--shard", choices=SHARD_POLICIES, default="auto")
    parser.add_argument("--backend", choices=BACKENDS, default="simulate")
    parser.add_argument("--scheme", choices=[s.name for s in Scheme],
                        default="ZBS")
    parser.add_argument("--on-fault", choices=ON_FAULT_POLICIES,
                        default="degrade",
                        help="worker-fault policy: degrade inline "
                             "(default), retry on a fresh pool with "
                             "backoff, or fail the scan")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="retries per faulted shard "
                             "(--on-fault retry only)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="scan-level deadline; expired shards "
                             "degrade inline and are reported as "
                             "deadline faults")
    parser.add_argument("--indent", type=int, default=2,
                        help="JSON indentation (0 = compact)")
    return parser


def scan_main(argv: List[str]) -> int:
    args = build_scan_parser().parse_args(argv)
    if not args.patterns:
        raise SystemExit(
            "no rule-set file given (--patterns/--patterns-file)")
    patterns = load_patterns_file(args.patterns)
    if not patterns:
        raise SystemExit(f"no patterns in {args.patterns}")
    config = ScanConfig(scheme=Scheme[args.scheme], backend=args.backend,
                        workers=args.workers, executor=args.executor,
                        start_method=args.start_method,
                        shard=args.shard, loop_fallback=True,
                        grouping=args.grouping,
                        prefilter=args.prefilter,
                        prefilter_impl=args.prefilter_impl,
                        on_fault=args.on_fault,
                        max_retries=args.max_retries,
                        deadline_s=args.deadline)
    engine = BitGenEngine.compile(patterns, config=config)

    if args.inputs:
        names = args.inputs
        streams = []
        for name in names:
            with open(name, "rb") as handle:
                streams.append(handle.read())
    else:
        names = ["<stdin>"]
        streams = [sys.stdin.buffer.read()]

    from .resilience import ScanAbortedError

    try:
        results = engine.match_many(streams)
    except ScanAbortedError as exc:
        print(f"scan aborted (on_fault=fail): {exc.fault.summary()}",
              file=sys.stderr)
        return 2
    reports = []
    for name, result in zip(names, results):
        report = result.report()
        payload = report.to_dict()
        payload["file"] = name
        payload["dispatch"] = engine.last_dispatch
        gate = getattr(result, "prefilter", None)
        if gate is not None:
            payload["prefilter"] = gate.to_dict()
        payload["faults"] = [f.to_dict() for f in engine.last_scan_faults]
        reports.append(payload)
    for fault in engine.last_scan_faults:
        print(f"fault: {fault.summary()}", file=sys.stderr)
    indent = args.indent if args.indent > 0 else None
    out = reports[0] if len(reports) == 1 else reports
    print(json.dumps(out, indent=indent))
    return 0 if any(r["match_count"] for r in reports) else 1


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run one standard workload with tracing enabled "
                    "and export the spans (and metrics): a compile, a "
                    "sharded parallel scan, and every pass/codegen/"
                    "shard/exec span in between.")
    parser.add_argument("app", help="workload application from Table 1 "
                                    "(e.g. Snort, Bro217, ClamAV)")
    parser.add_argument("--export",
                        choices=("chrome", "jsonl", "prometheus"),
                        default="chrome",
                        help="chrome: trace_event JSON (load in "
                             "Perfetto / chrome://tracing); jsonl: one "
                             "span dict per line; prometheus: metrics "
                             "text exposition")
    parser.add_argument("-o", "--output", default=None,
                        help="output path (default: trace-<app>.<ext>)")
    parser.add_argument("--backend", choices=BACKENDS,
                        default="compiled")
    parser.add_argument("--scheme", choices=[s.name for s in Scheme],
                        default="ZBS")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker shards for the parallel scan")
    parser.add_argument("--executor", choices=EXECUTORS,
                        default="thread")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="workload scale factor (rule-set fraction)")
    parser.add_argument("--input-bytes", type=int, default=4096,
                        help="approximate scan input size")
    return parser


def trace_main(argv: List[str]) -> int:
    args = build_trace_parser().parse_args(argv)
    from . import obs
    from .workloads.apps import app_by_name

    spec = app_by_name(args.app)
    workload = spec.build(scale=args.scale, seed=0,
                          input_bytes=int(args.input_bytes / args.scale))
    # min_parallel_bytes=0 forces the worker pool even on the scaled
    # input, so the exported trace shows real sharded dispatch.
    config = ScanConfig(scheme=Scheme[args.scheme],
                        backend=args.backend, workers=args.workers,
                        executor=args.executor, cta_count=4,
                        min_parallel_bytes=0, loop_fallback=True)

    tracer = obs.start_tracing()
    engine = BitGenEngine._compile_config(workload.nodes, config)
    report = engine.scan(workload.data)
    obs.stop_tracing()
    spans = tracer.finished()

    extensions = {"chrome": "json", "jsonl": "jsonl",
                  "prometheus": "prom"}
    out = args.output or \
        f"trace-{spec.name.lower()}.{extensions[args.export]}"
    if args.export == "chrome":
        obs.export.write_chrome(spans, out)
    elif args.export == "jsonl":
        obs.export.write_jsonl(spans, out)
    else:
        obs.export.write_prometheus(obs.registry(), out)

    categories: dict = {}
    for span in spans:
        categories[span["cat"]] = categories.get(span["cat"], 0) + 1
    breakdown = ", ".join(f"{count} {cat}" for cat, count
                          in sorted(categories.items()))
    print(f"{spec.name}: {len(workload.patterns)} patterns, "
          f"{len(workload.data)} bytes, {report.match_count()} "
          f"matches (dispatch={report.dispatch})")
    print(f"trace: {len(spans)} spans ({breakdown}) -> {out}")
    cache = obs.registry().counter(
        "repro_kernel_cache_lookups_total",
        "In-process kernel cache lookups")
    hits = obs.registry().counter(
        "repro_kernel_cache_hits_total",
        "In-process kernel cache hits")
    print(f"kernel cache: {int(hits.value())}/{int(cache.value())} "
          f"lookups hit")
    return 0


def main(argv: List[str] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "scan":
        return scan_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "serve":
        from .serve.cli import serve_main

        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    patterns = load_patterns(args)

    if args.engine == "bitgen":
        engine: Engine = BitGenEngine.compile(
            patterns, config=ScanConfig(scheme=Scheme[args.scheme],
                                        loop_fallback=True))
    else:
        engine = ENGINES[args.engine].compile(patterns)

    if args.kernel:
        if not isinstance(engine, BitGenEngine):
            raise SystemExit("--kernel requires --engine bitgen")
        print(engine.render_kernels())
        return 0

    data = load_input(args)
    result = engine.match(data)
    starts = engine.match_starts(data) \
        if args.spans and isinstance(engine, BitGenEngine) else None

    for index, pattern in enumerate(patterns):
        ends = result.ends[index]
        shown = ", ".join(map(str, ends[:args.limit]))
        suffix = ", ..." if len(ends) > args.limit else ""
        print(f"/{pattern}/: {len(ends)} match(es)"
              + (f" ending at [{shown}{suffix}]" if ends else ""))
        if starts is not None and starts.ends[index]:
            begin = ", ".join(map(str, starts.ends[index][:args.limit]))
            print(f"    starts at [{begin}]")

    if args.stats:
        if isinstance(engine, BitGenEngine):
            print(f"\n{result.metrics.summary()}")
        else:
            print(f"\n{engine.last_stats}")
    return 0 if result.match_count() else 1


if __name__ == "__main__":
    sys.exit(main())

"""repro.api — the one-obvious public entry point.

Two functions are the supported surface for matching::

    import repro

    matcher = repro.compile(["a(bc)*d", "colou?r"], workers=4)
    report = matcher.scan(data)                 # one-shot
    session = matcher.stream()                  # chunked
    report = repro.scan(["cat|dog"], data)      # compile-and-scan

``repro.compile`` returns a :class:`Matcher` — a thin handle over the
compiled :class:`~repro.core.engine.BitGenEngine` exposing ``.scan()``,
``.stream()``, and ``.config``.  Configuration knobs are the
:class:`~repro.parallel.ScanConfig` fields, passed either as keywords
(``repro.compile(p, scheme=Scheme.SR, workers=4)``) or as one
``config=ScanConfig(...)`` object; keywords layer on top of ``config``.

Everything deeper — ``BitGenEngine``, ``StreamingMatcher``, the
executor and IR layers — is internal: stable enough to import for
research, but the facade is what the serving gateway
(:mod:`repro.serve`) and the CLI build on, and what stays compatible.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path
from typing import List, Optional, Sequence, Union

from .parallel.config import ScanConfig
from .parallel.report import ScanReport

#: ScanConfig field names accepted as keyword knobs by the facade.
CONFIG_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ScanConfig))


def resolve_knobs(config: Optional[ScanConfig], knobs) -> ScanConfig:
    """One ScanConfig from an optional base ``config`` plus keyword
    knobs (keywords win).  Unknown knobs raise ``TypeError`` naming
    the valid fields, so typos fail loudly instead of silently
    configuring nothing."""
    unknown = sorted(set(knobs) - CONFIG_FIELDS)
    if unknown:
        raise TypeError(
            f"unknown ScanConfig field(s) {', '.join(unknown)}; "
            f"valid fields: {', '.join(sorted(CONFIG_FIELDS))}")
    base = config if config is not None else ScanConfig()
    return base.replace(**knobs) if knobs else base


def fingerprint_patterns(patterns: Sequence[Union[str, object]],
                         config: ScanConfig) -> str:
    """Stable identity of (patterns, compile-relevant config) —
    computable *without* compiling, so engine registries can key
    lookups before paying a compile."""
    digest = hashlib.sha256()
    for pattern in patterns:
        text = pattern if isinstance(pattern, str) else repr(pattern)
        digest.update(text.encode("utf-8", "surrogatepass"))
        digest.update(b"\x00")
    digest.update(repr(config.compile_key()).encode())
    return digest.hexdigest()[:16]


def load_patterns_file(path: Union[str, Path]) -> List[str]:
    """Load one pattern per line from ``path``.  Blank lines and lines
    whose first non-space character is ``#`` are skipped — the shared
    rule-set file format of the CLI (``--patterns-file``) and the
    benchmarks."""
    patterns: List[str] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            patterns.append(stripped)
    return patterns


class Matcher:
    """A compiled pattern set, ready to scan.

    Holds the engine, the patterns it was compiled from, and the
    resolved :class:`ScanConfig`.  One matcher serves any number of
    scans and streaming sessions concurrently — per-scan state lives
    in the report / session objects, not here.
    """

    def __init__(self, engine, patterns: Sequence[Union[str, object]]):
        self._engine = engine
        self.patterns: List[Union[str, object]] = list(patterns)

    # -- identity ----------------------------------------------------------

    @property
    def config(self) -> ScanConfig:
        return self._engine.config

    @property
    def pattern_count(self) -> int:
        return self._engine.pattern_count

    @property
    def engine(self):
        """The underlying :class:`BitGenEngine` (internal surface)."""
        return self._engine

    def fingerprint(self) -> str:
        """Stable identity of (patterns, compile-relevant config): the
        key persistent engine registries (:mod:`repro.serve`) cache
        compiled matchers under."""
        return fingerprint_patterns(self.patterns, self.config)

    def __repr__(self) -> str:
        return (f"Matcher(patterns={self.pattern_count}, "
                f"scheme={self.config.scheme.name}, "
                f"backend={self.config.backend!r})")

    # -- rule-set updates --------------------------------------------------

    def update(self, patterns: Sequence[Union[str, object]],
               config: Optional[ScanConfig] = None, **knobs):
        """Swap this matcher's rule set for ``patterns``, recompiling
        incrementally: compiled groups whose membership is unchanged
        are reused verbatim (:mod:`repro.core.incremental`), so update
        latency scales with the diff rather than the set size.

        Mutates the matcher in place — in-flight scans on the old
        engine finish unaffected — and returns the
        :class:`~repro.core.incremental.UpdateReport` accounting how
        much was reused.  Config knobs may be changed in the same
        call, at the cost of a full recompile when the compile key
        shifts."""
        from .core.incremental import update_engine

        effective = resolve_knobs(config or self.config, knobs) \
            if (config is not None or knobs) else self.config
        engine, report = update_engine(self._engine, patterns,
                                       config=effective)
        self._engine = engine
        self.patterns = list(patterns)
        return report

    # -- matching ----------------------------------------------------------

    def scan(self, data: bytes,
             config: Optional[ScanConfig] = None, **knobs) -> ScanReport:
        """Scan one input; dispatch knobs may be overridden per call
        (``matcher.scan(data, workers=4)``)."""
        if config is not None or knobs:
            return self._engine.scan(
                data, config=resolve_knobs(config or self.config, knobs))
        return self._engine.scan(data)

    def scan_many(self, streams: Sequence[bytes],
                  config: Optional[ScanConfig] = None,
                  **knobs) -> List[ScanReport]:
        """Scan several independent inputs, one report each."""
        effective = resolve_knobs(config or self.config, knobs) \
            if (config is not None or knobs) else None
        results = self._engine.match_many(streams, config=effective)
        return [result.report() for result in results]

    def stream(self, config: Optional[ScanConfig] = None, **knobs):
        """A chunked :class:`~repro.core.streaming.StreamingMatcher`
        session over this matcher (fresh carried-history state)."""
        from .core.streaming import StreamingMatcher

        effective = resolve_knobs(config or self.config, knobs) \
            if (config is not None or knobs) else None
        return StreamingMatcher(self._engine, config=effective)


def compile(patterns: Sequence[Union[str, object]],
            config: Optional[ScanConfig] = None, **knobs) -> Matcher:
    """Compile ``patterns`` (regex strings or ASTs) into a
    :class:`Matcher`.  Keyword knobs are :class:`ScanConfig` fields."""
    from .core.engine import BitGenEngine

    resolved = resolve_knobs(config, knobs)
    engine = BitGenEngine._compile_config(patterns, resolved)
    return Matcher(engine, patterns)


def scan(patterns: Sequence[Union[str, object]], data: bytes,
         config: Optional[ScanConfig] = None, **knobs) -> ScanReport:
    """Compile-and-scan in one call — the simplest possible use."""
    return compile(patterns, config=config, **knobs).scan(data)

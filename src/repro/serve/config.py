"""Gateway configuration and error vocabulary.

One frozen :class:`ServeConfig` describes a gateway the way
:class:`~repro.parallel.ScanConfig` describes a scan: engine-registry
capacity, per-tenant admission limits, default deadlines, and the
circuit-breaker tuning, all validated at construction.  The ``scan``
field carries the default :class:`ScanConfig` engines are compiled
with when a request doesn't bring its own.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from ..parallel.config import ScanConfig

#: wire / exception error codes, stable for clients and dashboards
OVERLOADED = "overloaded"
DEADLINE = "deadline"
UNKNOWN_SESSION = "unknown-session"
SESSION_LIMIT = "session-limit"
BAD_REQUEST = "bad-request"
INTERNAL = "internal"


class GatewayError(Exception):
    """Base of every request-level gateway failure; ``code`` is the
    stable wire identifier clients branch on."""

    code = INTERNAL

    def __init__(self, message: str = ""):
        super().__init__(message or self.code)


class OverloadedError(GatewayError):
    """Admission control shed the request: the tenant's queue was at
    its high-water mark.  Back off and retry."""

    code = OVERLOADED


class DeadlineExceededError(GatewayError):
    """The request's deadline expired before (or while) serving it."""

    code = DEADLINE


class UnknownSessionError(GatewayError):
    """``feed``/``close`` named a session this gateway doesn't hold."""

    code = UNKNOWN_SESSION


class SessionLimitError(GatewayError):
    """The gateway-wide concurrent-session cap was reached."""

    code = SESSION_LIMIT


class BadRequestError(GatewayError):
    """Malformed request (unknown op, missing field, undecodable
    payload)."""

    code = BAD_REQUEST


@dataclass(frozen=True)
class ServeConfig:
    """One object describing how a gateway admits, queues, and serves."""

    #: engine-registry capacity: compiled engines resident across all
    #: tenants before LRU eviction (:class:`~repro.serve.host.EngineHost`)
    max_engines: int = 8
    #: per-tenant queue high-water mark — requests past this depth are
    #: shed with :class:`OverloadedError` instead of queued
    queue_depth: int = 64
    #: queue depth that bumps the warning counter (operators alert on
    #: it before the shed point); ``None`` = 3/4 of ``queue_depth``
    warn_depth: Optional[int] = None
    #: gateway-wide cap on concurrently open streaming sessions
    max_sessions: int = 4096
    #: default per-request deadline (seconds) when the request doesn't
    #: carry one; ``None`` = no deadline
    deadline_s: Optional[float] = None
    #: consecutive request failures that open the circuit and degrade
    #: execution to inline serial scans
    breaker_threshold: int = 3
    #: seconds the circuit stays open before a half-open probe
    breaker_cooldown_s: float = 5.0
    #: default compile/dispatch configuration for hosted engines
    scan: ScanConfig = field(default_factory=ScanConfig)

    def __post_init__(self):
        if self.max_engines < 1:
            raise ValueError("max_engines must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.warn_depth is not None and \
                not (0 < self.warn_depth <= self.queue_depth):
            raise ValueError(
                "warn_depth must be in (0, queue_depth]")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s must be >= 0")

    def effective_warn_depth(self) -> int:
        """The depth that trips the warning counter."""
        if self.warn_depth is not None:
            return self.warn_depth
        return max(1, (self.queue_depth * 3) // 4)

    def replace(self, **changes) -> "ServeConfig":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

"""Gateway configuration and error vocabulary.

One frozen :class:`ServeConfig` describes a gateway the way
:class:`~repro.parallel.ScanConfig` describes a scan: engine-registry
capacity, per-tenant admission limits, default deadlines, and the
circuit-breaker tuning, all validated at construction.  The ``scan``
field carries the default :class:`ScanConfig` engines are compiled
with when a request doesn't bring its own.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from ..parallel.config import ScanConfig

#: wire / exception error codes, stable for clients and dashboards
OVERLOADED = "overloaded"
DEADLINE = "deadline"
UNKNOWN_SESSION = "unknown-session"
SESSION_LIMIT = "session-limit"
BAD_REQUEST = "bad-request"
INTERNAL = "internal"


class GatewayError(Exception):
    """Base of every request-level gateway failure; ``code`` is the
    stable wire identifier clients branch on."""

    code = INTERNAL

    def __init__(self, message: str = ""):
        super().__init__(message or self.code)


class OverloadedError(GatewayError):
    """Admission control shed the request: the tenant's queue was at
    its high-water mark.  Back off and retry."""

    code = OVERLOADED


class DeadlineExceededError(GatewayError):
    """The request's deadline expired before (or while) serving it."""

    code = DEADLINE


class UnknownSessionError(GatewayError):
    """``feed``/``close`` named a session this gateway doesn't hold."""

    code = UNKNOWN_SESSION


class SessionLimitError(GatewayError):
    """The gateway-wide concurrent-session cap was reached."""

    code = SESSION_LIMIT


class BadRequestError(GatewayError):
    """Malformed request (unknown op, missing field, undecodable
    payload)."""

    code = BAD_REQUEST


@dataclass(frozen=True)
class ServeConfig:
    """One object describing how a gateway admits, queues, and serves."""

    #: engine-registry capacity: compiled engines resident across all
    #: tenants before LRU eviction (:class:`~repro.serve.host.EngineHost`)
    max_engines: int = 8
    #: per-tenant queue high-water mark — requests past this depth are
    #: shed with :class:`OverloadedError` instead of queued
    queue_depth: int = 64
    #: queue depth that bumps the warning counter (operators alert on
    #: it before the shed point); ``None`` = 3/4 of ``queue_depth``
    warn_depth: Optional[int] = None
    #: gateway-wide cap on concurrently open streaming sessions
    max_sessions: int = 4096
    #: default per-request deadline (seconds) when the request doesn't
    #: carry one; ``None`` = no deadline
    deadline_s: Optional[float] = None
    #: consecutive request failures that open the circuit and degrade
    #: execution to inline serial scans
    breaker_threshold: int = 3
    #: seconds the circuit stays open before a half-open probe
    breaker_cooldown_s: float = 5.0
    #: TCP port for the live ``/metrics`` Prometheus scrape endpoint
    #: served beside the gateway front (``0`` = ephemeral, ``None`` =
    #: no endpoint)
    metrics_port: Optional[int] = None
    #: per-request latency SLO target (seconds): requests slower than
    #: this — or failed — count against the error budget
    slo_target_s: float = 0.25
    #: sliding window (seconds) behind the rolling p50/p99 and
    #: SLO-burn gauges
    slo_window_s: float = 60.0
    #: allowed violation fraction inside the window; the burn gauge is
    #: ``violation_ratio / slo_error_budget`` (> 1 = burning budget
    #: faster than the SLO allows)
    slo_error_budget: float = 0.01
    #: idle seconds after which an open streaming session is evicted
    #: (``None`` = sessions live until closed)
    session_idle_s: Optional[float] = None
    #: JSONL per-request access-log path (``None`` = no access log)
    access_log_path: Optional[str] = None
    #: ring capacity of the non-blocking access-log writer; overflow
    #: drops oldest records, never blocks the gateway loop
    access_log_capacity: int = 4096
    #: execute requests on the shared warm thread pool
    #: (:func:`repro.parallel.pool.offload_pool`) instead of the event
    #: loop's own thread, so one slow tenant cannot stall the loop
    offload: bool = True
    #: width of the offload thread pool
    offload_workers: int = 4
    #: default compile/dispatch configuration for hosted engines
    scan: ScanConfig = field(default_factory=ScanConfig)

    def __post_init__(self):
        if self.max_engines < 1:
            raise ValueError("max_engines must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.warn_depth is not None and \
                not (0 < self.warn_depth <= self.queue_depth):
            raise ValueError(
                "warn_depth must be in (0, queue_depth]")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s must be >= 0")
        if self.metrics_port is not None and \
                not (0 <= self.metrics_port <= 65535):
            raise ValueError("metrics_port must be in [0, 65535]")
        if self.slo_target_s <= 0:
            raise ValueError("slo_target_s must be positive")
        if self.slo_window_s <= 0:
            raise ValueError("slo_window_s must be positive")
        if not (0 < self.slo_error_budget <= 1):
            raise ValueError("slo_error_budget must be in (0, 1]")
        if self.session_idle_s is not None and self.session_idle_s <= 0:
            raise ValueError("session_idle_s must be positive")
        if self.access_log_capacity < 1:
            raise ValueError("access_log_capacity must be >= 1")
        if self.offload_workers < 1:
            raise ValueError("offload_workers must be >= 1")

    def effective_warn_depth(self) -> int:
        """The depth that trips the warning counter."""
        if self.warn_depth is not None:
            return self.warn_depth
        return max(1, (self.queue_depth * 3) // 4)

    def replace(self, **changes) -> "ServeConfig":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

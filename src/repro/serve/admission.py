"""Admission control and backpressure accounting.

The gateway serializes each tenant's requests through one lane; this
module is the bookkeeping in front of that lane.  Every request asks
for a :class:`Ticket` before it may enqueue.  Past the tenant's
high-water mark (``ServeConfig.queue_depth``) admission refuses with
:class:`~repro.serve.config.OverloadedError` — shedding at the door is
the backpressure signal; an unbounded queue would just convert
overload into unbounded latency.  Crossing the warning threshold
(``effective_warn_depth``) bumps a counter operators can alert on
*before* clients start seeing sheds.

Everything observable is exported through :mod:`repro.obs`:

* ``repro_serve_queue_depth`` gauge, per tenant — admitted requests
  not yet executing;
* ``repro_serve_queue_delay_seconds`` histogram — time from admission
  to the start of execution (the queueing component of latency);
* ``repro_serve_shed_total`` counter, per tenant — refused admissions;
* ``repro_serve_queue_warnings_total`` counter, per tenant.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict

from .. import obs
from .config import OverloadedError, ServeConfig

_REG = obs.registry()
_DEPTH = _REG.gauge(
    "repro_serve_queue_depth",
    "Admitted requests not yet executing, per tenant")
_DELAY = _REG.histogram(
    "repro_serve_queue_delay_seconds",
    "Admission-to-execution queue delay")
_TENANT_DELAY = _REG.histogram(
    "repro_serve_tenant_queue_delay_seconds",
    "Admission-to-execution queue delay, per tenant")
_SHED = _REG.counter(
    "repro_serve_shed_total",
    "Requests refused at admission (tenant queue at high-water mark)")
_WARNINGS = _REG.counter(
    "repro_serve_queue_warnings_total",
    "Admissions that crossed the queue-depth warning threshold")


@dataclass
class Ticket:
    """Proof of admission; carries what delay accounting needs."""

    tenant: str
    enqueued_at: float
    #: set by :meth:`AdmissionController.started`
    queue_delay_s: float = -1.0


class AdmissionController:
    """Per-tenant depth accounting with shed and warn thresholds."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self._depths: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.admitted = 0
        self.shed = 0

    def try_admit(self, tenant: str) -> Ticket:
        """Admit one request or raise :class:`OverloadedError`."""
        warn_depth = self.config.effective_warn_depth()
        with self._lock:
            depth = self._depths.get(tenant, 0)
            if depth >= self.config.queue_depth:
                self.shed += 1
                _SHED.inc(tenant=tenant)
                raise OverloadedError(
                    f"tenant {tenant!r} queue at high-water mark "
                    f"({depth}/{self.config.queue_depth}); retry later")
            depth += 1
            self._depths[tenant] = depth
            self.admitted += 1
            _DEPTH.set(depth, tenant=tenant)
            if depth >= warn_depth:
                _WARNINGS.inc(tenant=tenant)
        return Ticket(tenant=tenant, enqueued_at=time.monotonic())

    def started(self, ticket: Ticket) -> float:
        """The ticket's request left the queue and is executing now;
        returns (and records) its queue delay in seconds."""
        delay = time.monotonic() - ticket.enqueued_at
        ticket.queue_delay_s = delay
        _DELAY.observe(delay)
        _TENANT_DELAY.observe(delay, tenant=ticket.tenant)
        with self._lock:
            depth = max(0, self._depths.get(ticket.tenant, 0) - 1)
            self._depths[ticket.tenant] = depth
            _DEPTH.set(depth, tenant=ticket.tenant)
        return delay

    def depth(self, tenant: str) -> int:
        with self._lock:
            return self._depths.get(tenant, 0)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {"admitted": self.admitted,
                    "shed": self.shed,
                    "queue_depth": self.config.queue_depth,
                    "warn_depth": self.config.effective_warn_depth(),
                    "depths": {tenant: depth
                               for tenant, depth in self._depths.items()
                               if depth}}

"""The JSONL wire protocol.

One request per line, one response per line, UTF-8 JSON.  Binary scan
payloads travel base64-encoded in the ``data`` field — JSONL keeps the
protocol debuggable with ``nc`` and a text editor, and the gateway's
unit of work (a chunk, a pattern set) is small enough that base64's
33% overhead is noise next to the scan itself.

Requests::

    {"id": 1, "op": "ping"}
    {"id": 2, "op": "compile", "tenant": "t", "patterns": ["a+b"]}
    {"id": 3, "op": "scan", "tenant": "t", "patterns": ["a+b"],
     "data": "<base64>", "deadline_s": 0.5}
    {"id": 4, "op": "open", "tenant": "t", "patterns": ["a+b"]}
    {"id": 5, "op": "feed", "tenant": "t", "session": "t-1",
     "data": "<base64>"}
    {"id": 6, "op": "close", "tenant": "t", "session": "t-1"}
    {"id": 7, "op": "stats"}

Responses echo the request ``id`` and carry ``ok``; failures carry the
stable error ``code`` from :mod:`repro.serve.config` plus a message::

    {"id": 3, "ok": true, "matches": {"0": [2, 5]}, ...}
    {"id": 3, "ok": false, "error": "overloaded", "message": "..."}
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Dict, List, Optional, Sequence

from ..parallel.report import ScanReport
from .config import BAD_REQUEST, BadRequestError, GatewayError

#: ops the server dispatches; anything else is a bad request
OPS = ("ping", "compile", "scan", "open", "feed", "close", "stats")


def encode(payload: Dict[str, object]) -> bytes:
    """One wire line (JSON + newline)."""
    return json.dumps(payload, separators=(",", ":"),
                      sort_keys=True).encode() + b"\n"


def decode_line(line: bytes) -> Dict[str, object]:
    """Parse one request line; malformed input is a
    :class:`BadRequestError`, never a raw decode exception.  The op is
    *not* validated here — the server does that after extracting the
    request id, so even an unknown-op response can echo the id."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"undecodable request line: {exc}")
    if not isinstance(payload, dict):
        raise BadRequestError("request must be a JSON object")
    return payload


def require_op(payload: Dict[str, object]) -> str:
    op = payload.get("op")
    if op not in OPS:
        raise BadRequestError(
            f"unknown op {op!r}; expected one of {OPS}")
    return op


def encode_data(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def decode_data(payload: Dict[str, object]) -> bytes:
    """The request's binary payload, base64-decoded."""
    encoded = payload.get("data")
    if not isinstance(encoded, str):
        raise BadRequestError("missing or non-string 'data' field")
    try:
        return base64.b64decode(encoded.encode("ascii"), validate=True)
    except (binascii.Error, ValueError, UnicodeEncodeError) as exc:
        raise BadRequestError(f"'data' is not valid base64: {exc}")


def require_str(payload: Dict[str, object], field: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str) or not value:
        raise BadRequestError(
            f"missing or non-string {field!r} field")
    return value


def require_patterns(payload: Dict[str, object]) -> List[str]:
    patterns = payload.get("patterns")
    if (not isinstance(patterns, list) or not patterns
            or not all(isinstance(p, str) for p in patterns)):
        raise BadRequestError(
            "'patterns' must be a non-empty list of strings")
    return patterns


def optional_deadline(payload: Dict[str, object]):
    """``(deadline_s, present)``: absent → ``(None, False)`` ("use the
    gateway default"); explicit ``null`` → ``(None, True)`` ("no
    deadline"); otherwise a validated positive number."""
    if "deadline_s" not in payload:
        return None, False
    value = payload["deadline_s"]
    if value is not None and (not isinstance(value, (int, float))
                              or isinstance(value, bool)
                              or value <= 0):
        raise BadRequestError("'deadline_s' must be a positive number")
    return value, True


def report_payload(report: ScanReport) -> Dict[str, object]:
    """A ScanReport on the wire: pattern → end positions (string keys,
    JSON objects can't have int keys), plus the summary fields."""
    return {"matches": {str(pattern): list(ends)
                        for pattern, ends in report.matches.items()
                        if ends},
            "match_count": report.match_count(),
            "stream_offset": report.stream_offset,
            "input_bytes": report.input_bytes,
            "dispatch": report.dispatch}


def ok_response(request_id, body: Dict[str, object]) -> Dict[str, object]:
    response = {"id": request_id, "ok": True}
    response.update(body)
    return response


def error_response(request_id, exc: BaseException) -> Dict[str, object]:
    code = exc.code if isinstance(exc, GatewayError) else "internal"
    return {"id": request_id, "ok": False,
            "error": code, "message": str(exc)}


def parse_response(line: bytes) -> Dict[str, object]:
    """Client-side: one response line → dict (shape not validated
    beyond being a JSON object)."""
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("response must be a JSON object")
    return payload

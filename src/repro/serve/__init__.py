"""repro.serve — the persistent-engine serving gateway.

The paper's engine amortizes compilation across scans; this package is
the long-lived process that does the amortizing for many clients at
once.  A :class:`Gateway` owns a registry of compiled engines keyed by
``(tenant, fingerprint)`` (:class:`EngineHost`), multiplexes streaming
match sessions over them, sheds load at a per-tenant high-water mark,
and degrades to inline serial scans behind a circuit breaker.  The
:class:`GatewayServer`/:class:`GatewayClient` pair speaks JSONL over
TCP; ``python -m repro serve`` runs it.

Quickstart (in-process)::

    import asyncio
    from repro.serve import Gateway

    async def main():
        gateway = Gateway()
        report = await gateway.scan("tenant-a", ["a(bc)*d"], data)
        sid = (await gateway.open_session("tenant-a", ["a(bc)*d"]))
        ...

Results are bit-identical to serial one-shot scans — the gateway adds
multiplexing and policy, never a different answer.
"""

from typing import TYPE_CHECKING

__all__ = [
    "AdmissionController",
    "BadRequestError",
    "DeadlineExceededError",
    "EngineHost",
    "Gateway",
    "GatewayClient",
    "GatewayError",
    "GatewayServer",
    "HostedEngine",
    "MetricsServer",
    "OverloadedError",
    "ServeConfig",
    "ServeTelemetry",
    "Session",
    "SessionLimitError",
    "SloTracker",
    "UnknownSessionError",
]

_LAZY = {
    "AdmissionController": ("admission", "AdmissionController"),
    "BadRequestError": ("config", "BadRequestError"),
    "DeadlineExceededError": ("config", "DeadlineExceededError"),
    "EngineHost": ("host", "EngineHost"),
    "Gateway": ("gateway", "Gateway"),
    "GatewayClient": ("server", "GatewayClient"),
    "GatewayError": ("config", "GatewayError"),
    "GatewayServer": ("server", "GatewayServer"),
    "HostedEngine": ("host", "HostedEngine"),
    "MetricsServer": ("telemetry", "MetricsServer"),
    "OverloadedError": ("config", "OverloadedError"),
    "ServeConfig": ("config", "ServeConfig"),
    "ServeTelemetry": ("telemetry", "ServeTelemetry"),
    "Session": ("session", "Session"),
    "SessionLimitError": ("config", "SessionLimitError"),
    "SloTracker": ("telemetry", "SloTracker"),
    "UnknownSessionError": ("config", "UnknownSessionError"),
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .admission import AdmissionController
    from .config import (BadRequestError, DeadlineExceededError,
                         GatewayError, OverloadedError, ServeConfig,
                         SessionLimitError, UnknownSessionError)
    from .gateway import Gateway
    from .host import EngineHost, HostedEngine
    from .server import GatewayClient, GatewayServer
    from .session import Session
    from .telemetry import MetricsServer, ServeTelemetry, SloTracker


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, attr)


def __dir__():
    return sorted(set(globals()) | set(__all__))

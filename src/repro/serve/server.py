"""The asyncio TCP front of the gateway, plus a small client.

:class:`GatewayServer` binds a :class:`~repro.serve.gateway.Gateway`
to a TCP listener speaking the JSONL protocol
(:mod:`repro.serve.protocol`).  Each connection is one reader loop:
requests on a connection are *dispatched* in arrival order but resolve
concurrently across tenants (each tenant's lane serializes its own
work), and responses are written as they complete, matched to requests
by the echoed ``id``.

:class:`GatewayClient` is the matching asyncio client — enough for
tests, the CLI self-test, and the serving benchmark; it pipelines
requests and correlates responses by id.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Sequence

from . import protocol
from .config import BadRequestError, GatewayError, ServeConfig
from .gateway import Gateway, _DEFAULT
from .telemetry import MetricsServer


class GatewayServer:
    """JSONL-over-TCP front for one :class:`Gateway`.

    When ``ServeConfig.metrics_port`` is set, a
    :class:`~repro.serve.telemetry.MetricsServer` is started beside
    the JSONL listener on the same event loop: ``GET /metrics`` serves
    the live Prometheus registry (serve series included) and
    ``GET /healthz`` the gateway's stats summary.
    """

    def __init__(self, gateway: Optional[Gateway] = None,
                 config: Optional[ServeConfig] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.gateway = gateway if gateway is not None \
            else Gateway(config)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.metrics: Optional[MetricsServer] = None

    async def start(self) -> "GatewayServer":
        """Bind and listen; with ``port=0`` the kernel picks a free
        port, readable from :attr:`port` afterwards."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        metrics_port = self.gateway.config.metrics_port
        if metrics_port is not None:
            self.metrics = MetricsServer(
                host=self.host, port=metrics_port,
                refresh=self.gateway.telemetry.refresh,
                health=self._health)
            await self.metrics.start()
        return self

    def _health(self) -> dict:
        stats = self.gateway.stats()
        return {"uptime_s": stats["uptime_s"],
                "sessions": stats["sessions"],
                "tenants": stats["tenants"],
                "breaker": stats["breaker"],
                "engines": stats["host"]["resident"]}

    async def stop(self) -> None:
        if self.metrics is not None:
            await self.metrics.stop()
            self.metrics = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.gateway.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        pending = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock))
                pending.add(task)
                task.add_done_callback(pending.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            for task in list(pending):
                await task
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _serve_line(self, line: bytes,
                          writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock) -> None:
        request_id = None
        try:
            payload = protocol.decode_line(line)
            request_id = payload.get("id")
            body = await self._dispatch(payload)
            response = protocol.ok_response(request_id, body)
        except Exception as exc:  # every failure becomes a response
            response = protocol.error_response(request_id, exc)
        async with write_lock:
            writer.write(protocol.encode(response))
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, payload: Dict[str, object]
                        ) -> Dict[str, object]:
        op = protocol.require_op(payload)
        gateway = self.gateway
        if op == "ping":
            return await gateway.ping()
        if op == "stats":
            return gateway.stats()
        tenant = protocol.require_str(payload, "tenant")
        deadline_s, explicit = protocol.optional_deadline(payload)
        budget = deadline_s if explicit else _DEFAULT
        if op == "compile":
            return await gateway.compile(
                tenant, protocol.require_patterns(payload),
                deadline_s=budget)
        if op == "scan":
            report = await gateway.scan(
                tenant, protocol.require_patterns(payload),
                protocol.decode_data(payload), deadline_s=budget)
            return protocol.report_payload(report)
        if op == "open":
            return await gateway.open_session(
                tenant, protocol.require_patterns(payload),
                deadline_s=budget)
        if op == "feed":
            report = await gateway.feed(
                tenant, protocol.require_str(payload, "session"),
                protocol.decode_data(payload), deadline_s=budget)
            return protocol.report_payload(report)
        if op == "close":
            return await gateway.close_session(
                tenant, protocol.require_str(payload, "session"))
        raise BadRequestError(f"unhandled op {op!r}")  # pragma: no cover


class GatewayClient:
    """Minimal pipelining JSONL client (tests / benchmark / CLI)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = 0
        self._waiters: Dict[object, "asyncio.Future"] = {}
        self._pump: Optional["asyncio.Task"] = None

    async def connect(self) -> "GatewayClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        self._pump = asyncio.ensure_future(self._read_responses())
        return self

    async def close(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
            self._pump = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None

    async def _read_responses(self) -> None:
        assert self._reader is not None
        while True:
            line = await self._reader.readline()
            if not line:
                break
            response = protocol.parse_response(line)
            waiter = self._waiters.pop(response.get("id"), None)
            if waiter is not None and not waiter.done():
                waiter.set_result(response)

    async def request(self, op: str, **fields) -> Dict[str, object]:
        """Send one request, await its correlated response.  Error
        responses raise :class:`GatewayError` with the wire code."""
        assert self._writer is not None, "call connect() first"
        self._ids += 1
        request_id = self._ids
        payload = {"id": request_id, "op": op}
        payload.update(fields)
        future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = future
        self._writer.write(protocol.encode(payload))
        await self._writer.drain()
        response = await future
        if not response.get("ok"):
            error = GatewayError(
                f"{response.get('error')}: {response.get('message')}")
            error.code = response.get("error", "internal")
            raise error
        return response

    # -- convenience wrappers -----------------------------------------------

    async def ping(self) -> Dict[str, object]:
        return await self.request("ping")

    async def scan(self, tenant: str, patterns: Sequence[str],
                   data: bytes, **fields) -> Dict[str, object]:
        return await self.request(
            "scan", tenant=tenant, patterns=list(patterns),
            data=protocol.encode_data(data), **fields)

    async def open_session(self, tenant: str,
                           patterns: Sequence[str]) -> str:
        response = await self.request(
            "open", tenant=tenant, patterns=list(patterns))
        return response["session"]

    async def feed(self, tenant: str, session: str,
                   chunk: bytes) -> Dict[str, object]:
        return await self.request(
            "feed", tenant=tenant, session=session,
            data=protocol.encode_data(chunk))

    async def close_session(self, tenant: str,
                            session: str) -> Dict[str, object]:
        return await self.request(
            "close", tenant=tenant, session=session)

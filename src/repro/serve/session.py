"""Streaming match sessions.

One :class:`Session` is one client stream multiplexed over a hosted
engine: it owns the per-stream :class:`~repro.core.streaming.
StreamingMatcher` state (carried tail, global offset) while the
compiled engine underneath is shared by every session of the same
pattern set.  Feeds report *new* match ends in global stream
coordinates, so interleaving sessions on one engine is bit-identical
to running each stream through a serial one-shot scan — the matcher
state is the only mutable part, and each session has its own.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, Optional

from ..parallel.report import ScanReport
from .host import HostedEngine

_session_ids = itertools.count(1)


def next_session_id(tenant: str) -> str:
    return f"{tenant}-{next(_session_ids)}"


class Session:
    """One client stream over one hosted engine."""

    def __init__(self, session_id: str, tenant: str,
                 hosted: HostedEngine,
                 max_tail_bytes: Optional[int] = None):
        self.id = session_id
        self.tenant = tenant
        self.hosted = hosted
        config = hosted.matcher.config
        if max_tail_bytes is not None:
            config = config.replace(max_tail_bytes=max_tail_bytes)
        # Session feeds run serial: a gateway interleaves *sessions*,
        # and per-chunk pool dispatch would pay sharding overhead on
        # every small packet.
        self.matcher = hosted.matcher.stream(config=config.serial())
        self.opened_at = time.monotonic()
        #: last feed (or open) time — what idle eviction measures
        self.last_active = self.opened_at
        self.chunks = 0
        self.match_count = 0
        self.bytes_fed = 0
        self.closed = False

    def feed(self, chunk: bytes) -> ScanReport:
        """Scan one chunk; new match ends in stream coordinates."""
        report = self.matcher.feed(chunk)
        self.last_active = time.monotonic()
        self.chunks += 1
        self.bytes_fed += len(chunk)
        self.match_count += report.match_count()
        return report

    @property
    def stream_position(self) -> int:
        return self.matcher.stream_position

    def idle_s(self) -> float:
        """Seconds since the last feed (or the open)."""
        return time.monotonic() - self.last_active

    def close(self) -> Dict[str, object]:
        """Final summary; the session is unusable afterwards."""
        self.closed = True
        return self.stats()

    def stats(self) -> Dict[str, object]:
        return {"session": self.id,
                "tenant": self.tenant,
                "fingerprint": self.hosted.fingerprint,
                "chunks": self.chunks,
                "bytes": self.bytes_fed,
                "matches": self.match_count,
                "stream_position": self.stream_position,
                "age_s": round(time.monotonic() - self.opened_at, 6),
                "idle_s": round(self.idle_s(), 6),
                "closed": self.closed}

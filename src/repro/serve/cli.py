"""``python -m repro serve`` — run (or self-test) the gateway.

Foreground server::

    python -m repro serve --port 8321 --max-engines 16 --deadline 2.0

Self-test (CI smoke)::

    python -m repro serve --self-test

The self-test starts a server on an ephemeral port, drives a client
through the full protocol — ping, compile, one-shot scan, a chunked
streaming session, an error path — and checks the results against an
inline :func:`repro.scan` of the same input.  Exit code 0 means every
check passed; 1 means a mismatch or failure, with the reason on
stderr.  It is the cheapest end-to-end proof that the serving path
still returns exactly what the engine returns.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List

from ..core.schemes import Scheme
from ..parallel.config import BACKENDS, EXECUTORS, ScanConfig
from .config import ServeConfig

SELF_TEST_PATTERNS = ["a(bc)*d", "cat|dog", "[0-9][0-9]"]
SELF_TEST_DATA = b"abcbcd cat 42 dog abcd and 7 cats, 99 dogs; abcbcbcd"


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the persistent-engine matching gateway "
                    "(JSONL over TCP; see repro.serve).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321,
                        help="TCP port (0 = ephemeral)")
    parser.add_argument("--max-engines", type=int, default=8,
                        help="resident compiled engines before LRU "
                             "eviction")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="per-tenant admission high-water mark")
    parser.add_argument("--max-sessions", type=int, default=4096,
                        help="gateway-wide open-session cap")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="default per-request deadline")
    parser.add_argument("--workers", type=int, default=1,
                        help="scan worker shards (1 = serial)")
    parser.add_argument("--executor", choices=EXECUTORS,
                        default="process")
    parser.add_argument("--backend", choices=BACKENDS,
                        default="simulate")
    parser.add_argument("--scheme", choices=[s.name for s in Scheme],
                        default="ZBS")
    parser.add_argument("--self-test", action="store_true",
                        help="start on an ephemeral port, run a client "
                             "round-trip, and exit 0/1")
    return parser


def serve_config_from_args(args) -> ServeConfig:
    scan = ScanConfig(scheme=Scheme[args.scheme], backend=args.backend,
                      workers=args.workers, executor=args.executor,
                      loop_fallback=True)
    return ServeConfig(max_engines=args.max_engines,
                       queue_depth=args.queue_depth,
                       max_sessions=args.max_sessions,
                       deadline_s=args.deadline,
                       scan=scan)


async def _self_test(config: ServeConfig) -> int:
    import repro
    from .server import GatewayClient, GatewayServer

    server = await GatewayServer(config=config, port=0).start()
    client = await GatewayClient("127.0.0.1", server.port).connect()
    failures: List[str] = []
    try:
        pong = await client.ping()
        if not pong.get("ok"):
            failures.append(f"ping failed: {pong}")

        reference = repro.scan(SELF_TEST_PATTERNS, SELF_TEST_DATA,
                               config=config.scan.serial())
        expected = {p: list(ends) for p, ends in reference.matches.items()
                    if ends}

        compiled = await client.request(
            "compile", tenant="selftest", patterns=SELF_TEST_PATTERNS)
        if not compiled.get("fingerprint"):
            failures.append(f"compile returned no fingerprint: {compiled}")

        scanned = await client.scan("selftest", SELF_TEST_PATTERNS,
                                    SELF_TEST_DATA)
        got = {int(k): v for k, v in scanned["matches"].items()}
        if got != expected:
            failures.append(
                f"one-shot scan mismatch: {got} != {expected}")

        sid = await client.open_session("selftest", SELF_TEST_PATTERNS)
        streamed: dict = {}
        for start in range(0, len(SELF_TEST_DATA), 7):
            fed = await client.feed("selftest", sid,
                                    SELF_TEST_DATA[start:start + 7])
            for k, ends in fed["matches"].items():
                streamed.setdefault(int(k), []).extend(ends)
        summary = await client.close_session("selftest", sid)
        if streamed != expected:
            failures.append(
                f"streaming session mismatch: {streamed} != {expected}")
        if summary.get("matches") != reference.match_count():
            failures.append(f"session summary mismatch: {summary}")

        try:
            await client.feed("selftest", "no-such-session", b"x")
            failures.append("feed to unknown session did not error")
        except Exception as exc:
            if getattr(exc, "code", None) != "unknown-session":
                failures.append(f"wrong error for unknown session: {exc}")

        stats = await client.request("stats")
        if stats.get("host", {}).get("resident", 0) < 1:
            failures.append(f"no resident engine after serving: {stats}")
    finally:
        await client.close()
        await server.stop()

    if failures:
        for failure in failures:
            print(f"self-test FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"self-test OK: {reference.match_count()} matches, "
          f"bit-identical over one-shot and streaming paths")
    return 0


async def _serve_forever(config: ServeConfig, host: str,
                         port: int) -> int:
    from .server import GatewayServer

    server = await GatewayServer(config=config, host=host,
                                 port=port).start()
    print(f"repro serve: listening on {host}:{server.port} "
          f"(engines<={config.max_engines}, "
          f"queue<={config.queue_depth}/tenant)")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown race
        pass
    finally:
        await server.stop()
    return 0


def serve_main(argv: List[str]) -> int:
    args = build_serve_parser().parse_args(argv)
    config = serve_config_from_args(args)
    if args.self_test:
        return asyncio.run(_self_test(config))
    try:
        return asyncio.run(
            _serve_forever(config, args.host, args.port))
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0

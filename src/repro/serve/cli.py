"""``python -m repro serve`` — run (or self-test) the gateway.

Foreground server::

    python -m repro serve --port 8321 --max-engines 16 --deadline 2.0 \
        --metrics-port 9321

Self-test (CI smoke)::

    python -m repro serve --self-test

The self-test starts a server on an ephemeral port, drives a client
through the full protocol — ping, compile, one-shot scan, a chunked
streaming session, an error path, a ``/metrics`` scrape — and checks
the results against an inline :func:`repro.scan` of the same input.
Exit code 0 means every check passed; 1 means a mismatch or failure,
with the reason on stderr.  The whole round-trip runs under a deadline
(``--self-test-timeout``): a hang exits 1 with the wire error code
(``deadline``) on stderr instead of wedging CI.  It is the cheapest
end-to-end proof that the serving path still returns exactly what the
engine returns.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List

from ..core.schemes import Scheme
from ..parallel.config import BACKENDS, EXECUTORS, ScanConfig
from .config import ServeConfig

SELF_TEST_PATTERNS = ["a(bc)*d", "cat|dog", "[0-9][0-9]"]
SELF_TEST_DATA = b"abcbcd cat 42 dog abcd and 7 cats, 99 dogs; abcbcbcd"

#: serve-layer series the self-test asserts appear on /metrics
SELF_TEST_SERIES = ("repro_serve_requests_total",
                    "repro_serve_tenant_requests_total",
                    "repro_serve_slo_burn")


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the persistent-engine matching gateway "
                    "(JSONL over TCP; see repro.serve).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321,
                        help="TCP port (0 = ephemeral)")
    parser.add_argument("--max-engines", type=int, default=8,
                        help="resident compiled engines before LRU "
                             "eviction")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="per-tenant admission high-water mark")
    parser.add_argument("--max-sessions", type=int, default=4096,
                        help="gateway-wide open-session cap")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="default per-request deadline")
    parser.add_argument("--workers", type=int, default=1,
                        help="scan worker shards (1 = serial)")
    parser.add_argument("--executor", choices=EXECUTORS,
                        default="process")
    parser.add_argument("--backend", choices=BACKENDS,
                        default="simulate")
    parser.add_argument("--scheme", choices=[s.name for s in Scheme],
                        default="ZBS")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve Prometheus /metrics (and /healthz) "
                             "on this HTTP port (0 = ephemeral)")
    parser.add_argument("--access-log", default=None, metavar="PATH",
                        help="write per-request JSONL access logs here "
                             "(bounded non-blocking ring writer)")
    parser.add_argument("--session-idle", type=float, default=None,
                        metavar="SECONDS",
                        help="evict streaming sessions idle longer "
                             "than this")
    parser.add_argument("--slo-target", type=float, default=0.25,
                        metavar="SECONDS",
                        help="request-latency SLO target for the "
                             "rolling p50/p99/burn gauges")
    parser.add_argument("--no-offload", action="store_true",
                        help="run scans inline on the event loop "
                             "instead of the warm offload pool")
    parser.add_argument("--self-test", action="store_true",
                        help="start on an ephemeral port, run a client "
                             "round-trip, and exit 0/1")
    parser.add_argument("--self-test-timeout", type=float, default=60.0,
                        metavar="SECONDS",
                        help="deadline for the whole self-test "
                             "round-trip; on expiry exit 1 with the "
                             "wire code on stderr")
    return parser


def serve_config_from_args(args) -> ServeConfig:
    scan = ScanConfig(scheme=Scheme[args.scheme], backend=args.backend,
                      workers=args.workers, executor=args.executor,
                      loop_fallback=True)
    return ServeConfig(max_engines=args.max_engines,
                       queue_depth=args.queue_depth,
                       max_sessions=args.max_sessions,
                       deadline_s=args.deadline,
                       metrics_port=args.metrics_port,
                       access_log_path=args.access_log,
                       session_idle_s=args.session_idle,
                       slo_target_s=args.slo_target,
                       offload=not args.no_offload,
                       scan=scan)


async def _self_test_body(config: ServeConfig,
                          failures: List[str]) -> int:
    import repro
    from .server import GatewayClient, GatewayServer
    from .telemetry import scrape_metrics

    server = await GatewayServer(config=config, port=0).start()
    client = await GatewayClient("127.0.0.1", server.port).connect()
    match_count = 0
    try:
        pong = await client.ping()
        if not pong.get("ok"):
            failures.append(f"ping failed: {pong}")

        reference = repro.scan(SELF_TEST_PATTERNS, SELF_TEST_DATA,
                               config=config.scan.serial())
        match_count = reference.match_count()
        expected = {p: list(ends) for p, ends in reference.matches.items()
                    if ends}

        compiled = await client.request(
            "compile", tenant="selftest", patterns=SELF_TEST_PATTERNS)
        if not compiled.get("fingerprint"):
            failures.append(f"compile returned no fingerprint: {compiled}")

        scanned = await client.scan("selftest", SELF_TEST_PATTERNS,
                                    SELF_TEST_DATA)
        got = {int(k): v for k, v in scanned["matches"].items()}
        if got != expected:
            failures.append(
                f"one-shot scan mismatch: {got} != {expected}")

        sid = await client.open_session("selftest", SELF_TEST_PATTERNS)
        streamed: dict = {}
        for start in range(0, len(SELF_TEST_DATA), 7):
            fed = await client.feed("selftest", sid,
                                    SELF_TEST_DATA[start:start + 7])
            for k, ends in fed["matches"].items():
                streamed.setdefault(int(k), []).extend(ends)
        summary = await client.close_session("selftest", sid)
        if streamed != expected:
            failures.append(
                f"streaming session mismatch: {streamed} != {expected}")
        if summary.get("matches") != reference.match_count():
            failures.append(f"session summary mismatch: {summary}")

        try:
            await client.feed("selftest", "no-such-session", b"x")
            failures.append("feed to unknown session did not error")
        except Exception as exc:
            if getattr(exc, "code", None) != "unknown-session":
                failures.append(f"wrong error for unknown session: {exc}")

        stats = await client.request("stats")
        if stats.get("host", {}).get("resident", 0) < 1:
            failures.append(f"no resident engine after serving: {stats}")

        if server.metrics is not None:
            status, body = await scrape_metrics(
                server.metrics.host, server.metrics.port)
            if status != 200:
                failures.append(f"/metrics returned {status}")
            for series in SELF_TEST_SERIES:
                if series not in body:
                    failures.append(
                        f"/metrics missing series {series}")
    finally:
        await client.close()
        await server.stop()
    return match_count


async def _self_test(config: ServeConfig,
                     timeout_s: float = 60.0) -> int:
    if config.metrics_port is None:
        # The self-test always exercises the metrics endpoint, on an
        # ephemeral port unless the caller pinned one.
        config = config.replace(metrics_port=0)
    failures: List[str] = []
    try:
        match_count = await asyncio.wait_for(
            _self_test_body(config, failures), timeout=timeout_s)
    except asyncio.TimeoutError:
        print(f"self-test FAIL: deadline: round-trip exceeded "
              f"{timeout_s}s (wire code: deadline)", file=sys.stderr)
        return 1
    if failures:
        for failure in failures:
            print(f"self-test FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"self-test OK: {match_count} matches, "
          f"bit-identical over one-shot and streaming paths")
    return 0


async def _serve_forever(config: ServeConfig, host: str,
                         port: int) -> int:
    from .server import GatewayServer

    server = await GatewayServer(config=config, host=host,
                                 port=port).start()
    print(f"repro serve: listening on {host}:{server.port} "
          f"(engines<={config.max_engines}, "
          f"queue<={config.queue_depth}/tenant)")
    if server.metrics is not None:
        print(f"repro serve: metrics at {server.metrics.url}")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown race
        pass
    finally:
        await server.stop()
    return 0


def serve_main(argv: List[str]) -> int:
    args = build_serve_parser().parse_args(argv)
    config = serve_config_from_args(args)
    if args.self_test:
        return asyncio.run(_self_test(config, args.self_test_timeout))
    try:
        return asyncio.run(
            _serve_forever(config, args.host, args.port))
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0

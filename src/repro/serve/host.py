"""The persistent-engine registry.

Compilation is the cost the paper's engine amortizes across scans;
:class:`EngineHost` is where a long-lived gateway does the amortizing.
Engines are compiled at most once per ``(tenant, fingerprint)`` — the
fingerprint covers the pattern set and every compile-relevant
:class:`~repro.parallel.ScanConfig` field — kept warm in an LRU
registry of bounded capacity, and evicted coldest-first when a new
pattern set needs the slot.

Eviction only drops the *registry's* reference: streaming sessions
hold their own reference to the hosted engine, so an in-flight session
keeps matching on an evicted engine until it closes (the registry just
won't hand it to new sessions — a fresh ``acquire`` recompiles).

Residency and churn are exported through the ``repro_serve_engines``
gauges and the ``repro_serve_engine_events_total`` counter (hit /
miss / refresh / evict), the signals a capacity dashboard needs.

:meth:`EngineHost.refresh` is the rule-set *update* path: on a miss it
recompiles incrementally off the tenant's warmest compatible resident
engine, so pushing a small diff to a large set costs the diff, not
the set.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..api import Matcher, fingerprint_patterns
from ..api import compile as compile_patterns
from ..parallel.config import ScanConfig
from .config import ServeConfig

_REG = obs.registry()
_ENGINES = _REG.gauge(
    "repro_serve_engines",
    "Hosted-engine registry residency, by state (resident/capacity)")
_ENGINE_EVENTS = _REG.counter(
    "repro_serve_engine_events_total",
    "Engine-registry events: hit, miss (compile), evict")
_COMPILE_SECONDS = _REG.histogram(
    "repro_serve_compile_seconds",
    "Wall time of gateway-triggered engine compilations")


@dataclass
class HostedEngine:
    """One resident compiled engine plus its serving bookkeeping."""

    tenant: str
    fingerprint: str
    matcher: Matcher
    compiled_s: float
    #: monotonically increasing acquire count (hits + the miss)
    uses: int = 0
    #: streaming sessions currently holding this engine
    active_sessions: int = 0
    #: acquire sequence number of the most recent use (LRU ordering is
    #: the OrderedDict; this is for the stats view)
    last_use: int = 0
    #: monotonic time of the most recent acquire — the idle signal a
    #: capacity dashboard (and /healthz) reads
    last_used_at: float = field(default_factory=time.monotonic)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.tenant, self.fingerprint)

    def stats(self) -> Dict[str, object]:
        return {"tenant": self.tenant,
                "fingerprint": self.fingerprint,
                "patterns": self.matcher.pattern_count,
                "compiled_s": round(self.compiled_s, 6),
                "uses": self.uses,
                "active_sessions": self.active_sessions,
                "idle_s": round(time.monotonic() - self.last_used_at, 6)}


class EngineHost:
    """Compile-once, keep-warm, evict-LRU registry of matchers."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config if config is not None else ServeConfig()
        self._engines: "OrderedDict[Tuple[str, str], HostedEngine]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self._acquires = 0
        _ENGINES.set(self.config.max_engines, state="capacity")
        _ENGINES.set(0, state="resident")

    # -- the one entry point -----------------------------------------------

    def acquire(self, tenant: str,
                patterns: Sequence[Union[str, object]],
                config: Optional[ScanConfig] = None) -> HostedEngine:
        """The hosted engine for ``(tenant, patterns, config)`` —
        compiled now on first use, reused warm afterwards."""
        scan_config = config if config is not None else self.config.scan
        fingerprint = fingerprint_patterns(patterns, scan_config)
        key = (tenant, fingerprint)
        with self._lock:
            self._acquires += 1
            hosted = self._engines.get(key)
            if hosted is not None:
                self._engines.move_to_end(key)
                hosted.uses += 1
                hosted.last_use = self._acquires
                hosted.last_used_at = time.monotonic()
                _ENGINE_EVENTS.inc(event="hit")
                return hosted
        # Compile outside the lock: a slow compile must not block
        # hits on other pattern sets.  A racing acquire of the same
        # key may compile twice; the second insert wins the slot and
        # both callers hold working engines.
        begin = time.perf_counter()
        matcher = compile_patterns(patterns, config=scan_config)
        elapsed = time.perf_counter() - begin
        _COMPILE_SECONDS.observe(elapsed)
        _ENGINE_EVENTS.inc(event="miss")
        hosted = HostedEngine(tenant=tenant, fingerprint=fingerprint,
                              matcher=matcher, compiled_s=elapsed)
        hosted.uses = 1
        with self._lock:
            hosted.last_use = self._acquires
            self._engines[key] = hosted
            self._engines.move_to_end(key)
            self._evict_over_capacity()
            _ENGINES.set(len(self._engines), state="resident")
        return hosted

    def refresh(self, tenant: str,
                patterns: Sequence[Union[str, object]],
                config: Optional[ScanConfig] = None) -> HostedEngine:
        """Acquire with incremental recompilation: like
        :meth:`acquire`, but a miss looks for a *donor* — the
        tenant's warmest resident matcher with the same compile key —
        and reuses its compiled groups for the unchanged slice of the
        rule set (:mod:`repro.core.incremental`).  The donor engine is
        never mutated (its registry key must keep describing it;
        in-flight sessions keep their exact rule set) — the refreshed
        set gets a fresh :class:`HostedEngine` under its own
        fingerprint, and plain LRU eviction retires the old one.
        """
        scan_config = config if config is not None else self.config.scan
        fingerprint = fingerprint_patterns(patterns, scan_config)
        key = (tenant, fingerprint)
        with self._lock:
            self._acquires += 1
            hosted = self._engines.get(key)
            if hosted is not None:
                self._engines.move_to_end(key)
                hosted.uses += 1
                hosted.last_use = self._acquires
                hosted.last_used_at = time.monotonic()
                _ENGINE_EVENTS.inc(event="hit")
                return hosted
            donor: Optional[Matcher] = None
            compile_key = scan_config.compile_key()
            for resident in reversed(self._engines.values()):
                if (resident.tenant == tenant and resident.matcher
                        .config.compile_key() == compile_key):
                    donor = resident.matcher
                    break
        begin = time.perf_counter()
        if donor is None:
            matcher = compile_patterns(patterns, config=scan_config)
            update = None
        else:
            # Compile outside the lock, off the donor's artefacts.
            from ..core.incremental import update_engine

            engine, update = update_engine(donor.engine, patterns,
                                           config=scan_config)
            matcher = Matcher(engine, patterns)
        elapsed = time.perf_counter() - begin
        _COMPILE_SECONDS.observe(elapsed)
        _ENGINE_EVENTS.inc(event="refresh" if donor is not None
                           else "miss")
        hosted = HostedEngine(tenant=tenant, fingerprint=fingerprint,
                              matcher=matcher, compiled_s=elapsed)
        hosted.uses = 1
        if update is not None:
            hosted.extra["update"] = update.to_dict()
        with self._lock:
            hosted.last_use = self._acquires
            self._engines[key] = hosted
            self._engines.move_to_end(key)
            self._evict_over_capacity()
            _ENGINES.set(len(self._engines), state="resident")
        return hosted

    def _evict_over_capacity(self) -> None:
        """Caller holds the lock.  Engines with live sessions are
        skipped — evicting them would only delay their release — unless
        *everything* is live, in which case the coldest goes anyway so
        the registry cannot grow without bound."""
        while len(self._engines) > self.config.max_engines:
            # never the most-recent entry: that is the engine the
            # current acquire is about to hand out
            candidates = list(self._engines)[:-1]
            victim_key = next(
                (key for key in candidates
                 if self._engines[key].active_sessions == 0),
                candidates[0])
            del self._engines[victim_key]
            _ENGINE_EVENTS.inc(event="evict")

    # -- session refcounting ------------------------------------------------

    def session_opened(self, hosted: HostedEngine) -> None:
        with self._lock:
            hosted.active_sessions += 1

    def session_closed(self, hosted: HostedEngine) -> None:
        with self._lock:
            hosted.active_sessions = max(0, hosted.active_sessions - 1)

    # -- introspection ------------------------------------------------------

    def resident(self) -> List[Tuple[str, str]]:
        """(tenant, fingerprint) keys, coldest first."""
        with self._lock:
            return list(self._engines)

    def get(self, tenant: str,
            fingerprint: str) -> Optional[HostedEngine]:
        """Registry lookup without LRU side effects (tests, stats)."""
        with self._lock:
            return self._engines.get((tenant, fingerprint))

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "capacity": self.config.max_engines,
                "resident": len(self._engines),
                "acquires": self._acquires,
                "engines": [hosted.stats()
                            for hosted in self._engines.values()],
            }

    def clear(self) -> None:
        """Drop every resident engine (test isolation / reload)."""
        with self._lock:
            self._engines.clear()
            _ENGINES.set(0, state="resident")

"""Live serving telemetry: ``/metrics``, per-tenant SLOs, access logs.

PR 8 made the gateway benchmarkable; this module makes it *operable*.
Three pieces, all fed from one hook (:meth:`ServeTelemetry.record`,
called once per request by the gateway's drain loop):

* **Per-tenant request series.**  ``repro_serve_tenant_requests_total
  {tenant, outcome}`` and the ``repro_serve_tenant_request_seconds
  {tenant}`` latency histogram sit beside the existing aggregate
  series, so a dashboard can tell *which* tenant is slow, shedding,
  or degraded.  Tenant label cardinality is capped
  (:data:`MAX_TENANT_SERIES`); overflow tenants aggregate under
  ``tenant="_other"`` so one tenant-id-per-request client cannot
  explode the registry.

* **Rolling SLO tracking** (:class:`SloTracker`).  A sliding window
  per tenant holds ``(when, latency, violated)`` triples; a request
  violates when it failed or exceeded ``ServeConfig.slo_target_s``.
  :meth:`SloTracker.refresh` — called on every scrape and on
  ``Gateway.stats()`` — recomputes and exports window p50/p99
  (``repro_serve_slo_p50_seconds`` / ``..p99..``), the violation
  ratio, and the **error-budget burn**
  (``violation_ratio / slo_error_budget``; > 1 means the tenant is
  burning budget faster than the SLO allows).  Observation is O(1);
  the quantile sort happens only at scrape frequency.

* **Structured access logs.**  One JSONL record per request — tenant,
  session, engine fingerprint, queue delay, scan wall/CPU seconds,
  outcome code, and the request's trace/span ids, so a log line joins
  its ``serve.request`` span in a Chrome trace — emitted through the
  bounded non-blocking :class:`~repro.obs.log.RingLogWriter`; logging
  can never stall the gateway loop.

:class:`MetricsServer` is the scrape front: a dependency-free asyncio
HTTP listener serving ``GET /metrics`` (Prometheus text exposition
0.0.4, the whole process registry) and ``GET /healthz``.  It runs on
the same event loop as the gateway but does no scanning work — a
scrape renders a registry snapshot, which ``bench_serve_openloop.py``
bounds at <1% of serving throughput.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from .. import obs
from ..obs.export import prometheus_text
from ..obs.log import RingLogWriter
from .config import ServeConfig

_REG = obs.registry()
_TENANT_REQUESTS = _REG.counter(
    "repro_serve_tenant_requests_total",
    "Gateway requests by tenant and outcome (ok / error code)")
_TENANT_SECONDS = _REG.histogram(
    "repro_serve_tenant_request_seconds",
    "End-to-end request latency by tenant")
_SLO_P50 = _REG.gauge(
    "repro_serve_slo_p50_seconds",
    "Rolling-window request latency p50, per tenant")
_SLO_P99 = _REG.gauge(
    "repro_serve_slo_p99_seconds",
    "Rolling-window request latency p99, per tenant")
_SLO_RATIO = _REG.gauge(
    "repro_serve_slo_violation_ratio",
    "Fraction of window requests violating the latency SLO, per tenant")
_SLO_BURN = _REG.gauge(
    "repro_serve_slo_burn",
    "Error-budget burn rate (violation ratio / budget); > 1 means the "
    "tenant burns budget faster than the SLO allows")
_SLO_VIOLATIONS = _REG.counter(
    "repro_serve_slo_violations_total",
    "Requests that violated the latency SLO (slow or failed), per tenant")
_SCRAPES = _REG.counter(
    "repro_serve_metrics_scrapes_total",
    "HTTP requests served by the /metrics endpoint, by path")

#: distinct tenant label values before overflow aggregation
MAX_TENANT_SERIES = 64

#: the overflow tenant label
OTHER_TENANT = "_other"


def quantile(ordered: List[float], fraction: float) -> float:
    """Nearest-rank quantile of an already-sorted sample."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


class SloTracker:
    """Sliding-window latency/violation accounting per tenant.

    ``observe`` is the per-request hot path: append one triple, prune
    the window head, bump the violation counter.  Quantiles and burn
    are computed in :meth:`refresh`, at scrape frequency.
    """

    def __init__(self, target_s: float, window_s: float,
                 error_budget: float,
                 max_tenants: int = MAX_TENANT_SERIES,
                 clock: Callable[[], float] = time.monotonic):
        self.target_s = target_s
        self.window_s = window_s
        self.error_budget = error_budget
        self.max_tenants = max_tenants
        self._clock = clock
        self._windows: Dict[str, "deque[Tuple[float, float, bool]]"] = {}
        self._lock = threading.Lock()

    def _slot(self, tenant: str) -> str:
        """The label value ``tenant`` aggregates under (caller holds
        the lock)."""
        if tenant in self._windows or \
                len(self._windows) < self.max_tenants:
            return tenant
        return OTHER_TENANT

    def _prune(self, window: "deque", now: float) -> None:
        horizon = now - self.window_s
        while window and window[0][0] < horizon:
            window.popleft()

    def observe(self, tenant: str, latency_s: float, ok: bool) -> bool:
        """Record one finished request; returns whether it violated
        the SLO (failed, or slower than the target)."""
        violated = (not ok) or latency_s > self.target_s
        now = self._clock()
        with self._lock:
            slot = self._slot(tenant)
            window = self._windows.get(slot)
            if window is None:
                window = self._windows[slot] = deque()
            window.append((now, latency_s, violated))
            self._prune(window, now)
        if violated:
            _SLO_VIOLATIONS.inc(tenant=slot)
        return violated

    def refresh(self) -> None:
        """Recompute and export every tenant's window gauges."""
        for tenant, row in self.snapshot().items():
            _SLO_P50.set(row["p50_s"], tenant=tenant)
            _SLO_P99.set(row["p99_s"], tenant=tenant)
            _SLO_RATIO.set(row["violation_ratio"], tenant=tenant)
            _SLO_BURN.set(row["burn"], tenant=tenant)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant window summary (also the ``stats()`` view)."""
        now = self._clock()
        out: Dict[str, Dict[str, float]] = {}
        with self._lock:
            views = {tenant: list(window)
                     for tenant, window in self._windows.items()}
        horizon = now - self.window_s
        for tenant, rows in views.items():
            live = [(t, lat, bad) for t, lat, bad in rows
                    if t >= horizon]
            latencies = sorted(lat for _, lat, _ in live)
            violations = sum(1 for _, _, bad in live if bad)
            count = len(live)
            ratio = (violations / count) if count else 0.0
            out[tenant] = {
                "count": count,
                "p50_s": quantile(latencies, 0.50),
                "p99_s": quantile(latencies, 0.99),
                "violations": violations,
                "violation_ratio": ratio,
                "burn": ratio / self.error_budget,
                "target_s": self.target_s,
                "window_s": self.window_s,
            }
        return out


class ServeTelemetry:
    """One per-gateway bundle: per-tenant series, the SLO tracker, and
    the (optional) ring-buffered access log."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.slo = SloTracker(config.slo_target_s, config.slo_window_s,
                              config.slo_error_budget)
        self.access_log: Optional[RingLogWriter] = None
        if config.access_log_path:
            self.access_log = RingLogWriter(
                config.access_log_path,
                capacity=config.access_log_capacity)

    def record(self, *, op: str, tenant: str, outcome: str,
               latency_s: float, queue_delay_s: float,
               info: Optional[Dict[str, object]] = None) -> None:
        """One finished (or shed) request.  ``info`` carries what the
        execution path learned: fingerprint, session, payload bytes,
        wall/CPU seconds, trace/span ids."""
        info = info or {}
        _TENANT_REQUESTS.inc(tenant=tenant, outcome=outcome)
        _TENANT_SECONDS.observe(latency_s, tenant=tenant)
        self.slo.observe(tenant, latency_s, ok=(outcome == "ok"))
        if self.access_log is not None:
            record: Dict[str, object] = {
                "ts": round(time.time(), 6),
                "op": op,
                "tenant": tenant,
                "outcome": outcome,
                "latency_s": round(latency_s, 6),
                "queue_delay_s": round(queue_delay_s, 6),
            }
            for field in ("fingerprint", "session", "bytes",
                          "wall_s", "cpu_s", "trace", "span"):
                value = info.get(field)
                if value is not None:
                    record[field] = value
            self.access_log.log(record)

    def refresh(self) -> None:
        """Export the rolling SLO gauges (scrape / stats hook)."""
        self.slo.refresh()

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "slo": self.slo.snapshot(),
            "slo_target_s": self.config.slo_target_s,
            "slo_window_s": self.config.slo_window_s,
            "slo_error_budget": self.config.slo_error_budget,
        }
        if self.access_log is not None:
            out["access_log"] = self.access_log.stats()
        return out

    def close(self) -> None:
        if self.access_log is not None:
            self.access_log.close()


# -- the scrape endpoint ------------------------------------------------------

_CONTENT_TYPES = {
    "/metrics": "text/plain; version=0.0.4; charset=utf-8",
    "/healthz": "application/json",
}


class MetricsServer:
    """Stdlib-only asyncio HTTP front for the metrics registry.

    Serves ``GET /metrics`` (Prometheus 0.0.4 text) and ``GET
    /healthz``; anything else is a 404.  ``refresh`` (usually
    ``ServeTelemetry.refresh``) runs before each render so rolling
    gauges are current at scrape time.  One response per connection
    (``Connection: close``) — exactly what Prometheus, curl, and the
    open-loop bench speak.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 registry: Optional[obs.MetricsRegistry] = None,
                 refresh: Optional[Callable[[], None]] = None,
                 health: Optional[Callable[[], Dict[str, object]]] = None):
        self.host = host
        self.port = port
        self.registry = registry if registry is not None \
            else obs.registry()
        self.refresh = refresh
        self.health = health
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "MetricsServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    # -- request handling ---------------------------------------------------

    def _render(self, path: str) -> Tuple[str, str, bytes]:
        """(status, content type, body) for one GET path."""
        if path == "/metrics":
            if self.refresh is not None:
                self.refresh()
            body = prometheus_text(self.registry).encode("utf-8")
            return "200 OK", _CONTENT_TYPES[path], body
        if path == "/healthz":
            payload: Dict[str, object] = {"ok": True}
            if self.health is not None:
                payload.update(self.health())
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
            return "200 OK", _CONTENT_TYPES[path], body
        return ("404 Not Found", "text/plain; charset=utf-8",
                b"not found; try /metrics or /healthz\n")

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            # drain headers to the blank line so the socket is clean
            while True:
                line = await reader.readline()
                if not line or not line.strip():
                    break
            parts = request_line.split()
            if len(parts) < 2 or parts[0] not in (b"GET", b"HEAD"):
                status, ctype, body = ("405 Method Not Allowed",
                                       "text/plain; charset=utf-8",
                                       b"GET only\n")
                path = "*"
            else:
                path = parts[1].decode("latin-1").split("?", 1)[0]
                status, ctype, body = self._render(path)
            _SCRAPES.inc(path=path if path in _CONTENT_TYPES else "other")
            head = (f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n").encode("latin-1")
            writer.write(head if parts and parts[0] == b"HEAD"
                         else head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def scrape_metrics(host: str, port: int,
                         path: str = "/metrics",
                         timeout_s: float = 5.0) -> Tuple[int, str]:
    """Minimal asyncio HTTP GET against a :class:`MetricsServer` —
    ``(status_code, body)``.  Used by the CLI self-test and the
    open-loop bench; avoids pulling an HTTP client dependency."""

    async def fetch() -> Tuple[int, str]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write((f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                          f"Connection: close\r\n\r\n").encode())
            await writer.drain()
            raw = await reader.read(-1)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        head, _, body = raw.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].split()
        status = int(status_line[1]) if len(status_line) > 1 else 0
        return status, body.decode("utf-8", "replace")

    return await asyncio.wait_for(fetch(), timeout_s)

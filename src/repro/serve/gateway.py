"""The asyncio gateway.

:class:`Gateway` is the long-lived serving core: it owns the
persistent engine registry (:class:`~repro.serve.host.EngineHost`),
the open streaming sessions, and one *lane* per tenant — an asyncio
queue drained by a dedicated task.  A lane serializes its tenant's
requests, which is exactly the ordering guarantee streaming sessions
need (feeds of one session never reorder or interleave mid-chunk),
while different tenants proceed concurrently.

Request lifecycle::

    admit (shed at high-water)  ->  enqueue on tenant lane
        ->  dequeue (queue delay observed)
        ->  deadline check (expired requests answered without scanning)
        ->  execute (offloaded to the warm thread pool)
        ->  resolve the caller's future  ->  telemetry + access log

Execution is **offloaded off the event loop** by default
(``ServeConfig.offload``): each dequeued request runs on the shared
persistent thread pool (:func:`repro.parallel.pool.offload_pool`) via
``run_in_executor``, so one tenant's slow scan or compile cannot stall
every other tenant's admission, scheduling, or scrape traffic.  The
lane still awaits the result before dequeuing its next item, so
per-tenant ordering is unchanged and results stay bit-identical.

Fault policy reuses :mod:`repro.resilience`: every request carries an
optional :class:`~repro.resilience.Deadline` (per-request ``deadline_s``
falling back to ``ServeConfig.deadline_s``), whose remaining budget is
threaded into the scan's own ``ScanConfig.deadline_s`` so parallel
dispatch inherits the wait budget.  A gateway-level
:class:`~repro.resilience.CircuitBreaker` watches request failures;
while it is open, parallel-configured work degrades to inline serial
scans — bit-identical results, bounded blast radius.

Every finished (or shed) request is recorded through
:class:`~repro.serve.telemetry.ServeTelemetry`: per-tenant
request/latency series, rolling SLO windows, and — when
``ServeConfig.access_log_path`` is set — one JSONL access-log line
carrying the request's trace/span ids so it joins its
``serve.request`` span in a Chrome trace.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Dict, Optional, Sequence, Tuple, Union

from .. import obs
from ..parallel.config import ScanConfig
from ..parallel.pool import offload_pool
from ..parallel.report import ScanReport
from ..resilience import CircuitBreaker, Deadline
from .admission import AdmissionController, Ticket
from .config import (DEADLINE, GatewayError, DeadlineExceededError,
                     ServeConfig, SessionLimitError, UnknownSessionError)
from .host import EngineHost, HostedEngine
from .session import Session, next_session_id
from .telemetry import ServeTelemetry

_REG = obs.registry()
_REQUESTS = _REG.counter(
    "repro_serve_requests_total",
    "Gateway requests by op and outcome (ok / error code)")
_REQUEST_SECONDS = _REG.histogram(
    "repro_serve_request_seconds",
    "End-to-end gateway request latency (admission to response)")
_SESSIONS = _REG.gauge(
    "repro_serve_sessions",
    "Currently open streaming sessions")
_DEGRADED = _REG.counter(
    "repro_serve_degraded_total",
    "Requests executed serially because the serve breaker was open")
_OFFLOADED = _REG.counter(
    "repro_serve_loop_offload_total",
    "Requests executed on the offload thread pool instead of the "
    "gateway's event-loop thread")
_EVICTED = _REG.counter(
    "repro_serve_sessions_evicted_total",
    "Streaming sessions closed by the gateway, by reason "
    "(idle, shutdown)")

#: sentinel that stops a lane's drain task
_STOP = object()

#: sentinel distinguishing "no deadline" from "use the config default"
_DEFAULT = object()


class _Lane:
    """One tenant's serialized execution lane."""

    __slots__ = ("queue", "task")

    def __init__(self, queue: "asyncio.Queue", task: "asyncio.Task"):
        self.queue = queue
        self.task = task


class Gateway:
    """Multiplexes tenants' scans and streaming sessions over a
    registry of persistent compiled engines."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 host: Optional[EngineHost] = None):
        self.config = config if config is not None else ServeConfig()
        self.host = host if host is not None else EngineHost(self.config)
        self.admission = AdmissionController(self.config)
        self.breaker = CircuitBreaker(
            "serve", threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s)
        self.telemetry = ServeTelemetry(self.config)
        self._sessions: Dict[str, Tuple[Session, HostedEngine]] = {}
        #: guards the session map — open/close/evict run on offload
        #: threads and the idle reaper runs on the loop thread
        self._session_lock = threading.Lock()
        self._lanes: Dict[str, _Lane] = {}
        self._reaper: Optional["asyncio.Task"] = None
        self._closed = False
        self.started_at = time.monotonic()

    # -- public ops ---------------------------------------------------------

    async def ping(self) -> Dict[str, object]:
        """Liveness, no lane, no admission."""
        return {"ok": True,
                "uptime_s": round(time.monotonic() - self.started_at, 6)}

    async def compile(self, tenant: str,
                      patterns: Sequence[Union[str, object]],
                      config: Optional[ScanConfig] = None,
                      deadline_s=_DEFAULT) -> Dict[str, object]:
        """Warm the tenant's engine for ``patterns``; returns its
        registry entry (fingerprint, compile time, use counts)."""

        def run(deadline: Optional[Deadline],
                info: Dict[str, object]) -> Dict[str, object]:
            hosted = self.host.acquire(tenant, patterns, config)
            info["fingerprint"] = hosted.fingerprint
            return hosted.stats()

        return await self._submit(tenant, "compile", run, deadline_s)

    async def scan(self, tenant: str,
                   patterns: Sequence[Union[str, object]], data: bytes,
                   config: Optional[ScanConfig] = None,
                   deadline_s=_DEFAULT) -> ScanReport:
        """One-shot scan on the tenant's (cached) compiled engine."""

        def run(deadline: Optional[Deadline],
                info: Dict[str, object]) -> ScanReport:
            hosted = self.host.acquire(tenant, patterns, config)
            info["fingerprint"] = hosted.fingerprint
            info["bytes"] = len(data)
            effective = self._execution_config(
                hosted.matcher.config, deadline)
            return hosted.matcher.scan(data, config=effective)

        return await self._submit(tenant, "scan", run, deadline_s)

    async def open_session(self, tenant: str,
                           patterns: Sequence[Union[str, object]],
                           config: Optional[ScanConfig] = None,
                           deadline_s=_DEFAULT) -> Dict[str, object]:
        """Open a streaming session; returns its id and engine
        fingerprint."""

        def run(deadline: Optional[Deadline],
                info: Dict[str, object]) -> Dict[str, object]:
            self.evict_idle_sessions()
            with self._session_lock:
                if len(self._sessions) >= self.config.max_sessions:
                    raise SessionLimitError(
                        f"session limit {self.config.max_sessions} "
                        f"reached")
            hosted = self.host.acquire(tenant, patterns, config)
            session = Session(next_session_id(tenant), tenant, hosted)
            with self._session_lock:
                if len(self._sessions) >= self.config.max_sessions:
                    raise SessionLimitError(
                        f"session limit {self.config.max_sessions} "
                        f"reached")
                self._sessions[session.id] = (session, hosted)
                open_count = len(self._sessions)
            self.host.session_opened(hosted)
            _SESSIONS.set(open_count)
            info["fingerprint"] = hosted.fingerprint
            info["session"] = session.id
            return {"session": session.id,
                    "fingerprint": hosted.fingerprint,
                    "guaranteed_span": session.matcher.guaranteed_span}

        return await self._submit(tenant, "open", run, deadline_s)

    async def feed(self, tenant: str, session_id: str, chunk: bytes,
                   deadline_s=_DEFAULT) -> ScanReport:
        """Feed one chunk to an open session; new match ends in global
        stream coordinates.  Feeds of one session are serialized by
        the tenant's lane, so chunk order is preserved."""

        def run(deadline: Optional[Deadline],
                info: Dict[str, object]) -> ScanReport:
            session = self._session_for(tenant, session_id)
            info["fingerprint"] = session.hosted.fingerprint
            info["session"] = session_id
            info["bytes"] = len(chunk)
            return session.feed(chunk)

        return await self._submit(tenant, "feed", run, deadline_s)

    async def close_session(self, tenant: str,
                            session_id: str) -> Dict[str, object]:
        """Close a session; returns its final summary."""

        def run(deadline: Optional[Deadline],
                info: Dict[str, object]) -> Dict[str, object]:
            with self._session_lock:
                entry = self._sessions.get(session_id)
                if entry is None or entry[0].tenant != tenant:
                    raise UnknownSessionError(
                        f"no open session {session_id!r} for tenant "
                        f"{tenant!r}")
                del self._sessions[session_id]
                open_count = len(self._sessions)
            session, hosted = entry
            self.host.session_closed(hosted)
            _SESSIONS.set(open_count)
            info["fingerprint"] = hosted.fingerprint
            info["session"] = session_id
            return session.close()

        return await self._submit(tenant, "close", run, None)

    def stats(self) -> Dict[str, object]:
        self.telemetry.refresh()
        return {"uptime_s": round(time.monotonic() - self.started_at, 6),
                "sessions": len(self._sessions),
                "tenants": len(self._lanes),
                "breaker": self.breaker.state(),
                "admission": self.admission.stats(),
                "host": self.host.stats(),
                "telemetry": self.telemetry.stats()}

    # -- session eviction ---------------------------------------------------

    def evict_idle_sessions(self) -> int:
        """Close every session idle past ``ServeConfig.session_idle_s``
        (no-op when unset).  Runs opportunistically on session opens
        and periodically from the idle reaper; a feed to an evicted
        session answers ``unknown-session``."""
        idle_s = self.config.session_idle_s
        if idle_s is None:
            return 0
        victims = []
        with self._session_lock:
            for session_id, (session, hosted) in \
                    list(self._sessions.items()):
                if session.idle_s() >= idle_s:
                    victims.append((session, hosted))
                    del self._sessions[session_id]
            open_count = len(self._sessions)
        for session, hosted in victims:
            session.close()
            self.host.session_closed(hosted)
            _EVICTED.inc(reason="idle")
        if victims:
            _SESSIONS.set(open_count)
        return len(victims)

    async def _reap_idle(self) -> None:
        """Periodic idle-session sweep (started lazily with the first
        request once ``session_idle_s`` is configured)."""
        interval = max(self.config.session_idle_s / 4, 0.05)
        while not self._closed:
            await asyncio.sleep(interval)
            self.evict_idle_sessions()

    async def close(self) -> None:
        """Stop every lane and drop open sessions."""
        self._closed = True
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        lanes = list(self._lanes.values())
        self._lanes.clear()
        for lane in lanes:
            lane.queue.put_nowait(_STOP)
        for lane in lanes:
            await lane.task
        with self._session_lock:
            entries = list(self._sessions.values())
            self._sessions.clear()
        for session, hosted in entries:
            session.close()
            self.host.session_closed(hosted)
            _EVICTED.inc(reason="shutdown")
        _SESSIONS.set(0)
        self.telemetry.close()

    # -- internals ----------------------------------------------------------

    def _session_for(self, tenant: str, session_id: str) -> Session:
        with self._session_lock:
            entry = self._sessions.get(session_id)
        if entry is None or entry[0].tenant != tenant:
            raise UnknownSessionError(
                f"no open session {session_id!r} for tenant {tenant!r}")
        return entry[0]

    def _execution_config(self, base: ScanConfig,
                          deadline: Optional[Deadline]) -> Optional[ScanConfig]:
        """What the scan actually runs with: the engine's config, the
        request deadline threaded into the dispatch wait budget, and —
        when the serve breaker is open — parallel dispatch degraded to
        inline serial."""
        config = base
        if deadline is not None:
            config = config.replace(
                deadline_s=max(deadline.remaining(), 1e-6))
        if config.parallel_enabled() and not self.breaker.allow():
            config = config.serial()
            _DEGRADED.inc()
        return None if config is base else config

    async def _submit(self, tenant: str, op: str, run,
                      deadline_s=_DEFAULT):
        if self._closed:
            raise GatewayError("gateway is closed")
        budget = self.config.deadline_s if deadline_s is _DEFAULT \
            else deadline_s
        try:
            ticket = self.admission.try_admit(tenant)
        except GatewayError as exc:
            _REQUESTS.inc(op=op, outcome=exc.code)
            self.telemetry.record(op=op, tenant=tenant,
                                  outcome=exc.code, latency_s=0.0,
                                  queue_delay_s=0.0)
            raise
        deadline = Deadline.start(budget)
        loop = asyncio.get_running_loop()
        if self._reaper is None and self.config.session_idle_s is not None:
            self._reaper = loop.create_task(self._reap_idle())
        future: "asyncio.Future" = loop.create_future()
        lane = self._lane(tenant)
        lane.queue.put_nowait((ticket, deadline, op, run, future))
        return await future

    def _lane(self, tenant: str) -> _Lane:
        lane = self._lanes.get(tenant)
        if lane is None:
            queue: "asyncio.Queue" = asyncio.Queue()
            task = asyncio.get_running_loop().create_task(
                self._drain(queue))
            lane = _Lane(queue, task)
            self._lanes[tenant] = lane
        return lane

    def _run_request(self, op: str, tenant: str, run,
                     deadline: Optional[Deadline],
                     info: Dict[str, object]):
        """Execute one request (loop thread or offload thread) under a
        ``serve.request`` span, recording wall/CPU seconds and the
        trace/span ids the access log joins on."""
        tracer = obs.current_tracer()
        if tracer is not None:
            info["trace"] = tracer.trace_id
        begin_wall = time.perf_counter()
        begin_cpu = time.thread_time()
        try:
            with obs.span("serve.request", category="serve",
                          op=op, tenant=tenant) as request_span:
                if request_span.is_recording:
                    info["span"] = request_span.span_id
                return run(deadline, info)
        finally:
            info["wall_s"] = round(time.perf_counter() - begin_wall, 6)
            info["cpu_s"] = round(time.thread_time() - begin_cpu, 6)

    async def _drain(self, queue: "asyncio.Queue") -> None:
        """One tenant's worker: pop, account, execute, resolve."""
        loop = asyncio.get_running_loop()
        while True:
            item = await queue.get()
            if item is _STOP:
                return
            ticket, deadline, op, run, future = item
            self.admission.started(ticket)
            if future.cancelled():
                continue
            info: Dict[str, object] = {}
            outcome = "ok"
            try:
                if deadline is not None and deadline.expired():
                    raise DeadlineExceededError(
                        f"deadline expired after "
                        f"{ticket.queue_delay_s:.3f}s in queue")
                if self.config.offload:
                    _OFFLOADED.inc()
                    result = await loop.run_in_executor(
                        offload_pool(self.config.offload_workers),
                        self._run_request, op, ticket.tenant, run,
                        deadline, info)
                else:
                    result = self._run_request(op, ticket.tenant, run,
                                               deadline, info)
            except GatewayError as exc:
                outcome = exc.code
                _REQUESTS.inc(op=op, outcome=exc.code)
                if exc.code == DEADLINE:
                    self.breaker.record_failure()
                future.set_exception(exc)
            except Exception as exc:
                outcome = "internal"
                _REQUESTS.inc(op=op, outcome="internal")
                self.breaker.record_failure()
                future.set_exception(exc)
            else:
                _REQUESTS.inc(op=op, outcome="ok")
                self.breaker.record_success()
                future.set_result(result)
            finally:
                latency = time.monotonic() - ticket.enqueued_at
                _REQUEST_SECONDS.observe(latency)
                self.telemetry.record(
                    op=op, tenant=ticket.tenant, outcome=outcome,
                    latency_s=latency,
                    queue_delay_s=max(ticket.queue_delay_s, 0.0),
                    info=info)
                # yield so a same-loop client can observe the result
                # between back-to-back jobs
                await asyncio.sleep(0)

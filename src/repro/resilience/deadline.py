"""Scan-level deadlines.

A :class:`Deadline` is one monotonic budget shared by everything a
scan dispatch does — arena packing, pool acquisition, every per-shard
wait, every retry backoff.  The dispatcher derives each blocking wait
from :meth:`wait_budget`, so the *sum* of waits can never exceed the
budget: a scan with ``deadline_s`` set stops blocking on workers at
the deadline and finishes the stragglers inline (reported as
``ShardFault(kind="deadline")``), bounding total latency at roughly
the deadline plus one shard's inline runtime per unfinished shard.

Deadlines bound *waiting on workers*, not computation: the inline
recovery that preserves the bit-identity guarantee still runs to
completion.  Callers that need a hard wall-clock cut must also shrink
the work (fewer shards, smaller inputs).
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class Deadline:
    """A monotonic-clock budget decremented by the passage of time."""

    __slots__ = ("budget_s", "_expires_at", "_clock")

    def __init__(self, budget_s: float,
                 clock: Callable[[], float] = time.monotonic):
        if budget_s <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._expires_at = clock() + self.budget_s

    @classmethod
    def start(cls, budget_s: Optional[float],
              clock: Callable[[], float] = time.monotonic
              ) -> Optional["Deadline"]:
        """``None`` stays ``None`` — the no-deadline fast path is a
        single ``is None`` check at every wait site."""
        if budget_s is None:
            return None
        return cls(budget_s, clock=clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def wait_budget(self, timeout: Optional[float]) -> float:
        """The timeout one blocking wait may use: the smaller of the
        per-wait ``timeout`` (``None`` = unbounded) and the remaining
        scan budget, floored at zero so an expired deadline turns
        every further wait into an immediate timeout."""
        remaining = max(self.remaining(), 0.0)
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Deadline(budget={self.budget_s}, "
                f"remaining={self.remaining():.3f})")

"""A circuit breaker for pool-level faults.

The persistent-pool registry (:mod:`repro.parallel.pool`) makes worker
pools warm; the breaker keeps a *broken* start method from turning
that warmth into a storm.  Without it, a platform where process pools
reliably die (a bad ``forkserver`` setup, a container that kills
children, exhausted PIDs) pays a fresh cold pool start **per scan**,
each one failing, each one falling back shard-by-shard.

State machine (the classic three states):

* **closed** — dispatches flow to pools; each pool-level fault
  (unstartable pool, ``BrokenExecutor``, worker timeout) increments a
  consecutive-failure count, any clean pool dispatch resets it;
* **open** — entered after ``threshold`` consecutive failures.
  :meth:`allow` answers ``False``: the dispatcher runs shards inline
  (still bit-identical, just serial) without touching pools, for
  ``cooldown_s`` seconds;
* **half-open** — the first :meth:`allow` after the cooldown returns
  ``True`` exactly once (the probe) and moves here; the probe's
  outcome decides: success closes the circuit, failure re-opens it
  and restarts the cooldown.

State is exported as the ``repro_breaker_state`` gauge (0 closed,
1 open, 2 half-open) and every transition bumps
``repro_breaker_transitions_total{to=...}``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from .. import obs

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: gauge encoding, stable for dashboards
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

_STATE_GAUGE = obs.registry().gauge(
    "repro_breaker_state",
    "Circuit-breaker state by name: 0 closed, 1 open, 2 half-open")
_TRANSITIONS = obs.registry().counter(
    "repro_breaker_transitions_total",
    "Circuit-breaker state transitions, by breaker name and new state")


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing."""

    def __init__(self, name: str = "default", threshold: int = 3,
                 cooldown_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.name = name
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        _STATE_GAUGE.set(0, name=name)

    # -- state -------------------------------------------------------------

    def _transition(self, state: str) -> None:
        """Caller holds the lock."""
        if state == self._state:
            return
        self._state = state
        _STATE_GAUGE.set(STATE_CODES[state], name=self.name)
        _TRANSITIONS.inc(name=self.name, to=state)

    def state(self) -> str:
        with self._lock:
            return self._state

    def failures(self) -> int:
        with self._lock:
            return self._failures

    # -- the dispatch-side protocol ----------------------------------------

    def allow(self) -> bool:
        """May the next dispatch use a pool?  In the open state this
        flips to half-open (and answers ``True``) exactly once per
        cooldown — the single probe; a second caller racing the probe
        gets ``False`` and stays inline."""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._transition(HALF_OPEN)
                    return True
                return False
            return False  # half-open: probe already in flight

    def record_success(self) -> None:
        """A dispatch used a pool and the pool held up."""
        with self._lock:
            self._failures = 0
            if self._state == HALF_OPEN:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        """A dispatch hit a pool-level fault (unstartable pool,
        broken executor, worker timeout)."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._opened_at = self._clock()
                self._transition(OPEN)
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.threshold:
                self._opened_at = self._clock()
                self._transition(OPEN)

    def reset(self) -> None:
        """Back to a clean closed circuit (test isolation, or an
        operator override after fixing the environment)."""
        with self._lock:
            self._failures = 0
            self._transition(CLOSED)

"""Fault-handling policy: what a scan does when a shard's worker dies.

Three policies, selected by :attr:`ScanConfig.on_fault`:

* ``"degrade"`` (the default, and the only pre-resilience behaviour) —
  the faulted shard re-runs **inline** through the serial path, so a
  parallel scan never fails and never changes results;
* ``"retry"`` — the shard is retried up to
  :attr:`ScanConfig.max_retries` times with exponential backoff plus
  jitter, each attempt on a **fresh single-worker pool** (a poisoned
  or crashed pool must not eat the retry too); only when every retry
  faults does the shard degrade to the inline path.  Transient faults
  therefore recover *without* serial fallback, which matters once
  shards are expensive enough that an in-process rerun doubles the
  scan's critical path;
* ``"fail"`` — the first fault aborts the whole scan with
  :class:`ScanAbortedError`.  For callers that would rather surface
  partial-failure than silently absorb a degraded (slower) scan.

The policy object itself is dumb on purpose: delays are computed here,
but *applied* by the dispatcher (:mod:`repro.parallel.pool`), which
also clamps them against the scan deadline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

#: The ``ScanConfig.on_fault`` vocabulary.
ON_FAULT_POLICIES = ("degrade", "retry", "fail")


class ScanAbortedError(RuntimeError):
    """A worker fault aborted the scan (``on_fault="fail"``).

    Carries the triggering :class:`~repro.parallel.report.ShardFault`
    as ``.fault`` so callers can route on the fault kind.
    """

    def __init__(self, fault):
        super().__init__(
            f"scan aborted: shard {fault.shard} faulted "
            f"({fault.kind}): {fault.error}")
        self.fault = fault


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with multiplicative jitter.

    Attempt ``n`` (1-based) sleeps ``backoff_s * 2**(n-1)`` scaled by
    a uniform factor in ``[1, 1 + jitter]`` — jitter is additive-only
    so the base backoff stays a floor, and two shards that faulted
    together do not retry in lockstep.
    """

    max_retries: int = 0
    backoff_s: float = 0.05
    jitter: float = 0.5
    #: hard cap on any single computed delay, so a deep retry ladder
    #: cannot sleep past what a caller would consider hung
    max_delay_s: float = 5.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0 or self.jitter < 0 or self.max_delay_s < 0:
            raise ValueError("backoff, jitter, and max_delay must "
                             "be >= 0")

    def delay_s(self, attempt: int,
                rng: Optional[random.Random] = None) -> float:
        """Seconds to sleep before retry ``attempt`` (1-based)."""
        base = self.backoff_s * (2 ** max(attempt - 1, 0))
        if rng is not None and self.jitter > 0:
            base *= 1.0 + self.jitter * rng.random()
        return min(base, self.max_delay_s)

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """The policy a :class:`~repro.parallel.config.ScanConfig`
        asks for (jitter stays at the default; it is an implementation
        detail, not a tuning surface)."""
        return cls(max_retries=config.max_retries,
                   backoff_s=config.retry_backoff)

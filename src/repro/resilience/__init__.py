"""repro.resilience — policy-driven fault handling for the scan pipeline.

The sharded dispatcher has always *survived* worker faults (every
shard degrades to an inline serial rerun); this package makes the
degraded paths **policied, bounded, and measurable**:

* :class:`RetryPolicy` / :class:`ScanAbortedError`
  (:mod:`~repro.resilience.policy`) — what happens on a shard fault:
  degrade (default), retry with backoff on a fresh pool, or fail fast;
* :class:`Deadline` (:mod:`~repro.resilience.deadline`) — one
  monotonic budget for all of a scan's blocking waits, so a hung shard
  can never stall a scan past ``ScanConfig.deadline_s``;
* :class:`CircuitBreaker` (:mod:`~repro.resilience.breaker`) — wraps
  the persistent-pool registry: consecutive pool-level faults open the
  circuit and dispatch goes inline for a cooldown instead of paying a
  cold-start storm on a broken start method;
* :class:`ChaosPlan` (:mod:`~repro.resilience.chaos`) — seeded,
  site-addressable fault injection (``$REPRO_CHAOS``) that lets tests
  and the CI soak job deterministically exercise every fault path
  while asserting results stay bit-identical to serial.

Everything here is dispatch-layer: policies never change *what* a scan
computes, only how (and whether) it recovers.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, STATE_CODES, CircuitBreaker
from .chaos import (CHAOS_ENV, DEFAULT_SLEEP_SECONDS, FAULT_KINDS,
                    LEGACY_FAULT_ENV, SLEEP_ENV, ChaosPlan, ChaosRule,
                    InjectedFault)
from .deadline import Deadline
from .policy import ON_FAULT_POLICIES, RetryPolicy, ScanAbortedError
from . import chaos

__all__ = [
    "CHAOS_ENV",
    "CLOSED",
    "ChaosPlan",
    "ChaosRule",
    "CircuitBreaker",
    "DEFAULT_SLEEP_SECONDS",
    "Deadline",
    "FAULT_KINDS",
    "HALF_OPEN",
    "InjectedFault",
    "LEGACY_FAULT_ENV",
    "ON_FAULT_POLICIES",
    "OPEN",
    "RetryPolicy",
    "SLEEP_ENV",
    "STATE_CODES",
    "ScanAbortedError",
    "chaos",
]

"""Seeded, site-addressable fault injection.

The old hook — ``REPRO_PARALLEL_FAULT_INJECT=<kind>`` — was a blunt
instrument: every site, every worker, probability one.  A
:class:`ChaosPlan` replaces it with structure: a tuple of
:class:`ChaosRule` entries, each naming a **site** (glob over the
instrumented site names), a **fault kind**, a firing **probability**,
and an optional **max_count**, driven by one seeded RNG so a plan
replays deterministically within a process.

Instrumented sites (grep ``maybe_inject`` for ground truth):

========================  ====================================
``worker.stream``         stream-shard task (``scan_streams``)
``worker.group``          group-shard task (``scan_groups``)
``worker.session``        streaming-session task (``run_session``)
``worker.cell``           harness grid cell (``run_cell``)
``pool.acquire``          executor acquisition in the parent
========================  ====================================

Fault kinds: ``exception`` raises :class:`InjectedFault`;
``timeout`` sleeps :func:`sleep_seconds` (default 2.5 s, override
``$REPRO_CHAOS_SLEEP``) so ``worker_timeout``/``deadline_s`` paths
fire; ``exit`` kills the process with ``os._exit(13)`` (a
``BrokenExecutor`` for process pools — never aim it at thread
executors or the parent); ``pool`` is ``exception`` by another name,
intended for ``pool.acquire`` where any raise becomes an
unstartable-pool fault.

Arming a plan:

* **in-process** — ``install(plan)``; reaches parent-side sites,
  thread workers, and process workers forked *after* the install;
* **environment** — ``REPRO_CHAOS=<spec>`` with the grammar below;
  reaches every worker (fork and spawn inherit the environment).
  The legacy ``REPRO_PARALLEL_FAULT_INJECT`` hook keeps working as a
  shim: it maps to an all-worker-sites, probability-one plan.

Spec grammar (``;``-separated clauses)::

    spec    := clause (";" clause)*
    clause  := "seed=" INT | rule
    rule    := SITE ":" KIND [":" PROB [":" MAXCOUNT]]

    REPRO_CHAOS='seed=7;worker.*:exception:0.05;pool.acquire:pool:0.1:2'

Injection is **suppressed** inside the dispatcher's inline-recovery
path (:func:`suppress`): recovery re-runs worker task functions in the
parent, and re-injecting there would turn a survivable worker ``exit``
into parent suicide — recovery must always converge.
"""

from __future__ import annotations

import fnmatch
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Tuple

from .. import obs

#: structured spec environment hook
CHAOS_ENV = "REPRO_CHAOS"
#: legacy all-sites hook, kept as a compatibility shim
LEGACY_FAULT_ENV = "REPRO_PARALLEL_FAULT_INJECT"
#: override for how long a ``timeout`` injection sleeps
SLEEP_ENV = "REPRO_CHAOS_SLEEP"

FAULT_KINDS = ("exception", "timeout", "exit", "pool")

#: default ``timeout``-injection sleep (bounds test teardown)
DEFAULT_SLEEP_SECONDS = 2.5

_INJECTIONS = obs.registry().counter(
    "repro_chaos_injections_total",
    "Faults injected by the chaos framework, by site and kind")


class InjectedFault(RuntimeError):
    """Raised by ``exception``/``pool`` chaos injections."""


def sleep_seconds() -> float:
    override = os.environ.get(SLEEP_ENV)
    if override:
        try:
            return float(override)
        except ValueError:
            pass
    return DEFAULT_SLEEP_SECONDS


# -- the plan ----------------------------------------------------------------


@dataclass(frozen=True)
class ChaosRule:
    """One injection rule: where, what, how often, how many times."""

    site: str                       # glob over site names
    kind: str                       # one of FAULT_KINDS
    probability: float = 1.0
    max_count: Optional[int] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("chaos probability must be in [0, 1]")
        if self.max_count is not None and self.max_count < 1:
            raise ValueError("chaos max_count must be >= 1")

    def matches(self, site: str) -> bool:
        return fnmatch.fnmatchcase(site, self.site)

    def to_clause(self) -> str:
        clause = f"{self.site}:{self.kind}:{self.probability:g}"
        if self.max_count is not None:
            clause += f":{self.max_count}"
        return clause


@dataclass(frozen=True)
class ChaosPlan:
    """An ordered rule set plus the seed that drives its RNG."""

    rules: Tuple[ChaosRule, ...]
    seed: int = 0

    def to_spec(self) -> str:
        """The ``$REPRO_CHAOS`` string that reproduces this plan."""
        clauses = [f"seed={self.seed}"]
        clauses.extend(rule.to_clause() for rule in self.rules)
        return ";".join(clauses)

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Parse the spec grammar; raises :class:`ValueError` with the
        offending clause on any malformed input."""
        rules = []
        seed = 0
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError:
                    raise ValueError(
                        f"bad chaos seed clause {clause!r}") from None
                continue
            parts = clause.split(":")
            if not 2 <= len(parts) <= 4:
                raise ValueError(
                    f"bad chaos rule {clause!r}; expected "
                    f"site:kind[:probability[:max_count]]")
            site, kind = parts[0], parts[1]
            try:
                probability = float(parts[2]) if len(parts) > 2 else 1.0
                max_count = int(parts[3]) if len(parts) > 3 else None
            except ValueError:
                raise ValueError(
                    f"bad chaos rule {clause!r}: probability must be "
                    f"a float and max_count an int") from None
            rules.append(ChaosRule(site=site, kind=kind,
                                   probability=probability,
                                   max_count=max_count))
        if not rules:
            raise ValueError(f"chaos spec {spec!r} contains no rules")
        return cls(rules=tuple(rules), seed=seed)


def _legacy_plan(kind: str) -> ChaosPlan:
    """The shim: the old env hook as a structured plan."""
    mapped = kind if kind in ("timeout", "exit") else "exception"
    return ChaosPlan(rules=(ChaosRule(site="worker.*", kind=mapped),))


# -- per-process runtime state -----------------------------------------------


class _ChaosState:
    """One armed plan's mutable half: the seeded RNG and per-rule
    injection counts.  Per process — forked workers start from a copy
    of the parent's state at fork time, spawned workers re-arm from
    the environment with a fresh (identically seeded) RNG."""

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.counts = [0] * len(plan.rules)
        self.lock = threading.Lock()

    def draw(self, site: str) -> Optional[str]:
        """The fault kind to inject at ``site`` now, or ``None``.
        Every *matching* rule gets a draw until one fires, so rule
        order is part of the plan's identity."""
        with self.lock:
            for index, rule in enumerate(self.plan.rules):
                if not rule.matches(site):
                    continue
                if (rule.max_count is not None
                        and self.counts[index] >= rule.max_count):
                    continue
                if self.rng.random() >= rule.probability:
                    continue
                self.counts[index] += 1
                return rule.kind
        return None

    def injections(self) -> int:
        with self.lock:
            return sum(self.counts)


_INSTALLED: Optional[_ChaosState] = None
#: memoised env-armed state, keyed by the exact spec string so a
#: changed environment re-parses (and re-seeds) automatically
_ENV_STATE: Tuple[Optional[str], Optional[_ChaosState]] = (None, None)
_STATE_LOCK = threading.Lock()
_SUPPRESSED = threading.local()


def install(plan: ChaosPlan) -> None:
    """Arm ``plan`` in this process (and, under ``fork``, in workers
    forked after this call).  For spawn-started workers export
    ``plan.to_spec()`` as ``$REPRO_CHAOS`` instead."""
    global _INSTALLED
    with _STATE_LOCK:
        _INSTALLED = _ChaosState(plan)


def uninstall() -> None:
    global _INSTALLED
    with _STATE_LOCK:
        _INSTALLED = None


def reset() -> None:
    """Disarm everything and drop memoised env state (test isolation).
    An env-armed plan re-arms — reseeded, counts zeroed — on the next
    injection check while the variable is still set."""
    global _INSTALLED, _ENV_STATE
    with _STATE_LOCK:
        _INSTALLED = None
        _ENV_STATE = (None, None)


def active_state() -> Optional[_ChaosState]:
    """The armed chaos state: the installed plan wins, then
    ``$REPRO_CHAOS``, then the legacy env hook."""
    global _ENV_STATE
    if _INSTALLED is not None:
        return _INSTALLED
    spec = os.environ.get(CHAOS_ENV)
    legacy = None if spec else os.environ.get(LEGACY_FAULT_ENV)
    if not spec and not legacy:
        return None
    key = spec if spec else f"<legacy:{legacy}>"
    with _STATE_LOCK:
        cached_key, cached = _ENV_STATE
        if cached_key == key and cached is not None:
            return cached
        plan = ChaosPlan.parse(spec) if spec else _legacy_plan(legacy)
        state = _ChaosState(plan)
        _ENV_STATE = (key, state)
        return state


def armed() -> bool:
    """Whether any chaos source is live — the dispatcher bypasses warm
    persistent pools while armed, because env/plan mutations only
    reach workers created afterwards."""
    return active_state() is not None


@contextmanager
def suppress():
    """No injections on this thread while the context is open — wraps
    the dispatcher's inline recovery so chaos can never make recovery
    itself fail (or ``os._exit`` the parent)."""
    previous = getattr(_SUPPRESSED, "active", False)
    _SUPPRESSED.active = True
    try:
        yield
    finally:
        _SUPPRESSED.active = previous


def maybe_inject(site: str) -> None:
    """THE injection point: called by every instrumented site.  A
    no-op (two env reads) when nothing is armed."""
    state = active_state()
    if state is None or getattr(_SUPPRESSED, "active", False):
        return
    kind = state.draw(site)
    if kind is None:
        return
    _INJECTIONS.inc(site=site, kind=kind)
    if kind == "timeout":
        time.sleep(sleep_seconds())
        return
    if kind == "exit":
        os._exit(13)
    raise InjectedFault(f"chaos fault injected at {site} "
                        f"(kind={kind})")


def injection_count() -> int:
    """Total injections fired by the currently armed state (0 when
    nothing is armed) — the soak harness's 'did chaos actually bite'
    assertion."""
    state = active_state()
    return state.injections() if state is not None else 0

"""repro.obs — unified tracing + metrics for the whole pipeline.

One observability substrate spanning compile → optimize → codegen →
dispatch → scan:

* a span-based tracer (:mod:`repro.obs.trace`) with wall/CPU timing,
  thread-aware nesting, and cross-process context propagation
  (:mod:`repro.obs.propagate`), so per-shard spans from pool workers
  stitch under the parent scan span;
* a metrics registry (:mod:`repro.obs.metrics`) — counters, gauges,
  histograms — that is the single sink for kernel-cache hit/miss,
  optimizer pass deltas, dispatch decisions, and fault recoveries;
* exporters (:mod:`repro.obs.export`) — JSON lines, Chrome
  ``trace_event`` (Perfetto-loadable), Prometheus text exposition —
  wired to ``python -m repro trace`` and the ``REPRO_TRACE=<path>``
  environment hook.

Tracing is **off by default** and the disabled path is near-free:
:func:`span` returns the one shared :data:`~repro.obs.trace.NULL_SPAN`
when no tracer is installed (a global read and a ``None`` check;
``benchmarks/bench_obs_overhead.py`` keeps it under 2% of wall time).
Metrics are always on but only touched at coarse aggregation points.

Usage::

    import repro.obs as obs

    tracer = obs.start_tracing()
    engine = BitGenEngine.compile(patterns)         # compile spans
    report = engine.scan(data)                      # scan/exec spans
    obs.export.write_chrome(tracer.finished(), "trace.json")
    obs.stop_tracing()

Environment hook: ``REPRO_TRACE=<path>`` enables tracing in any entry
point and writes the trace at interpreter exit — ``*.json`` as a
Chrome trace, ``*.prom`` as Prometheus metrics, anything else as JSON
lines.
"""

from __future__ import annotations

import os
from typing import Optional

from . import export  # noqa: F401  (public submodule)
from . import log  # noqa: F401  (public submodule)
from .log import RingLogWriter
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      registry)
from .trace import NULL_SPAN, NullSpan, Span, TraceContext, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "RingLogWriter",
    "Span",
    "TraceContext",
    "Tracer",
    "current_context",
    "current_tracer",
    "enabled",
    "export",
    "install_tracer",
    "log",
    "registry",
    "span",
    "start_tracing",
    "stop_tracing",
    "uninstall_tracer",
]

#: The installed tracer; ``None`` means tracing is disabled.
_TRACER: Optional[Tracer] = None


def span(name: str, category: str = "repro", **attrs):
    """Open a span on the installed tracer — THE instrumentation entry
    point.  Returns the shared no-op span when tracing is disabled, so
    call sites are a ``with`` statement away from free."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, category, **attrs)


def enabled() -> bool:
    return _TRACER is not None


def current_tracer() -> Optional[Tracer]:
    return _TRACER


def current_context() -> Optional[TraceContext]:
    """The calling thread's innermost span as a picklable pointer,
    for handing to pool workers (``None`` when disabled / no span)."""
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.current_context()


def start_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) a recording tracer.  Idempotent when one
    is already installed and no explicit tracer is passed."""
    global _TRACER
    if tracer is None:
        if _TRACER is not None:
            return _TRACER
        tracer = Tracer()
    _TRACER = tracer
    return tracer


def stop_tracing() -> list:
    """Uninstall the tracer; returns its finished spans."""
    global _TRACER
    tracer = _TRACER
    _TRACER = None
    return tracer.finished() if tracer is not None else []


def install_tracer(tracer: Tracer) -> Optional[Tracer]:
    """Swap ``tracer`` in, returning the previous one (worker-side
    span collection; pair with :func:`uninstall_tracer`)."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def uninstall_tracer(tracer: Tracer,
                     previous: Optional[Tracer] = None) -> None:
    """Remove ``tracer`` if still installed, restoring ``previous``."""
    global _TRACER
    if _TRACER is tracer:
        _TRACER = previous


# -- REPRO_TRACE environment hook --------------------------------------------

TRACE_ENV = "REPRO_TRACE"


def _export_env_trace(tracer: Tracer, path: str, pid: int) -> None:
    if os.getpid() != pid:
        # Forked pool workers inherit this atexit hook; their spans
        # are marshalled back to the parent, which owns the file.
        return
    try:
        if path.endswith(".prom"):
            export.write_prometheus(registry(), path)
        elif path.endswith(".json"):
            export.write_chrome(tracer.finished(), path)
        else:
            export.write_jsonl(tracer.finished(), path)
    except OSError:  # pragma: no cover - diagnostics must never crash
        pass


def configure_from_env(environ=os.environ) -> Optional[Tracer]:
    """Arm tracing from ``REPRO_TRACE=<path>`` (no-op when unset):
    installs a recording tracer now and registers an atexit exporter.
    Called once at import, so every entry point — CLI, benchmarks,
    plain scripts — gets tracing without code changes."""
    path = environ.get(TRACE_ENV)
    if not path:
        return None
    import atexit

    tracer = start_tracing()
    atexit.register(_export_env_trace, tracer, path, os.getpid())
    return tracer


configure_from_env()

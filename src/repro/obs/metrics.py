"""The metrics registry: counters, gauges, histograms.

One process-wide :class:`MetricsRegistry` is the single sink for every
quantity the repo already counts piecemeal — kernel-cache hit/miss
(in-memory and on-disk), optimizer pass deltas, shard dispatch
decisions, fault-injection recoveries, scan throughput.  Unlike
tracing, metrics are *always on*: instruments are updated at coarse
aggregation points (once per compile, once per scan, once per cache
lookup), never inside per-word loops, so the cost is a handful of
dict/attribute operations per pipeline stage.

Instruments support optional labels (``counter.inc(2, app="Snort")``);
each label set keeps its own series, exactly the Prometheus data
model, and :func:`repro.obs.export.prometheus_text` renders the whole
registry as text exposition format.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared series bookkeeping for all instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def series(self) -> Dict[LabelKey, object]:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count, per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    def series(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)


class Gauge(_Instrument):
    """Last-set value, per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = value

    def value(self, **labels) -> Optional[float]:
        return self._values.get(_label_key(labels))

    def series(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)


#: Default histogram buckets — seconds-scale, matching the span
#: durations the tracer records (compile ~ms, scans ~ms-s).
DEFAULT_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
                   5.0, 10.0)


class Histogram(_Instrument):
    """Cumulative-bucket histogram with sum/count, per label set."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        self._series: Dict[LabelKey, Dict[str, object]] = {}

    def _cell(self, key: LabelKey) -> Dict[str, object]:
        cell = self._series.get(key)
        if cell is None:
            cell = {"buckets": [0] * len(self.buckets),
                    "sum": 0.0, "count": 0}
            self._series[key] = cell
        return cell

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            cell = self._cell(key)
            cell["sum"] += value
            cell["count"] += 1
            for index, edge in enumerate(self.buckets):
                if value <= edge:
                    cell["buckets"][index] += 1

    def series(self) -> Dict[LabelKey, Dict[str, object]]:
        with self._lock:
            return {key: {"buckets": list(cell["buckets"]),
                          "sum": cell["sum"], "count": cell["count"]}
                    for key, cell in self._series.items()}


class MetricsRegistry:
    """Name → instrument, get-or-create.  Re-registering a name
    returns the existing instrument (kind mismatches raise)."""

    def __init__(self):
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help, **kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, not {cls.kind}")
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help,
                                   buckets=buckets)

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return [self._instruments[name]
                    for name in sorted(self._instruments)]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready view of every series, for reports and tests."""
        out: Dict[str, Dict[str, object]] = {}
        for instrument in self.instruments():
            out[instrument.name] = {
                "kind": instrument.kind,
                "series": {",".join(f"{k}={v}" for k, v in key) or "":
                           value
                           for key, value in instrument.series().items()},
            }
        return out

    def reset(self) -> None:
        """Zero every series in place (test isolation).  Instruments
        stay registered, so module-level cached handles stay live."""
        for instrument in self.instruments():
            with instrument._lock:
                if isinstance(instrument, Histogram):
                    instrument._series.clear()
                else:
                    instrument._values.clear()


#: The process-wide registry; ``registry()`` is the supported accessor.
_GLOBAL_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _GLOBAL_REGISTRY

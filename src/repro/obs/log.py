"""Bounded, non-blocking structured (JSONL) log writer.

The serving gateway emits one access-log record per request; the one
property that record stream must have is that **logging can never
stall the event loop**.  :class:`RingLogWriter` guarantees it
structurally: :meth:`log` appends a plain dict to a bounded in-memory
ring under a briefly-held lock — no serialization, no I/O, no
blocking — and a daemon thread drains the ring to disk as JSON lines.
When the producer outruns the disk, the ring drops its *oldest*
records (the newest context is the one an operator debugging a live
incident needs) and counts every drop, so backpressure is visible
instead of latent.

The same contract makes the writer safe anywhere: a slow or full
filesystem costs dropped log lines, never a slow gateway.

Exported metrics (:mod:`repro.obs.metrics`):

* ``repro_obs_log_records_total`` — records accepted into the ring;
* ``repro_obs_log_dropped_total{reason}`` — records lost to overflow
  (``ring-full``), a closed writer (``closed``), or a write error
  (``io-error``);
* ``repro_obs_log_flushes_total`` — batches written to disk.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Dict, List, Optional

from .metrics import registry

_REG = registry()
_RECORDS = _REG.counter(
    "repro_obs_log_records_total",
    "Structured log records accepted into a ring writer")
_DROPPED = _REG.counter(
    "repro_obs_log_dropped_total",
    "Structured log records lost, by reason "
    "(ring-full, closed, io-error)")
_FLUSHES = _REG.counter(
    "repro_obs_log_flushes_total",
    "Ring-writer batches flushed to disk")


def _default(obj):
    """JSON fallback: never let one odd attribute kill a log line."""
    return repr(obj)


class RingLogWriter:
    """Drop-oldest ring buffer drained to a JSONL file by one daemon
    thread.  ``log()`` is wait-free in practice: one short lock, one
    deque append, one event set."""

    def __init__(self, path: str, capacity: int = 4096,
                 flush_interval_s: float = 0.05,
                 auto_flush: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.path = path
        self.capacity = capacity
        self.flush_interval_s = flush_interval_s
        self._ring: "deque[Dict[str, object]]" = deque()
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._io_lock = threading.Lock()
        self._closed = False
        #: lifetime accounting, mirrored into the registry counters
        self.accepted = 0
        self.dropped = 0
        self.written = 0
        self._thread: Optional[threading.Thread] = None
        if auto_flush:
            self._thread = threading.Thread(
                target=self._drain_loop, name="repro-log-writer",
                daemon=True)
            self._thread.start()

    # -- producer side -------------------------------------------------------

    def log(self, record: Dict[str, object]) -> bool:
        """Accept one record (a JSON-ready dict).  Never blocks on
        I/O.  Returns ``False`` when the record displaced an older one
        or the writer is closed."""
        with self._lock:
            if self._closed:
                self.dropped += 1
                _DROPPED.inc(reason="closed")
                return False
            displaced = len(self._ring) >= self.capacity
            if displaced:
                self._ring.popleft()
                self.dropped += 1
                _DROPPED.inc(reason="ring-full")
            self._ring.append(record)
            self.accepted += 1
        _RECORDS.inc()
        self._wake.set()
        return not displaced

    # -- consumer side -------------------------------------------------------

    def _take(self) -> List[Dict[str, object]]:
        with self._lock:
            if not self._ring:
                return []
            batch = list(self._ring)
            self._ring.clear()
        return batch

    def _write(self, batch: List[Dict[str, object]]) -> None:
        lines = "".join(
            json.dumps(record, sort_keys=True, default=_default) + "\n"
            for record in batch)
        try:
            with self._io_lock:
                with open(self.path, "a") as handle:
                    handle.write(lines)
        except OSError:
            # A full or vanished filesystem costs log lines, never a
            # stalled producer.
            self.dropped += len(batch)
            _DROPPED.inc(len(batch), reason="io-error")
            return
        self.written += len(batch)
        _FLUSHES.inc()

    def _drain_loop(self) -> None:
        while True:
            self._wake.wait(self.flush_interval_s)
            self._wake.clear()
            batch = self._take()
            if batch:
                self._write(batch)
            with self._lock:
                if self._closed and not self._ring:
                    return

    def flush(self) -> None:
        """Synchronously drain whatever is buffered right now."""
        batch = self._take()
        if batch:
            self._write(batch)

    def close(self, timeout_s: float = 2.0) -> None:
        """Stop accepting records, drain the ring, join the thread."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None
        self.flush()

    # -- introspection -------------------------------------------------------

    def pending(self) -> int:
        with self._lock:
            return len(self._ring)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"accepted": self.accepted,
                    "written": self.written,
                    "dropped": self.dropped,
                    "pending": len(self._ring),
                    "capacity": self.capacity}

"""Trace and metrics exporters.

Three formats, matching where each artefact is consumed:

* **JSON lines** — one span dict per line, the raw archival form
  (``grep``-able, streams well, trivially re-parsed).
* **Chrome ``trace_event``** — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``: every span
  becomes one complete duration event (``"ph": "X"``) with
  microsecond timestamps, keyed by the pid/tid it ran on, so worker
  processes show up as their own tracks.
* **Prometheus text exposition** — the whole metrics registry as
  ``# HELP`` / ``# TYPE`` / sample lines, scrape-ready.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO

from .metrics import Histogram, MetricsRegistry


# -- JSON lines --------------------------------------------------------------


def jsonl_lines(spans: List[Dict[str, object]]) -> str:
    return "".join(json.dumps(span, sort_keys=True) + "\n"
                   for span in spans)


def write_jsonl(spans: List[Dict[str, object]], path: str) -> None:
    with open(path, "w") as handle:
        handle.write(jsonl_lines(spans))


# -- Chrome trace_event ------------------------------------------------------


def chrome_trace(spans: List[Dict[str, object]],
                 process_names: Optional[Dict[int, str]] = None
                 ) -> Dict[str, object]:
    """Spans as a Chrome ``trace_event`` JSON object (the
    ``traceEvents`` array form Perfetto and chrome://tracing load)."""
    events: List[Dict[str, object]] = []
    pids = sorted({span["pid"] for span in spans})
    names = process_names or {}
    for pid in pids:
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": names.get(
                pid, f"repro pid {pid}" if len(pids) > 1 else "repro")},
        })
    for span in spans:
        args = dict(span["attrs"])
        args["span_id"] = span["id"]
        if span["parent"]:
            args["parent_id"] = span["parent"]
        args["cpu_ms"] = round(span["cpu"] * 1e3, 3)
        events.append({
            "name": span["name"],
            "cat": span["cat"],
            "ph": "X",
            "ts": span["ts"] * 1e6,
            "dur": span["dur"] * 1e6,
            "pid": span["pid"],
            "tid": span["tid"],
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(spans: List[Dict[str, object]], path: str,
                 process_names: Optional[Dict[int, str]] = None) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(spans, process_names), handle)
        handle.write("\n")


# -- Prometheus text exposition ----------------------------------------------


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def escape_label_value(value: str) -> str:
    """Label-value escaping per the 0.0.4 exposition format: backslash,
    double quote, and newline must be escaped inside the quotes."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """HELP-text escaping: backslash and newline only."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _sample(name: str, labels, value) -> str:
    if labels:
        rendered = ",".join(f'{k}="{escape_label_value(v)}"'
                            for k, v in labels)
        return f"{name}{{{rendered}}} {_format_value(value)}\n"
    return f"{name} {_format_value(value)}\n"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    out: List[str] = []
    for instrument in registry.instruments():
        if instrument.help:
            out.append(f"# HELP {instrument.name} "
                       f"{_escape_help(instrument.help)}\n")
        out.append(f"# TYPE {instrument.name} {instrument.kind}\n")
        if isinstance(instrument, Histogram):
            for labels, cell in sorted(instrument.series().items()):
                # Stored bucket counts are already cumulative.
                for edge, count in zip(instrument.buckets,
                                       cell["buckets"]):
                    out.append(_sample(
                        f"{instrument.name}_bucket",
                        labels + (("le", repr(edge)),), count))
                out.append(_sample(f"{instrument.name}_bucket",
                                   labels + (("le", "+Inf"),),
                                   cell["count"]))
                out.append(_sample(f"{instrument.name}_sum", labels,
                                   cell["sum"]))
                out.append(_sample(f"{instrument.name}_count", labels,
                                   cell["count"]))
        else:
            for labels, value in sorted(instrument.series().items()):
                out.append(_sample(instrument.name, labels, value))
    return "".join(out)


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(prometheus_text(registry))

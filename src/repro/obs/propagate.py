"""Cross-process span marshalling for the worker pool.

:class:`~repro.parallel.pool.WorkerPool` wraps each shard task in
:func:`run_traced` whenever a tracer is recording.  Two cases:

* **Same process** (thread or serial executor, or an inline fallback):
  the live tracer is shared, so the shard span records directly into
  it — only the parent pointer needs carrying, because the worker
  thread's span stack starts empty.
* **Different process** (process executor): the worker installs a
  fresh collecting tracer seeded with the parent's
  :class:`~repro.obs.trace.TraceContext`, runs the shard, and ships
  the finished span dicts back inside a :class:`TracedShard`; the pool
  unwraps the result and adopts the spans into the parent trace.

Span ids embed the minting pid, so stitched traces never contain
duplicates (covered by ``tests/obs`` and ``tests/parallel``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .trace import TraceContext, Tracer


@dataclass
class TracedShard:
    """A shard result plus the spans its worker process recorded."""

    result: Any
    spans: List[Dict[str, Any]]


def run_traced(fn: Callable, ctx: Optional[TraceContext],
               shard_index: int, payload) -> Any:
    """Run one shard task under a ``shard`` span.

    Module-level and argument-closed, so process pools pickle it by
    reference with ``fn`` and ``ctx`` as plain arguments.
    """
    from . import current_tracer, install_tracer, uninstall_tracer

    same_process = ctx is not None and ctx.pid == os.getpid()
    live = current_tracer()
    if same_process and live is not None:
        with live.span("shard", category="scan", parent=ctx.span_id,
                       shard=shard_index):
            return fn(payload)
    # Process worker: collect locally, marshal back.  Any tracer the
    # worker inherited (fork) or configured from the environment is
    # parked for the duration so nested instrumentation records here.
    worker = Tracer(trace_id=ctx.trace_id if ctx else None,
                    root_parent=ctx.span_id if ctx else None)
    previous = install_tracer(worker)
    try:
        with worker.span("shard", category="scan", shard=shard_index):
            result = fn(payload)
    finally:
        uninstall_tracer(worker, previous)
    return TracedShard(result, worker.finished())


def unwrap(raw: Any, tracer: Optional[Tracer]) -> Any:
    """Adopt a :class:`TracedShard`'s spans and return its payload;
    pass every other result through unchanged."""
    if isinstance(raw, TracedShard):
        if tracer is not None:
            tracer.adopt(raw.spans)
        return raw.result
    return raw

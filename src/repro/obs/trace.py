"""Span-based tracer with cross-process context propagation.

One :class:`Tracer` records a tree of :class:`Span`\\ s — nestable,
wall- and CPU-timed stages — for a whole pipeline run: compile →
optimize → codegen → dispatch → scan.  Nesting is tracked per thread
(a thread-local span stack), so thread-pool shards parent correctly,
and a picklable :class:`TraceContext` carries ``(trace_id, span_id)``
across process boundaries so pool workers can stitch their spans under
the parent scan span (:mod:`repro.obs.propagate`).

Design constraints, in priority order:

1. **Near-zero cost when disabled.**  Instrumentation sites call
   :func:`repro.obs.span`, which returns the one shared
   :data:`NULL_SPAN` instance when no tracer is installed — a global
   read, a ``None`` check, and two empty method calls for the ``with``
   protocol.  ``benchmarks/bench_obs_overhead.py`` measures the cost
   and CI fails if it exceeds 2% of the quick benchmark's wall time.
2. **Unique span ids across processes.**  Ids are
   ``"<pid:x>-<seq:x>"``; the sequence is a per-tracer atomic counter
   and the pid is read live, so forked workers inheriting a tracer's
   counter state still mint distinct ids.
3. **Mergeable records.**  Finished spans are stored as plain dicts
   (``to_dict`` schema below), the same form workers marshal back, so
   adoption, export, and subtree queries all operate on one shape.

Span dict schema::

    {"name", "cat", "id", "parent", "trace", "ts", "dur", "cpu",
     "pid", "tid", "attrs"}

``ts`` is epoch seconds (comparable across processes), ``dur``/``cpu``
are seconds measured with ``perf_counter``/``process_time``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional


class NullSpan:
    """The disabled-tracer span: one shared instance, every operation
    a no-op.  ``is_recording`` lets call sites skip attribute work."""

    __slots__ = ()

    is_recording = False
    span_id = None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NullSpan":
        return self


#: The single shared no-op span every disabled call site receives.
NULL_SPAN = NullSpan()


@dataclass(frozen=True)
class TraceContext:
    """Picklable parent pointer handed to pool workers.

    ``pid`` disambiguates thread-pool shards (same process: record
    straight into the live tracer) from process-pool shards (fresh
    collecting tracer, spans marshalled back with the result).
    """

    trace_id: str
    span_id: str
    pid: int


class Span:
    """One timed stage.  Use as a context manager; attributes added
    with :meth:`set` land in the exported ``attrs`` mapping."""

    __slots__ = ("name", "category", "span_id", "parent_id", "trace_id",
                 "attrs", "pid", "tid", "_tracer", "_ts", "_t0", "_c0")

    is_recording = True

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 span_id: str, parent_id: Optional[str],
                 attrs: Dict[str, Any]):
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = tracer.trace_id
        self.attrs = attrs
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self._tracer = tracer
        self._ts = 0.0
        self._t0 = 0.0
        self._c0 = 0.0

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._ts = time.time()
        self._c0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        cpu = time.process_time() - self._c0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self, dur, cpu)
        return False


class Tracer:
    """Records finished spans (as dicts, completion order) for one
    trace.  Thread-safe; one tracer serves every thread of a process.

    ``root_parent`` seeds the parent of top-level spans — worker-side
    tracers set it to the dispatching shard's :class:`TraceContext`
    span id so marshalled spans stitch under the parent scan span.
    """

    is_recording = True

    def __init__(self, trace_id: Optional[str] = None,
                 root_parent: Optional[str] = None):
        if trace_id is None:
            trace_id = f"t{os.getpid():x}-{int(time.time() * 1e6):x}"
        self.trace_id = trace_id
        self.root_parent = root_parent
        self._spans: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._seq = itertools.count()

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, category: str = "repro",
             parent: Optional[str] = None, **attrs) -> Span:
        """Open a span.  ``parent`` overrides the thread's current
        span (used when adopting a marshalled :class:`TraceContext`)."""
        if parent is None:
            stack = self._stack()
            parent = stack[-1].span_id if stack else self.root_parent
        span_id = f"{os.getpid():x}-{next(self._seq):x}"
        return Span(self, name, category, span_id, parent, attrs)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span, dur: float, cpu: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        record = {
            "name": span.name,
            "cat": span.category,
            "id": span.span_id,
            "parent": span.parent_id,
            "trace": span.trace_id,
            "ts": span._ts,
            "dur": dur,
            "cpu": cpu,
            "pid": span.pid,
            "tid": span.tid,
            "attrs": span.attrs,
        }
        with self._lock:
            self._spans.append(record)

    # -- context propagation -----------------------------------------------

    def current_context(self) -> Optional[TraceContext]:
        """The calling thread's innermost open span as a picklable
        parent pointer, or ``None`` outside any span."""
        stack = self._stack()
        if not stack:
            return None
        return TraceContext(self.trace_id, stack[-1].span_id,
                            os.getpid())

    def adopt(self, spans: List[Dict[str, Any]]) -> None:
        """Stitch spans marshalled back from a worker process into
        this trace, preserving their order."""
        with self._lock:
            self._spans.extend(spans)

    # -- queries -----------------------------------------------------------

    def finished(self) -> List[Dict[str, Any]]:
        """All finished spans (completion order), adopted included."""
        with self._lock:
            return list(self._spans)

    def subtree(self, span_id: str) -> List[Dict[str, Any]]:
        """The span with ``span_id`` plus every (transitive) child,
        in recorded order — the ``ScanReport.trace`` view."""
        spans = self.finished()
        keep = {span_id}
        # Children may precede parents in completion order, so iterate
        # until the reachable set stops growing.
        grew = True
        while grew:
            grew = False
            for record in spans:
                if record["id"] not in keep and record["parent"] in keep:
                    keep.add(record["id"])
                    grew = True
        return [record for record in spans if record["id"] in keep]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

"""repro — a from-scratch reproduction of BitGen (MICRO 2025):
interleaved bitstream execution for multi-pattern regex matching on
(simulated) GPUs.

Quickstart::

    import repro

    matcher = repro.compile(["a(bc)*d", "colou?r"])
    report = matcher.scan(b"abcbcd has colour and color")
    print(report.match_count())

``repro.compile`` / ``repro.scan`` are the supported public surface
(:mod:`repro.api`); the deeper layers (``BitGenEngine``, the IR and
executor machinery) remain importable but are internal.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-reproduction results.
"""

__version__ = "1.0.0"

from .bitstream import BitVector, transpose
from .ir import Interpreter, lower_group, lower_regex, match_positions, \
    run_regexes
from .regex import CharClass, parse

__all__ = [
    "BitGenEngine", "BitVector", "CharClass", "Interpreter", "MatchResult",
    "Matcher", "ScanConfig", "ScanReport", "Scheme", "StreamingMatcher",
    "compile", "load_patterns_file", "lower_group", "lower_regex",
    "match_positions", "obs", "parse", "run_regexes", "scan", "serve",
    "transpose",
]

#: lazily imported top-level names (heavier subsystems stay off the
#: `import repro` path)
_LAZY = {
    "BitGenEngine": ("core.engine", "BitGenEngine"),
    "MatchResult": ("engines.base", "MatchResult"),
    "Matcher": ("api", "Matcher"),
    "ScanConfig": ("parallel.config", "ScanConfig"),
    "ScanReport": ("parallel.report", "ScanReport"),
    "StreamingMatcher": ("core.streaming", "StreamingMatcher"),
    "Scheme": ("core.schemes", "Scheme"),
    "compile": ("api", "compile"),
    "load_patterns_file": ("api", "load_patterns_file"),
    "obs": ("obs", None),         # the whole tracing/metrics subpackage
    "scan": ("api", "scan"),
    "serve": ("serve", None),     # the async matching gateway
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{target[0]}", __name__)
    value = module if target[1] is None else getattr(module, target[1])
    globals()[name] = value       # memoise: next access skips __getattr__
    return value


def __dir__():
    # Reflect the lazy names too; plain dir() only sees populated
    # globals, so tab completion would miss anything not yet imported.
    return sorted(set(globals()) | set(__all__))

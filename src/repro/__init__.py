"""repro — a from-scratch reproduction of BitGen (MICRO 2025):
interleaved bitstream execution for multi-pattern regex matching on
(simulated) GPUs.

Quickstart::

    from repro import BitGenEngine

    engine = BitGenEngine.compile(["a(bc)*d", "colou?r"])
    result = engine.match(b"abcbcd has colour and color")
    print(result.match_count())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-reproduction results.
"""

__version__ = "1.0.0"

from .bitstream import BitVector, transpose
from .ir import Interpreter, lower_group, lower_regex, match_positions, \
    run_regexes
from .regex import CharClass, parse

__all__ = [
    "BitGenEngine", "BitVector", "CharClass", "Interpreter", "MatchResult",
    "Scheme", "StreamingMatcher",
    "lower_group", "lower_regex", "match_positions", "parse", "run_regexes",
    "transpose",
]


def __getattr__(name):
    # Heavier subsystems are imported lazily so `import repro` stays cheap.
    if name == "BitGenEngine":
        from .core.engine import BitGenEngine
        return BitGenEngine
    if name == "MatchResult":
        from .engines.base import MatchResult
        return MatchResult
    if name == "StreamingMatcher":
        from .core.streaming import StreamingMatcher
        return StreamingMatcher
    if name == "Scheme":
        from .core.schemes import Scheme
        return Scheme
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Kernel execution metrics.

Every execution scheme in ``repro.core`` produces a
:class:`KernelMetrics` describing exactly the quantities the paper's
evaluation profiles: DRAM traffic and footprint (Table 4), barrier and
shared-memory behaviour (Table 6), recomputation (Table 5), and the
work/skip counts Zero Block Skipping trades (Figure 14).  The analytic
model in ``repro.perf.model`` converts these into time.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class KernelMetrics:
    """Counters for one kernel (one CTA's program over one input)."""

    # compute
    thread_word_ops: int = 0          # executed word-wide bitwise ops
    skipped_word_ops: int = 0         # ops avoided by Zero Block Skipping
    guard_checks: int = 0             # zero-guard evaluations
    guard_hits: int = 0               # guards that skipped their range

    # memory
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    smem_read_bytes: int = 0
    smem_write_bytes: int = 0
    peak_intermediate_bytes: int = 0  # footprint of materialised streams

    # synchronisation
    barriers: int = 0

    # structure (compile-time-ish)
    fused_loops: int = 0              # distinct block loops in the kernel
    intermediate_streams: int = 0     # materialised intermediate bitstreams
    shift_sync_points: int = 0        # barrier sites of SHIFT groups

    # interleaving / DTM
    blocks_processed: int = 0
    window_reruns: int = 0            # blocks re-run with a wider window
    loop_fallbacks: int = 0           # overlap-limit sequential fallbacks
    recomputed_bits: int = 0          # window bits outside the block
    output_bits: int = 0              # block bits produced
    static_overlap_bits: int = 0      # Δ from static analysis
    dynamic_overlap_total: int = 0    # sum of runtime extra lookback
    dynamic_overlap_max: int = 0
    loop_iterations: int = 0          # while-loop iterations executed

    def merge(self, other: "KernelMetrics") -> None:
        """Accumulate another kernel's counters into this one."""
        for f in fields(self):
            name = f.name
            if name in ("dynamic_overlap_max", "peak_intermediate_bytes",
                        "static_overlap_bits"):
                setattr(self, name, max(getattr(self, name),
                                        getattr(other, name)))
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))

    # -- derived quantities ---------------------------------------------------

    def dram_total_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    def smem_total_bytes(self) -> int:
        return self.smem_read_bytes + self.smem_write_bytes

    def recompute_fraction(self) -> float:
        total = self.recomputed_bits + self.output_bits
        if total == 0:
            return 0.0
        return self.recomputed_bits / total

    def avg_dynamic_overlap(self) -> float:
        if self.blocks_processed == 0:
            return 0.0
        return self.dynamic_overlap_total / self.blocks_processed

    def summary(self) -> str:
        return (f"ops={self.thread_word_ops} skipped={self.skipped_word_ops} "
                f"dram={self.dram_total_bytes()}B smem={self.smem_total_bytes()}B "
                f"barriers={self.barriers} loops={self.fused_loops} "
                f"recompute={self.recompute_fraction():.2%}")

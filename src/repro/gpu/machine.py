"""CTA geometry and block mapping (Section 3.1).

A bitstream of |S| bits is partitioned into blocks of ``T * W`` bits:
``T`` threads per CTA, each handling one ``W``-bit word per iteration.
The paper's configuration is T = 512, W = 32, i.e. 16,384-bit blocks —
which is also the maximum overlap distance DTM can recompute
(Section 8.2's limit discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class CTAGeometry:
    """Thread/word shape of one CTA."""

    threads: int = 512
    word_bits: int = 32

    def __post_init__(self):
        if self.threads <= 0 or self.word_bits <= 0:
            raise ValueError("threads and word_bits must be positive")

    @property
    def block_bits(self) -> int:
        return self.threads * self.word_bits

    @property
    def block_bytes(self) -> int:
        return self.block_bits // 8

    def block_count(self, stream_bits: int) -> int:
        """N = ceil(|S| / (T*W)); zero-length streams take one block."""
        if stream_bits <= 0:
            return 1
        return -(-stream_bits // self.block_bits)

    def block_range(self, index: int, stream_bits: int) -> Tuple[int, int]:
        """[start, end) bit range of block ``index``."""
        start = index * self.block_bits
        end = min(start + self.block_bits, stream_bits)
        return start, end

    def iter_blocks(self, stream_bits: int) -> Iterator[Tuple[int, int, int]]:
        """Yields (index, start, end) over all blocks of a stream."""
        for index in range(self.block_count(stream_bits)):
            start, end = self.block_range(index, stream_bits)
            yield index, start, end

    def words(self, bits: int) -> int:
        """Word ops needed for ``bits`` bits of a stream."""
        if bits <= 0:
            return 0
        return -(-bits // self.word_bits)

    def align_down(self, bits: int) -> int:
        """Round a bit offset down to a word boundary (thread-data
        mapping shifts in word granularity: T - ceil(Δ/W)·W)."""
        return (bits // self.word_bits) * self.word_bits

    def align_up(self, bits: int) -> int:
        return -(-bits // self.word_bits) * self.word_bits

    @property
    def max_overlap_bits(self) -> int:
        """One full block: the paper's 16,384-bit DTM overlap limit."""
        return self.block_bits


DEFAULT_GEOMETRY = CTAGeometry()

"""GPU execution substrate: device configs, CTA geometry, memory and
metric accounting."""

from .config import (ALL_GPUS, H100_NVL, L40S, RTX_3090, XEON_8562Y,
                     CPUConfig, GPUConfig, gpu_by_name)
from .machine import DEFAULT_GEOMETRY, CTAGeometry
from .memory import GlobalMemory, SharedMemory, SharedMemoryOverflow
from .metrics import KernelMetrics
from .transpose_kernel import (TransposeResult, model_transpose_time,
                               run_transpose_kernel)

__all__ = [
    "ALL_GPUS", "CPUConfig", "CTAGeometry", "DEFAULT_GEOMETRY",
    "GPUConfig", "GlobalMemory", "H100_NVL", "KernelMetrics", "L40S",
    "RTX_3090", "SharedMemory", "SharedMemoryOverflow",
    "TransposeResult", "XEON_8562Y", "gpu_by_name",
    "model_transpose_time", "run_transpose_kernel",
]

"""Memory models with traffic and footprint accounting.

:class:`GlobalMemory` tracks the DRAM traffic and the footprint of
materialised intermediate bitstreams — the quantities behind Table 4's
scheme comparison.  :class:`SharedMemory` enforces a per-CTA capacity
and tracks the store/load traffic behind Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .metrics import KernelMetrics


class SharedMemoryOverflow(RuntimeError):
    """Raised when a barrier plan requires more shared memory than the
    device provides per CTA."""


@dataclass
class GlobalMemory:
    """Device global memory for one kernel, with accounting."""

    metrics: KernelMetrics
    _allocated: Dict[str, int] = field(default_factory=dict)
    _live_bytes: int = 0

    def read(self, nbytes: int) -> None:
        self.metrics.dram_read_bytes += nbytes

    def write(self, nbytes: int) -> None:
        self.metrics.dram_write_bytes += nbytes

    def allocate_stream(self, name: str, nbytes: int) -> None:
        """Materialise an intermediate bitstream (footprint accounting)."""
        previous = self._allocated.get(name)
        if previous is None:
            self.metrics.intermediate_streams += 1
            self._live_bytes += nbytes
        else:
            self._live_bytes += nbytes - previous
        self._allocated[name] = nbytes
        self.metrics.peak_intermediate_bytes = max(
            self.metrics.peak_intermediate_bytes, self._live_bytes)

    def free_stream(self, name: str) -> None:
        nbytes = self._allocated.pop(name, 0)
        self._live_bytes -= nbytes

    @property
    def live_bytes(self) -> int:
        return self._live_bytes


@dataclass
class SharedMemory:
    """Per-CTA shared memory with capacity enforcement."""

    metrics: KernelMetrics
    capacity_bytes: int = 96 * 1024
    _used_bytes: int = 0
    peak_bytes: int = 0

    def reserve(self, nbytes: int) -> None:
        if self._used_bytes + nbytes > self.capacity_bytes:
            raise SharedMemoryOverflow(
                f"needs {self._used_bytes + nbytes} bytes, capacity "
                f"{self.capacity_bytes}")
        self._used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self._used_bytes)

    def release_all(self) -> None:
        self._used_bytes = 0

    def store(self, nbytes: int) -> None:
        self.metrics.smem_write_bytes += nbytes

    def load(self, nbytes: int) -> None:
        self.metrics.smem_read_bytes += nbytes

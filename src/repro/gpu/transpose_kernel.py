"""The preprocessing transpose kernel (Section 7).

Before the regex kernel runs, "the GPU first launches a preprocessing
kernel to transpose the input data into bitstreams".  This module
simulates that S2P (serial-to-parallel) kernel: functionally it is
``repro.bitstream.transpose``; the accounting models the classic
three-stage butterfly network (log2(8) pair-swap stages over the byte
stream, each touching every word once).

The paper measures 0.026 ms per MB on the RTX 3090 (~37 GB/s) and calls
the overhead negligible; ``benchmarks/bench_transpose.py`` checks both
properties against this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..bitstream.bitvector import BitVector
from ..bitstream.transpose import transpose
from .config import GPUConfig
from .machine import CTAGeometry, DEFAULT_GEOMETRY
from .metrics import KernelMetrics

#: butterfly stages of the S2P network (log2 of the 8 bit planes)
S2P_STAGES = 3
#: effective DRAM efficiency of the bit-gather access pattern: S2P's
#: strided sub-word traffic achieves a small fraction of streaming
#: bandwidth (set once so 1 MB costs the paper's ~0.026 ms on a 3090)
S2P_DRAM_EFFICIENCY = 0.08
#: word operations per stage per word of input (pack, shift, mask, or)
S2P_OPS_PER_WORD = 4


@dataclass
class TransposeResult:
    """Transposed basis streams plus the kernel's accounting."""

    basis: List[BitVector]
    metrics: KernelMetrics


def run_transpose_kernel(data: bytes,
                         geometry: CTAGeometry = DEFAULT_GEOMETRY
                         ) -> TransposeResult:
    """Simulate the S2P preprocessing kernel over ``data``."""
    metrics = KernelMetrics()
    basis = transpose(data)
    n = len(data)
    words = geometry.words(n * 8) or 1
    metrics.dram_read_bytes = n
    metrics.dram_write_bytes = n          # 8 planes of n/8 bytes each
    metrics.thread_word_ops = words * S2P_STAGES * S2P_OPS_PER_WORD
    metrics.blocks_processed = geometry.block_count(n * 8)
    metrics.fused_loops = 1
    return TransposeResult(basis=basis, metrics=metrics)


def model_transpose_time(metrics: KernelMetrics, gpu: GPUConfig) -> float:
    """Seconds for the transpose kernel: a fully parallel streaming
    kernel bounded by DRAM bandwidth or raw integer throughput."""
    compute = metrics.thread_word_ops / gpu.int_ops_per_second()
    memory = metrics.dram_total_bytes() \
        / (gpu.dram_bytes_per_second() * S2P_DRAM_EFFICIENCY)
    return max(compute, memory)

"""Device configurations.

Published specifications for the devices in the paper's evaluation
(Section 7): an RTX 3090 as the primary GPU, H100 NVL and L40S for the
portability study (Figure 15), and the Xeon Platinum 8562Y+ for the CPU
baselines.  Integer throughput numbers are those the paper itself uses
(Section 8.3: 17.8 / 33.5 / 45.8 TIOPS ≈ 1 : 1.9 : 2.6).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUConfig:
    """A GPU device model for the analytic throughput model."""

    name: str
    sm_count: int
    #: peak integer throughput, tera-ops/second (32-bit)
    int_tiops: float
    #: DRAM bandwidth, GB/s
    dram_bandwidth_gbps: float
    #: aggregate shared-memory bandwidth, GB/s
    smem_bandwidth_gbps: float
    #: device memory capacity, GB
    memory_gb: float
    #: boost clock, GHz (latency-bound work scales with clock)
    clock_ghz: float = 1.70
    #: marginal cost of one intra-CTA barrier, nanoseconds (threads
    #: arrive staggered, so part of the latency overlaps compute)
    barrier_latency_ns: float = 25.0
    #: per-CTA shared memory capacity, bytes
    smem_capacity_bytes: int = 96 * 1024
    #: sustained fraction of peak integer throughput for bitwise kernels
    compute_efficiency: float = 0.35

    def int_ops_per_second(self) -> float:
        return self.int_tiops * 1e12 * self.compute_efficiency

    def dram_bytes_per_second(self) -> float:
        return self.dram_bandwidth_gbps * 1e9

    def smem_bytes_per_second(self) -> float:
        return self.smem_bandwidth_gbps * 1e9


@dataclass(frozen=True)
class CPUConfig:
    """A CPU model for the icgrep / Hyperscan baselines."""

    name: str
    cores: int
    #: peak integer throughput, tera-ops/second (SIMD, all cores)
    int_tiops: float
    dram_bandwidth_gbps: float
    #: effective multi-thread scaling ceiling (the paper measures HS-MT
    #: at only 1.76x HS-1T due to cache contention and imbalance)
    mt_scaling_ceiling: float = 1.76
    compute_efficiency: float = 0.35

    def single_core_ops_per_second(self) -> float:
        return (self.int_tiops * 1e12 / self.cores) * self.compute_efficiency


RTX_3090 = GPUConfig(
    name="RTX 3090", sm_count=82, int_tiops=17.8, clock_ghz=1.70,
    dram_bandwidth_gbps=936.0, smem_bandwidth_gbps=17800.0, memory_gb=24.0)

H100_NVL = GPUConfig(
    name="H100 NVL", sm_count=132, int_tiops=33.5, clock_ghz=1.98,
    dram_bandwidth_gbps=3900.0, smem_bandwidth_gbps=33400.0, memory_gb=94.0)

L40S = GPUConfig(
    name="L40S", sm_count=142, int_tiops=45.8, clock_ghz=2.52,
    dram_bandwidth_gbps=864.0, smem_bandwidth_gbps=45800.0, memory_gb=48.0)

XEON_8562Y = CPUConfig(
    name="Xeon Platinum 8562Y+", cores=32, int_tiops=3.9,
    dram_bandwidth_gbps=307.0)

ALL_GPUS = (RTX_3090, H100_NVL, L40S)


def gpu_by_name(name: str) -> GPUConfig:
    for gpu in ALL_GPUS:
        if gpu.name == name:
            return gpu
    raise KeyError(f"unknown GPU {name!r}")

"""The paper's published numbers, used for side-by-side comparison in
benchmark output and EXPERIMENTS.md.

Sources: Table 1 (application statistics), Table 2 (absolute throughput
and speedups on the RTX 3090), Figure 12 / Table 3 (optimization
breakdown), Table 4 (DTM memory profile), Table 5 (recompute overhead),
Table 6 (merge-size profile), Figure 15 (portability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

APPS = ("Brill", "ClamAV", "Dotstar", "Protomata", "Snort", "Yara",
        "Bro217", "ExactMatch", "Ranges1", "TCP")


@dataclass(frozen=True)
class PaperThroughput:
    """One Table 2 row, MB/s."""

    bitgen: float
    hs_1t: float
    hs_mt: float
    ngap: float
    icgrep: float


#: Table 2 (RTX 3090 vs Xeon 8562Y+), throughput in MB/s.
TABLE2: Dict[str, PaperThroughput] = {
    "Brill": PaperThroughput(85.3, 5.1, 33.4, 3.5, 2.8),
    "ClamAV": PaperThroughput(1026.8, 244.2, 284.4, 2.6, 37.6),
    "Dotstar": PaperThroughput(678.9, 249.4, 275.7, 44.9, 28.3),
    "Protomata": PaperThroughput(15.7, 1.7, 21.1, 6.3, 1.8),
    "Snort": PaperThroughput(391.8, 79.6, 101.0, 43.0, 14.3),
    "Yara": PaperThroughput(638.3, 793.7, 847.2, 20.2, 11.3),
    "Bro217": PaperThroughput(2013.2, 991.8, 991.8, 108.2, 95.5),
    "ExactMatch": PaperThroughput(1986.5, 3348.2, 3398.7, 99.5, 49.8),
    "Ranges1": PaperThroughput(1246.1, 352.5, 891.0, 102.2, 48.2),
    "TCP": PaperThroughput(1678.1, 894.8, 900.1, 103.1, 93.3),
}

#: Table 2 geometric-mean speedups of BitGen over each baseline.
TABLE2_GMEAN_SPEEDUPS = {"HS-1T": 3.0, "HS-MT": 1.7, "ngAP": 19.5,
                         "icgrep": 25.3}

#: Table 1: #Regex, Avg. length, SD., and the instruction-mix columns.
TABLE1: Dict[str, Dict[str, float]] = {
    "Brill": {"regexes": 1849, "len_avg": 44.4, "len_sd": 16.9,
              "and": 82604, "or": 21227, "not": 19124, "shift": 48983,
              "while": 15028},
    "ClamAV": {"regexes": 491, "len_avg": 359.7, "len_sd": 310.7,
               "and": 71135, "or": 4469, "not": 4855, "shift": 45129,
               "while": 566},
    "Dotstar": {"regexes": 1279, "len_avg": 52.8, "len_sd": 30.8,
                "and": 68311, "or": 5600, "not": 4949, "shift": 42598,
                "while": 183},
    "Protomata": {"regexes": 2338, "len_avg": 96.5, "len_sd": 36.2,
                  "and": 63809, "or": 44291, "not": 8772, "shift": 31580,
                  "while": 305},
    "Snort": {"regexes": 1873, "len_avg": 50.5, "len_sd": 41.5,
              "and": 84481, "or": 18608, "not": 10725, "shift": 47560,
              "while": 4742},
    "Yara": {"regexes": 3358, "len_avg": 32.5, "len_sd": 24.9,
             "and": 105612, "or": 8332, "not": 5162, "shift": 76756,
             "while": 7},
    "Bro217": {"regexes": 227, "len_avg": 34.1, "len_sd": 27.9,
               "and": 8918, "or": 1025, "not": 2339, "shift": 2598,
               "while": 11},
    "ExactMatch": {"regexes": 298, "len_avg": 52.9, "len_sd": 19.2,
                   "and": 25582, "or": 1242, "not": 2945, "shift": 12197,
                   "while": 2},
    "Ranges1": {"regexes": 298, "len_avg": 54.3, "len_sd": 19.4,
                "and": 27256, "or": 2263, "not": 3710, "shift": 12421,
                "while": 238},
    "TCP": {"regexes": 300, "len_avg": 53.9, "len_sd": 21.4,
            "and": 26830, "or": 1827, "not": 3363, "shift": 12507,
            "while": 149},
}

#: Figure 12: average speedup over the Base scheme after each step.
FIGURE12_AVG_SPEEDUP = {"DTM-": None, "DTM": None, "SR": 17.6, "ZBS": 24.9}
#: Figure 12 callouts.
FIGURE12_NOTES = {
    "Yara_DTM-": 13.2, "Brill_DTM": 9.8, "Protomata_DTM": 17.8,
    "Dotstar_ZBS": 34.4,
}

#: Table 4: per-CTA averages across apps.
TABLE4 = {
    "Base": {"loops": 260.7, "intermediates": 317.8, "dram_read_mb": 177.9,
             "dram_write_mb": 85.2},
    "DTM-": {"loops": 17.6, "intermediates": 54.2, "dram_read_mb": 124.4,
             "dram_write_mb": 53.6},
    "DTM": {"loops": 1.0, "intermediates": 0.0, "dram_read_mb": 0.2,
            "dram_write_mb": 0.2},
}

#: Table 5: overlap distances (bits) and recompute.
TABLE5: Dict[str, Dict[str, float]] = {
    "Brill": {"static": 3.2, "dyn_avg": 160.1, "dyn_max": 514,
              "recompute_pct": 1.00, "iters": 63.1},
    "ClamAV": {"static": 2.9, "dyn_avg": 0.1, "dyn_max": 209,
               "recompute_pct": 0.01, "iters": 62.2},
    "Dotstar": {"static": 2.8, "dyn_avg": 0.7, "dyn_max": 72,
                "recompute_pct": 0.01, "iters": 62.0},
    "Protomata": {"static": 2.1, "dyn_avg": 346.3, "dyn_max": 11678,
                  "recompute_pct": 2.13, "iters": 63.4},
    "Snort": {"static": 3.2, "dyn_avg": 2.5, "dyn_max": 489,
              "recompute_pct": 0.01, "iters": 62.2},
    "Yara": {"static": 5.0, "dyn_avg": 0.1, "dyn_max": 8,
             "recompute_pct": 0.01, "iters": 63.0},
    "Bro217": {"static": 0.2, "dyn_avg": 0.0, "dyn_max": 0,
               "recompute_pct": 0.01, "iters": 62.0},
    "ExactMatch": {"static": 0.8, "dyn_avg": 0.1, "dyn_max": 2,
                   "recompute_pct": 0.01, "iters": 62.0},
    "Ranges1": {"static": 0.8, "dyn_avg": 0.9, "dyn_max": 24,
                "recompute_pct": 0.01, "iters": 62.0},
    "TCP": {"static": 0.8, "dyn_avg": 0.1, "dyn_max": 30,
            "recompute_pct": 0.01, "iters": 62.0},
}

#: Table 6: Shift Rebalancing profile per merge size (per-CTA averages).
TABLE6 = {
    1: {"sync": 305.1, "smem_kb": 2, "stall_pct": 49.6, "smem_mb": 70.2},
    4: {"sync": 87.2, "smem_kb": 8, "stall_pct": 27.4, "smem_mb": 67.9},
    16: {"sync": 41.4, "smem_kb": 32, "stall_pct": 19.0, "smem_mb": 63.9},
    32: {"sync": 35.3, "smem_kb": 64, "stall_pct": 17.5, "smem_mb": 61.4},
}

#: Figure 15: throughput normalised to the RTX 3090.
FIGURE15 = {
    "BitGen": {"RTX 3090": 1.0, "H100 NVL": 1.6, "L40S": 2.0},
    "ngAP": {"RTX 3090": 1.0, "H100 NVL": 1.0, "L40S": 1.4},
}

#: Section 8.3: theoretical integer throughput ratio 3090 : H100 : L40S.
FIGURE15_TIOPS_RATIO = (1.0, 1.9, 2.6)

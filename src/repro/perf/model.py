"""Analytic throughput model.

The simulator counts *work* (word ops, DRAM/shared-memory bytes,
barriers, table lookups); this module converts work into time using
published device characteristics.  One formula per execution style,
applied identically to every scheme and device, so relative results
(speedups, crossovers, portability ratios) come from the counted work,
not from per-benchmark tuning.

All constants are module-level and documented; they were set once from
first principles (device specs, typical achieved efficiencies) and are
never tuned per application.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..engines.hyperscan import HyperscanStats
from ..engines.icgrep import ICgrepStats
from ..engines.ngap import NgAPStats
from ..gpu.config import CPUConfig, GPUConfig
from ..gpu.metrics import KernelMetrics

# -- GPU kernel model (BitGen) ---------------------------------------------------

#: fraction of peak DRAM bandwidth a streaming bitstream kernel achieves
DRAM_EFFICIENCY = 0.7
#: fraction of peak shared-memory bandwidth achieved
SMEM_EFFICIENCY = 0.6

# -- ngAP model --------------------------------------------------------------------

#: transition-table bytes per NFA state (row of successor/class data)
NGAP_STATE_BYTES = 512
#: device cache capacity the automaton competes for (L2 on the 3090)
NGAP_CACHE_BYTES = 40 * 1024 * 1024
#: dependent-lookup latency per symbol step when the automaton misses
#: cache / stays resident
NGAP_MISS_LATENCY = 400e-9
NGAP_HIT_LATENCY = 30e-9
#: work cost per active (worklist) state per symbol once occupancy is
#: high enough to be throughput-bound
NGAP_ACTIVE_COST = 0.3e-9
#: latency hiding granularity: below one warp of independent worklist
#: entries the dependent-lookup latency is fully exposed (Section 8.1:
#: ClamAV's short worklists "fail to saturate GPU resources")
NGAP_WARP = 16.0

# -- CPU models ---------------------------------------------------------------------

#: 512-bit SIMD ops per second for one core (2 ports * ~2.6 GHz),
#: doubled to compensate for this reproduction's denser lowering:
#: Parabix emits roughly half the instructions per pattern character
#: that our Figure-2 lowering does (Table 1 vs our op counts), so the
#: same program-shape costs icgrep proportionally less
ICGREP_SIMD_OPS_PER_S = 1.0e10
#: achieved efficiency of icgrep's generated code (branching, spills)
ICGREP_EFFICIENCY = 0.55
#: Aho-Corasick cost per byte step on one core, seconds (Teddy-style
#: SIMD literal matching is far below 1 ns/byte)
HS_AC_STEP_COST = 0.35e-9
#: AC automaton nodes that stay cache-resident; beyond this, each step
#: pays progressively more (huge signature sets like ClamAV)
HS_AC_CACHE_NODES = 16_000
#: per-doubling cost growth once the AC automaton spills the cache
HS_AC_SPILL_FACTOR = 1.2
#: NFA simulation cost per transition lookup on one core, seconds
HS_NFA_LOOKUP_COST = 0.6e-9
#: multithreaded scaling of the full-NFA-scan portion (regex-level
#: parallelism scales well; Protomata reaches ~12x in the paper)
HS_MT_NFA_SCALING = 14.0
#: multithreaded scaling of the literal/AC-bound portion (memory-bound;
#: the paper's overall HS-MT/HS-1T is only 1.76x)
HS_MT_AC_SCALING = 1.3
#: multithreaded scaling of windowed confirmation (short bursts keyed
#: off the shared AC scan; bounded by the same memory wall)
HS_MT_CONFIRM_SCALING = 2.5


@dataclass(frozen=True)
class Throughput:
    """Modelled execution time for one engine on one input."""

    engine: str
    seconds: float
    input_bytes: int

    @property
    def mbps(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.input_bytes / self.seconds / 1e6


@dataclass(frozen=True)
class Extrapolation:
    """Scaling from a reduced benchmark run to the paper's full setting.

    The simulator runs a fraction of the rule set over a fraction of
    the input; counted work extrapolates linearly along each axis:

    * ``pattern_factor`` multiplies work proportional to the number of
      patterns (bitstream instructions, NFA states, CTAs);
    * ``input_factor`` multiplies work proportional to input length
      (blocks, symbol steps, AC scan).

    Identity (1, 1) reproduces the raw scaled run.
    """

    pattern_factor: float = 1.0
    input_factor: float = 1.0

    def full_input_bytes(self, measured: int) -> int:
        return int(measured * self.input_factor)


IDENTITY = Extrapolation()


def model_bitgen(cta_metrics: Sequence[KernelMetrics], gpu: GPUConfig,
                 input_bytes: int,
                 extrapolation: Extrapolation = IDENTITY) -> Throughput:
    """Time for one BitGen kernel launch: CTAs spread across SMs in
    waves; the launch is bounded by the slowest resource (integer
    compute, DRAM, shared memory), with barrier stalls added to each
    CTA's compute time (they idle the SM, Table 6's stall column).

    Extrapolation: input growth scales every CTA's per-block counters;
    pattern growth replicates CTAs (the paper assigns more groups)."""
    full_bytes = extrapolation.full_input_bytes(input_bytes)
    if not cta_metrics:
        return Throughput("BitGen", 0.0, full_bytes)
    ops_rate_sm = gpu.int_ops_per_second() / gpu.sm_count
    in_f = extrapolation.input_factor
    per_cta = []
    for metrics in cta_metrics:
        compute = metrics.thread_word_ops * in_f / ops_rate_sm
        # Barrier executions scale with the number of blocks per CTA,
        # which the harness geometry pins to the paper's ~62 regardless
        # of input scale — so stalls do not extrapolate with input.
        stall = metrics.barriers * gpu.barrier_latency_ns * 1e-9
        per_cta.append(compute + stall)

    # Pattern extrapolation: replicate the CTA population.
    replicas = max(1, round(extrapolation.pattern_factor))
    per_cta = sorted(per_cta * replicas, reverse=True)
    # LPT wave schedule: concurrent CTAs = SM count.
    compute_time = sum(per_cta[wave]
                       for wave in range(0, len(per_cta), gpu.sm_count))

    factor = extrapolation.pattern_factor * in_f
    # Every CTA loads the same transposed basis streams, so reads are
    # served once from DRAM and broadcast through L2 (this is why the
    # paper's Table 4 reports only ~0.2 MB of DRAM reads per CTA):
    # reads scale with input, not with the CTA count.  Writes are
    # distinct per CTA (per-regex outputs).
    read_bytes = max(m.dram_read_bytes for m in cta_metrics) * in_f
    write_bytes = sum(m.dram_write_bytes for m in cta_metrics) * factor
    total_smem = sum(m.smem_total_bytes() for m in cta_metrics) * factor
    dram_time = (read_bytes + write_bytes) \
        / (gpu.dram_bytes_per_second() * DRAM_EFFICIENCY)
    smem_time = total_smem / (gpu.smem_bytes_per_second() * SMEM_EFFICIENCY)
    return Throughput("BitGen", max(compute_time, dram_time, smem_time),
                      full_bytes)


def model_ngap(stats: NgAPStats, gpu: GPUConfig,
               extrapolation: Extrapolation = IDENTITY) -> Throughput:
    """ngAP: irregular transition-table traffic at random-access
    efficiency, de-rated by worklist under-occupancy; start states are
    serviced from cheap dense bitmaps."""
    p_f = extrapolation.pattern_factor
    in_f = extrapolation.input_factor
    symbols = max(stats.nfa.symbols, 1)
    # Worklist occupancy: active (non-start) states per symbol step.
    occupancy = max(stats.nfa.transition_lookups / symbols * p_f, 1.0)

    # Dependent-lookup latency per symbol, hidden only once the
    # worklist offers warps of independent entries, and inflated when
    # the transition tables outgrow the cache.
    table_bytes = stats.state_count * p_f * NGAP_STATE_BYTES
    miss_ramp = min(1.0, max(0.0, (table_bytes - NGAP_CACHE_BYTES)
                             / NGAP_CACHE_BYTES))
    step_latency = NGAP_HIT_LATENCY \
        + (NGAP_MISS_LATENCY - NGAP_HIT_LATENCY) * miss_ramp
    hiding = max(1.0, occupancy / NGAP_WARP)
    # Both terms are cache/latency-bound (random table walks), so they
    # scale with clock rather than ALU throughput — which is why the
    # paper's Figure 15 shows ngAP gaining nothing on the H100 despite
    # its bandwidth (reference constants are for the RTX 3090).
    clock_scale = 1.70 / gpu.clock_ghz
    latency_term = step_latency / hiding * clock_scale
    # Throughput-bound term: per-active work once occupancy is high.
    work_term = occupancy * NGAP_ACTIVE_COST * (1.0 + miss_ramp) \
        * clock_scale
    seconds = symbols * in_f * max(latency_term, work_term)
    return Throughput("ngAP", seconds,
                      extrapolation.full_input_bytes(stats.input_bytes))


def model_icgrep(stats: ICgrepStats, cpu: CPUConfig,
                 extrapolation: Extrapolation = IDENTITY) -> Throughput:
    ops = stats.simd_word_ops * extrapolation.pattern_factor \
        * extrapolation.input_factor
    seconds = ops / (ICGREP_SIMD_OPS_PER_S * ICGREP_EFFICIENCY)
    return Throughput("icgrep", seconds,
                      extrapolation.full_input_bytes(stats.input_bytes))


def model_hyperscan(stats: HyperscanStats, cpu: CPUConfig,
                    threads: int = 1,
                    extrapolation: Extrapolation = IDENTITY) -> Throughput:
    """HS-1T (threads=1) and HS-MT (threads=cores): the literal path is
    memory-bound and barely scales; the NFA path parallelises across
    patterns (the paper sweeps 1..32 threads and keeps the best).

    Extrapolation: the AC scan is input-proportional but almost
    pattern-count-independent (Hyperscan's core advantage); the NFA
    confirmation work grows with both."""
    p_f = extrapolation.pattern_factor
    in_f = extrapolation.input_factor
    ac_ops = (stats.ac.goto_lookups + stats.ac.fail_follows) * in_f
    full_nodes = stats.ac_nodes * p_f
    spill = max(0.0, math.log2(max(full_nodes, 1) / HS_AC_CACHE_NODES))
    step_cost = HS_AC_STEP_COST * (1.0 + HS_AC_SPILL_FACTOR * spill)
    ac_time = ac_ops * step_cost

    full_lookups = 0
    if stats.nfa is not None:
        full_lookups = stats.nfa.transition_lookups + stats.nfa.start_checks
    confirm_lookups = stats.confirm.transition_lookups \
        + stats.confirm.start_checks
    full_time = full_lookups * p_f * in_f * HS_NFA_LOOKUP_COST
    confirm_time = confirm_lookups * p_f * in_f * HS_NFA_LOOKUP_COST
    if threads > 1:
        ac_time /= min(threads, HS_MT_AC_SCALING)
        full_time /= min(threads, HS_MT_NFA_SCALING)
        confirm_time /= min(threads, HS_MT_CONFIRM_SCALING)
    name = "HS-1T" if threads <= 1 else "HS-MT"
    return Throughput(name, ac_time + full_time + confirm_time,
                      extrapolation.full_input_bytes(stats.input_bytes))


def geometric_mean(values: Sequence[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))

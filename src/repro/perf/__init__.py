"""Performance modelling and the experiment harness."""

from .harness import (BENCH_GEOMETRY, DEFAULT_INPUT_BYTES, DEFAULT_SCALE,
                      ENGINE_NAMES, EngineRun, Harness)
from .model import (Throughput, geometric_mean, model_bitgen,
                    model_hyperscan, model_icgrep, model_ngap)
from .report import format_bars, format_table, ratio, to_csv

__all__ = [
    "BENCH_GEOMETRY", "DEFAULT_INPUT_BYTES", "DEFAULT_SCALE",
    "ENGINE_NAMES", "EngineRun", "Harness", "Throughput", "format_bars",
    "format_table", "geometric_mean", "model_bitgen", "model_hyperscan",
    "model_icgrep", "model_ngap", "ratio", "to_csv",
]

"""Experiment harness.

Runs (application x engine x configuration) cells and returns rows that
the benchmark scripts print as the paper's tables and figures.  The
harness owns the *scaling policy*: the paper processes 10^6 bytes per
application against full rule sets; a pure-Python simulator scales both
down together (default: 2% of the rules, 64 KiB of input) and shrinks
the CTA block size so the block count per CTA stays at the paper's
~62 iterations (Table 5), keeping every per-block effect in play.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import BitGenEngine, BitGenResult
from ..core.schemes import Scheme
from ..engines.hyperscan import HyperscanEngine
from ..engines.icgrep import ICgrepEngine
from ..engines.ngap import NgAPEngine
from ..gpu.config import RTX_3090, XEON_8562Y, CPUConfig, GPUConfig
from ..gpu.machine import CTAGeometry
from ..gpu.metrics import KernelMetrics
from ..parallel.config import ScanConfig, reject_legacy_kwargs
from ..workloads.apps import (ALL_APPS, FULL_INPUT_BYTES, Workload,
                              app_by_name)
from . import model
from .model import Extrapolation, Throughput

#: benchmark geometry: 1024-bit blocks so a 64 KiB input spans ~64
#: blocks, mirroring the paper's ~62 iterations over 16,384-bit blocks
BENCH_GEOMETRY = CTAGeometry(threads=32, word_bits=32)

DEFAULT_SCALE = 0.02
DEFAULT_INPUT_BYTES = 65536

ENGINE_NAMES = ("BitGen", "HS-1T", "HS-MT", "ngAP", "icgrep")


@dataclass
class EngineRun:
    """One (app, engine) measurement."""

    app: str
    engine: str
    throughput: Throughput
    match_count: int
    metrics: Optional[KernelMetrics] = None
    cta_metrics: Optional[List[KernelMetrics]] = None
    extra: Dict[str, float] = field(default_factory=dict)
    #: full optimisation-pass report for BitGen rows — opt level,
    #: instruction counts before/after, and per-pass deltas; ``None``
    #: for baseline engines, which have no IR pipeline
    optimization_stats: Optional[Dict[str, object]] = None

    @property
    def mbps(self) -> float:
        return self.throughput.mbps


class Harness:
    """Caches workloads and compiled engines across experiment cells.

    Accepts one :class:`~repro.parallel.ScanConfig` for the scan-side
    knobs (devices, geometry, backend, workers); the individual
    ``gpu``/``cpu``/``geometry``/``backend`` keyword arguments were
    removed after their deprecation window.  The harness-only scaling
    policy (``scale``, ``input_bytes``, ``seed``) stays as plain
    keywords — it describes the experiment, not the scan.
    """

    def __init__(self, scale: float = DEFAULT_SCALE,
                 input_bytes: int = DEFAULT_INPUT_BYTES,
                 seed: int = 0,
                 config: Optional[ScanConfig] = None, **legacy):
        reject_legacy_kwargs("Harness", legacy)
        if config is None:
            config = ScanConfig()
        # Pin the harness's own defaults for fields the caller left
        # unset, so one config object moves between entry points.
        if config.gpu is None:
            config = config.replace(gpu=RTX_3090)
        if config.cpu is None:
            config = config.replace(cpu=XEON_8562Y)
        if config.geometry is None:
            config = config.replace(geometry=BENCH_GEOMETRY)
        self.config = config
        self.scale = scale
        self.input_bytes = input_bytes
        self.seed = seed
        #: faults of the most recent parallel ``run_all`` (empty when
        #: the grid ran serially or cleanly)
        self.last_scan_faults: list = []
        self._workloads: Dict[str, Workload] = {}
        self._bitgen_cache: Dict[Tuple, BitGenEngine] = {}

    # -- config-backed views (the pre-ScanConfig attribute surface) --------

    @property
    def gpu(self) -> GPUConfig:
        return self.config.gpu

    @property
    def cpu(self) -> CPUConfig:
        return self.config.cpu

    @property
    def geometry(self) -> CTAGeometry:
        return self.config.geometry

    @property
    def backend(self) -> str:
        return self.config.backend

    # -- workloads ------------------------------------------------------------

    def workload(self, app_name: str) -> Workload:
        cached = self._workloads.get(app_name)
        if cached is None:
            spec = app_by_name(app_name)
            cached = spec.build(scale=self.scale, seed=self.seed,
                                input_bytes=int(self.input_bytes
                                                / self.scale))
            self._workloads[app_name] = cached
        return cached

    def cta_count(self, workload: Workload) -> int:
        """Mirror the paper's fixed 256-CTA launches, scaled down with
        the rule set so regexes-per-CTA matches the full setting."""
        scaled = round(256 * len(workload.patterns)
                       / workload.spec.regex_count)
        return max(2, min(scaled, len(workload.patterns)))

    def extrapolation(self, workload: Workload) -> Extrapolation:
        """Scale counted work back to the paper's full setting (full
        rule set over 10^6 bytes)."""
        return Extrapolation(
            pattern_factor=workload.spec.regex_count
            / max(1, len(workload.patterns)),
            input_factor=FULL_INPUT_BYTES / max(1, len(workload.data)))

    # -- engines -----------------------------------------------------------------

    def bitgen_engine(self, workload: Workload,
                      scheme: Scheme = Scheme.ZBS,
                      merge_size: int = 8,
                      interval_size: int = 8,
                      backend: Optional[str] = None) -> BitGenEngine:
        backend = backend if backend is not None else self.backend
        key = (workload.name, scheme, merge_size, interval_size, backend)
        engine = self._bitgen_cache.get(key)
        if engine is None:
            engine = BitGenEngine._compile_config(
                workload.nodes,
                self.config.replace(
                    scheme=scheme, merge_size=merge_size,
                    interval_size=interval_size, backend=backend,
                    cta_count=self.cta_count(workload),
                    loop_fallback=True))
            self._bitgen_cache[key] = engine
        return engine

    def run_bitgen(self, app_name: str, scheme: Scheme = Scheme.ZBS,
                   merge_size: int = 8, interval_size: int = 8,
                   gpu: Optional[GPUConfig] = None,
                   backend: Optional[str] = None) -> EngineRun:
        workload = self.workload(app_name)
        engine = self.bitgen_engine(workload, scheme, merge_size,
                                    interval_size, backend=backend)
        result: BitGenResult = engine.match(workload.data)
        throughput = model.model_bitgen(result.cta_metrics,
                                        gpu or self.gpu,
                                        len(workload.data),
                                        self.extrapolation(workload))
        opt = engine.optimization_stats()
        extra = {"opt_level": opt["opt_level"],
                 "ops_removed": opt["ops_removed"],
                 "opt_passes": opt["passes"]}
        if engine.last_prefilter is not None:
            extra["prefilter"] = engine.last_prefilter.to_dict()
        return EngineRun(app=app_name,
                         engine=f"BitGen[{scheme.value}]"
                         if scheme is not Scheme.ZBS else "BitGen",
                         throughput=throughput,
                         match_count=result.match_count(),
                         metrics=result.metrics,
                         cta_metrics=result.cta_metrics,
                         extra=extra,
                         optimization_stats=opt)

    def run_baseline(self, app_name: str, engine_name: str,
                     gpu: Optional[GPUConfig] = None) -> EngineRun:
        workload = self.workload(app_name)
        extrapolation = self.extrapolation(workload)
        if engine_name == "ngAP":
            engine = NgAPEngine.compile(workload.nodes)
            result = engine.match(workload.data)
            throughput = model.model_ngap(engine.last_stats,
                                          gpu or self.gpu, extrapolation)
            extra = {"avg_parallelism":
                     engine.last_stats.avg_parallelism()}
        elif engine_name == "icgrep":
            engine = ICgrepEngine.compile(workload.nodes)
            result = engine.match(workload.data)
            throughput = model.model_icgrep(engine.last_stats, self.cpu,
                                            extrapolation)
            extra = {}
        elif engine_name in ("HS-1T", "HS-MT"):
            engine = HyperscanEngine.compile(workload.patterns)
            result = engine.match(workload.data)
            threads = 1 if engine_name == "HS-1T" else self.cpu.cores
            throughput = model.model_hyperscan(engine.last_stats,
                                               self.cpu, threads=threads,
                                               extrapolation=extrapolation)
            # Expose the prefilter-side work counters alongside the
            # modelled throughput, so the benchmark tables can report
            # how much the literal pass pruned (these drifted out of
            # the rows when the stats object grew).
            stats = engine.last_stats
            extra = {"literal_fraction": stats.literal_fraction(),
                     "prefiltered_out": stats.prefiltered_out,
                     "nfa_scanned": stats.nfa_scanned,
                     "confirm_windows": stats.confirm_windows}
        else:
            raise KeyError(f"unknown engine {engine_name!r}")
        return EngineRun(app=app_name, engine=engine_name,
                         throughput=throughput,
                         match_count=result.match_count(), extra=extra)

    def run(self, app_name: str, engine_name: str) -> EngineRun:
        if engine_name.startswith("BitGen"):
            return self.run_bitgen(app_name)
        return self.run_baseline(app_name, engine_name)

    def run_all(self, apps: Optional[Sequence[str]] = None,
                engines: Sequence[str] = ENGINE_NAMES,
                config: Optional[ScanConfig] = None) -> List[EngineRun]:
        """Run the (app, engine) grid.

        With ``workers > 1`` in ``config`` (or the harness config),
        cells are fanned across a worker pool; results keep the serial
        grid order and a faulted cell falls back to running in this
        process (recorded in :attr:`last_scan_faults`).
        """
        apps = list(apps) if apps is not None \
            else [a.name for a in ALL_APPS]
        effective = config if config is not None else self.config
        if effective.parallel_enabled():
            from ..parallel.scan import parallel_run_all

            return parallel_run_all(self, apps, engines, effective)
        self.last_scan_faults = []
        return [self.run(app, engine) for app in apps
                for engine in engines]

    # -- cross-checking -------------------------------------------------------------

    def verify_engines_agree(self, app_name: str) -> bool:
        """All engines must report identical matches on this workload
        (the Section 7 validation step)."""
        workload = self.workload(app_name)
        reference = self.bitgen_engine(workload).match(workload.data)
        for cls in (NgAPEngine, ICgrepEngine):
            other = cls.compile(workload.nodes).match(workload.data)
            if not reference.same_matches(other):
                return False
        hyperscan = HyperscanEngine.compile(
            workload.patterns).match(workload.data)
        return reference.same_matches(hyperscan)

"""Table and figure rendering.

Benchmarks print their reproduction of each paper table/figure as
aligned text (plus optional CSV), side by side with the paper's
published values where available.
"""

from __future__ import annotations

import io
from typing import Dict, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Monospace-aligned table."""
    cells = [[_show(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _show(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_bars(values: Dict[str, float], width: int = 40,
                title: Optional[str] = None,
                log_floor: float = 0.0) -> str:
    """ASCII bar chart (the 'figure' renderer)."""
    lines = []
    if title:
        lines.append(title)
    if not values:
        return title or ""
    peak = max(values.values()) or 1.0
    label_width = max(len(k) for k in values)
    for key, value in values.items():
        bar = "#" * max(1 if value > log_floor else 0,
                        round(value / peak * width))
        lines.append(f"{key.ljust(label_width)}  {bar} {_show(value)}")
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    out = io.StringIO()
    out.write(",".join(headers) + "\n")
    for row in rows:
        out.write(",".join(_show(cell) for cell in row) + "\n")
    return out.getvalue()


def ratio(measured: float, paper: float) -> str:
    """'measured (paper P)' annotation used throughout the benches."""
    return f"{_show(measured)} (paper {_show(paper)})"

"""Unbounded bit vectors.

A :class:`BitVector` holds one bitstream: bit *i* corresponds to text
position *i*.  Vectors carry an explicit length so that complement and
the paper's shift semantics are well defined.

Shift naming follows the paper (Section 2): ``advance(k)`` is the
paper's ``S >> k`` — it moves match cursors *forward* in the text, so
``result[i] = S[i - k]``.  On the underlying Python integer (bit *i* =
position *i*) this is an integer left shift.  ``advance`` accepts
negative distances, which are the paper's left shifts (``result[i] =
S[i + k]``), used by Shift Rebalancing.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


class BitVector:
    """A fixed-length bitstream backed by a Python integer."""

    __slots__ = ("bits", "length")

    def __init__(self, bits: int, length: int):
        if length < 0:
            raise ValueError("negative length")
        if bits < 0:
            raise ValueError("negative bit pattern")
        if bits >> length:
            raise ValueError("bit pattern wider than declared length")
        self.bits = bits
        self.length = length

    # -- constructors ------------------------------------------------------

    @classmethod
    def zeros(cls, length: int) -> "BitVector":
        return cls(0, length)

    @classmethod
    def ones(cls, length: int) -> "BitVector":
        return cls((1 << length) - 1, length)

    @classmethod
    def from_positions(cls, positions: Iterable[int], length: int) -> "BitVector":
        bits = 0
        for pos in positions:
            if not 0 <= pos < length:
                raise ValueError(f"position {pos} out of range [0, {length})")
            bits |= 1 << pos
        return cls(bits, length)

    @classmethod
    def from_string(cls, text: str) -> "BitVector":
        """Parse "1.01" style strings; '.' and '0' are zero. Position 0 is
        the leftmost character (text order, unlike binary notation)."""
        bits = 0
        for i, char in enumerate(text):
            if char == "1":
                bits |= 1 << i
            elif char not in "0.":
                raise ValueError(f"bad bit character {char!r}")
        return cls(bits, len(text))

    # -- logic --------------------------------------------------------------

    def _check(self, other: "BitVector") -> None:
        if self.length != other.length:
            raise ValueError(
                f"length mismatch: {self.length} vs {other.length}")

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector(self.bits & other.bits, self.length)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector(self.bits | other.bits, self.length)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector(self.bits ^ other.bits, self.length)

    def __invert__(self) -> "BitVector":
        return BitVector(~self.bits & self._mask(), self.length)

    def andn(self, other: "BitVector") -> "BitVector":
        """self & ~other."""
        self._check(other)
        return BitVector(self.bits & ~other.bits & self._mask(), self.length)

    def advance(self, distance: int) -> "BitVector":
        """The paper's shift: positive moves cursors forward in the text
        (paper ``>>``), negative moves them backward (paper ``<<``)."""
        if distance >= 0:
            return BitVector((self.bits << distance) & self._mask(),
                             self.length)
        return BitVector(self.bits >> -distance, self.length)

    def _mask(self) -> int:
        return (1 << self.length) - 1

    # -- queries -------------------------------------------------------------

    def any(self) -> bool:
        return self.bits != 0

    def __bool__(self) -> bool:
        return self.any()

    def popcount(self) -> int:
        return bin(self.bits).count("1")

    def test(self, pos: int) -> bool:
        if not 0 <= pos < self.length:
            raise IndexError(f"position {pos} out of range [0, {self.length})")
        return bool(self.bits >> pos & 1)

    def __getitem__(self, pos: int) -> bool:
        return self.test(pos)

    def positions(self) -> List[int]:
        """Sorted positions of set bits."""
        out = []
        bits = self.bits
        pos = 0
        while bits:
            step = (bits & -bits).bit_length() - 1
            pos += step
            out.append(pos)
            bits >>= step + 1
            pos += 1
        return out

    def iter_positions(self) -> Iterator[int]:
        return iter(self.positions())

    def match_ends(self) -> List[int]:
        """Set cursors as match *end* positions: each set bit minus one,
        with the empty-match cursor at position 0 dropped.  Equivalent
        to ``[p - 1 for p in self.positions() if p > 0]`` without the
        Python-level filter loop: clearing bit 0 and shifting down one
        turns cursor *p* into end position *p - 1* directly."""
        return BitVector(self.bits >> 1, max(0, self.length - 1)) \
            .positions()

    def slice(self, start: int, stop: int) -> "BitVector":
        """Bits in [start, stop) as a new vector of length stop - start."""
        if not 0 <= start <= stop <= self.length:
            raise ValueError(f"bad slice [{start}, {stop}) of {self.length}")
        width = stop - start
        return BitVector((self.bits >> start) & ((1 << width) - 1), width)

    def any_in_range(self, start: int, stop: int) -> bool:
        if not 0 <= start <= stop <= self.length:
            raise ValueError(f"bad range [{start}, {stop}) of {self.length}")
        width = stop - start
        return bool((self.bits >> start) & ((1 << width) - 1))

    def __eq__(self, other) -> bool:
        return (isinstance(other, BitVector)
                and self.length == other.length and self.bits == other.bits)

    def __hash__(self) -> int:
        return hash((self.bits, self.length))

    def __len__(self) -> int:
        return self.length

    def to_string(self) -> str:
        return "".join("1" if self.test(i) else "." for i in range(self.length))

    def __repr__(self) -> str:
        if self.length <= 80:
            return f"BitVector({self.to_string()!r})"
        return f"BitVector(length={self.length}, popcount={self.popcount()})"

"""Bitstream substrate: unbounded bit vectors and byte transposition."""

from .bitvector import BitVector
from .npvector import NPBitVector
from .transpose import BASIS_COUNT, inverse_transpose, transpose, \
    transpose_reference

__all__ = ["BASIS_COUNT", "BitVector", "NPBitVector",
           "inverse_transpose", "transpose", "transpose_reference"]

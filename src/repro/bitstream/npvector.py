"""NumPy-backed bit vectors.

An alternative backend to :class:`repro.bitstream.BitVector` storing the
stream as a ``uint64`` word array.  Python's big integers are excellent
for whole-stream boolean logic (their C loops beat anything NumPy can
do for single operations on short streams), but word arrays win for
very long streams and expose the word-level layout a real kernel uses —
``benchmarks/bench_backend.py`` measures the crossover.

The API mirrors ``BitVector`` exactly (same paper shift semantics:
``advance(k>0)`` is the paper's ``>>``), and a property test keeps the
two backends bit-identical.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .bitvector import BitVector

WORD_BITS = 64

#: Bytewise popcount lookup table: one np take + sum replaces the
#: 64x-the-data allocation ``np.unpackbits`` needed.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)],
                      dtype=np.uint8)


def popcount_words(words: np.ndarray) -> int:
    """Population count of a uint64 word array via a bytewise LUT."""
    if not words.size:
        return 0
    return int(_POPCOUNT8[np.ascontiguousarray(words).view(np.uint8)]
               .sum(dtype=np.int64))


class NPBitVector:
    """A fixed-length bitstream backed by little-endian uint64 words."""

    __slots__ = ("words", "length")

    def __init__(self, words: np.ndarray, length: int):
        expected = -(-length // WORD_BITS) if length else 0
        if len(words) != expected:
            raise ValueError(f"need {expected} words for {length} bits, "
                             f"got {len(words)}")
        self.words = words
        self.length = length
        self._mask_tail()

    def _mask_tail(self) -> None:
        if self.length % WORD_BITS and len(self.words):
            keep = self.length % WORD_BITS
            self.words[-1] &= np.uint64((1 << keep) - 1)

    # -- constructors ------------------------------------------------------

    @classmethod
    def zeros(cls, length: int) -> "NPBitVector":
        return cls(np.zeros(-(-length // WORD_BITS) if length else 0,
                            dtype=np.uint64), length)

    @classmethod
    def ones(cls, length: int) -> "NPBitVector":
        words = np.full(-(-length // WORD_BITS) if length else 0,
                        np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        return cls(words, length)

    @classmethod
    def from_bitvector(cls, vector: BitVector) -> "NPBitVector":
        raw = vector.bits.to_bytes(
            max(1, -(-vector.length // 8)) if vector.length else 0,
            "little")
        padded = raw + b"\0" * (-len(raw) % 8)
        words = np.frombuffer(padded, dtype="<u8").copy() \
            if padded else np.zeros(0, dtype=np.uint64)
        expected = -(-vector.length // WORD_BITS) if vector.length else 0
        return cls(words[:expected], vector.length)

    def to_bitvector(self) -> BitVector:
        if not len(self.words):
            return BitVector.zeros(self.length)
        bits = int.from_bytes(self.words.tobytes(), "little")
        return BitVector(bits & ((1 << self.length) - 1), self.length)

    @classmethod
    def from_positions(cls, positions: Iterable[int],
                       length: int) -> "NPBitVector":
        return cls.from_bitvector(
            BitVector.from_positions(positions, length))

    # -- logic --------------------------------------------------------------

    def _check(self, other: "NPBitVector") -> None:
        if self.length != other.length:
            raise ValueError(
                f"length mismatch: {self.length} vs {other.length}")

    def __and__(self, other: "NPBitVector") -> "NPBitVector":
        self._check(other)
        return NPBitVector(self.words & other.words, self.length)

    def __or__(self, other: "NPBitVector") -> "NPBitVector":
        self._check(other)
        return NPBitVector(self.words | other.words, self.length)

    def __xor__(self, other: "NPBitVector") -> "NPBitVector":
        self._check(other)
        return NPBitVector(self.words ^ other.words, self.length)

    def __invert__(self) -> "NPBitVector":
        return NPBitVector(~self.words, self.length)

    def andn(self, other: "NPBitVector") -> "NPBitVector":
        self._check(other)
        return NPBitVector(self.words & ~other.words, self.length)

    def advance(self, distance: int) -> "NPBitVector":
        """Paper semantics: positive moves cursors forward in the text."""
        if distance == 0 or not len(self.words):
            return NPBitVector(self.words.copy(), self.length)
        if distance < 0:
            return self._shift_down(-distance)
        return self._shift_up(distance)

    def _shift_up(self, distance: int) -> "NPBitVector":
        word_shift, bit_shift = divmod(distance, WORD_BITS)
        out = np.zeros_like(self.words)
        if word_shift < len(self.words):
            out[word_shift:] = self.words[:len(self.words) - word_shift]
        if bit_shift:
            carry = np.zeros_like(out)
            carry[1:] = out[:-1] >> np.uint64(WORD_BITS - bit_shift)
            out = (out << np.uint64(bit_shift)) | carry
        return NPBitVector(out, self.length)

    def _shift_down(self, distance: int) -> "NPBitVector":
        word_shift, bit_shift = divmod(distance, WORD_BITS)
        out = np.zeros_like(self.words)
        if word_shift < len(self.words):
            out[:len(self.words) - word_shift] = self.words[word_shift:]
        if bit_shift:
            carry = np.zeros_like(out)
            carry[:-1] = out[1:] << np.uint64(WORD_BITS - bit_shift)
            out = (out >> np.uint64(bit_shift)) | carry
        return NPBitVector(out, self.length)

    # -- queries -------------------------------------------------------------

    def any(self) -> bool:
        return bool(self.words.any())

    def __bool__(self) -> bool:
        return self.any()

    def popcount(self) -> int:
        return popcount_words(self.words)

    def positions(self) -> List[int]:
        """Sorted set-bit positions, computed directly on the words
        (the tail-mask invariant guarantees no bit beyond ``length``)."""
        if not len(self.words):
            return []
        bits = np.unpackbits(np.ascontiguousarray(self.words).view(np.uint8),
                             bitorder="little")
        return np.flatnonzero(bits).tolist()

    def match_ends(self) -> List[int]:
        """Set cursors as match *end* positions: each set-bit index
        minus one, dropping the empty-match cursor at position 0.
        One vectorized subtract on the flatnonzero result replaces the
        ``[p - 1 for p in positions() if p > 0]`` Python hot loop."""
        if not len(self.words):
            return []
        bits = np.unpackbits(np.ascontiguousarray(self.words).view(np.uint8),
                             bitorder="little")
        ends = np.flatnonzero(bits)
        if ends.size and ends[0] == 0:
            ends = ends[1:]
        return (ends - 1).tolist()

    def __eq__(self, other) -> bool:
        return (isinstance(other, NPBitVector)
                and self.length == other.length
                and np.array_equal(self.words, other.words))

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (f"NPBitVector(length={self.length}, "
                f"popcount={self.popcount()})")

"""Byte-stream transposition (the S2P step of Section 2).

The input byte stream is transposed into 8 basis bitstreams b0..b7,
where ``b[k][i]`` is bit *k* of byte *i*.  Following the paper's ASCII
example ('a' = 01100001 matched as ~b0 & b1 & b2 & ~b3 & ... & b7),
b0 is the *most significant* bit of the byte and b7 the least.

Two implementations are provided: a numpy bulk path used everywhere,
and a pure-Python one kept as a cross-check for tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .bitvector import BitVector

BASIS_COUNT = 8
WORD_BITS = 64


def transpose(data: bytes) -> List[BitVector]:
    """Transpose ``data`` into 8 basis bitstreams (b0 = MSB ... b7 = LSB)."""
    if not data:
        return [BitVector.zeros(0) for _ in range(BASIS_COUNT)]
    arr = np.frombuffer(data, dtype=np.uint8)
    basis = []
    for k in range(BASIS_COUNT):
        shift = BASIS_COUNT - 1 - k  # b0 is the MSB
        plane = (arr >> shift) & 1
        basis.append(_bits_to_vector(plane))
    return basis


def _bits_to_vector(plane: np.ndarray) -> BitVector:
    """Pack a 0/1 uint8 array (index = position) into a BitVector."""
    packed = np.packbits(plane, bitorder="little")
    return BitVector(int.from_bytes(packed.tobytes(), "little"), len(plane))


def transpose_words(data: bytes, bits: Optional[int] = None) -> np.ndarray:
    """Transpose ``data`` straight into a ``(8, W)`` little-endian uint64
    word array (the :class:`NPBitVector` layout) without the
    ``int.from_bytes`` bigint detour.

    ``bits`` pads the streams to a total length (e.g. ``n + 1`` for the
    interpreter's cursor slot); padding bits read as zero.  Row *k* is
    basis stream ``bk`` (b0 = MSB of each byte).
    """
    n = len(data)
    if bits is None:
        bits = n
    if bits < n:
        raise ValueError(f"cannot truncate {n} bytes to {bits} bits")
    words = max(1, -(-bits // WORD_BITS)) if bits else 0
    out = np.zeros((BASIS_COUNT, words * (WORD_BITS // 8)), dtype=np.uint8)
    if n:
        arr = np.frombuffer(data, dtype=np.uint8)
        shifts = np.arange(BASIS_COUNT - 1, -1, -1, dtype=np.uint8)
        planes = (arr[None, :] >> shifts[:, None]) & np.uint8(1)
        packed = np.packbits(planes, axis=1, bitorder="little")
        out[:, :packed.shape[1]] = packed
    return out.view("<u8")


def transpose_reference(data: bytes) -> List[BitVector]:
    """Bit-at-a-time transposition; slow, used to validate :func:`transpose`."""
    n = len(data)
    bits = [0] * BASIS_COUNT
    for i, byte in enumerate(data):
        for k in range(BASIS_COUNT):
            if byte >> (BASIS_COUNT - 1 - k) & 1:
                bits[k] |= 1 << i
    return [BitVector(b, n) for b in bits]


def inverse_transpose(basis: Sequence[BitVector]) -> bytes:
    """Reassemble the byte stream from its 8 basis bitstreams."""
    if len(basis) != BASIS_COUNT:
        raise ValueError(f"expected {BASIS_COUNT} basis streams")
    n = basis[0].length
    if any(b.length != n for b in basis):
        raise ValueError("basis streams must share one length")
    if n == 0:
        return b""
    planes = []
    for vec in basis:
        raw = vec.bits.to_bytes((n + 7) // 8, "little")
        plane = np.unpackbits(np.frombuffer(raw, dtype=np.uint8),
                              bitorder="little")[:n]
        planes.append(plane)
    out = np.zeros(n, dtype=np.uint8)
    for k, plane in enumerate(planes):
        out |= plane << (BASIS_COUNT - 1 - k)
    return out.tobytes()

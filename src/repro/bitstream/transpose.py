"""Byte-stream transposition (the S2P step of Section 2).

The input byte stream is transposed into 8 basis bitstreams b0..b7,
where ``b[k][i]`` is bit *k* of byte *i*.  Following the paper's ASCII
example ('a' = 01100001 matched as ~b0 & b1 & b2 & ~b3 & ... & b7),
b0 is the *most significant* bit of the byte and b7 the least.

Two implementations are provided: a numpy bulk path used everywhere,
and a pure-Python one kept as a cross-check for tests.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .bitvector import BitVector

BASIS_COUNT = 8


def transpose(data: bytes) -> List[BitVector]:
    """Transpose ``data`` into 8 basis bitstreams (b0 = MSB ... b7 = LSB)."""
    if not data:
        return [BitVector.zeros(0) for _ in range(BASIS_COUNT)]
    arr = np.frombuffer(data, dtype=np.uint8)
    basis = []
    for k in range(BASIS_COUNT):
        shift = BASIS_COUNT - 1 - k  # b0 is the MSB
        plane = (arr >> shift) & 1
        basis.append(_bits_to_vector(plane))
    return basis


def _bits_to_vector(plane: np.ndarray) -> BitVector:
    """Pack a 0/1 uint8 array (index = position) into a BitVector."""
    packed = np.packbits(plane, bitorder="little")
    return BitVector(int.from_bytes(packed.tobytes(), "little"), len(plane))


def transpose_reference(data: bytes) -> List[BitVector]:
    """Bit-at-a-time transposition; slow, used to validate :func:`transpose`."""
    n = len(data)
    bits = [0] * BASIS_COUNT
    for i, byte in enumerate(data):
        for k in range(BASIS_COUNT):
            if byte >> (BASIS_COUNT - 1 - k) & 1:
                bits[k] |= 1 << i
    return [BitVector(b, n) for b in bits]


def inverse_transpose(basis: Sequence[BitVector]) -> bytes:
    """Reassemble the byte stream from its 8 basis bitstreams."""
    if len(basis) != BASIS_COUNT:
        raise ValueError(f"expected {BASIS_COUNT} basis streams")
    n = basis[0].length
    if any(b.length != n for b in basis):
        raise ValueError("basis streams must share one length")
    if n == 0:
        return b""
    planes = []
    for vec in basis:
        raw = vec.bits.to_bytes((n + 7) // 8, "little")
        plane = np.unpackbits(np.frombuffer(raw, dtype=np.uint8),
                              bitorder="little")[:n]
        planes.append(plane)
    out = np.zeros(n, dtype=np.uint8)
    for k, plane in enumerate(planes):
        out |= plane << (BASIS_COUNT - 1 - k)
    return out.tobytes()

"""repro.parallel — host-side sharded scan dispatch.

The paper earns its throughput from massive device-side parallelism;
this package supplies the missing host half: a sharded dispatcher that
fans streams, CTA groups, streaming sessions, and harness grids across
a worker pool while staying bit-identical to serial execution, plus the
unified :class:`ScanConfig` / :class:`ScanReport` API every public
entry point now accepts and returns.

Light by design: importing the package only loads the config and
report types; the pool, dispatcher, and disk cache load on first use.
"""

from .config import (BACKENDS, EXECUTORS, ON_FAULT_POLICIES,
                     SHARD_POLICIES, START_METHOD_ENV,
                     START_METHODS, ScanConfig, default_start_method,
                     reject_legacy_kwargs)
from .report import ScanReport, ShardFault

__all__ = [
    "BACKENDS",
    "DiskKernelCache",
    "EXECUTORS",
    "ON_FAULT_POLICIES",
    "ParallelScanner",
    "SHARD_POLICIES",
    "START_METHODS",
    "START_METHOD_ENV",
    "ScanConfig",
    "ScanReport",
    "SharedArena",
    "ShardFault",
    "WorkerPool",
    "breaker",
    "default_cache_dir",
    "default_start_method",
    "parallel_match",
    "parallel_match_many",
    "parallel_run_all",
    "parallel_sessions",
    "plan_group_shards",
    "plan_stream_shards",
    "pool_stats",
    "reject_legacy_kwargs",
    "shutdown",
]

_LAZY = {
    "DiskKernelCache": ("diskcache", "DiskKernelCache"),
    "default_cache_dir": ("diskcache", "default_cache_dir"),
    "SharedArena": ("shm", "SharedArena"),
    "WorkerPool": ("pool", "WorkerPool"),
    "breaker": ("pool", "breaker"),
    "pool_stats": ("pool", "pool_stats"),
    "shutdown": ("pool", "shutdown"),
    "ParallelScanner": ("scan", "ParallelScanner"),
    "parallel_match": ("scan", "parallel_match"),
    "parallel_match_many": ("scan", "parallel_match_many"),
    "parallel_run_all": ("scan", "parallel_run_all"),
    "parallel_sessions": ("scan", "parallel_sessions"),
    "plan_group_shards": ("scan", "plan_group_shards"),
    "plan_stream_shards": ("scan", "plan_stream_shards"),
}


def __getattr__(name):
    entry = _LAZY.get(name)
    if entry is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{entry[0]}", __name__)
    value = getattr(module, entry[1])
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))

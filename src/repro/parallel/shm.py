"""Zero-copy shard payloads over ``multiprocessing.shared_memory``.

Process workers used to receive their shard *data* — whole word arrays
and input byte batches — pickled through the executor's pipe, which
``BENCH_parallel.json`` showed costing more than the scan itself.  This
module moves the bulk payload into POSIX shared memory: the parent
packs raw stream bytes and pre-transposed basis word arrays into one
:class:`SharedArena` segment per dispatch, and shard payloads carry
only tiny ``(segment, offset, dtype, shape)`` descriptors
(:class:`ShmBytes` / :class:`ShmArray`).  Workers map the segment once
(a per-process attach memo) and build NumPy views straight over the
shared pages — no serialisation, no copy.

Lifecycle contract (the part that must never leak):

* the **parent** is the only creator and the only unlinker.  An arena
  is ref-counted (``with arena:`` nests); the segment is unlinked when
  the count drops to zero, and a ``weakref.finalize`` + ``atexit``
  backstop unlinks it even if the scan path never gets there (worker
  fault, timeout, exception, interpreter exit);
* **workers** only ever attach.  Attachments are memoised per process
  and closed at worker exit.  Attaching re-registers the name with the
  multiprocessing resource tracker (bpo-39959), but every pool worker
  — fork, spawn, or forkserver — shares the *parent's* tracker
  process, whose cache is a set: the duplicate register is a no-op and
  the parent's single ``unlink`` balances it.  Workers must therefore
  never ``unregister`` (that would delete the shared entry out from
  under the parent);
* unlink-while-attached is safe on POSIX: the ``/dev/shm`` name
  disappears immediately and the pages are freed when the last mapping
  closes, so a hung worker cannot pin a leak past its own lifetime.

``active_segments()`` lists the arenas this process currently owns —
the leak assertion the fault-path tests run after every scan.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs

#: allocation alignment inside an arena (cache line)
_ALIGN = 64

_REG = obs.registry()
_SEGMENTS_TOTAL = _REG.counter(
    "repro_shm_segments_total",
    "Shared-memory arenas created for shard payloads")
_BYTES_TOTAL = _REG.counter(
    "repro_shm_bytes_total",
    "Bytes allocated into shared-memory arenas")
_SEGMENTS_ACTIVE = _REG.gauge(
    "repro_shm_segments_active",
    "Shared-memory arenas currently owned (created, not yet unlinked)")
_BYTES_ACTIVE = _REG.gauge(
    "repro_shm_bytes_active",
    "Bytes in currently owned shared-memory arenas")
_UNLINK_FAILURES = _REG.counter(
    "repro_shm_unlink_failures_total",
    "Arena unlinks that failed (segment already gone)")

_SEQ = itertools.count()

#: arenas this process created and has not yet unlinked, by name
_OWNED: Dict[str, "SharedArena"] = {}
_OWNED_LOCK = threading.Lock()


#: segments whose ``close()`` hit BufferError at dispose time because a
#: live NumPy view still pinned the mapping.  The name is already
#: unlinked by then, so nothing leaks in ``/dev/shm`` — we keep the
#: mapping referenced here (suppressing a noisy ``__del__``) and retry
#: the close once the views have died.
_ZOMBIES: List[shared_memory.SharedMemory] = []


def _reap_zombies() -> None:
    for shm in list(_ZOMBIES):
        try:
            shm.close()
        except BufferError:
            continue
        _ZOMBIES.remove(shm)


# -- descriptors (what a payload actually carries) ---------------------------


@dataclass(frozen=True)
class ShmBytes:
    """A raw byte range inside a shared segment."""

    segment: str
    offset: int
    nbytes: int

    def resolve(self) -> memoryview:
        """A zero-copy view of the bytes (parent- or worker-side)."""
        buf = attach(self.segment).buf
        return buf[self.offset:self.offset + self.nbytes]


@dataclass(frozen=True)
class ShmArray:
    """A NumPy array inside a shared segment."""

    segment: str
    offset: int
    dtype: str
    shape: Tuple[int, ...]

    def resolve(self) -> np.ndarray:
        """A zero-copy ndarray view over the shared pages."""
        shm = attach(self.segment)
        count = int(np.prod(self.shape)) if self.shape else 1
        flat = np.frombuffer(shm.buf, dtype=np.dtype(self.dtype),
                             count=count, offset=self.offset)
        return flat.reshape(self.shape)


# -- the parent-side arena ---------------------------------------------------


class SharedArena:
    """One shared-memory segment, bump-allocated, ref-counted.

    The creating process owns the segment and must (and will) unlink
    it exactly once: explicitly via :meth:`release` / ``with``, or
    through the finalizer/atexit backstops.
    """

    def __init__(self, capacity: int, tag: str = "scan"):
        capacity = max(1, int(capacity))
        self.owner_pid = os.getpid()
        self.name = f"repro-shm-{self.owner_pid}-{next(_SEQ)}-{tag}"
        self._shm = shared_memory.SharedMemory(name=self.name,
                                               create=True,
                                               size=capacity)
        self.capacity = self._shm.size  # may round up to page size
        self.used = 0
        self._refs = 1
        self._lock = threading.Lock()
        self._closed = False
        with _OWNED_LOCK:
            _OWNED[self.name] = self
            _SEGMENTS_ACTIVE.set(len(_OWNED))
            _BYTES_ACTIVE.set(sum(a.capacity for a in _OWNED.values()))
        _SEGMENTS_TOTAL.inc()
        # Backstop: unlink even if no scan-path finally ever runs.
        self._finalizer = weakref.finalize(self, _dispose, self.name)

    # -- allocation --------------------------------------------------------

    def _bump(self, nbytes: int) -> int:
        start = (self.used + _ALIGN - 1) // _ALIGN * _ALIGN
        if start + nbytes > self.capacity:
            raise MemoryError(
                f"arena {self.name} overflow: need {nbytes} at {start}, "
                f"capacity {self.capacity}")
        self.used = start + nbytes
        _BYTES_TOTAL.inc(nbytes)
        return start

    def put_bytes(self, data) -> ShmBytes:
        """Copy ``data`` (bytes-like) into the arena once; every
        consumer after this reads the shared pages directly."""
        view = memoryview(data)
        offset = self._bump(view.nbytes)
        self._shm.buf[offset:offset + view.nbytes] = view
        return ShmBytes(self.name, offset, view.nbytes)

    def alloc_array(self, shape: Tuple[int, ...],
                    dtype=np.uint64) -> Tuple[np.ndarray, ShmArray]:
        """Reserve an uninitialised array inside the arena and return
        ``(view, descriptor)`` — the caller writes results (e.g. a
        transpose) straight into the shared pages."""
        dt = np.dtype(dtype)
        count = int(np.prod(shape)) if shape else 1
        offset = self._bump(count * dt.itemsize)
        flat = np.frombuffer(self._shm.buf, dtype=dt, count=count,
                             offset=offset)
        return (flat.reshape(shape),
                ShmArray(self.name, offset, dt.str, tuple(shape)))

    def put_array(self, array: np.ndarray) -> ShmArray:
        view, ref = self.alloc_array(array.shape, array.dtype)
        view[...] = array
        return ref

    # -- lifecycle ---------------------------------------------------------

    def acquire(self) -> "SharedArena":
        with self._lock:
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._refs -= 1
            if self._refs > 0:
                return
        self._finalizer.detach()
        _dispose(self.name)

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def _dispose(name: str) -> None:
    """Close + unlink one owned arena (idempotent).

    Forked children (persistent pool workers) inherit ``_OWNED`` and
    the arena finalizers; they must never unlink the parent's live
    segment, so only the creating process unlinks — a child merely
    drops its inherited mapping.
    """
    with _OWNED_LOCK:
        arena = _OWNED.pop(name, None)
        _SEGMENTS_ACTIVE.set(len(_OWNED))
        _BYTES_ACTIVE.set(sum(a.capacity for a in _OWNED.values()))
    if arena is None or arena._closed:
        return
    arena._closed = True
    if arena.owner_pid == os.getpid():
        try:
            arena._shm.unlink()
        except (OSError, FileNotFoundError):
            _UNLINK_FAILURES.inc()
    try:
        arena._shm.close()
    except BufferError:
        # A live NumPy view (e.g. a serial-fallback basis slice still in
        # a caller's hands) pins the mapping.  The name is unlinked
        # above, so the segment cannot leak; park the mapping and close
        # it once the views die.
        _ZOMBIES.append(arena._shm)
    _reap_zombies()


def active_segments() -> List[str]:
    """Names of arenas this process owns right now (leak probe)."""
    with _OWNED_LOCK:
        return sorted(_OWNED)


def dispose_all() -> None:
    """Unlink every owned arena (atexit backstop; also test cleanup)."""
    for name in active_segments():
        _dispose(name)
    _reap_zombies()


atexit.register(dispose_all)


# -- worker-side attach memo -------------------------------------------------

#: segment name → attached SharedMemory, per process.  Workers map a
#: segment once per dispatch and keep it mapped: NumPy views handed to
#: kernels forbid closing mid-task (BufferError), and a persistent
#: worker will typically see the next scan's segment immediately after.
#: Everything is closed at process exit; the parent's unlink (which
#: may have happened long before) already removed the name.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
_ATTACH_LOCK = threading.Lock()


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach (memoised) to segment ``name``.

    In the creating process this resolves to the arena's own mapping,
    so parent-side fallbacks never re-attach through ``/dev/shm``.
    """
    with _OWNED_LOCK:
        owned = _OWNED.get(name)
    if owned is not None:
        return owned._shm
    with _ATTACH_LOCK:
        shm = _ATTACHED.get(name)
        if shm is None:
            # Attaching re-registers the name with the (shared, parental)
            # resource tracker; that duplicate register is a set no-op
            # and the parent's unlink balances it, so no unregister here.
            shm = shared_memory.SharedMemory(name=name, create=False)
            _ATTACHED[name] = shm
        return shm


def close_attachments() -> None:
    """Drop every memoised attachment (worker exit / test isolation)."""
    with _ATTACH_LOCK:
        names = list(_ATTACHED)
        for name in names:
            shm = _ATTACHED.pop(name)
            try:
                shm.close()
            except BufferError:  # a live view still pins the mapping
                _ATTACHED[name] = shm


atexit.register(close_attachments)

"""The unified scan configuration.

Every public entry point — :func:`repro.compile`, :func:`repro.scan`,
:meth:`repro.core.engine.BitGenEngine.compile`,
:class:`repro.core.streaming.StreamingMatcher`,
:class:`repro.perf.harness.Harness`, and the ``python -m repro scan``
CLI — accepts one :class:`ScanConfig` carrying the compile-time knobs
(scheme ladder, merge/interval sizes, CTA geometry, backend) and the
dispatch-time knobs (worker count, shard policy, executor kind, kernel
cache directory).  The scattered positional kwargs those entry points
grew over PRs 0–2 were deprecated for one release and are now
rejected with a migration hint (:func:`reject_legacy_kwargs`).

Fields default to ``None`` where the right default depends on the
consumer (the engine resolves ``geometry=None`` to the paper's 512x32
CTAs, the harness to its scaled-down 32x32 benchmark geometry), so one
config object moves between entry points without silently pinning a
consumer-specific default.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from ..core.schemes import Scheme
from ..gpu.config import CPUConfig, GPUConfig
from ..gpu.machine import CTAGeometry

BACKENDS = ("simulate", "compiled")
SHARD_POLICIES = ("auto", "stream", "group")
#: grouping strategies (see :func:`repro.core.grouping.group_regexes`)
GROUPINGS = ("balanced", "round_robin", "fingerprint")
#: literal-gate implementations (see :mod:`repro.core.prefilter`)
PREFILTER_IMPLS = ("screen", "ac")
EXECUTORS = ("process", "thread", "serial")
START_METHODS = ("fork", "spawn", "forkserver")
#: fault-handling policy vocabulary (see :mod:`repro.resilience`)
ON_FAULT_POLICIES = ("degrade", "retry", "fail")

#: Environment override for :meth:`ScanConfig.resolved_start_method`.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"


def default_start_method() -> str:
    """``fork`` where the platform offers it (cheapest, and warm
    workers inherit the parent's in-memory kernel cache), else
    ``spawn``."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class ScanConfig:
    """One object describing how to compile and how to dispatch a scan."""

    # -- compilation (Section 7 parameter setup) --------------------------
    scheme: Scheme = Scheme.ZBS
    geometry: Optional[CTAGeometry] = None
    cta_count: Optional[int] = None
    merge_size: int = 8
    interval_size: int = 8
    loop_fallback: bool = False
    optimize: bool = True
    #: optimizer pipeline level: 0 = off, 1 = copy-prop + DCE,
    #: 2 = full pipeline (CSE, algebraic folding, shift coalescing).
    #: Gated behind ``optimize`` — ``optimize=False`` forces level 0.
    opt_level: int = 2
    grouping: str = "balanced"
    backend: str = "simulate"
    #: hoist shared pure definitions into a per-bucket prologue and
    #: loop-invariant instructions out of fixpoint loops
    #: (:mod:`repro.ir.passes.factor`); applied at opt_level >= 2.
    factor: bool = True

    # -- prefiltered dispatch (repro.core.prefilter) -----------------------
    #: gate compiled groups behind their mandatory literal factors: one
    #: literal scan per input activates only the groups whose factors
    #: fired (groups with factor-free patterns stay always-on).  A
    #: dispatch-time knob — results are bit-identical either way, so
    #: the same compiled engine serves both settings.
    prefilter: bool = False
    #: gate implementation: "screen" (vectorised pair screen + exact
    #: substring confirm) or "ac" (one Aho–Corasick pass, the oracle)
    prefilter_impl: str = "screen"

    # -- device models (perf harness pricing) -----------------------------
    gpu: Optional[GPUConfig] = None
    cpu: Optional[CPUConfig] = None

    # -- streaming ---------------------------------------------------------
    max_tail_bytes: int = 4096

    # -- parallel dispatch -------------------------------------------------
    workers: int = 1
    shard: str = "auto"
    executor: str = "process"
    #: process-pool start method; ``None`` resolves through
    #: ``$REPRO_PARALLEL_START_METHOD`` and then the platform default
    #: (:func:`default_start_method`).  Persistent warm pools are keyed
    #: by the resolved value, so two configs differing only here get
    #: separate pools.
    start_method: Optional[str] = None
    #: ship shard payloads (input bytes, pre-transposed word arrays)
    #: through ``multiprocessing.shared_memory`` instead of pickling
    #: them into process workers.  Ignored for thread/serial executors,
    #: which already share the parent's memory.
    shared_memory: bool = True
    worker_timeout: Optional[float] = None
    cache_dir: Optional[str] = None

    # -- resilience (repro.resilience) -------------------------------------
    #: what a worker fault does to the scan: ``"degrade"`` reruns the
    #: shard inline through the serial path (the always-safe default),
    #: ``"retry"`` retries on a fresh pool with backoff before
    #: degrading, ``"fail"`` aborts the scan with
    #: :class:`~repro.resilience.ScanAbortedError`.
    on_fault: str = "degrade"
    #: bounded retries per faulted shard (``on_fault="retry"`` only)
    max_retries: int = 2
    #: base backoff before the first retry; attempt ``n`` waits
    #: ``retry_backoff * 2**(n-1)`` plus jitter
    retry_backoff: float = 0.05
    #: scan-level deadline in seconds: one budget shared by every
    #: blocking wait of a dispatch, so a hung worker can never stall
    #: the scan past it (expired shards degrade inline and are
    #: reported as ``ShardFault(kind="deadline")``).  ``None`` = no
    #: deadline.
    deadline_s: Optional[float] = None
    #: inputs smaller than this fall back to serial dispatch even when
    #: ``workers > 1`` — worker marshalling dwarfs the scan below it
    #: (``BENCH_parallel.json`` measured 2.4-2.7x slowdowns at 60KB).
    #: Set to 0 to force the parallel path regardless of input size.
    min_parallel_bytes: int = 65536

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"expected one of {BACKENDS}")
        if self.shard not in SHARD_POLICIES:
            raise ValueError(f"unknown shard policy {self.shard!r}; "
                             f"expected one of {SHARD_POLICIES}")
        if self.executor not in EXECUTORS:
            raise ValueError(f"unknown executor {self.executor!r}; "
                             f"expected one of {EXECUTORS}")
        if (self.start_method is not None
                and self.start_method not in START_METHODS):
            raise ValueError(
                f"unknown start_method {self.start_method!r}; "
                f"expected one of {START_METHODS}")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.opt_level not in (0, 1, 2):
            raise ValueError("opt_level must be 0, 1, or 2")
        if self.min_parallel_bytes < 0:
            raise ValueError("min_parallel_bytes must be >= 0")
        if self.merge_size < 1 or self.interval_size < 1:
            raise ValueError("merge_size and interval_size must be >= 1")
        if self.max_tail_bytes < 1:
            raise ValueError("max_tail_bytes must be >= 1")
        if self.worker_timeout is not None and self.worker_timeout <= 0:
            raise ValueError("worker_timeout must be positive")
        if self.on_fault not in ON_FAULT_POLICIES:
            raise ValueError(f"unknown on_fault {self.on_fault!r}; "
                             f"expected one of {ON_FAULT_POLICIES}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.prefilter_impl not in PREFILTER_IMPLS:
            raise ValueError(
                f"unknown prefilter_impl {self.prefilter_impl!r}; "
                f"expected one of {PREFILTER_IMPLS}")
        if self.grouping not in GROUPINGS:
            raise ValueError(f"unknown grouping {self.grouping!r}; "
                             f"expected one of {GROUPINGS}")

    # -- derived views -----------------------------------------------------

    def replace(self, **changes) -> "ScanConfig":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def serial(self) -> "ScanConfig":
        """The same configuration with parallel dispatch disabled —
        what a worker runs inside its shard."""
        if self.workers == 1:
            return self
        return self.replace(workers=1)

    def parallel_enabled(self) -> bool:
        return self.workers > 1

    def parallel_for_bytes(self, input_bytes: int) -> bool:
        """Whether an input of ``input_bytes`` should take the parallel
        path: workers requested AND the input is large enough that
        sharding overhead can pay for itself."""
        return (self.workers > 1
                and input_bytes >= self.min_parallel_bytes)

    def resolved_start_method(self) -> str:
        """The process-pool start method actually used: the explicit
        field, else ``$REPRO_PARALLEL_START_METHOD``, else the
        platform default.  Read at dispatch time, so the environment
        override reaches long-lived processes too."""
        import os

        if self.start_method is not None:
            return self.start_method
        env = os.environ.get(START_METHOD_ENV)
        if env:
            if env not in START_METHODS:
                raise ValueError(
                    f"${START_METHOD_ENV}={env!r}: expected one of "
                    f"{START_METHODS}")
            return env
        return default_start_method()

    def effective_opt_level(self) -> int:
        """The optimizer level actually applied: ``opt_level`` gated
        behind the ``optimize`` master switch."""
        return self.opt_level if self.optimize else 0

    def compile_key(self) -> Tuple:
        """The fields that change what ``BitGenEngine.compile`` builds
        (dispatch knobs excluded) — a cache key for compiled engines."""
        return (self.scheme, self.geometry, self.cta_count,
                self.merge_size, self.interval_size, self.loop_fallback,
                self.effective_opt_level(), self.grouping, self.backend,
                self.factor)


def reject_legacy_kwargs(api: str, legacy: Mapping[str, object]) -> None:
    """Refuse the pre-ScanConfig scattered keyword arguments.

    PR 2 kept them working for one release behind a
    ``DeprecationWarning``; that window has closed.  Any legacy
    keyword now raises :class:`TypeError` with the migration spelled
    out, so old call sites fail loudly at the call, not with a bare
    "unexpected keyword argument".
    """
    if not legacy:
        return
    listed = ", ".join(sorted(legacy))
    raise TypeError(
        f"{api}: keyword argument(s) {listed} were removed; pass "
        f"config=ScanConfig({listed.replace(', ', '=..., ')}=...) "
        f"instead, or use the repro.compile()/repro.scan() facade "
        f"(ScanConfig fields are accepted there as plain keywords)")

"""The unified scan result.

Every scan path — one-shot :meth:`BitGenEngine.match`, streaming
:meth:`StreamingMatcher.feed`, and the sharded parallel dispatcher —
reports through one :class:`ScanReport`: pattern → match end positions,
the stream offset the report was produced at, the merged kernel
metrics, and any shard faults the dispatcher degraded around.

``ScanReport`` is a :class:`~collections.abc.Mapping` over
``pattern index → positions``, so code written against the old bare
``Dict[int, List[int]]`` return shape (``report[0]``, ``report.items()``,
``report == {...}``) keeps working unchanged.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..gpu.metrics import KernelMetrics


#: traceback text per fault is truncated to this many trailing
#: characters — the tail carries the raising frame, and reports must
#: stay cheap to ship/serialise even with many faults
TRACEBACK_LIMIT = 2000


def format_fault_traceback(exc: BaseException,
                           limit: int = TRACEBACK_LIMIT) -> str:
    """The exception's full traceback (cause chain included — for
    process-pool futures that is where the worker-side remote
    traceback lives), truncated to its ``limit`` trailing chars."""
    import traceback

    text = "".join(traceback.format_exception(
        type(exc), exc, exc.__traceback__)).rstrip()
    if len(text) > limit:
        text = "...(truncated)...\n" + text[-limit:]
    return text


@dataclass(frozen=True)
class ShardFault:
    """One worker failure the dispatcher handled."""

    shard: int              # shard index within the dispatch
    kind: str               # "error" | "timeout" | "pool" | "deadline"
    error: str              # stringified cause
    #: how the shard's work was recovered: ``"serial"`` (inline
    #: degrade), ``"retry"`` (a retry attempt succeeded), or
    #: ``"abort"`` (``on_fault="fail"`` — nothing recovered)
    fallback: str = "serial"
    #: truncated traceback of the cause (empty for timeouts/deadlines,
    #: which have no exception object worth keeping)
    traceback: str = ""
    #: retry attempts spent on this shard before it settled
    retries: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {"shard": self.shard, "kind": self.kind,
                "error": self.error, "fallback": self.fallback,
                "traceback": self.traceback, "retries": self.retries}

    def summary(self) -> str:
        """One log-friendly line (the ``python -m repro scan`` fault
        listing)."""
        return (f"shard={self.shard} kind={self.kind} "
                f"retries={self.retries} fallback={self.fallback} "
                f"error={self.error}")


class ScanReport(Mapping):
    """Matches plus provenance for one scan (or one streaming step)."""

    __slots__ = ("pattern_count", "matches", "stream_offset",
                 "input_bytes", "metrics", "cta_metrics", "faults",
                 "dispatch", "trace")

    def __init__(self, pattern_count: int,
                 matches: Optional[Dict[int, List[int]]] = None,
                 stream_offset: int = 0, input_bytes: int = 0,
                 metrics: Optional[KernelMetrics] = None,
                 cta_metrics: Optional[List[KernelMetrics]] = None,
                 faults: Optional[List[ShardFault]] = None,
                 dispatch: str = "serial",
                 trace: Optional[List[Dict[str, object]]] = None):
        self.pattern_count = pattern_count
        self.matches = dict(matches) if matches else {}
        for index in range(pattern_count):
            self.matches.setdefault(index, [])
        #: total stream bytes consumed when this report was produced
        self.stream_offset = stream_offset
        self.input_bytes = input_bytes
        self.metrics = metrics if metrics is not None else KernelMetrics()
        self.cta_metrics = list(cta_metrics) if cta_metrics else []
        self.faults = list(faults) if faults else []
        #: how the scan was dispatched: "serial", "parallel", or
        #: "serial-small-input" (workers requested but the input was
        #: below ``ScanConfig.min_parallel_bytes``)
        self.dispatch = dispatch
        #: span dicts of the scan that produced this report (the scan
        #: span and everything beneath it, worker shards included);
        #: ``None`` unless a :mod:`repro.obs` tracer was recording
        self.trace = trace

    # -- construction ------------------------------------------------------

    @classmethod
    def from_result(cls, result, stream_offset: int = 0,
                    faults: Optional[List[ShardFault]] = None,
                    dispatch: str = "serial") -> "ScanReport":
        """Wrap a :class:`~repro.engines.base.MatchResult` (plain or
        :class:`~repro.core.engine.BitGenResult`)."""
        return cls(pattern_count=result.pattern_count,
                   matches={k: list(v) for k, v in result.ends.items()},
                   stream_offset=stream_offset,
                   input_bytes=getattr(result, "input_bytes", 0),
                   metrics=getattr(result, "metrics", None),
                   cta_metrics=getattr(result, "cta_metrics", None),
                   faults=faults, dispatch=dispatch)

    # -- mapping interface (pattern -> end positions) ----------------------

    def __getitem__(self, pattern: int) -> List[int]:
        return self.matches[pattern]

    def __iter__(self) -> Iterator[int]:
        return iter(self.matches)

    def __len__(self) -> int:
        return len(self.matches)

    def __eq__(self, other) -> bool:
        if isinstance(other, ScanReport):
            return self.matches == other.matches
        if isinstance(other, Mapping):
            return self.matches == dict(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:
        return (f"ScanReport(patterns={self.pattern_count}, "
                f"matches={self.match_count()}, "
                f"offset={self.stream_offset}, "
                f"faults={len(self.faults)})")

    # -- aggregate views ---------------------------------------------------

    def match_count(self) -> int:
        return sum(len(v) for v in self.matches.values())

    def matched_patterns(self) -> List[int]:
        return [index for index, ends in sorted(self.matches.items())
                if ends]

    def merge(self, other: "ScanReport") -> "ScanReport":
        """Fold another report into this one (streaming / sharding):
        matches extend, metrics accumulate, the offset advances."""
        for pattern, ends in other.matches.items():
            self.matches.setdefault(pattern, []).extend(ends)
        self.pattern_count = max(self.pattern_count, other.pattern_count)
        self.stream_offset = max(self.stream_offset, other.stream_offset)
        self.input_bytes += other.input_bytes
        self.metrics.merge(other.metrics)
        self.cta_metrics.extend(other.cta_metrics)
        self.faults.extend(other.faults)
        if other.trace:
            self.trace = (self.trace or []) + other.trace
        return self

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (the ``python -m repro scan`` output)."""
        from dataclasses import asdict

        payload = {
            "pattern_count": self.pattern_count,
            "match_count": self.match_count(),
            "matches": {str(k): v for k, v in sorted(self.matches.items())},
            "stream_offset": self.stream_offset,
            "input_bytes": self.input_bytes,
            "dispatch": self.dispatch,
            "metrics": asdict(self.metrics),
            "faults": [fault.to_dict() for fault in self.faults],
        }
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

"""Process-safe on-disk kernel cache.

The in-process :class:`~repro.backend.compiled.KernelCache` keys
compiled NumPy kernels by structural fingerprint; this module extends
that one level further out: fingerprint → *marshalled codegen artefact*
(the generated source plus its compiled code object) persisted as one
file per kernel, so pool workers never regenerate or re-``compile()``
what the parent process already built.

Safety model: writers stage to a unique temp file in the cache
directory and ``os.replace`` it into place (atomic on POSIX), so a
reader can never observe a partial entry; concurrent writers of the
same fingerprint produce identical content, so last-writer-wins is
harmless.  Corrupted or cross-version entries (marshal is not stable
across interpreters) fail closed: the reader treats them as a miss and
the writer overwrites them.  Keys embed the interpreter version and the
codegen schema version (:func:`repro.backend.fingerprint.cache_key`),
so one directory can be shared by heterogeneous workers.
"""

from __future__ import annotations

import marshal
import os
import sys
import tempfile
from types import CodeType
from typing import Optional, Tuple

from .. import obs

#: File-format magic; bump together with incompatible layout changes.
_MAGIC = "repro-kernel-v1"

_DISK_LOOKUPS = obs.registry().counter(
    "repro_disk_cache_lookups_total",
    "On-disk kernel cache lookups")
_DISK_HITS = obs.registry().counter(
    "repro_disk_cache_hits_total",
    "On-disk kernel cache hits (valid entry loaded)")
_DISK_MISSES = obs.registry().counter(
    "repro_disk_cache_misses_total",
    "On-disk kernel cache misses (absent, corrupt, or wrong version)")
_DISK_PUTS = obs.registry().counter(
    "repro_disk_cache_puts_total",
    "Kernels persisted to the on-disk cache")
_DISK_CORRUPT = obs.registry().counter(
    "repro_disk_cache_corrupt_total",
    "Corrupt disk-cache entries quarantined (renamed to .kbc.bad)")
_DISK_EVICTIONS = obs.registry().counter(
    "repro_disk_cache_evictions_total",
    "Disk-cache entries evicted to enforce the size cap")

#: Environment override for the cache size cap, in megabytes.
CACHE_MAX_MB_ENV = "REPRO_DISK_CACHE_MAX_MB"


def _env_max_mb() -> Optional[float]:
    raw = os.environ.get(CACHE_MAX_MB_ENV)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def default_cache_dir() -> str:
    """The shared default directory: ``$REPRO_KERNEL_CACHE`` when set,
    else a per-interpreter directory under the system temp dir."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return override
    tag = f"py{sys.version_info[0]}{sys.version_info[1]}"
    return os.path.join(tempfile.gettempdir(), f"repro-kernels-{tag}")


class DiskKernelCache:
    """One cache directory of marshalled kernels.

    ``max_mb`` (default ``$REPRO_DISK_CACHE_MAX_MB``, unbounded when
    unset) caps the total ``.kbc`` payload: after every ``put`` the
    oldest-touched entries are evicted until the directory fits.
    Recency is entry mtime — refreshed on every hit — so eviction is
    LRU, and the entry just written is never the victim."""

    def __init__(self, path: Optional[str] = None,
                 max_mb: Optional[float] = None):
        self.path = path if path is not None else default_cache_dir()
        self.max_mb = max_mb if max_mb is not None else _env_max_mb()
        os.makedirs(self.path, exist_ok=True)

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.kbc")

    def get(self, key: str) -> Optional[Tuple[str, CodeType]]:
        """(source, code object) for ``key``, or ``None`` on any miss —
        absent, unreadable, corrupted, or wrong format version.
        Corrupt entries are **quarantined** (renamed to ``.kbc.bad``)
        so a bad file is never re-parsed on every lookup and the next
        ``put`` writes a clean entry in its place; the originals are
        kept for post-mortems until :meth:`clear`."""
        _DISK_LOOKUPS.inc()
        path = self._entry_path(key)
        try:
            with open(path, "rb") as handle:
                payload = marshal.load(handle)
        except OSError:
            _DISK_MISSES.inc()
            return None
        except (ValueError, EOFError, TypeError):
            # The file exists but marshal rejected it: corrupt or
            # cross-version bytes, not a racing writer (writes are
            # atomic os.replace).
            self._quarantine(path)
            _DISK_MISSES.inc()
            return None
        if (not isinstance(payload, tuple) or len(payload) != 3
                or payload[0] != _MAGIC
                or not isinstance(payload[1], str)
                or not isinstance(payload[2], CodeType)):
            self._quarantine(path)
            _DISK_MISSES.inc()
            return None
        _, source, code = payload
        _DISK_HITS.inc()
        try:
            os.utime(path)    # refresh LRU recency for the size cap
        except OSError:
            pass
        return source, code

    @staticmethod
    def _quarantine(path: str) -> None:
        """Move a corrupt entry aside (``name.kbc`` → ``name.kbc.bad``,
        last corruption wins) and count it."""
        _DISK_CORRUPT.inc()
        try:
            os.replace(path, path + ".bad")
        except OSError:
            pass

    def put(self, key: str, source: str, code: CodeType) -> None:
        """Persist one kernel atomically; IO failures are swallowed
        (the disk cache is an accelerator, never a correctness layer)."""
        payload = marshal.dumps((_MAGIC, source, code))
        _DISK_PUTS.inc()
        try:
            fd, staging = tempfile.mkstemp(dir=self.path,
                                           suffix=".kbc.tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(staging, self._entry_path(key))
            except BaseException:
                try:
                    os.unlink(staging)
                except OSError:
                    pass
                raise
        except OSError:
            pass
        self._enforce_cap()

    def _enforce_cap(self) -> None:
        """Evict oldest-touched entries until total ``.kbc`` bytes fit
        under ``max_mb``.  Best-effort and race-tolerant: entries that
        vanish mid-walk (a concurrent evictor or ``clear``) are
        skipped; at least one entry always survives so the kernel just
        written remains loadable."""
        if self.max_mb is None:
            return
        cap = int(self.max_mb * 1024 * 1024)
        entries = []
        try:
            with os.scandir(self.path) as it:
                for item in it:
                    if not item.name.endswith(".kbc"):
                        continue
                    try:
                        stat = item.stat()
                    except OSError:
                        continue
                    entries.append((stat.st_mtime, stat.st_size,
                                    item.path))
        except OSError:
            return
        total = sum(size for _mtime, size, _path in entries)
        entries.sort()    # oldest mtime first
        while total > cap and len(entries) > 1:
            _mtime, size, path = entries.pop(0)
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            _DISK_EVICTIONS.inc()

    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.path)
                       if name.endswith(".kbc"))
        except OSError:
            return 0

    def clear(self) -> None:
        try:
            names = os.listdir(self.path)
        except OSError:
            return
        for name in names:
            if (name.endswith(".kbc") or name.endswith(".kbc.tmp")
                    or name.endswith(".kbc.bad")):
                try:
                    os.unlink(os.path.join(self.path, name))
                except OSError:
                    pass

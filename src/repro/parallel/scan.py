"""The sharded parallel scan dispatcher.

``repro.parallel``'s tentpole: fan :meth:`BitGenEngine.match_many`,
single-input multi-CTA matches, multi-chunk streaming sessions, and
:meth:`Harness.run_all` grids out across a :class:`WorkerPool`, while
keeping every result **bit-identical to serial execution** — match
positions and aggregated metrics both.

The identity guarantee comes from the shard planner: shards are built
from the same batching units the serial compiled backend uses, so the
vectorised NumPy calls inside a shard are literally the calls serial
execution would have made.

* **Stream sharding** distributes whole *length classes* —
  :func:`~repro.backend.executor.dispatch_streams` batches equal-length
  streams into one 2D call, so splitting a length class would change
  batch shapes (and the shared per-batch loop statistics that metrics
  are estimated from).
* **Group sharding** distributes whole *kernel-fingerprint buckets* —
  :func:`~repro.backend.executor.dispatch_words` fuses same-kernel CTAs
  into one 2D call, so buckets must survive sharding intact.

Process dispatch is **zero-copy**: instead of pickling word arrays and
input batches into each worker, the parent packs them into one
:class:`~repro.parallel.shm.SharedArena` segment per dispatch and
ships only descriptors.  For the compiled backend the parent also
*pre-transposes* every shard's length classes into the arena — paying
the transpose once for all kernel groups — and shard preparation runs
interleaved with execution (``WorkerPool.map_shards(prepare=...)``):
shard N transposes in the parent while shard N-1 executes in a
worker.  The arena is ref-counted and unlinked on every exit path
(clean, worker fault, timeout, exception).

Degradation: any worker fault re-runs that shard in-process through
the identical serial path (see :class:`~repro.parallel.pool.WorkerPool`)
and is recorded as a :class:`ShardFault`; a parallel scan therefore
never fails, and never returns different results, because of the pool.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..resilience.deadline import Deadline
from .config import ScanConfig
from .pool import WorkerPool
from .report import ScanReport, ShardFault
from .shm import SharedArena
from . import worker as worker_mod
from .worker import GroupShardSpec, StreamShardSpec

_SHARDS_DISPATCHED = obs.registry().counter(
    "repro_parallel_shards_total",
    "Shards handed to the worker pool, by plan kind")


# -- shard planning ----------------------------------------------------------


def _distribute(units: Sequence[Tuple[List[int], int]],
                shards: int) -> List[List[int]]:
    """Deterministic LPT bin-packing of ``(members, weight)`` units
    into at most ``shards`` bins; members keep ascending order inside
    each bin so merged results preserve the serial ordering."""
    shards = max(1, min(shards, len(units)))
    order = sorted(range(len(units)),
                   key=lambda i: (-units[i][1], i))
    loads = [0] * shards
    bins: List[List[int]] = [[] for _ in range(shards)]
    for index in order:
        members, weight = units[index]
        target = min(range(shards), key=lambda s: (loads[s], s))
        bins[target].extend(members)
        loads[target] += weight
    packed = [sorted(b) for b in bins if b]
    packed.sort(key=lambda b: b[0])
    return packed


def plan_stream_shards(streams: Sequence[bytes], workers: int,
                       preserve_batches: bool) -> List[List[int]]:
    """Shard stream indices.  With ``preserve_batches`` (the compiled
    backend), each equal-length class stays whole inside one shard."""
    if preserve_batches:
        classes: Dict[int, List[int]] = {}
        for index, stream in enumerate(streams):
            classes.setdefault(len(stream), []).append(index)
        units = [(members, max(1, size) * len(members))
                 for size, members in sorted(classes.items())]
    else:
        units = [([index], max(1, len(stream)))
                 for index, stream in enumerate(streams)]
    return _distribute(units, workers)


def plan_group_shards(engine, workers: int) -> List[List[int]]:
    """Shard group (CTA) indices.  For the compiled backend each
    kernel-fingerprint bucket stays whole inside one shard."""
    if engine.backend == "compiled":
        buckets: Dict[str, List[int]] = {}
        for index, compiled in enumerate(engine._compiled_programs()):
            buckets.setdefault(compiled.kernel.fingerprint,
                               []).append(index)
        units = [(members, sum(len(engine.groups[i].group) or 1
                               for i in members))
                 for members in buckets.values()]
    else:
        units = [([index], len(compiled.group) or 1)
                 for index, compiled in enumerate(engine.groups)]
    return _distribute(units, workers)


# -- the dispatcher ----------------------------------------------------------


class ParallelScanner:
    """Sharded dispatch of one engine's scans across a worker pool."""

    def __init__(self, engine, config: Optional[ScanConfig] = None):
        self.engine = engine
        self.config = config if config is not None else engine.config
        #: faults of the most recent dispatch (empty on a clean run)
        self.faults: List[ShardFault] = []
        self._cache_dir = self._prepare_cache()
        self.pool = WorkerPool(self.config, cache_dir=self._cache_dir)

    def _prepare_cache(self) -> Optional[str]:
        """Attach (and pre-seed) the shared on-disk kernel cache when
        process workers will need to rebuild compiled kernels."""
        if self.config.executor != "process":
            return self.config.cache_dir
        from .diskcache import DiskKernelCache, default_cache_dir

        cache_dir = self.config.cache_dir or default_cache_dir()
        try:
            DiskKernelCache(cache_dir)
        except OSError:
            return None
        worker_mod.attach_disk_cache(cache_dir)
        if self.engine.backend == "compiled":
            # Parent-side compilation now writes the artefacts the
            # workers will load instead of recompiling.
            self.engine._compiled_programs()
        return cache_dir

    def _zero_copy(self) -> bool:
        """Whether shard data should ride in shared memory: only
        process workers live in another address space."""
        return (self.config.executor == "process"
                and self.config.shared_memory)

    # -- many streams, whole engine per shard -----------------------------

    def match_many(self, streams: Sequence[bytes]) -> List:
        compiled = self.engine.backend == "compiled"
        plan = plan_stream_shards(streams, self.config.workers,
                                  preserve_batches=compiled)
        if len(plan) <= 1:
            self.faults = []
            return self.engine.match_many(streams,
                                          config=self.config.serial())
        _SHARDS_DISPATCHED.inc(len(plan), kind="stream")
        # The deadline starts *before* arena sizing and shard prep:
        # ScanConfig.deadline_s bounds the whole dispatch, not just
        # the worker waits.
        deadline = Deadline.start(self.config.deadline_s)
        zero_copy = self._zero_copy()
        arena = self._stream_arena(streams, plan, compiled) \
            if zero_copy else None
        try:
            with obs.span("scan.parallel", category="scan",
                          kind="stream", shards=len(plan),
                          workers=self.config.workers,
                          executor=self.config.executor,
                          zero_copy=zero_copy):
                if arena is not None:
                    prepare = self._stream_prepare(streams, arena,
                                                   compiled)
                    shard_results, self.faults = self.pool.map_shards(
                        worker_mod.scan_streams, plan,
                        serial_fn=self._serial_streams,
                        prepare=prepare, deadline=deadline)
                else:
                    payloads = [(self.engine,
                                 [streams[i] for i in shard],
                                 self._cache_dir) for shard in plan]
                    shard_results, self.faults = self.pool.map_shards(
                        worker_mod.scan_streams, payloads,
                        serial_fn=self._serial_streams,
                        deadline=deadline)
        finally:
            if arena is not None:
                arena.release()
        results = [None] * len(streams)
        for shard, shard_result in zip(plan, shard_results):
            for index, result in zip(shard, shard_result):
                results[index] = result
        return results

    def _stream_arena(self, streams, plan, compiled: bool
                      ) -> SharedArena:
        """One arena sized for every shard's payload, up front — the
        per-shard prepare stage then bump-allocates into it."""
        from ..backend.runtime import word_count

        capacity = 0
        for shard in plan:
            if compiled:
                sizes: Dict[int, int] = {}
                for i in shard:
                    size = len(streams[i])
                    sizes[size] = sizes.get(size, 0) + 1
                for size, k in sizes.items():
                    capacity += 8 * k * word_count(size + 1) * 8 + 64
            else:
                for i in shard:
                    capacity += len(streams[i]) + 64
        return SharedArena(capacity, tag="streams")

    def _stream_prepare(self, streams, arena: SharedArena,
                        compiled: bool):
        """The overlap stage: pack (and for the compiled backend,
        pre-transpose) one shard's payload into the arena.  Called by
        the pool's submission loop, so shard N packs while shard N-1
        already executes."""
        from ..backend.executor import stream_length_classes
        from ..backend.runtime import basis_environment, word_count

        def prepare(shard: List[int]):
            shard_streams = [streams[i] for i in shard]
            with obs.span("shard.prepare", category="scan",
                          streams=len(shard_streams),
                          compiled=compiled):
                sizes = tuple(len(s) for s in shard_streams)
                if not compiled:
                    spec = StreamShardSpec(
                        sizes=sizes,
                        raw=tuple(arena.put_bytes(s)
                                  for s in shard_streams))
                    return (self.engine, spec, self._cache_dir)
                classes = []
                for size, members in \
                        stream_length_classes(shard_streams):
                    words = word_count(size + 1)
                    if len(members) == 1:
                        view, ref = arena.alloc_array((8, words))
                        view[...] = basis_environment(
                            shard_streams[members[0]])
                    else:
                        view, ref = arena.alloc_array(
                            (8, len(members), words))
                        for row, member in enumerate(members):
                            view[:, row, :] = basis_environment(
                                shard_streams[member])
                    classes.append((size, tuple(members), ref))
                spec = StreamShardSpec(sizes=sizes,
                                       classes=tuple(classes))
            return (self.engine, spec, self._cache_dir)

        return prepare

    def _serial_streams(self, payload) -> List:
        """In-process recovery: identical maths whether the shard's
        payload is inline streams or shared-memory descriptors (the
        parent resolves its own arena without re-attaching)."""
        engine, shard, _ = payload
        if isinstance(shard, StreamShardSpec):
            if shard.classes is not None:
                return engine.match_many_words(list(shard.sizes),
                                               shard.resolve_classes())
            shard = shard.resolve_streams()
        return engine.match_many(shard, config=self.config.serial())

    # -- one stream, groups sharded ---------------------------------------

    def match(self, data: bytes):
        """Group-sharded single-input match; merged result is
        bit-identical (positions, per-CTA and aggregate metrics) to
        ``engine.match(data)``."""
        plan = plan_group_shards(self.engine, self.config.workers)
        if len(plan) <= 1:
            self.faults = []
            return self.engine.match(data)
        _SHARDS_DISPATCHED.inc(len(plan), kind="group")
        deadline = Deadline.start(self.config.deadline_s)
        compiled = self.engine.backend == "compiled"
        zero_copy = self._zero_copy() and compiled
        arena = None
        payload_data: object = data
        if zero_copy:
            from ..backend.runtime import basis_environment, word_count

            words = word_count(len(data) + 1)
            arena = SharedArena(8 * words * 8 + 64, tag="groups")
            # One transpose, shared by every group shard — serial
            # transposes once too, so the parallel path no longer
            # multiplies that cost by the worker count.
            view, ref = arena.alloc_array((8, words))
            view[...] = basis_environment(data)
            payload_data = GroupShardSpec(len(data), ref)
        try:
            with obs.span("scan.parallel", category="scan",
                          kind="group", shards=len(plan),
                          workers=self.config.workers,
                          executor=self.config.executor,
                          zero_copy=zero_copy):
                payloads = [(self.engine, shard, payload_data,
                             self._cache_dir) for shard in plan]
                shard_results, self.faults = self.pool.map_shards(
                    worker_mod.scan_groups, payloads,
                    serial_fn=self._serial_groups, deadline=deadline)
        finally:
            if arena is not None:
                arena.release()
        return self._merge_group_results(shard_results, len(data))

    def _serial_groups(self, payload) -> Tuple:
        from ..core.engine import BitGenEngine

        engine, group_indices, data, _ = payload
        sub = BitGenEngine([engine.groups[i] for i in group_indices],
                           engine.pattern_count,
                           config=self.config.serial())
        if isinstance(data, GroupShardSpec):
            return group_indices, sub.match_words(data.basis.resolve(),
                                                  data.input_bytes)
        return group_indices, sub.match(data)

    def _merge_group_results(self, shard_results, input_bytes: int):
        from ..core.engine import BitGenResult

        merged = BitGenResult(pattern_count=self.engine.pattern_count,
                              input_bytes=input_bytes)
        merged.cta_metrics = [None] * len(self.engine.groups)
        for group_indices, result in shard_results:
            for row, group_index in enumerate(group_indices):
                merged.cta_metrics[group_index] = \
                    result.cta_metrics[row]
                for pattern in self.engine.groups[group_index] \
                        .group.indices:
                    merged.ends[pattern] = result.ends[pattern]
        # Aggregate in serial (group) order so max/sum folds agree.
        for metrics in merged.cta_metrics:
            merged.metrics.merge(metrics)
        return merged

    # -- streaming sessions ------------------------------------------------

    def sessions(self, chunk_lists: Sequence[Sequence[bytes]]
                 ) -> List[ScanReport]:
        """Run one full multi-chunk streaming session per logical
        stream, sessions fanned across the pool."""
        _SHARDS_DISPATCHED.inc(len(chunk_lists), kind="session")
        deadline = Deadline.start(self.config.deadline_s)
        with obs.span("scan.parallel", category="scan",
                      kind="session", shards=len(chunk_lists),
                      workers=self.config.workers,
                      executor=self.config.executor):
            payloads = [(self.engine, list(chunks), self.config,
                         self._cache_dir) for chunks in chunk_lists]
            reports, self.faults = self.pool.map_shards(
                worker_mod.run_session, payloads, deadline=deadline)
        for fault in self.faults:
            reports[fault.shard].faults.append(fault)
        return reports


# -- module-level conveniences ----------------------------------------------


def parallel_match_many(engine, streams: Sequence[bytes],
                        config: Optional[ScanConfig] = None) -> List:
    scanner = ParallelScanner(engine, config)
    results = scanner.match_many(streams)
    engine.last_scan_faults = scanner.faults
    engine.last_pool_state = scanner.pool.last_pool_state
    return results


def parallel_match(engine, data: bytes,
                   config: Optional[ScanConfig] = None):
    scanner = ParallelScanner(engine, config)
    result = scanner.match(data)
    engine.last_scan_faults = scanner.faults
    engine.last_pool_state = scanner.pool.last_pool_state
    return result


def parallel_sessions(engine, chunk_lists: Sequence[Sequence[bytes]],
                      config: Optional[ScanConfig] = None
                      ) -> List[ScanReport]:
    scanner = ParallelScanner(engine, config)
    reports = scanner.sessions(chunk_lists)
    engine.last_scan_faults = scanner.faults
    engine.last_pool_state = scanner.pool.last_pool_state
    return reports


def parallel_run_all(harness, apps: Sequence[str],
                     engines: Sequence[str],
                     config: ScanConfig) -> List:
    """Fan the harness's (app, engine) grid across a pool; one cell per
    task, results in the serial grid order, faults recovered by running
    the cell in the parent harness."""
    cells = [(app, engine) for app in apps for engine in engines]
    cache_dir = None
    if config.executor == "process":
        from .diskcache import default_cache_dir

        cache_dir = config.cache_dir or default_cache_dir()
        worker_mod.attach_disk_cache(cache_dir)
    spec = (harness.config.serial(), harness.scale,
            harness.input_bytes, harness.seed)
    payloads = [(spec, app, engine, cache_dir)
                for app, engine in cells]
    pool = WorkerPool(config, cache_dir=cache_dir)
    _SHARDS_DISPATCHED.inc(len(cells), kind="grid")
    with obs.span("scan.parallel", category="scan", kind="grid",
                  shards=len(cells), workers=config.workers,
                  executor=config.executor):
        results, faults = pool.map_shards(
            worker_mod.run_cell, payloads,
            serial_fn=lambda payload: harness.run(payload[1],
                                                  payload[2]))
    harness.last_scan_faults = faults
    return results

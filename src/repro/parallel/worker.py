"""Worker-side shard execution.

Every function here is a plain module-level callable (picklable by
reference for process pools) taking one payload tuple and returning one
shard result.  Workers always run their shard **serially**
(``config.serial()``) — parallel-in-parallel recursion is forbidden by
construction — and attach the shared on-disk kernel cache before
compiling anything, so a kernel the parent (or a sibling) already
built is loaded from its marshalled artefact instead of being
re-generated.  Persistent pools attach the cache once at spawn via
:func:`init_worker` (the executor initializer), so even a worker's
first shard starts warm.

Shard payloads stay small: the engine's programs/plans pickle cheaply
(compiled kernels are dropped by :meth:`BitGenEngine.__getstate__` and
rebuilt through the disk cache — or inherited outright under the
``fork`` start method), while the *bulk* — input byte batches and
pre-transposed basis word arrays — crosses as
:class:`~repro.parallel.shm.ShmBytes` / :class:`ShmArray` descriptors
resolved zero-copy out of the parent's :class:`SharedArena` segment
(:class:`StreamShardSpec`, :class:`GroupShardSpec`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..resilience import chaos
from ..resilience.chaos import InjectedFault  # noqa: F401  (back-compat)
from .report import ScanReport
from .shm import ShmArray, ShmBytes

#: Legacy all-sites fault hook, still honoured as a shim by the chaos
#: framework; new code should use ``$REPRO_CHAOS`` / a ChaosPlan
#: (:mod:`repro.resilience.chaos`) for site/probability/count control.
FAULT_ENV = chaos.LEGACY_FAULT_ENV

_CELLS_RUN = obs.registry().counter(
    "repro_worker_cells_total",
    "Harness grid cells executed worker-side, by engine")


def attach_disk_cache(cache_dir: Optional[str]) -> None:
    """Back the process-wide kernel cache with ``cache_dir``."""
    if not cache_dir:
        return
    from ..backend import kernel_cache
    from .diskcache import DiskKernelCache

    cache = kernel_cache()
    disk = getattr(cache, "disk", None)
    if disk is None or disk.path != cache_dir:
        cache.attach_disk(DiskKernelCache(cache_dir))


def init_worker(cache_dir: Optional[str] = None) -> None:
    """Persistent-pool initializer: pre-seed the worker at spawn so
    its first shard is as warm as its hundredth.  Failures are
    swallowed — the cache is an accelerator, and an initializer that
    raises would poison the whole pool."""
    try:
        attach_disk_cache(cache_dir)
    except Exception:
        pass


# -- zero-copy shard payloads ------------------------------------------------


@dataclass(frozen=True)
class StreamShardSpec:
    """One stream shard's data, resident in shared memory.

    ``sizes`` are the per-stream byte lengths in shard-local order.
    Exactly one of the two carriers is set: ``classes`` holds
    pre-transposed basis word arrays per length class (compiled
    backend — workers skip the transpose entirely), ``raw`` holds the
    input byte ranges (simulating backend)."""

    sizes: Tuple[int, ...]
    classes: Optional[Tuple[Tuple[int, Tuple[int, ...], ShmArray],
                            ...]] = None
    raw: Optional[Tuple[ShmBytes, ...]] = None

    def resolve_classes(self) -> List[Tuple[int, List[int], object]]:
        return [(size, list(indices), ref.resolve())
                for size, indices, ref in self.classes]

    def resolve_streams(self) -> List[bytes]:
        return [bytes(ref.resolve()) for ref in self.raw]


@dataclass(frozen=True)
class GroupShardSpec:
    """One group shard's input: the whole input's basis words,
    transposed once by the parent and shared by every shard."""

    input_bytes: int
    basis: ShmArray


# -- shard tasks -------------------------------------------------------------


def scan_streams(payload) -> List:
    """One stream-shard: ``engine.match_many`` over a subset of the
    dispatch's streams, serial inside the worker (batched CTA dispatch
    stays intact because shards hold whole length classes).  Shared-
    memory shards execute straight on the parent's transposed words."""
    engine, shard, cache_dir = payload
    chaos.maybe_inject("worker.stream")
    attach_disk_cache(cache_dir)
    if isinstance(shard, StreamShardSpec):
        if shard.classes is not None:
            return engine.match_many_words(list(shard.sizes),
                                           shard.resolve_classes())
        return engine.match_many(shard.resolve_streams(),
                                 config=engine.config.serial())
    return engine.match_many(shard, config=engine.config.serial())


def scan_groups(payload) -> Tuple:
    """One group-shard: a sub-engine over a subset of the engine's
    compiled groups (whole kernel-fingerprint buckets, so the batched
    2D dispatch inside the shard equals the serial bucket), run over
    one input.  Returns ``(group_indices, result)``."""
    from ..core.engine import BitGenEngine

    engine, group_indices, data, cache_dir = payload
    chaos.maybe_inject("worker.group")
    attach_disk_cache(cache_dir)
    sub = BitGenEngine([engine.groups[i] for i in group_indices],
                       engine.pattern_count,
                       config=engine.config.serial())
    if isinstance(data, GroupShardSpec):
        return group_indices, sub.match_words(data.basis.resolve(),
                                              data.input_bytes)
    return group_indices, sub.match(data)


def run_session(payload) -> ScanReport:
    """One streaming session: all chunks of one logical stream fed
    through a fresh :class:`StreamingMatcher`, in order."""
    from ..core.streaming import StreamingMatcher

    engine, chunks, config, cache_dir = payload
    chaos.maybe_inject("worker.session")
    attach_disk_cache(cache_dir)
    matcher = StreamingMatcher(engine, config=config.serial())
    return matcher.feed_all(chunks)


#: Per-process memo of harness instances, keyed by their build spec —
#: one worker serving many (app, engine) cells builds each workload
#: and each compiled engine once, like the parent's harness does.
_HARNESS_MEMO: Dict[Tuple, object] = {}


def run_cell(payload):
    """One harness cell: ``Harness(...).run(app, engine_name)``."""
    from ..perf.harness import Harness

    spec, app, engine_name, cache_dir = payload
    chaos.maybe_inject("worker.cell")
    attach_disk_cache(cache_dir)
    config, scale, input_bytes, seed = spec
    key = (config, scale, input_bytes, seed)
    harness = _HARNESS_MEMO.get(key)
    if harness is None:
        harness = Harness(config=config, scale=scale,
                          input_bytes=input_bytes, seed=seed)
        _HARNESS_MEMO[key] = harness
    _CELLS_RUN.inc(engine=engine_name)
    with obs.span("cell", category="scan", app=app,
                  engine=engine_name):
        return harness.run(app, engine_name)

"""Worker-side shard execution.

Every function here is a plain module-level callable (picklable by
reference for process pools) taking one payload tuple and returning one
shard result.  Workers always run their shard **serially**
(``config.serial()``) — parallel-in-parallel recursion is forbidden by
construction — and attach the shared on-disk kernel cache before
compiling anything, so a kernel the parent (or a sibling) already
built is loaded from its marshalled artefact instead of being
re-generated.

Shard payloads deliberately carry the whole engine: programs, plans and
groups pickle cheaply, while the memoised *compiled* kernels are
dropped by :meth:`BitGenEngine.__getstate__` and rebuilt in the worker
through the disk cache.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from .report import ScanReport

#: Test hook: when this variable names a fault kind, workers raise
#: before touching their shard, so the dispatcher's graceful
#: degradation can be exercised end to end (tests/parallel).
FAULT_ENV = "REPRO_PARALLEL_FAULT_INJECT"

_FAULTS_INJECTED = obs.registry().counter(
    "repro_fault_injections_total",
    f"Faults raised by the ${FAULT_ENV} test hook")
_CELLS_RUN = obs.registry().counter(
    "repro_worker_cells_total",
    "Harness grid cells executed worker-side, by engine")


class InjectedFault(RuntimeError):
    """Raised by workers when the fault-injection hook is armed."""


def _maybe_inject_fault() -> None:
    if os.environ.get(FAULT_ENV):
        _FAULTS_INJECTED.inc()
        raise InjectedFault(f"fault injected via ${FAULT_ENV}")


def attach_disk_cache(cache_dir: Optional[str]) -> None:
    """Back the process-wide kernel cache with ``cache_dir``."""
    if not cache_dir:
        return
    from ..backend import kernel_cache
    from .diskcache import DiskKernelCache

    cache = kernel_cache()
    disk = getattr(cache, "disk", None)
    if disk is None or disk.path != cache_dir:
        cache.attach_disk(DiskKernelCache(cache_dir))


# -- shard tasks -------------------------------------------------------------


def scan_streams(payload) -> List:
    """One stream-shard: ``engine.match_many`` over a subset of the
    dispatch's streams, serial inside the worker (batched CTA dispatch
    stays intact because shards hold whole length classes)."""
    engine, streams, cache_dir = payload
    _maybe_inject_fault()
    attach_disk_cache(cache_dir)
    return engine.match_many(streams, config=engine.config.serial())


def scan_groups(payload) -> Tuple:
    """One group-shard: a sub-engine over a subset of the engine's
    compiled groups (whole kernel-fingerprint buckets, so the batched
    2D dispatch inside the shard equals the serial bucket), run over
    one input.  Returns ``(group_indices, result)``."""
    from ..core.engine import BitGenEngine

    engine, group_indices, data, cache_dir = payload
    _maybe_inject_fault()
    attach_disk_cache(cache_dir)
    sub = BitGenEngine([engine.groups[i] for i in group_indices],
                       engine.pattern_count,
                       config=engine.config.serial())
    return group_indices, sub.match(data)


def run_session(payload) -> ScanReport:
    """One streaming session: all chunks of one logical stream fed
    through a fresh :class:`StreamingMatcher`, in order."""
    from ..core.streaming import StreamingMatcher

    engine, chunks, config, cache_dir = payload
    _maybe_inject_fault()
    attach_disk_cache(cache_dir)
    matcher = StreamingMatcher(engine, config=config.serial())
    return matcher.feed_all(chunks)


#: Per-process memo of harness instances, keyed by their build spec —
#: one worker serving many (app, engine) cells builds each workload
#: and each compiled engine once, like the parent's harness does.
_HARNESS_MEMO: Dict[Tuple, object] = {}


def run_cell(payload):
    """One harness cell: ``Harness(...).run(app, engine_name)``."""
    from ..perf.harness import Harness

    spec, app, engine_name, cache_dir = payload
    _maybe_inject_fault()
    attach_disk_cache(cache_dir)
    config, scale, input_bytes, seed = spec
    key = (config, scale, input_bytes, seed)
    harness = _HARNESS_MEMO.get(key)
    if harness is None:
        harness = Harness(config=config, scale=scale,
                          input_bytes=input_bytes, seed=seed)
        _HARNESS_MEMO[key] = harness
    _CELLS_RUN.inc(engine=engine_name)
    with obs.span("cell", category="scan", app=app,
                  engine=engine_name):
        return harness.run(app, engine_name)

"""Worker pools with graceful degradation.

:class:`WorkerPool` is the dispatch layer's only executor abstraction:
a process pool for the CPU-bound compiled kernels, a thread pool when
process start-up (or pickling) costs more than it buys, and a serial
mode that is also the universal fallback.  The contract the sharded
scanner relies on:

* results come back **in submission order** — merging stays trivial;
* a worker crash, a timeout, or a broken/unstartable pool never loses
  a shard: the shard re-runs **in-process through the serial
  function**, and the incident is recorded as a
  :class:`~repro.parallel.report.ShardFault`;
* ``workers=1`` (or ``executor="serial"``) bypasses pools entirely, so
  the serial path stays the single source of truth for results.
"""

from __future__ import annotations

import concurrent.futures as futures
from typing import Callable, List, Optional, Sequence, Tuple

from .. import obs
from ..obs.propagate import run_traced, unwrap
from .config import ScanConfig
from .report import ShardFault

_SHARD_FAULTS = obs.registry().counter(
    "repro_shard_faults_total",
    "Worker faults the pool degraded around, by kind")


class WorkerPool:
    """Runs one payload list through a pool, falling back per shard."""

    def __init__(self, config: ScanConfig):
        self.config = config
        self.workers = max(1, config.workers)
        self.executor = config.executor
        self.timeout = config.worker_timeout

    # -- the one entry point ----------------------------------------------

    def map_shards(self, fn: Callable, payloads: Sequence,
                   serial_fn: Optional[Callable] = None
                   ) -> Tuple[List, List[ShardFault]]:
        """``[fn(p) for p in payloads]`` through the pool.

        Returns ``(results, faults)`` with results in payload order.
        ``serial_fn`` (default ``fn``) recovers any shard whose worker
        faulted; a fault in the serial fallback itself propagates —
        at that point the failure is the workload's, not the pool's.
        """
        recover = serial_fn if serial_fn is not None else fn
        tracer = obs.current_tracer()
        ctx = tracer.current_context() if tracer is not None else None

        def run_inline(index: int, payload, fallback: bool = False):
            """A shard run in this process, under its own span."""
            with obs.span("shard", category="scan", shard=index,
                          inline=True, fallback=fallback):
                return recover(payload)

        if (self.workers == 1 or self.executor == "serial"
                or len(payloads) <= 1):
            return [run_inline(i, payload)
                    for i, payload in enumerate(payloads)], []

        try:
            executor = self._make_executor(min(self.workers,
                                               len(payloads)))
        except Exception as exc:  # pool could not start at all
            faults = [ShardFault(shard=i, kind="pool", error=repr(exc))
                      for i in range(len(payloads))]
            self._count_faults(faults)
            return [run_inline(i, payload, fallback=True)
                    for i, payload in enumerate(payloads)], faults

        results: List = [None] * len(payloads)
        faults: List[ShardFault] = []
        hung = False
        try:
            try:
                # With a tracer recording, shards run through the span
                # marshaller: same-process workers record directly,
                # process workers ship their spans back for adoption.
                if tracer is not None:
                    pending = [executor.submit(run_traced, fn, ctx,
                                               index, payload)
                               for index, payload
                               in enumerate(payloads)]
                else:
                    pending = [executor.submit(fn, payload)
                               for payload in payloads]
            except Exception as exc:
                faults = [ShardFault(shard=i, kind="pool",
                                     error=repr(exc))
                          for i in range(len(payloads))]
                self._count_faults(faults)
                return ([run_inline(i, payload, fallback=True)
                         for i, payload in enumerate(payloads)],
                        faults)
            broken = False
            for index, future in enumerate(pending):
                if broken:
                    future.cancel()
                    faults.append(ShardFault(shard=index, kind="pool",
                                             error="pool broken by an "
                                                   "earlier shard"))
                    results[index] = run_inline(index, payloads[index],
                                                fallback=True)
                    continue
                try:
                    results[index] = unwrap(
                        future.result(timeout=self.timeout), tracer)
                except futures.TimeoutError:
                    future.cancel()
                    hung = True
                    faults.append(ShardFault(
                        shard=index, kind="timeout",
                        error=f"worker exceeded {self.timeout}s"))
                    results[index] = run_inline(index, payloads[index],
                                                fallback=True)
                except futures.BrokenExecutor as exc:
                    broken = True
                    faults.append(ShardFault(shard=index, kind="pool",
                                             error=repr(exc)))
                    results[index] = run_inline(index, payloads[index],
                                                fallback=True)
                except Exception as exc:
                    faults.append(ShardFault(shard=index, kind="error",
                                             error=repr(exc)))
                    results[index] = run_inline(index, payloads[index],
                                                fallback=True)
        finally:
            # Don't block shutdown on a worker we already timed out.
            executor.shutdown(wait=not hung, cancel_futures=hung)
        self._count_faults(faults)
        return results, faults

    @staticmethod
    def _count_faults(faults: Sequence[ShardFault]) -> None:
        for fault in faults:
            _SHARD_FAULTS.inc(kind=fault.kind)

    # -- executor construction --------------------------------------------

    def _make_executor(self, max_workers: int):
        if self.executor == "thread":
            return futures.ThreadPoolExecutor(max_workers=max_workers)
        return futures.ProcessPoolExecutor(max_workers=max_workers)

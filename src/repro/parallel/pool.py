"""Worker pools with graceful degradation — persistent and warm.

:class:`WorkerPool` is the dispatch layer's only executor abstraction:
a process pool for the CPU-bound compiled kernels, a thread pool when
process start-up (or pickling) costs more than it buys, and a serial
mode that is also the universal fallback.  The contract the sharded
scanner relies on:

* results come back **in submission order** — merging stays trivial;
* a worker crash, a timeout, or a broken/unstartable pool never loses
  a shard: the shard re-runs **in-process through the serial
  function**, and the incident is recorded as a
  :class:`~repro.parallel.report.ShardFault`;
* ``workers=1`` (or ``executor="serial"``) bypasses pools entirely, so
  the serial path stays the single source of truth for results.

Executors are no longer built per dispatch.  A module-level registry
keeps one **persistent pool** per ``(executor, workers, start_method)``
key, reused across scans: ``BENCH_parallel.json`` showed a fresh
``ProcessPoolExecutor`` per scan costing more than the scan itself.
Process pools are created with an initializer that pre-attaches the
shared on-disk kernel cache, so even a cold pool's workers start with
the parent's compiled artefacts (and, under ``fork``, its entire
in-memory kernel cache).  The registry is fork-aware — a pool created
before ``os.fork()`` is silently abandoned in the child, never joined —
and torn down via ``atexit`` or an explicit
:func:`repro.parallel.shutdown`.  A pool poisoned by a timeout or a
crash is discarded (the next scan pays one cold start) rather than
reused; warm/cold acquisitions and discards are counted in
:mod:`repro.obs`.
"""

from __future__ import annotations

import atexit
import concurrent.futures as futures
import os
import random
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..obs.propagate import run_traced, unwrap
from ..resilience import chaos
from ..resilience.breaker import CircuitBreaker
from ..resilience.deadline import Deadline
from ..resilience.policy import RetryPolicy, ScanAbortedError
from .config import ScanConfig
from .report import ShardFault, format_fault_traceback
from . import worker as worker_mod

_REG = obs.registry()
_SHARD_FAULTS = _REG.counter(
    "repro_shard_faults_total",
    "Worker faults the pool degraded around, by kind")
_POOL_REUSE = _REG.counter(
    "repro_parallel_pool_reuse_total",
    "Executor acquisitions by the sharded dispatcher: state=warm "
    "reused a persistent pool, state=cold built one")
_POOL_DISCARDS = _REG.counter(
    "repro_parallel_pool_discards_total",
    "Persistent pools discarded, by reason "
    "(timeout, broken, fork, shutdown)")
_POOLS_ACTIVE = _REG.gauge(
    "repro_parallel_pools_active",
    "Persistent worker pools currently alive in the registry")
_RETRY_ATTEMPTS = _REG.counter(
    "repro_retry_attempts_total",
    "Per-shard retry attempts under on_fault='retry', by outcome")
_DEADLINE_EXCEEDED = _REG.counter(
    "repro_deadline_exceeded_total",
    "Shard waits cut short because the scan deadline expired")
_BREAKER_INLINE = _REG.counter(
    "repro_breaker_inline_total",
    "Dispatches forced inline because the pool circuit was open")

#: The circuit breaker guarding the persistent-pool registry: K
#: consecutive *pool-level* faults (broken executor, hung worker, an
#: executor that would not start) open it, and dispatch goes inline
#: for a cooldown instead of paying a cold-start storm against a
#: broken start method.  Shard-level faults (a worker exception) never
#: trip it.  Tests monkeypatch the module attribute.
_BREAKER = CircuitBreaker(
    name="pool",
    threshold=int(os.environ.get("REPRO_BREAKER_THRESHOLD", "3")),
    cooldown_s=float(os.environ.get("REPRO_BREAKER_COOLDOWN", "30")))

#: jitter source for retry backoff (never affects results)
_RETRY_RNG = random.Random()

#: sentinel: every retry attempt faulted (or the deadline ran out)
_RETRY_FAILED = object()


def breaker() -> CircuitBreaker:
    """The pool registry's circuit breaker (one per process)."""
    return _BREAKER

#: (executor kind, workers, start method or None) → live pool
PoolKey = Tuple[str, int, Optional[str]]


class _PoolEntry:
    __slots__ = ("executor", "pid", "dispatches")

    def __init__(self, executor, pid: int):
        self.executor = executor
        self.pid = pid
        self.dispatches = 0


_POOLS: Dict[PoolKey, _PoolEntry] = {}
_POOLS_LOCK = threading.RLock()


def _acquire_persistent(key: PoolKey, build: Callable
                        ) -> Tuple[object, str]:
    """The registry's get-or-create: ``(executor, "warm"|"cold")``.

    The executor is built outside the lock — worker start-up must
    never fork/spawn while registry state is held.
    """
    with _POOLS_LOCK:
        entry = _POOLS.get(key)
        if entry is not None and entry.pid != os.getpid():
            # Fork-awareness: the child inherited the registry dict
            # but not the pool's worker processes/threads.  Abandon
            # the entry (never join another process's children).
            _POOLS.pop(key, None)
            _POOLS_ACTIVE.set(len(_POOLS))
            _POOL_DISCARDS.inc(reason="fork")
            entry = None
        if entry is not None:
            entry.dispatches += 1
            _POOL_REUSE.inc(state="warm")
            return entry.executor, "warm"
    executor = build()
    with _POOLS_LOCK:
        entry = _POOLS.get(key)
        if entry is not None and entry.pid == os.getpid():
            # Lost a (rare) build race; keep the registered pool.
            entry.dispatches += 1
            _POOL_REUSE.inc(state="warm")
            racing = executor
        else:
            new_entry = _PoolEntry(executor, os.getpid())
            new_entry.dispatches = 1
            _POOLS[key] = new_entry
            _POOLS_ACTIVE.set(len(_POOLS))
            _POOL_REUSE.inc(state="cold")
            return executor, "cold"
    racing.shutdown(wait=False, cancel_futures=True)
    return entry.executor, "warm"


def _discard(executor, reason: str) -> None:
    """Drop ``executor`` from the registry and stop it without
    waiting — a pool that timed out or broke must not poison the next
    scan, and a hung worker must not block this one."""
    with _POOLS_LOCK:
        for key, entry in list(_POOLS.items()):
            if entry.executor is executor:
                _POOLS.pop(key, None)
        _POOLS_ACTIVE.set(len(_POOLS))
    _POOL_DISCARDS.inc(reason=reason)
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def shutdown(wait: bool = True) -> None:
    """Tear down every persistent pool.  Long-lived processes (servers,
    notebooks) should call :func:`repro.parallel.shutdown` when done
    scanning; short-lived ones are covered by ``atexit``."""
    with _POOLS_LOCK:
        entries = [entry for entry in _POOLS.values()
                   if entry.pid == os.getpid()]
        count = len(_POOLS)
        _POOLS.clear()
        _POOLS_ACTIVE.set(0)
    if count:
        _POOL_DISCARDS.inc(count, reason="shutdown")
    for entry in entries:
        try:
            entry.executor.shutdown(wait=wait, cancel_futures=True)
        except Exception:
            pass


#: registry key kind for the serve gateway's loop-offload thread pool.
#: Its own key — never shared with thread-executor shard dispatch — so
#: a saturated offload pool (every thread inside a scan that is itself
#: dispatching shards) can never deadlock waiting on its own threads.
OFFLOAD_KIND = "serve-offload"


def offload_pool(workers: int) -> futures.ThreadPoolExecutor:
    """The persistent gateway-offload thread pool (get-or-create).

    Lives in the same registry as the shard-dispatch pools — fork-aware,
    covered by :func:`shutdown` and atexit — but under its own key, and
    without touching the warm/cold dispatch counters the parallel
    speedup guard asserts on."""
    key: PoolKey = (OFFLOAD_KIND, workers, None)
    with _POOLS_LOCK:
        entry = _POOLS.get(key)
        if entry is not None and entry.pid != os.getpid():
            _POOLS.pop(key, None)
            _POOL_DISCARDS.inc(reason="fork")
            entry = None
        if entry is None:
            # Thread pools spawn lazily: building one under the lock
            # forks/spawns nothing.
            executor = futures.ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve")
            entry = _PoolEntry(executor, os.getpid())
            _POOLS[key] = entry
            _POOLS_ACTIVE.set(len(_POOLS))
        entry.dispatches += 1
        return entry.executor


def pool_stats() -> Dict[str, float]:
    """Warm/cold acquisition counters plus live-pool count — what the
    bench records per row."""
    return {
        "warm": _POOL_REUSE.value(state="warm"),
        "cold": _POOL_REUSE.value(state="cold"),
        "active": _POOLS_ACTIVE.value() or 0,
    }


atexit.register(shutdown, wait=False)


class WorkerPool:
    """Runs one payload list through a pool, falling back per shard."""

    def __init__(self, config: ScanConfig,
                 cache_dir: Optional[str] = None):
        self.config = config
        self.workers = max(1, config.workers)
        self.executor = config.executor
        self.timeout = config.worker_timeout
        #: resolved kernel-cache directory handed to the process-pool
        #: initializer, so warm workers pre-attach it at spawn
        self.cache_dir = cache_dir if cache_dir is not None \
            else config.cache_dir
        #: how the last dispatch got its executor:
        #: "inline" | "warm" | "cold"
        self.last_pool_state = "inline"

    # -- the one entry point ----------------------------------------------

    def map_shards(self, fn: Callable, payloads: Sequence,
                   serial_fn: Optional[Callable] = None,
                   prepare: Optional[Callable] = None,
                   deadline: Optional[Deadline] = None
                   ) -> Tuple[List, List[ShardFault]]:
        """``[fn(prepare(p)) for p in payloads]`` through the pool.

        Returns ``(results, faults)`` with results in payload order.
        ``serial_fn`` (default ``fn``) recovers any shard whose worker
        faulted; a fault in the serial fallback itself propagates —
        at that point the failure is the workload's, not the pool's.

        ``prepare`` (optional) maps each raw payload to the payload
        actually submitted, and runs **interleaved with execution**:
        shard N is prepared in the parent while shards < N already run
        in workers.  The sharded scanner uses it to overlap the
        transpose/pack stage with kernel execution.

        Fault handling follows ``config.on_fault``: ``"degrade"``
        recovers inline (the historical behaviour), ``"retry"`` first
        retries the shard on a fresh pool with backoff
        (:class:`RetryPolicy`), ``"fail"`` raises
        :class:`ScanAbortedError` on the first fault.  ``deadline``
        (or ``config.deadline_s``) caps every blocking wait of the
        dispatch with one shared monotonic budget; expired shards are
        reported as ``ShardFault(kind="deadline")`` and recovered
        inline, never retried.
        """
        recover = serial_fn if serial_fn is not None else fn
        tracer = obs.current_tracer()
        ctx = tracer.current_context() if tracer is not None else None
        self.last_pool_state = "inline"
        config = self.config
        if deadline is None:
            deadline = Deadline.start(config.deadline_s)
        retry = RetryPolicy.from_config(config)

        prepared: List = [None] * len(payloads)
        ready = [False] * len(payloads)

        def prep(index: int):
            if not ready[index]:
                prepared[index] = payloads[index] if prepare is None \
                    else prepare(payloads[index])
                ready[index] = True
            return prepared[index]

        def run_inline(index: int, fallback: bool = False):
            """A shard run in this process, under its own span.  Chaos
            is suppressed for the recovery thread: inline degrade must
            stay the always-safe path even mid-injection (an "exit"
            fault re-raised here would kill the parent)."""
            with obs.span("shard", category="scan", shard=index,
                          inline=True, fallback=fallback):
                with chaos.suppress():
                    return recover(prep(index))

        if (self.workers == 1 or self.executor == "serial"
                or len(payloads) <= 1):
            return [run_inline(i) for i in range(len(payloads))], []

        if not _BREAKER.allow():
            # Circuit open: the registry recently produced K broken
            # pools in a row.  Run inline for the cooldown instead of
            # paying a cold-start storm; a half-open probe dispatch
            # will test the pool path again once the cooldown elapses.
            self.last_pool_state = "breaker-open"
            _BREAKER_INLINE.inc()
            return [run_inline(i) for i in range(len(payloads))], []

        results: List = [None] * len(payloads)
        faults: List[ShardFault] = []

        def settle(index: int, kind: str, error: str,
                   tb: str = "", retryable: bool = True) -> None:
            """One faulted shard, resolved per ``config.on_fault``:
            abort, retry on a fresh pool, or degrade inline."""
            if config.on_fault == "fail":
                fault = ShardFault(shard=index, kind=kind, error=error,
                                   traceback=tb, fallback="abort")
                faults.append(fault)
                self._count_faults([fault])
                raise ScanAbortedError(fault)
            retries_used = 0
            if (config.on_fault == "retry" and retryable
                    and retry.max_retries > 0
                    and not (deadline is not None
                             and deadline.expired())):
                attempts, value = self._retry_shard(
                    fn, prep(index), index, tracer, ctx, retry,
                    deadline)
                if value is not _RETRY_FAILED:
                    faults.append(ShardFault(
                        shard=index, kind=kind, error=error,
                        traceback=tb, fallback="retry",
                        retries=attempts))
                    results[index] = value
                    return
                retries_used = attempts
            faults.append(ShardFault(shard=index, kind=kind,
                                     error=error, traceback=tb,
                                     retries=retries_used))
            results[index] = run_inline(index, fallback=True)

        try:
            executor, persistent = self._acquire(len(payloads))
        except Exception as exc:  # pool could not start at all
            _BREAKER.record_failure()
            error, tb = repr(exc), format_fault_traceback(exc)
            for i in range(len(payloads)):
                settle(i, "pool", error, tb)
            self._count_faults(faults)
            return results, faults

        hung = False
        broken = False
        try:
            try:
                # Submission doubles as the overlap stage: prep(i)
                # (transpose + shared-memory packing) for shard i runs
                # while shards < i already execute in workers.  With a
                # tracer recording, shards run through the span
                # marshaller: same-process workers record directly,
                # process workers ship their spans back for adoption.
                pending = []
                for index in range(len(payloads)):
                    payload = prep(index)
                    if tracer is not None:
                        pending.append(executor.submit(
                            run_traced, fn, ctx, index, payload))
                    else:
                        pending.append(executor.submit(fn, payload))
            except Exception as exc:
                broken = True
                error, tb = repr(exc), format_fault_traceback(exc)
                for i in range(len(payloads)):
                    settle(i, "pool", error, tb)
                self._count_faults(faults)
                return results, faults
            pool_broken = False
            for index, future in enumerate(pending):
                if pool_broken:
                    future.cancel()
                    settle(index, "pool",
                           "pool broken by an earlier shard")
                    continue
                budget = self.timeout if deadline is None \
                    else deadline.wait_budget(self.timeout)
                try:
                    results[index] = unwrap(
                        future.result(timeout=budget), tracer)
                except futures.TimeoutError:
                    future.cancel()
                    hung = True
                    if deadline is not None and deadline.expired():
                        _DEADLINE_EXCEEDED.inc()
                        settle(index, "deadline",
                               f"scan deadline of "
                               f"{deadline.budget_s}s exceeded",
                               retryable=False)
                    else:
                        settle(index, "timeout",
                               f"worker exceeded {self.timeout}s")
                except futures.BrokenExecutor as exc:
                    pool_broken = True
                    broken = True
                    settle(index, "pool", repr(exc),
                           format_fault_traceback(exc))
                except Exception as exc:
                    settle(index, "error", repr(exc),
                           format_fault_traceback(exc))
        finally:
            # Pool-level health feeds the breaker; shard-level faults
            # (a worker exception) do not — those say nothing about
            # whether the *pool machinery* works.
            if hung or broken:
                _BREAKER.record_failure()
            else:
                _BREAKER.record_success()
            if persistent:
                # A clean persistent pool outlives the dispatch (the
                # whole point); one that hung or broke is discarded so
                # the next scan starts from a clean cold pool.
                if hung:
                    _discard(executor, "timeout")
                elif broken:
                    _discard(executor, "broken")
            else:
                # Don't block on a worker we already timed out.
                executor.shutdown(wait=not hung, cancel_futures=hung)
        self._count_faults(faults)
        return results, faults

    def _retry_shard(self, fn: Callable, payload, index: int,
                     tracer, ctx, retry: RetryPolicy,
                     deadline: Optional[Deadline]
                     ) -> Tuple[int, object]:
        """Bounded retries of one shard, each on a **fresh**
        single-worker executor (the pool that faulted may be poisoned;
        the registry is left alone so a healthy warm pool survives).
        Returns ``(attempts_used, value)`` — ``value`` is
        :data:`_RETRY_FAILED` when every attempt faulted or the
        deadline ran out."""
        for attempt in range(1, retry.max_retries + 1):
            delay = retry.delay_s(attempt, _RETRY_RNG)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    return attempt - 1, _RETRY_FAILED
                delay = min(delay, remaining)
            if delay > 0:
                time.sleep(delay)
            executor = None
            with obs.span("shard.retry", category="scan", shard=index,
                          attempt=attempt):
                try:
                    executor = self._make_executor(1)
                    if tracer is not None:
                        future = executor.submit(
                            run_traced, fn, ctx, index, payload)
                    else:
                        future = executor.submit(fn, payload)
                    budget = self.timeout if deadline is None \
                        else deadline.wait_budget(self.timeout)
                    value = unwrap(future.result(timeout=budget),
                                   tracer)
                    _RETRY_ATTEMPTS.inc(outcome="success")
                    return attempt, value
                except Exception:
                    _RETRY_ATTEMPTS.inc(outcome="fault")
                finally:
                    if executor is not None:
                        executor.shutdown(wait=False,
                                          cancel_futures=True)
        return retry.max_retries, _RETRY_FAILED

    @staticmethod
    def _count_faults(faults: Sequence[ShardFault]) -> None:
        for fault in faults:
            _SHARD_FAULTS.inc(kind=fault.kind)

    # -- executor construction --------------------------------------------

    def _pool_key(self) -> PoolKey:
        method = self.config.resolved_start_method() \
            if self.executor == "process" else None
        return (self.executor, self.workers, method)

    def _acquire(self, payload_count: int):
        """``(executor, persistent?)`` for one dispatch.  Active chaos
        (a ChaosPlan or the legacy env hook) bypasses the warm
        registry: env-based injection only reaches workers forked
        *after* the mutation, and injected faults would constantly
        poison (and discard) warm pools anyway."""
        chaos.maybe_inject("pool.acquire")
        if chaos.armed():
            executor = self._make_executor(min(self.workers,
                                               payload_count))
            self.last_pool_state = "cold"
            _POOL_REUSE.inc(state="cold")
            return executor, False
        executor, state = _acquire_persistent(
            self._pool_key(), lambda: self._make_executor(self.workers))
        self.last_pool_state = state
        return executor, True

    def _make_executor(self, max_workers: int):
        if self.executor == "thread":
            return futures.ThreadPoolExecutor(
                max_workers=max_workers,
                thread_name_prefix="repro-shard")
        import multiprocessing

        try:
            from multiprocessing import resource_tracker

            # Start the resource tracker BEFORE forking workers.  A
            # worker forked with no tracker inherits none, spawns its
            # own on its first shared-memory attach, and that private
            # tracker — which never sees the parent's unregister —
            # warns about "leaked" segments at exit.
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        ctx = multiprocessing.get_context(
            self.config.resolved_start_method())
        return futures.ProcessPoolExecutor(
            max_workers=max_workers, mp_context=ctx,
            initializer=worker_mod.init_worker,
            initargs=(self.cache_dir,))

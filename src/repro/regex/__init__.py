"""Regex frontend: character classes, AST, parser, and normalisation."""

from .ast import (Alt, Anchor, Empty, Lit, Regex, Rep, Seq, Star, alt,
                  literal, opt, plus, seq)
from .charclass import CharClass
from .parser import RegexSyntaxError, parse
from .simplify import char_length, count_nodes, simplify

__all__ = [
    "Alt", "Anchor", "CharClass", "Empty", "Lit", "Regex", "RegexSyntaxError",
    "Rep", "Seq", "Star", "alt", "char_length", "count_nodes", "literal",
    "opt", "parse", "plus", "seq", "simplify",
]

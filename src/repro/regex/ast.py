"""Regex abstract syntax trees.

The node set follows the paper's grammar (Listing 1): character classes,
concatenation, alternation, Kleene star, and bounded repetition
``R{n,m}`` (with ``R+`` and ``R?`` as derived forms), plus the anchors
``^`` and ``$`` which several of the evaluated rule sets use.

Nodes are immutable; ``children()`` and structural equality make the
trees easy to transform and test.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from .charclass import CharClass


class Regex:
    """Base class for regex AST nodes."""

    __slots__ = ()

    def children(self) -> Tuple["Regex", ...]:
        return ()

    def __reduce__(self):
        # Reconstruct through __init__ (every node's slots mirror its
        # constructor arguments): the immutability guard blocks pickle's
        # default setattr-based state restore, and engines carrying ASTs
        # cross process boundaries under repro.parallel.
        return (type(self),
                tuple(getattr(self, name) for name in self.__slots__))

    def walk(self) -> Iterator["Regex"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()


class Empty(Regex):
    """Matches the empty string (epsilon)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Empty()"


class Lit(Regex):
    """A single character class (one input byte)."""

    __slots__ = ("cc",)

    def __init__(self, cc: CharClass):
        object.__setattr__(self, "cc", cc)

    def __setattr__(self, name, value):
        raise AttributeError("Regex nodes are immutable")

    def _key(self):
        return (self.cc,)

    def __repr__(self) -> str:
        return f"Lit({self.cc!r})"


class Seq(Regex):
    """Concatenation of two or more parts."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Regex]):
        if len(parts) < 2:
            raise ValueError("Seq needs at least two parts")
        object.__setattr__(self, "parts", tuple(parts))

    def __setattr__(self, name, value):
        raise AttributeError("Regex nodes are immutable")

    def children(self) -> Tuple[Regex, ...]:
        return self.parts

    def _key(self):
        return self.parts

    def __repr__(self) -> str:
        return f"Seq({list(self.parts)!r})"


class Alt(Regex):
    """Alternation of two or more branches."""

    __slots__ = ("branches",)

    def __init__(self, branches: Sequence[Regex]):
        if len(branches) < 2:
            raise ValueError("Alt needs at least two branches")
        object.__setattr__(self, "branches", tuple(branches))

    def __setattr__(self, name, value):
        raise AttributeError("Regex nodes are immutable")

    def children(self) -> Tuple[Regex, ...]:
        return self.branches

    def _key(self):
        return self.branches

    def __repr__(self) -> str:
        return f"Alt({list(self.branches)!r})"


class Star(Regex):
    """Kleene star: zero or more repetitions."""

    __slots__ = ("body",)

    def __init__(self, body: Regex):
        object.__setattr__(self, "body", body)

    def __setattr__(self, name, value):
        raise AttributeError("Regex nodes are immutable")

    def children(self) -> Tuple[Regex, ...]:
        return (self.body,)

    def _key(self):
        return (self.body,)

    def __repr__(self) -> str:
        return f"Star({self.body!r})"


class Rep(Regex):
    """Bounded repetition ``R{lo,hi}``; ``hi=None`` means unbounded."""

    __slots__ = ("body", "lo", "hi")

    def __init__(self, body: Regex, lo: int, hi: Optional[int]):
        if lo < 0 or (hi is not None and hi < lo):
            raise ValueError(f"bad repetition bounds {{{lo},{hi}}}")
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def __setattr__(self, name, value):
        raise AttributeError("Regex nodes are immutable")

    def children(self) -> Tuple[Regex, ...]:
        return (self.body,)

    def _key(self):
        return (self.body, self.lo, self.hi)

    def __repr__(self) -> str:
        return f"Rep({self.body!r}, {self.lo}, {self.hi})"


class Anchor(Regex):
    """Zero-width anchor: ``^`` (start of text) or ``$`` (end of text)."""

    START = "^"
    END = "$"

    __slots__ = ("kind",)

    def __init__(self, kind: str):
        if kind not in (self.START, self.END):
            raise ValueError(f"unknown anchor {kind!r}")
        object.__setattr__(self, "kind", kind)

    def __setattr__(self, name, value):
        raise AttributeError("Regex nodes are immutable")

    def _key(self):
        return (self.kind,)

    def __repr__(self) -> str:
        return f"Anchor({self.kind!r})"


def seq(*parts: Regex) -> Regex:
    """Concatenate, flattening nested Seqs and dropping Emptys."""
    flat = []
    for part in parts:
        if isinstance(part, Seq):
            flat.extend(part.parts)
        elif not isinstance(part, Empty):
            flat.append(part)
    if not flat:
        return Empty()
    if len(flat) == 1:
        return flat[0]
    return Seq(flat)


def alt(*branches: Regex) -> Regex:
    """Alternate, flattening nested Alts and deduplicating branches."""
    flat = []
    for branch in branches:
        parts = branch.branches if isinstance(branch, Alt) else (branch,)
        for part in parts:
            if part not in flat:
                flat.append(part)
    if not flat:
        raise ValueError("alt() needs at least one branch")
    if len(flat) == 1:
        return flat[0]
    return Alt(flat)


def literal(text: str) -> Regex:
    """The regex matching ``text`` exactly."""
    if not text:
        return Empty()
    return seq(*(Lit(CharClass.of_char(c)) for c in text))


def opt(body: Regex) -> Regex:
    """``R?`` as bounded repetition {0,1}."""
    return Rep(body, 0, 1)


def plus(body: Regex) -> Regex:
    """``R+`` as R followed by R*."""
    return seq(body, Star(body))

"""Recursive-descent parser for the paper's regex grammar (Listing 1).

Supported syntax::

    R ::= CC | RR | R'|'R | R'*' | R'+' | R'?' | R'{n,m}' | '(' R ')'
    CC ::= 'a' | '[a-z]' | '[^a-z]' | '.' | escapes (\\d \\w \\s \\n \\t ...)

plus the anchors ``^`` and ``$``.  This covers the feature set shared by
the systems the paper evaluates (Section 7 restricts the benchmark
regexes to features all systems support).
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .charclass import CharClass, DIGIT, SPACE, WORD


class RegexSyntaxError(ValueError):
    """Raised when a regex cannot be parsed."""

    def __init__(self, message: str, pattern: str, pos: int):
        super().__init__(f"{message} at position {pos} in {pattern!r}")
        self.pattern = pattern
        self.pos = pos


_ESCAPE_CLASSES = {
    "d": DIGIT,
    "D": DIGIT.complement(),
    "w": WORD,
    "W": WORD.complement(),
    "s": SPACE,
    "S": SPACE.complement(),
}

_ESCAPE_CHARS = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
    "v": "\v",
    "a": "\a",
    "0": "\0",
}

_SPECIAL = set("|*+?{}()[].^$\\")

MAX_REPETITION = 1024


class _Parser:
    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0

    # -- character stream --------------------------------------------------

    def _peek(self) -> Optional[str]:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def _next(self) -> str:
        char = self._peek()
        if char is None:
            raise self._error("unexpected end of pattern")
        self.pos += 1
        return char

    def _eat(self, char: str) -> bool:
        if self._peek() == char:
            self.pos += 1
            return True
        return False

    def _expect(self, char: str) -> None:
        if not self._eat(char):
            raise self._error(f"expected {char!r}")

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, self.pos)

    # -- grammar ------------------------------------------------------------

    def parse(self) -> ast.Regex:
        ignore_case = False
        if self.pattern.startswith("(?i)"):
            ignore_case = True
            self.pos = 4
        node = self._alternation()
        if self.pos != len(self.pattern):
            raise self._error("unexpected character")
        if ignore_case:
            node = _fold_case(node)
        return node

    def _alternation(self) -> ast.Regex:
        branches = [self._concatenation()]
        while self._eat("|"):
            branches.append(self._concatenation())
        if len(branches) == 1:
            return branches[0]
        return ast.alt(*branches)

    def _concatenation(self) -> ast.Regex:
        parts = []
        while True:
            char = self._peek()
            if char is None or char in "|)":
                break
            parts.append(self._repetition())
        if not parts:
            return ast.Empty()
        return ast.seq(*parts)

    def _repetition(self) -> ast.Regex:
        node = self._atom()
        while True:
            char = self._peek()
            if char == "*":
                self._next()
                node = ast.Star(node)
            elif char == "+":
                self._next()
                node = ast.plus(node)
            elif char == "?":
                self._next()
                node = ast.opt(node)
            elif char == "{":
                node = self._bounds(node)
            else:
                return node

    def _bounds(self, body: ast.Regex) -> ast.Regex:
        start = self.pos
        self._expect("{")
        lo = self._number()
        if lo is None:
            # Not a quantifier after all (e.g. literal "{"); rewind.
            self.pos = start
            self._next()
            return ast.seq(body, ast.literal("{"))
        hi: Optional[int] = lo
        if self._eat(","):
            hi = self._number()  # None means unbounded: {n,}
        self._expect("}")
        if hi is not None and hi < lo:
            raise self._error(f"bad repetition bounds {{{lo},{hi}}}")
        for bound in (lo, hi):
            if bound is not None and bound > MAX_REPETITION:
                raise self._error(f"repetition bound {bound} too large")
        return ast.Rep(body, lo, hi)

    def _number(self) -> Optional[int]:
        digits = ""
        while (char := self._peek()) is not None and char.isdigit():
            digits += self._next()
        if not digits:
            return None
        return int(digits)

    def _atom(self) -> ast.Regex:
        char = self._peek()
        if char is None:
            raise self._error("expected atom")
        if char == "(":
            self._next()
            # Non-capturing groups: this engine never captures, so
            # "(?:" is an alias for a plain group (common in rule sets).
            if self._peek() == "?":
                self._next()
                self._expect(":")
            node = self._alternation()
            self._expect(")")
            return node
        if char == "[":
            return ast.Lit(self._char_class())
        if char == ".":
            self._next()
            return ast.Lit(CharClass.dot())
        if char == "^":
            self._next()
            return ast.Anchor(ast.Anchor.START)
        if char == "$":
            self._next()
            return ast.Anchor(ast.Anchor.END)
        if char == "\\":
            return ast.Lit(self._escape())
        if char in "*+?{":
            # A bare "{" with no preceding atom is treated as a literal.
            if char == "{":
                self._next()
                return ast.literal("{")
            raise self._error(f"quantifier {char!r} with nothing to repeat")
        if char in ")|":
            raise self._error(f"unexpected {char!r}")
        self._next()
        return ast.Lit(CharClass.of_char(char))

    def _escape(self) -> CharClass:
        self._expect("\\")
        char = self._next()
        if char in _ESCAPE_CLASSES:
            return _ESCAPE_CLASSES[char]
        if char in _ESCAPE_CHARS:
            return CharClass.of_char(_ESCAPE_CHARS[char])
        if char == "x":
            high = self._next()
            low = self._next()
            try:
                return CharClass.single(int(high + low, 16))
            except ValueError:
                raise self._error(f"bad hex escape \\x{high}{low}") from None
        if char in _SPECIAL or not char.isalnum():
            return CharClass.of_char(char)
        raise self._error(f"unknown escape \\{char}")

    def _char_class(self) -> CharClass:
        self._expect("[")
        negate = self._eat("^")
        cc = CharClass.empty()
        first = True
        while True:
            char = self._peek()
            if char is None:
                raise self._error("unterminated character class")
            if char == "]" and not first:
                self._next()
                break
            cc = cc.union(self._class_member())
            first = False
        if negate:
            cc = cc.complement()
        return cc

    def _class_member(self) -> CharClass:
        lo = self._class_char()
        if lo is None:
            # An escape class like \d inside [...] contributes its whole set.
            return self._escape()
        if self._peek() == "-" and self.pos + 1 < len(self.pattern) \
                and self.pattern[self.pos + 1] != "]":
            self._next()
            hi = self._class_char()
            if hi is None:
                raise self._error("bad range endpoint")
            if hi < lo:
                raise self._error("reversed character range")
            return CharClass(((lo, hi),))
        return CharClass.single(lo)

    def _class_char(self) -> Optional[int]:
        """A single byte inside [...]; None when the next token is a set escape."""
        char = self._next()
        if char != "\\":
            return ord(char)
        esc = self._peek()
        if esc in _ESCAPE_CLASSES:
            self.pos -= 1  # let _escape() consume the backslash
            return None
        self.pos -= 1
        cc = self._escape()
        return cc.single_byte()


def _fold_case(node: ast.Regex) -> ast.Regex:
    """Widen every character class to both cases (the ``(?i)`` flag)."""
    if isinstance(node, ast.Lit):
        folded = node.cc
        for byte in list(node.cc.bytes()):
            char = chr(byte)
            if char.isalpha() and char.swapcase() != char:
                folded = folded.union(CharClass.of_char(char.swapcase()))
        return ast.Lit(folded)
    if isinstance(node, ast.Seq):
        return ast.seq(*(_fold_case(p) for p in node.parts))
    if isinstance(node, ast.Alt):
        return ast.alt(*(_fold_case(b) for b in node.branches))
    if isinstance(node, ast.Star):
        return ast.Star(_fold_case(node.body))
    if isinstance(node, ast.Rep):
        return ast.Rep(_fold_case(node.body), node.lo, node.hi)
    return node


def parse(pattern: str) -> ast.Regex:
    """Parse ``pattern`` into a regex AST.

    Supports the paper's grammar plus escapes, anchors, non-capturing
    groups ``(?:...)``, and a leading ``(?i)`` case-insensitivity flag.
    Raises :class:`RegexSyntaxError` on malformed input.
    """
    return _Parser(pattern).parse()

"""Literal-factor extraction from regex ASTs.

Hyperscan's decomposition insight (Wang et al., NSDI'19): most real
rule sets anchor their expensive automata to *mandatory literal
factors* — byte strings every match must contain.  This module is the
shared home of that analysis.  It started inside
:mod:`repro.engines.hyperscan`; the main BitGen pipeline now uses the
same machinery to gate whole kernel buckets behind one literal scan
(:mod:`repro.core.prefilter`), so the extraction lives here where both
engines can import it.

Two levels of analysis:

* :func:`required_factor` — one literal substring every match must
  contain (the longest run of singleton classes among the mandatory
  top-level concatenation parts).  Used by the Hyperscan engine to
  anchor confirmation windows, where a *single* factor is needed.
* :func:`factor_literals` — a *set* of literals such that every
  non-empty match contains at least one of them.  Alternations union
  their branches' sets (``foo|bar`` yields ``{foo, bar}``), which a
  single required factor cannot express.  Used by the prefilter gate,
  where "any of these fired" is the right activation condition.

Both are conservative: ``None`` means "no usable factor", never a
wrong one — factor-based gating must stay exact.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from . import ast

#: Factors shorter than this generate too many candidate hits to be
#: worth confirming (a single byte fires on ~1/256 of random input).
MIN_FACTOR_LENGTH = 2

#: An alternation tree whose union of branch factors exceeds this is
#: treated as factor-free: a gate matching hundreds of literals fires
#: on almost any input and only adds scan cost.
MAX_FACTOR_SET = 16


def literal_bytes(node: ast.Regex) -> Optional[bytes]:
    """The exact byte string of a pure-literal pattern, else None."""
    if isinstance(node, ast.Lit) and node.cc.is_single():
        return bytes([node.cc.single_byte()])
    if isinstance(node, ast.Seq):
        parts = []
        for part in node.parts:
            sub = literal_bytes(part)
            if sub is None:
                return None
            parts.append(sub)
        return b"".join(parts)
    return None


def required_factor(node: ast.Regex) -> Optional[bytes]:
    """A literal substring every match must contain: the longest run of
    singleton classes among the mandatory top-level concatenation parts."""
    parts = node.parts if isinstance(node, ast.Seq) else [node]
    best = b""
    current = bytearray()
    for part in parts:
        byte = None
        if isinstance(part, ast.Lit) and part.cc.is_single():
            byte = part.cc.single_byte()
        if byte is not None:
            current.append(byte)
        else:
            if len(current) > len(best):
                best = bytes(current)
            current = bytearray()
    if len(current) > len(best):
        best = bytes(current)
    return best if len(best) >= MIN_FACTOR_LENGTH else None


def max_match_length(node: ast.Regex) -> Optional[int]:
    """Longest possible match in bytes, or None when unbounded."""
    if isinstance(node, (ast.Empty, ast.Anchor)):
        return 0
    if isinstance(node, ast.Lit):
        return 1
    if isinstance(node, ast.Seq):
        total = 0
        for part in node.parts:
            sub = max_match_length(part)
            if sub is None:
                return None
            total += sub
        return total
    if isinstance(node, ast.Alt):
        longest = 0
        for branch in node.branches:
            sub = max_match_length(branch)
            if sub is None:
                return None
            longest = max(longest, sub)
        return longest
    if isinstance(node, ast.Star):
        inner = max_match_length(node.body)
        return 0 if inner == 0 else None
    if isinstance(node, ast.Rep):
        if node.hi is None:
            inner = max_match_length(node.body)
            return 0 if inner == 0 else None
        inner = max_match_length(node.body)
        if inner is None:
            return None
        return inner * node.hi
    raise TypeError(f"unknown node {node!r}")


def excludes_newline(node: ast.Regex) -> bool:
    """True when no match of ``node`` can contain a newline byte, so
    every match is confined to one input line.  This is how unbounded
    ``.*`` patterns stay confirmable: ``.`` excludes newline."""
    newline = ord("\n")
    for sub in node.walk():
        if isinstance(sub, ast.Lit) and sub.cc.contains(newline):
            return False
    return True


def nullable(node: ast.Regex) -> bool:
    """True when ``node`` can match the empty string."""
    if isinstance(node, (ast.Empty, ast.Anchor, ast.Star)):
        return True
    if isinstance(node, ast.Lit):
        return False
    if isinstance(node, ast.Seq):
        return all(nullable(part) for part in node.parts)
    if isinstance(node, ast.Alt):
        return any(nullable(branch) for branch in node.branches)
    if isinstance(node, ast.Rep):
        return node.lo == 0 or nullable(node.body)
    raise TypeError(f"unknown node {node!r}")


def factor_literals(node: ast.Regex,
                    limit: int = MAX_FACTOR_SET
                    ) -> Optional[FrozenSet[bytes]]:
    """A set of literals such that **every non-empty match of ``node``
    contains at least one of them** as a substring — or ``None`` when
    no such set (of usable size and factor length) exists.

    The soundness argument, case by case:

    * ``Alt`` — a match of the alternation is a match of some branch,
      so the union of per-branch factor sets covers it.  If any branch
      has no factors, neither does the alternation.
    * ``Seq`` — every match decomposes into sub-matches of the parts;
      a non-nullable part contributes a non-empty sub-match, so that
      part's factors are contained.  The best candidate wins: the
      longest run of mandatory singleton-literal parts
      (:func:`required_factor`) competes with each non-nullable part's
      own factor set.
    * ``Rep(lo >= 1)`` — at least one body match is contained.
    * ``Star`` / nullable nodes — a match may be empty or avoid any
      particular branch, so no factor is required.

    Candidate sets are ranked smallest-first (fewer literals = cheaper
    gate, more selective), longest-min-literal as the tie break.
    """
    if isinstance(node, ast.Alt):
        union: set = set()
        for branch in node.branches:
            sub = factor_literals(branch, limit)
            if sub is None:
                return None
            union |= sub
            if len(union) > limit:
                return None
        return frozenset(union)
    if isinstance(node, ast.Seq):
        candidates: List[FrozenSet[bytes]] = []
        run = required_factor(node)
        if run is not None:
            candidates.append(frozenset({run}))
        for part in node.parts:
            if nullable(part):
                continue
            sub = factor_literals(part, limit)
            if sub is not None:
                candidates.append(sub)
        return _best_candidate(candidates)
    if isinstance(node, ast.Rep):
        if node.lo < 1:
            return None
        return factor_literals(node.body, limit)
    # Lit is a single byte (below MIN_FACTOR_LENGTH on its own);
    # Empty/Anchor/Star require nothing.
    return None


def _best_candidate(candidates: List[FrozenSet[bytes]]
                    ) -> Optional[FrozenSet[bytes]]:
    if not candidates:
        return None
    return min(candidates,
               key=lambda s: (len(s), -min(len(lit) for lit in s)))

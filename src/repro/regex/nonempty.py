"""Empty-match stripping.

All-match semantics (Section 2) reports match *end positions*; an end
position only makes sense for a match that consumed at least one byte.
This module rewrites a regex ``R`` into ``se(R)``, whose language is
``L(R)`` minus the empty string, so the lowered cursor-set marks exactly
the non-empty match ends.

Two mutually recursive transforms:

* ``strip_empty(R)`` — the non-empty part of ``R`` (``None`` when ``R``
  has no non-empty matches, e.g. anchors or the empty regex).
* ``zero_width(R)`` — the zero-width part of ``R`` as a regex of anchors
  and epsilon (``None`` when ``R`` cannot match the empty string).
  Anchors are preserved because their zero-width matches carry position
  constraints.

For a concatenation, a non-empty match has a first non-empty component
``i``; everything before it matched zero-width.  Hence::

    se(p1 .. pk) = | over i:  zw(p1) .. zw(p_{i-1})  se(p_i)  p_{i+1} .. pk
"""

from __future__ import annotations

from typing import Optional

from . import ast


def strip_empty(node: ast.Regex) -> Optional[ast.Regex]:
    """The regex matching exactly the non-empty matches of ``node``."""
    if isinstance(node, ast.Lit):
        return None if node.cc.is_empty() else node
    if isinstance(node, (ast.Empty, ast.Anchor)):
        return None
    if isinstance(node, ast.Alt):
        branches = [se for b in node.branches
                    if (se := strip_empty(b)) is not None]
        if not branches:
            return None
        return ast.alt(*branches)
    if isinstance(node, ast.Seq):
        return _strip_seq(node.parts)
    if isinstance(node, ast.Star):
        body = strip_empty(node.body)
        if body is None:
            return None
        return ast.seq(body, node)
    if isinstance(node, ast.Rep):
        return _strip_rep(node)
    raise TypeError(f"unknown node {node!r}")


def zero_width(node: ast.Regex) -> Optional[ast.Regex]:
    """The zero-width part of ``node``: epsilon/anchor constraints, or
    ``None`` when ``node`` cannot match the empty string."""
    if isinstance(node, ast.Lit):
        return None
    if isinstance(node, ast.Empty):
        return node
    if isinstance(node, ast.Anchor):
        return node
    if isinstance(node, ast.Alt):
        branches = [zw for b in node.branches
                    if (zw := zero_width(b)) is not None]
        if not branches:
            return None
        # An unconstrained epsilon branch absorbs the rest.
        if any(isinstance(b, ast.Empty) for b in branches):
            return ast.Empty()
        return ast.alt(*branches)
    if isinstance(node, ast.Seq):
        parts = []
        for part in node.parts:
            zw = zero_width(part)
            if zw is None:
                return None
            if not isinstance(zw, ast.Empty):
                parts.append(zw)
        return ast.seq(*parts) if parts else ast.Empty()
    if isinstance(node, ast.Star):
        return ast.Empty()
    if isinstance(node, ast.Rep):
        if node.lo == 0:
            return ast.Empty()
        zw = zero_width(node.body)
        if zw is None:
            return None
        if isinstance(zw, ast.Empty):
            return ast.Empty()
        # lo repetitions of a zero-width constraint collapse to one.
        return zw
    raise TypeError(f"unknown node {node!r}")


def _strip_seq(parts) -> Optional[ast.Regex]:
    terms = []
    prefix = []          # zero-width versions of parts before the pivot
    prefix_alive = True
    for i, part in enumerate(parts):
        if prefix_alive:
            pivot = strip_empty(part)
            if pivot is not None:
                term_parts = list(prefix) + [pivot] + list(parts[i + 1:])
                terms.append(ast.seq(*term_parts))
        zw = zero_width(part)
        if zw is None:
            break       # no later pivot can have an all-zero-width prefix
        if not isinstance(zw, ast.Empty):
            prefix.append(zw)
    if not terms:
        return None
    return ast.alt(*terms) if len(terms) > 1 else terms[0]


def _strip_rep(node: ast.Rep) -> Optional[ast.Regex]:
    body_se = strip_empty(node.body)
    if body_se is None:
        return None
    hi_rest = None if node.hi is None else node.hi - 1
    if node.hi == 0:
        return None
    if zero_width(node.body) is not None:
        # The body can match empty, so any number of leading components
        # may be skipped: the remainder count starts at zero.
        lo_rest = 0
    else:
        lo_rest = max(node.lo - 1, 0)
    if hi_rest == 0 or (hi_rest == lo_rest == 0):
        rest = ast.Empty()
    else:
        rest = ast.Rep(node.body, lo_rest, hi_rest)
    return ast.seq(body_se, rest)

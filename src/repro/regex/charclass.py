"""Character classes over the byte alphabet.

A :class:`CharClass` is an immutable set of byte values (0-255) with the
set algebra needed by the regex parser and by the character-class compiler
(``repro.ir.cc_compiler``).  Classes are stored canonically as a sorted
tuple of inclusive ``(lo, hi)`` ranges, which keeps common classes (ASCII
ranges, digit/word classes) compact and makes range-based boolean
compilation natural.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

ALPHABET_SIZE = 256

Range = Tuple[int, int]


def _normalize(ranges: Iterable[Range]) -> Tuple[Range, ...]:
    """Sort, validate, and coalesce overlapping/adjacent inclusive ranges."""
    items = sorted(ranges)
    merged: list = []
    for lo, hi in items:
        if not (0 <= lo <= hi < ALPHABET_SIZE):
            raise ValueError(f"byte range out of bounds: ({lo}, {hi})")
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


class CharClass:
    """An immutable set of bytes, canonicalised as merged inclusive ranges."""

    __slots__ = ("ranges",)

    def __init__(self, ranges: Iterable[Range] = ()):
        object.__setattr__(self, "ranges", _normalize(ranges))

    def __setattr__(self, name, value):
        raise AttributeError("CharClass is immutable")

    def __reduce__(self):
        # Reconstruct through __init__: the immutability guard blocks
        # pickle's default setattr-based state restore (programs cross
        # process boundaries under repro.parallel's sharded dispatch).
        return (CharClass, (self.ranges,))

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "CharClass":
        return cls(())

    @classmethod
    def any_byte(cls) -> "CharClass":
        return cls(((0, ALPHABET_SIZE - 1),))

    @classmethod
    def single(cls, byte: int) -> "CharClass":
        return cls(((byte, byte),))

    @classmethod
    def of_char(cls, char: str) -> "CharClass":
        code = ord(char)
        if code >= ALPHABET_SIZE:
            raise ValueError(f"non-byte character: {char!r}")
        return cls.single(code)

    @classmethod
    def of_chars(cls, chars: str) -> "CharClass":
        return cls(tuple((ord(c), ord(c)) for c in chars))

    @classmethod
    def range(cls, lo: str, hi: str) -> "CharClass":
        return cls(((ord(lo), ord(hi)),))

    @classmethod
    def dot(cls) -> "CharClass":
        """The regex ``.``: any byte except newline."""
        return cls.any_byte().difference(cls.of_char("\n"))

    # -- set algebra -------------------------------------------------------

    def union(self, other: "CharClass") -> "CharClass":
        return CharClass(self.ranges + other.ranges)

    def intersection(self, other: "CharClass") -> "CharClass":
        return self.difference(other.complement())

    def difference(self, other: "CharClass") -> "CharClass":
        return CharClass._from_mask(self._mask() & ~other._mask())

    def complement(self) -> "CharClass":
        return CharClass._from_mask(~self._mask() & ((1 << ALPHABET_SIZE) - 1))

    def _mask(self) -> int:
        mask = 0
        for lo, hi in self.ranges:
            mask |= ((1 << (hi - lo + 1)) - 1) << lo
        return mask

    @classmethod
    def _from_mask(cls, mask: int) -> "CharClass":
        ranges = []
        byte = 0
        while mask:
            if mask & 1:
                lo = byte
                while mask & 1:
                    mask >>= 1
                    byte += 1
                ranges.append((lo, byte - 1))
            else:
                shift = (mask & -mask).bit_length() - 1
                mask >>= shift
                byte += shift
        return cls(tuple(ranges))

    # -- queries -----------------------------------------------------------

    def contains(self, byte: int) -> bool:
        return any(lo <= byte <= hi for lo, hi in self.ranges)

    def __contains__(self, byte: int) -> bool:
        return self.contains(byte)

    def is_empty(self) -> bool:
        return not self.ranges

    def is_single(self) -> bool:
        return len(self) == 1

    def single_byte(self) -> int:
        """The sole member of a singleton class (raises otherwise)."""
        if not self.is_single():
            raise ValueError(f"not a singleton class: {self}")
        return self.ranges[0][0]

    def bytes(self) -> Iterator[int]:
        for lo, hi in self.ranges:
            yield from range(lo, hi + 1)

    def table(self) -> Sequence[bool]:
        """A 256-entry membership table."""
        out = [False] * ALPHABET_SIZE
        for lo, hi in self.ranges:
            for byte in range(lo, hi + 1):
                out[byte] = True
        return out

    def __len__(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.ranges)

    def __eq__(self, other) -> bool:
        return isinstance(other, CharClass) and self.ranges == other.ranges

    def __hash__(self) -> int:
        return hash(self.ranges)

    def __repr__(self) -> str:
        if self.is_empty():
            return "CharClass[]"
        if self == CharClass.any_byte():
            return "CharClass[ANY]"
        parts = []
        for lo, hi in self.ranges:
            if lo == hi:
                parts.append(_show_byte(lo))
            else:
                parts.append(f"{_show_byte(lo)}-{_show_byte(hi)}")
        return "CharClass[" + "".join(parts) + "]"


def _show_byte(byte: int) -> str:
    char = chr(byte)
    if char.isprintable() and char not in "-[]^\\":
        return char
    return f"\\x{byte:02x}"


# Named classes used by escape sequences in the parser.
DIGIT = CharClass.range("0", "9")
WORD = CharClass(((ord("0"), ord("9")), (ord("A"), ord("Z")),
                  (ord("a"), ord("z")), (ord("_"), ord("_"))))
SPACE = CharClass.of_chars(" \t\n\r\f\v")

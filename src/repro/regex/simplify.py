"""AST normalisation.

Rewrites that shrink the tree before lowering: merging character classes
under alternation, flattening nested sequences/alternations, collapsing
degenerate repetitions, and removing epsilon where it is absorbed.  The
bitstream program sizes in Table 1 are measured after these rewrites,
as Parabix applies equivalent normalisation before code generation.
"""

from __future__ import annotations

from . import ast


def simplify(node: ast.Regex) -> ast.Regex:
    """Return a semantically equal, normalised AST."""
    node = _rewrite(node)
    return node


def _rewrite(node: ast.Regex) -> ast.Regex:
    if isinstance(node, ast.Seq):
        parts = [_rewrite(p) for p in node.parts]
        return ast.seq(*parts)
    if isinstance(node, ast.Alt):
        branches = [_rewrite(b) for b in node.branches]
        return _merge_alt(branches)
    if isinstance(node, ast.Star):
        body = _rewrite(node.body)
        if isinstance(body, (ast.Star, ast.Empty)):
            # (R*)* == R*;  ()* == ()
            return body if isinstance(body, ast.Star) else ast.Empty()
        if isinstance(body, ast.Rep) and body.lo == 0:
            # (R{0,m})* == R*
            return ast.Star(_rewrite(body.body))
        return ast.Star(body)
    if isinstance(node, ast.Rep):
        body = _rewrite(node.body)
        if node.lo == 0 and node.hi == 0:
            return ast.Empty()
        if node.lo == 1 and node.hi == 1:
            return body
        if node.lo == 0 and node.hi is None:
            return ast.Star(body)
        if isinstance(body, ast.Empty):
            return ast.Empty()
        return ast.Rep(body, node.lo, node.hi)
    return node


def _merge_alt(branches: list) -> ast.Regex:
    """Merge Lit branches of an alternation into one character class."""
    lits = [b for b in branches if isinstance(b, ast.Lit)]
    others = [b for b in branches if not isinstance(b, ast.Lit)]
    merged = []
    if lits:
        cc = lits[0].cc
        for lit in lits[1:]:
            cc = cc.union(lit.cc)
        merged.append(ast.Lit(cc))
    merged.extend(others)
    if len(merged) == 1:
        return merged[0]
    return ast.alt(*merged)


def count_nodes(node: ast.Regex) -> int:
    """Number of AST nodes (used by grouping heuristics and stats)."""
    return sum(1 for _ in node.walk())


def char_length(node: ast.Regex) -> int:
    """Approximate pattern 'character length' used for CTA load balancing
    (Section 7 groups regexes by total character length)."""
    total = 0
    for sub in node.walk():
        if isinstance(sub, ast.Lit):
            total += 1
        elif isinstance(sub, ast.Rep):
            total += max(sub.lo, 1)
    return total

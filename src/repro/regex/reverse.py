"""Regex reversal.

``reverse(R)`` matches exactly the reversed strings of ``L(R)``.  Used
for match-*start* recovery: the paper's all-match semantics reports end
positions (a 1 at position *i* means a match ends at *i*); running the
reversed pattern over the reversed input yields the start positions by
the mirror argument.  Anchors swap roles (``^`` becomes ``$``).
"""

from __future__ import annotations

from . import ast


def reverse(node: ast.Regex) -> ast.Regex:
    """The reversal of ``node``: L(reverse(R)) = { w[::-1] : w in L(R) }."""
    if isinstance(node, (ast.Empty, ast.Lit)):
        return node
    if isinstance(node, ast.Anchor):
        flipped = ast.Anchor.END if node.kind == ast.Anchor.START \
            else ast.Anchor.START
        return ast.Anchor(flipped)
    if isinstance(node, ast.Seq):
        return ast.seq(*(reverse(part) for part in reversed(node.parts)))
    if isinstance(node, ast.Alt):
        return ast.alt(*(reverse(branch) for branch in node.branches))
    if isinstance(node, ast.Star):
        return ast.Star(reverse(node.body))
    if isinstance(node, ast.Rep):
        return ast.Rep(reverse(node.body), node.lo, node.hi)
    raise TypeError(f"unknown node {node!r}")

"""Glushkov NFA construction.

Builds the position automaton of a regex: one state per character-class
occurrence plus an initial state, no epsilon transitions.  This is the
construction Hyperscan uses for its NFA fallback [Glushkov 1961], and
the automaton our ngAP-style engine processes.

Anchors are not supported here; the paper's evaluation restricts
benchmarks to features all compared systems support (Section 7), and
the automata engines in this reproduction match that subset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from ..regex import ast
from ..regex.charclass import CharClass
from ..regex.simplify import simplify


class UnsupportedFeature(ValueError):
    """Raised for constructs an engine does not implement."""


@dataclass
class _Facts:
    """Glushkov analysis of one subtree over global position ids."""

    nullable: bool
    first: FrozenSet[int]
    last: FrozenSet[int]


@dataclass
class Glushkov:
    """The position automaton of one regex.

    State 0 is initial; state ``i`` (1-based) corresponds to position
    ``i`` and is entered by consuming a byte of ``classes[i]``.
    """

    classes: Dict[int, CharClass] = field(default_factory=dict)
    first: Set[int] = field(default_factory=set)
    follow: Dict[int, Set[int]] = field(default_factory=dict)
    accepting: Set[int] = field(default_factory=set)
    nullable: bool = False

    @property
    def state_count(self) -> int:
        return len(self.classes) + 1

    @classmethod
    def build(cls, node: ast.Regex) -> "Glushkov":
        builder = _GlushkovBuilder()
        node = simplify(node)
        facts = builder.analyse(node)
        auto = cls(classes=builder.classes, follow=builder.follow)
        auto.first = set(facts.first)
        auto.accepting = set(facts.last)
        auto.nullable = facts.nullable
        return auto


class _GlushkovBuilder:
    def __init__(self):
        self.classes: Dict[int, CharClass] = {}
        self.follow: Dict[int, Set[int]] = {}
        self._next_pos = 1

    def analyse(self, node: ast.Regex) -> _Facts:
        if isinstance(node, ast.Empty):
            return _Facts(True, frozenset(), frozenset())
        if isinstance(node, ast.Anchor):
            raise UnsupportedFeature("anchors are not supported by the "
                                     "automata engines")
        if isinstance(node, ast.Lit):
            pos = self._next_pos
            self._next_pos += 1
            self.classes[pos] = node.cc
            self.follow[pos] = set()
            single = frozenset((pos,))
            return _Facts(False, single, single)
        if isinstance(node, ast.Seq):
            return self._sequence([self.analyse(p) for p in node.parts])
        if isinstance(node, ast.Alt):
            facts = [self.analyse(b) for b in node.branches]
            return _Facts(
                any(f.nullable for f in facts),
                frozenset().union(*(f.first for f in facts)),
                frozenset().union(*(f.last for f in facts)))
        if isinstance(node, ast.Star):
            inner = self.analyse(node.body)
            self._connect(inner.last, inner.first)
            return _Facts(True, inner.first, inner.last)
        if isinstance(node, ast.Rep):
            return self._repetition(node)
        raise UnsupportedFeature(f"cannot build automaton for {node!r}")

    def _sequence(self, facts: List[_Facts]) -> _Facts:
        result = facts[0]
        for nxt in facts[1:]:
            self._connect(result.last, nxt.first)
            first = result.first | nxt.first if result.nullable \
                else result.first
            last = nxt.last | result.last if nxt.nullable else nxt.last
            result = _Facts(result.nullable and nxt.nullable,
                            frozenset(first), frozenset(last))
        return result

    def _repetition(self, node: ast.Rep) -> _Facts:
        # Expand R{n,m} structurally; bounds were capped by the parser.
        parts: List[_Facts] = []
        for _ in range(node.lo):
            parts.append(self.analyse(node.body))
        if node.hi is None:
            star_inner = self.analyse(node.body)
            self._connect(star_inner.last, star_inner.first)
            parts.append(_Facts(True, star_inner.first, star_inner.last))
        else:
            for _ in range(node.hi - node.lo):
                inner = self.analyse(node.body)
                parts.append(_Facts(True, inner.first, inner.last))
        if not parts:
            return _Facts(True, frozenset(), frozenset())
        return self._sequence(parts)

    def _connect(self, lasts, firsts) -> None:
        for pos in lasts:
            self.follow[pos].update(firsts)

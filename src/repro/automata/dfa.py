"""Subset-construction DFA over a multi-pattern NFA.

Used by the Hyperscan-style engine for confirming candidate matches and
available as a standalone linear-scan engine (the RE2 execution model
the related-work section cites).  Construction is bounded: regex sets
can blow up exponentially, so exceeding ``max_states`` raises
:class:`DFATooLarge` and callers fall back to NFA simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from .nfa import MultiPatternNFA


class DFATooLarge(RuntimeError):
    """Raised when subset construction exceeds the state budget."""


@dataclass
class DFA:
    """A dense-table DFA; state 0 is the start state.

    Transitions already include the implicit restart (unanchored
    matching): every step unions the NFA start states back in, so a
    single left-to-right scan reports all match end positions.
    """

    #: transition[state][byte] -> state
    transitions: List[List[int]] = field(default_factory=list)
    #: per-state reported pattern ids
    reports: List[Tuple[int, ...]] = field(default_factory=list)
    pattern_count: int = 0

    @property
    def state_count(self) -> int:
        return len(self.transitions)

    @classmethod
    def build(cls, nfa: MultiPatternNFA, max_states: int = 4096) -> "DFA":
        start_set = frozenset(nfa.start_states)
        tables = [cc.table() for cc in nfa.classes]

        dfa = cls(pattern_count=nfa.pattern_count)
        index_of: Dict[FrozenSet[int], int] = {}

        def intern(state_set: FrozenSet[int]) -> int:
            found = index_of.get(state_set)
            if found is not None:
                return found
            if len(index_of) >= max_states:
                raise DFATooLarge(
                    f"subset construction exceeded {max_states} states")
            index = len(index_of)
            index_of[state_set] = index
            dfa.transitions.append([0] * 256)
            reported: List[int] = []
            for nfa_state in state_set:
                reported.extend(nfa.reports.get(nfa_state, ()))
            dfa.reports.append(tuple(sorted(set(reported))))
            return index

        # DFA states track "NFA states entered by the previous byte";
        # candidates for the next byte are their successors plus starts.
        start_index = intern(frozenset())
        work = [frozenset()]
        seen = {frozenset()}
        while work:
            current = work.pop()
            current_index = index_of[current]
            candidates = set(start_set)
            for nfa_state in current:
                candidates.update(nfa.successors[nfa_state])
            for byte in range(256):
                entered = frozenset(s for s in candidates
                                    if tables[s][byte])
                target = intern(entered)
                dfa.transitions[current_index][byte] = target
                if entered not in seen:
                    seen.add(entered)
                    work.append(entered)
        assert start_index == 0
        return dfa

    def run(self, data: bytes) -> Dict[int, List[int]]:
        """Scan ``data``; returns per-pattern match end positions."""
        matches: Dict[int, List[int]] = {i: []
                                         for i in range(self.pattern_count)}
        state = 0
        for index, byte in enumerate(data):
            state = self.transitions[state][byte]
            for pattern_id in self.reports[state]:
                matches[pattern_id].append(index)
        return matches

"""Multi-pattern NFA simulation with access accounting.

Combines the Glushkov automata of a pattern set into one NFA and
simulates it one input byte at a time — the automata-processing
execution model of ngAP and its ancestors.  The simulator counts the
memory-access events the paper identifies as the bottleneck of this
model (per-symbol state-transition lookups, worklist pushes), which
drive the ngAP cost model in ``repro.perf``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..regex import ast
from ..regex.charclass import CharClass
from .glushkov import Glushkov


@dataclass
class NFAStats:
    """Counters describing one simulation run."""

    symbols: int = 0
    active_state_visits: int = 0
    transition_lookups: int = 0
    #: candidate checks of always-active start states; engines service
    #: these from dense per-symbol bitmaps, far cheaper than worklist
    #: state lookups
    start_checks: int = 0
    matches: int = 0
    max_active: int = 0

    def avg_active(self) -> float:
        if self.symbols == 0:
            return 0.0
        return self.active_state_visits / self.symbols


@dataclass
class MultiPatternNFA:
    """A union NFA over one or more patterns.

    States are globally renumbered; ``start_states`` are always active
    (unanchored all-match semantics: a new match attempt starts at every
    input position).
    """

    #: per-state matching class (None for unreachable placeholder slots)
    classes: List[CharClass] = field(default_factory=list)
    #: per-state successor lists
    successors: List[Tuple[int, ...]] = field(default_factory=list)
    #: states that begin a pattern (entered from any position)
    start_states: List[int] = field(default_factory=list)
    #: state -> pattern ids reported when the state is reached
    reports: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    pattern_count: int = 0

    @classmethod
    def build(cls, patterns: Sequence[ast.Regex]) -> "MultiPatternNFA":
        nfa = cls(pattern_count=len(patterns))
        for pattern_id, node in enumerate(patterns):
            auto = Glushkov.build(node)
            base = len(nfa.classes)
            # Position p of this automaton becomes global state base+p-1.
            for pos in range(1, auto.state_count):
                nfa.classes.append(auto.classes[pos])
                nfa.successors.append(tuple(
                    base + succ - 1 for succ in sorted(auto.follow[pos])))
            for pos in auto.first:
                nfa.start_states.append(base + pos - 1)
            for pos in auto.accepting:
                state = base + pos - 1
                nfa.reports[state] = nfa.reports.get(state, ()) + (pattern_id,)
        return nfa

    @property
    def state_count(self) -> int:
        return len(self.classes)

    def transition_count(self) -> int:
        return sum(len(s) for s in self.successors)

    # -- simulation -----------------------------------------------------------

    def run(self, data: bytes) -> Tuple[Dict[int, List[int]], NFAStats]:
        """Simulate over ``data``; returns per-pattern match end
        positions and the access statistics."""
        matches: Dict[int, List[int]] = {i: [] for i in
                                         range(self.pattern_count)}
        stats = NFAStats()
        # Precompute per-state 256-entry membership tables once.
        tables = [cc.table() for cc in self.classes]
        active: Set[int] = set()
        start_set = set(self.start_states)
        for index, byte in enumerate(data):
            stats.symbols += 1
            next_active: Set[int] = set()
            # Start states are candidates at every position (unanchored).
            candidates = active.union(start_set)
            stats.active_state_visits += len(candidates)
            for state in candidates:
                if state in active:
                    # One table lookup per worklist state: the irregular
                    # memory access the paper attributes NFA slowness to.
                    stats.transition_lookups += 1
                else:
                    stats.start_checks += 1
                if not tables[state][byte]:
                    continue
                reported = self.reports.get(state)
                if reported:
                    for pattern_id in reported:
                        matches[pattern_id].append(index)
                        stats.matches += 1
                for succ in self.successors[state]:
                    stats.transition_lookups += 1
                    next_active.add(succ)
            active = next_active
            stats.max_active = max(stats.max_active, len(active))
        return matches, stats


def match_ends(patterns: Sequence[ast.Regex],
               data: bytes) -> Dict[int, List[int]]:
    """Convenience wrapper returning sorted unique match end positions."""
    nfa = MultiPatternNFA.build(patterns)
    matches, _ = nfa.run(data)
    return {pid: sorted(set(ends)) for pid, ends in matches.items()}

"""Aho–Corasick multi-string matching.

The literal-matching substrate of the Hyperscan-style engine: candidate
positions for decomposed regex literals are found with one AC scan, then
confirmed by an automaton.  Counters track per-byte work for the CPU
cost model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple


@dataclass
class ACStats:
    symbols: int = 0
    goto_lookups: int = 0
    fail_follows: int = 0
    outputs_emitted: int = 0


@dataclass
class AhoCorasick:
    """A byte-level Aho–Corasick automaton."""

    goto: List[Dict[int, int]] = field(default_factory=lambda: [{}])
    fail: List[int] = field(default_factory=lambda: [0])
    #: per-node list of (pattern id, pattern length)
    output: List[List[Tuple[int, int]]] = field(default_factory=lambda: [[]])
    pattern_count: int = 0

    @classmethod
    def build(cls, patterns: Sequence[bytes]) -> "AhoCorasick":
        ac = cls(pattern_count=len(patterns))
        for pattern_id, pattern in enumerate(patterns):
            if not pattern:
                raise ValueError("empty literal pattern")
            node = 0
            for byte in pattern:
                nxt = ac.goto[node].get(byte)
                if nxt is None:
                    nxt = len(ac.goto)
                    ac.goto.append({})
                    ac.fail.append(0)
                    ac.output.append([])
                    ac.goto[node][byte] = nxt
                node = nxt
            ac.output[node].append((pattern_id, len(pattern)))
        ac._build_failure_links()
        return ac

    def _build_failure_links(self) -> None:
        queue = deque()
        for byte, node in self.goto[0].items():
            self.fail[node] = 0
            queue.append(node)
        while queue:
            node = queue.popleft()
            for byte, child in self.goto[node].items():
                queue.append(child)
                fallback = self.fail[node]
                while fallback and byte not in self.goto[fallback]:
                    fallback = self.fail[fallback]
                self.fail[child] = self.goto[fallback].get(byte, 0)
                if self.fail[child] == child:
                    self.fail[child] = 0
                self.output[child] = (self.output[child]
                                      + self.output[self.fail[child]])

    @property
    def node_count(self) -> int:
        return len(self.goto)

    def scan(self, data: bytes) -> Tuple[List[Tuple[int, int]], ACStats]:
        """Scan ``data``; returns [(pattern id, end position)] and stats."""
        hits: List[Tuple[int, int]] = []
        stats = ACStats()
        node = 0
        for index, byte in enumerate(data):
            stats.symbols += 1
            while node and byte not in self.goto[node]:
                node = self.fail[node]
                stats.fail_follows += 1
            node = self.goto[node].get(byte, 0)
            stats.goto_lookups += 1
            for pattern_id, _length in self.output[node]:
                hits.append((pattern_id, index))
                stats.outputs_emitted += 1
        return hits, stats

    def iter_matches(self, data: bytes) -> Iterator[Tuple[int, int]]:
        hits, _stats = self.scan(data)
        return iter(hits)

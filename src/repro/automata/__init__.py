"""Finite-automata substrate: Glushkov NFAs, subset DFAs, Aho–Corasick."""

from .aho_corasick import ACStats, AhoCorasick
from .dfa import DFA, DFATooLarge
from .glushkov import Glushkov, UnsupportedFeature
from .nfa import MultiPatternNFA, NFAStats, match_ends

__all__ = ["ACStats", "AhoCorasick", "DFA", "DFATooLarge", "Glushkov",
           "MultiPatternNFA", "NFAStats", "UnsupportedFeature", "match_ends"]

"""Compiled execution of whole engines: batched CTA dispatch and the
metric estimates the fast path reports.

``dispatch_programs`` is the simulator analog of one fused kernel
launch over many CTAs: the input is transposed to the word layout once,
compiled groups are bucketed by kernel fingerprint, and every bucket
whose kernel is shared executes as ONE vectorised NumPy call over a 2D
``uint64`` batch — per-CTA parameter matrices stacked on axis 0, basis
words broadcast along the rows.  CTAs with unique kernels fall back to
individual 1D calls (still compiled, still cached).

``dispatch_streams`` batches the other axis the paper calls MIMD-style
execution: one compiled group over many concurrent input streams.

Compiled execution produces bit-identical output streams but does not
*simulate* the schedule, so the metrics here are estimates: compute-side
counters (word ops, loop iterations, guard hits, DRAM for inputs and
outputs) are derived from the program and the kernel's dynamic stats;
schedule-fidelity counters (barriers, shared memory, recomputation) are
left to the simulating executors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..gpu.machine import CTAGeometry
from ..gpu.metrics import KernelMetrics
from ..ir.instructions import Instr, Op, WhileLoop
from ..ir.program import Program
from . import runtime
from .compiled import CompiledProgram, KernelCache, compile_program

DispatchResult = Tuple[Dict[str, np.ndarray], runtime.KernelStats]


def compile_group(programs: Sequence[Program], honour_guards: bool = False,
                  cache: Optional[KernelCache] = None
                  ) -> List[CompiledProgram]:
    return [compile_program(p, honour_guards=honour_guards, cache=cache)
            for p in programs]


def dispatch_programs(compiled: Sequence[CompiledProgram], data: bytes
                      ) -> List[DispatchResult]:
    """Run every compiled program over ``data``; programs sharing one
    kernel execute as a single batched 2D call."""
    basis = runtime.basis_environment(data)
    length = len(data) + 1
    return dispatch_words(compiled, basis, length)


def dispatch_words(compiled: Sequence[CompiledProgram], basis,
                   length: int) -> List[DispatchResult]:
    buckets: Dict[str, List[int]] = {}
    for index, program in enumerate(compiled):
        buckets.setdefault(program.kernel.fingerprint, []).append(index)

    results: List[Optional[DispatchResult]] = [None] * len(compiled)
    for indices in buckets.values():
        members = [compiled[i] for i in indices]
        if len(members) == 1:
            with obs.span("exec.batch", category="exec", ctas=1,
                          kernel=members[0].kernel.fingerprint[:12]):
                results[indices[0]] = members[0].run_words(basis,
                                                           length)
            continue
        # One fused call for the whole bucket: stack the per-CTA
        # parameter matrices into a (k, n_cc, 8) batch.
        params = np.stack([m.params for m in members])
        with obs.span("exec.batch", category="exec",
                      ctas=len(members),
                      kernel=members[0].kernel.fingerprint[:12]):
            raw, stats = members[0].kernel(basis, params, length)
        words = runtime.word_count(length)
        for row, (index, member) in enumerate(zip(indices, members)):
            outputs = {}
            for name, stream in zip(member.output_names, raw):
                if stream.ndim == 1:
                    # Independent of the batched parameters: shared row.
                    outputs[name] = stream.copy()
                else:
                    outputs[name] = np.ascontiguousarray(stream[row])
                assert outputs[name].shape == (words,)
            results[index] = (outputs, stats)
    return results  # type: ignore[return-value]


#: One equal-length batch of streams: ``(size, indices, basis)`` where
#: ``indices`` are positions in the dispatch's stream list and
#: ``basis`` is an ``(8, W)`` word array for a single stream or a
#: plane-indexable ``(8, k, W)`` batch (a list of 8 ``(k, W)`` arrays
#: or one contiguous 3D array — shared-memory shards use the latter).
StreamClass = Tuple[int, List[int], object]


def stream_length_classes(streams: Sequence[bytes]
                          ) -> List[Tuple[int, List[int]]]:
    """Group stream indices by byte length — the serial batching unit
    stream sharding must keep whole."""
    by_length: Dict[int, List[int]] = {}
    for index, stream in enumerate(streams):
        by_length.setdefault(len(stream), []).append(index)
    return list(by_length.items())


def transpose_stream_classes(streams: Sequence[bytes]
                             ) -> List[StreamClass]:
    """Transpose every stream to the word layout, batched per length
    class.  The result feeds :func:`dispatch_stream_classes` for any
    number of compiled groups — the transpose is paid once, not once
    per kernel."""
    classes: List[StreamClass] = []
    for size, indices in stream_length_classes(streams):
        if len(indices) == 1:
            basis: object = runtime.basis_environment(
                streams[indices[0]])
        else:
            stacked = np.stack([runtime.basis_environment(streams[i])
                                for i in indices])       # (k, 8, W)
            basis = [np.ascontiguousarray(stacked[:, k, :])
                     for k in range(8)]
        classes.append((size, indices, basis))
    return classes


def dispatch_stream_classes(compiled: CompiledProgram,
                            classes: Sequence[StreamClass],
                            count: int) -> List[DispatchResult]:
    """Run one compiled program over pre-transposed length classes —
    the shared execution loop of :func:`dispatch_streams` and the
    zero-copy shard path (workers resolve their classes straight out
    of shared memory)."""
    results: List[Optional[DispatchResult]] = [None] * count
    for size, indices, basis in classes:
        length = size + 1
        if len(indices) == 1:
            with obs.span("exec.batch", category="exec", streams=1,
                          stream_bytes=size):
                results[indices[0]] = compiled.run_words(basis, length)
            continue
        with obs.span("exec.batch", category="exec",
                      streams=len(indices), stream_bytes=size):
            raw, stats = compiled.kernel(basis, compiled.params, length)
        words = runtime.word_count(length)
        for row, index in enumerate(indices):
            outputs = {}
            for name, stream in zip(compiled.output_names, raw):
                if stream.ndim == 1:
                    outputs[name] = stream.copy()
                else:
                    outputs[name] = np.ascontiguousarray(stream[row])
                assert outputs[name].shape == (words,)
            results[index] = (outputs, stats)
    return results  # type: ignore[return-value]


def dispatch_streams(compiled: CompiledProgram,
                     streams: Sequence[bytes]) -> List[DispatchResult]:
    """Run one compiled program over many input streams; equal-length
    streams batch into a single 2D call (MIMD-style CTAs)."""
    return dispatch_stream_classes(compiled,
                                   transpose_stream_classes(streams),
                                   len(streams))


# -- metric estimation -------------------------------------------------------

def _direct_instr_weight(stmts) -> int:
    """Word-op weight of the instructions directly in ``stmts`` (loop
    bodies excluded); MATCH_CC counts its 8 basis-plane constraints."""
    weight = 0
    for stmt in stmts:
        if isinstance(stmt, Instr):
            weight += 8 if stmt.op is Op.MATCH_CC else 1
    return weight


def _loop_weights(program: Program) -> Dict[int, int]:
    """Loop id (codegen pre-order) → direct body word-op weight."""
    weights: Dict[int, int] = {}
    counter = [0]

    def visit(stmts):
        for stmt in stmts:
            if isinstance(stmt, WhileLoop):
                loop_id = counter[0]
                counter[0] += 1
                weights[loop_id] = _direct_instr_weight(stmt.body)
                visit(stmt.body)

    visit(program.statements)
    return weights


def estimate_metrics(program: Program, geometry: CTAGeometry, length: int,
                     stats: runtime.KernelStats) -> KernelMetrics:
    """Compute-side metrics of one compiled-kernel execution."""
    metrics = KernelMetrics()
    words = geometry.words(length)
    stream_bytes = -(-length // 8)

    weight = _direct_instr_weight(program.statements)
    loop_weights = _loop_weights(program)
    for loop_id, iterations in stats.loop_log:
        weight += loop_weights.get(loop_id, 0) * iterations
        metrics.loop_iterations += iterations

    metrics.thread_word_ops = weight * words
    metrics.guard_checks = stats.guard_checks
    metrics.guard_hits = stats.guard_hits
    metrics.fused_loops = 1  # the whole program is one fused kernel
    metrics.blocks_processed = geometry.block_count(length)
    metrics.output_bits = length * len(program.outputs)
    metrics.dram_read_bytes = len(program.inputs) * stream_bytes
    metrics.dram_write_bytes = len(program.outputs) * stream_bytes
    return metrics

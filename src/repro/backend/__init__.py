"""Compiled NumPy execution backend (the paper's NVRTC JIT analog).

Instead of interpreting bitstream programs statement-by-statement, this
package lowers a :class:`~repro.ir.program.Program` to ONE specialised
Python function of straight-line NumPy statements over ``uint64`` word
arrays, compiles it once, and caches it under a structural fingerprint
so repeated harness cells and structurally repeated regex groups pay
zero recompilation.  Batched dispatch stacks CTAs into 2D word arrays —
one vectorised call per shared kernel.

Front doors:

* :func:`compile_program` — program → cached :class:`CompiledProgram`
* :func:`dispatch_programs` — many CTAs over one input, batched
* :func:`dispatch_streams` — one CTA over many inputs, batched
* :func:`kernel_cache` — the process-wide cache (hit-rate reporting)
"""

from .codegen import CompileError, generate_source
from .compiled import (CacheStats, CompiledKernel, CompiledProgram,
                       KernelCache, compile_program, kernel_cache)
from .executor import (compile_group, dispatch_programs,
                       dispatch_stream_classes, dispatch_streams,
                       dispatch_words, estimate_metrics,
                       stream_length_classes, transpose_stream_classes)
from .fingerprint import cache_key, canonicalize, fingerprint
from .runtime import KernelStats, basis_environment

__all__ = [
    "CacheStats",
    "CompileError",
    "CompiledKernel",
    "CompiledProgram",
    "KernelCache",
    "KernelStats",
    "basis_environment",
    "cache_key",
    "canonicalize",
    "compile_group",
    "compile_program",
    "dispatch_programs",
    "dispatch_stream_classes",
    "dispatch_streams",
    "dispatch_words",
    "estimate_metrics",
    "fingerprint",
    "generate_source",
    "kernel_cache",
    "stream_length_classes",
    "transpose_stream_classes",
]

"""Runtime support for compiled bitstream kernels.

Generated kernels (see :mod:`repro.backend.codegen`) are straight-line
Python over little-endian ``uint64`` word arrays — the
:class:`~repro.bitstream.npvector.NPBitVector` layout.  This module is
the small fixed vocabulary those kernels call into: constant-stream
constructors, word-level shifts with cross-word carry, and the row-wise
``any`` reduction that drives while-loops and zero guards.

Every helper operates on the *last* axis, so the same compiled kernel
runs unchanged over a 1D ``(W,)`` array (one CTA) or a 2D ``(k, W)``
batch (``k`` CTAs stacked — the simulator analog of launching one fused
kernel over many CTAs).

Invariant: every value a kernel produces is *tail-masked* — bits at or
beyond the stream length in the last word are zero.  Bitwise AND / OR /
XOR / ANDN preserve the invariant; NOT and upward shifts restore it
explicitly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import obs
from ..bitstream.npvector import popcount_words  # noqa: F401  (re-export)
from ..bitstream.transpose import transpose_words

WORD_BITS = 64
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Coarse-grained by design: one update per scanned stream, never per
#: word — the rest of this module is the kernels' per-word hot path
#: and stays uninstrumented.
_TRANSPOSED_BYTES = obs.registry().counter(
    "repro_basis_transpose_bytes_total",
    "Input bytes transposed to basis-bit word layout")


def word_count(length: int) -> int:
    """Words needed for ``length`` bits (at least one)."""
    return max(1, -(-length // WORD_BITS))


def tail_mask(length: int) -> np.uint64:
    """Mask keeping only the valid bits of the final word."""
    keep = length % WORD_BITS
    if keep == 0:
        return _FULL
    return np.uint64((1 << keep) - 1)


def basis_environment(data: bytes) -> np.ndarray:
    """The 8 basis streams of ``data`` as an ``(8, W)`` word array,
    padded to ``len(data) + 1`` bits (the interpreter's cursor slot)."""
    _TRANSPOSED_BYTES.inc(len(data))
    return transpose_words(data, bits=len(data) + 1)


# -- constant streams (all tail-masked by construction) --------------------

def zeros(words: int) -> np.ndarray:
    return np.zeros(words, dtype=np.uint64)


def ones(length: int, words: int) -> np.ndarray:
    out = np.full(words, _FULL, dtype=np.uint64)
    out[-1] &= tail_mask(length)
    return out


def start(words: int) -> np.ndarray:
    out = np.zeros(words, dtype=np.uint64)
    out[0] = np.uint64(1)
    return out


def end(length: int, words: int) -> np.ndarray:
    out = np.zeros(words, dtype=np.uint64)
    pos = length - 1
    out[pos // WORD_BITS] = np.uint64(1 << (pos % WORD_BITS))
    return out


def text(length: int, words: int) -> np.ndarray:
    """1 at every byte position, 0 at the final cursor slot."""
    out = np.full(words, _FULL, dtype=np.uint64)
    pos = length - 1  # number of text bits
    idx = pos // WORD_BITS
    out[idx] &= np.uint64((1 << (pos % WORD_BITS)) - 1) \
        if pos % WORD_BITS else np.uint64(0)
    out[idx + 1:] = 0
    return out


# -- shifts ------------------------------------------------------------------

def shift_up(a: np.ndarray, word_shift: int, bit_shift: int,
             tmask: np.uint64) -> np.ndarray:
    """The paper's ``>>`` (advance): ``result[i] = a[i - d]``."""
    width = a.shape[-1]
    out = np.zeros_like(a)
    if word_shift < width:
        if bit_shift == 0:
            out[..., word_shift:] = a[..., :width - word_shift]
        else:
            out[..., word_shift:] = \
                a[..., :width - word_shift] << np.uint64(bit_shift)
            out[..., word_shift + 1:] |= \
                a[..., :width - word_shift - 1] \
                >> np.uint64(WORD_BITS - bit_shift)
    out[..., -1] &= tmask
    return out


def shift_down(a: np.ndarray, word_shift: int,
               bit_shift: int) -> np.ndarray:
    """The paper's ``<<``: ``result[i] = a[i + d]`` (zero fill; the
    source's tail-mask invariant keeps out-of-range bits zero)."""
    width = a.shape[-1]
    out = np.zeros_like(a)
    if word_shift < width:
        if bit_shift == 0:
            out[..., :width - word_shift] = a[..., word_shift:]
        else:
            out[..., :width - word_shift] = \
                a[..., word_shift:] >> np.uint64(bit_shift)
            out[..., :width - word_shift - 1] |= \
                a[..., word_shift + 1:] << np.uint64(WORD_BITS - bit_shift)
    return out


# -- reductions ---------------------------------------------------------------

def row_any(a: np.ndarray, parent: Optional[np.ndarray]) -> np.ndarray:
    """Per-row "has any set bit", shaped ``(..., 1)`` for broadcasting.

    ``parent`` is the enclosing loop's activity mask: a row frozen by an
    outer loop must stay frozen in inner control flow even if its
    (stale) condition stream is non-zero.
    """
    act = a.any(axis=-1, keepdims=True)
    if parent is not None:
        act = act & parent
    return act


class KernelStats:
    """Dynamic counters one kernel invocation reports back."""

    __slots__ = ("loop_log", "guard_checks", "guard_hits")

    def __init__(self):
        #: (loop_id, iterations), appended in loop-completion order —
        #: the same order the reference interpreter records.
        self.loop_log = []
        self.guard_checks = 0
        self.guard_hits = 0

    def iteration_counts(self):
        return [count for _, count in self.loop_log]

    def counts_by_loop(self):
        by_loop = {}
        for loop_id, count in self.loop_log:
            by_loop.setdefault(loop_id, []).append(count)
        return by_loop

    def total_iterations(self) -> int:
        return sum(count for _, count in self.loop_log)

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Fold another invocation's counters into this one — used by
        sharded dispatch to present one session-level view of the
        dynamic work its shards performed."""
        self.loop_log.extend(other.loop_log)
        self.guard_checks += other.guard_checks
        self.guard_hits += other.guard_hits
        return self

"""Compiled program objects and the fingerprint-keyed kernel cache.

``compile_program`` is the backend's front door: it canonicalises a
program (:mod:`repro.backend.fingerprint`), looks the digest up in the
process-wide :class:`KernelCache`, and only on a miss generates and
``compile()``s NumPy source (:mod:`repro.backend.codegen`).  Repeated
harness cells, repeated blocks, and structurally repeated regex groups
all reuse one code object — the simulator analog of the paper's cached
NVRTC kernels.

A :class:`CompiledProgram` binds a shared :class:`CompiledKernel` to
one program instance's non-structural data: its character-class
parameter matrix and its output names.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..bitstream.npvector import NPBitVector
from ..ir.program import Program
from . import runtime
from .codegen import CompileError, generate_source
from .fingerprint import CanonicalProgram, canonicalize

_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)

_REG = obs.registry()
_CACHE_LOOKUPS = _REG.counter(
    "repro_kernel_cache_lookups_total",
    "In-memory kernel cache lookups")
_CACHE_HITS = _REG.counter(
    "repro_kernel_cache_hits_total",
    "In-memory kernel cache hits (no codegen, no compile)")
_CACHE_MISSES = _REG.counter(
    "repro_kernel_cache_misses_total",
    "In-memory kernel cache misses (kernel was built or disk-loaded)")
_CACHE_DISK_HITS = _REG.counter(
    "repro_kernel_cache_disk_hits_total",
    "In-memory misses served from the on-disk cache")
_CACHE_SIZE = _REG.gauge(
    "repro_kernel_cache_kernels",
    "Distinct kernels resident in the in-memory cache")
_CODEGEN_SECONDS = _REG.histogram(
    "repro_codegen_seconds",
    "Wall time to generate + compile one kernel on a cache miss")


@dataclass
class CacheStats:
    """Hit/miss counters of one kernel cache."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    #: in-memory misses served from the on-disk cache (no codegen,
    #: no compile) — the pool-worker warm-start path
    disk_hits: int = 0

    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def reset(self) -> None:
        self.lookups = self.hits = self.misses = self.disk_hits = 0


@dataclass
class CompiledKernel:
    """One compiled code object, shared by every structurally equal
    program (and every CTA batch dispatched over them)."""

    fingerprint: str
    source: str
    func: Callable
    cc_count: int
    output_names: Tuple[str, ...]
    honour_guards: bool
    #: the module code object the kernel was exec'd from — what the
    #: on-disk cache persists (marshal round-trips code objects)
    code: Optional[object] = None

    def __call__(self, basis, params, length: int,
                 stats: Optional[runtime.KernelStats] = None):
        words = runtime.word_count(length)
        tmask = runtime.tail_mask(length)
        if stats is None:
            stats = runtime.KernelStats()
        outputs = self.func(basis, params, length, words, tmask,
                            runtime, stats)
        return outputs, stats


class KernelCache:
    """Fingerprint → :class:`CompiledKernel`, with hit statistics.

    Optionally backed by a process-safe on-disk cache
    (:class:`repro.parallel.diskcache.DiskKernelCache`): in-memory
    misses first try to load the marshalled artefact another process
    (typically the pool parent) persisted, and fresh builds are
    written back for sibling workers.
    """

    def __init__(self, disk=None):
        self._kernels: Dict[str, CompiledKernel] = {}
        self.stats = CacheStats()
        self.disk = disk

    def __len__(self) -> int:
        return len(self._kernels)

    def clear(self) -> None:
        self._kernels.clear()
        self.stats.reset()

    def attach_disk(self, disk) -> None:
        """Back this cache with ``disk``, flushing already-resident
        kernels so earlier parent-side compilation is visible to
        workers that attach later."""
        from .fingerprint import cache_key

        self.disk = disk
        if disk is None:
            return
        for digest, kernel in self._kernels.items():
            if kernel.code is not None:
                disk.put(cache_key(digest), kernel.source, kernel.code)

    def get_or_compile(self,
                       canonical: CanonicalProgram) -> CompiledKernel:
        from .fingerprint import cache_key

        self.stats.lookups += 1
        _CACHE_LOOKUPS.inc()
        kernel = self._kernels.get(canonical.digest)
        if kernel is not None:
            self.stats.hits += 1
            _CACHE_HITS.inc()
            return kernel
        self.stats.misses += 1
        _CACHE_MISSES.inc()
        source = code = None
        persisted = False
        if self.disk is not None:
            entry = self.disk.get(cache_key(canonical.digest))
            if entry is not None:
                source, code = entry
                persisted = True
                self.stats.disk_hits += 1
                _CACHE_DISK_HITS.inc()
        begin = time.perf_counter()
        with obs.span("codegen", category="compile",
                      fingerprint=canonical.digest[:12],
                      disk_hit=persisted):
            kernel = _build_kernel(canonical, source=source, code=code)
        _CODEGEN_SECONDS.observe(time.perf_counter() - begin)
        self._kernels[canonical.digest] = kernel
        _CACHE_SIZE.set(len(self._kernels))
        if self.disk is not None and not persisted:
            self.disk.put(cache_key(canonical.digest), kernel.source,
                          kernel.code)
        return kernel


#: Process-wide cache; ``kernel_cache()`` is the supported accessor.
_GLOBAL_CACHE = KernelCache()


def kernel_cache() -> KernelCache:
    return _GLOBAL_CACHE


def _build_kernel(canonical: CanonicalProgram,
                  source: Optional[str] = None,
                  code=None) -> CompiledKernel:
    """Build a kernel, reusing a persisted ``source``/``code`` pair
    (from the on-disk cache) when provided instead of regenerating."""
    if source is None:
        source = generate_source(canonical)
    if code is None:
        code = compile(source,
                       f"<bitgen-kernel-{canonical.digest[:12]}>",
                       "exec")
    namespace: Dict[str, object] = {}
    exec(code, namespace)
    outputs = canonical.tokens[3]
    return CompiledKernel(fingerprint=canonical.digest, source=source,
                          func=namespace["_kernel"],
                          cc_count=len(canonical.cc_classes),
                          output_names=outputs,
                          honour_guards=canonical.honour_guards,
                          code=code)


def _cc_params(canonical: CanonicalProgram) -> np.ndarray:
    """Per-program parameter matrix: ``P[j, k]`` selects basis plane
    ``bk`` (zero) or its complement (all-ones) for cc slot ``j``."""
    params = np.zeros((len(canonical.cc_classes), 8), dtype=np.uint64)
    for j, cc in enumerate(canonical.cc_classes):
        if not cc.is_single():
            raise CompileError(
                "MATCH_CC supports only singleton classes; expand "
                "multi-byte classes with CCCompiler")
        byte = cc.single_byte()
        for k in range(8):
            if not (byte >> (7 - k)) & 1:
                params[j, k] = _FULL
    return params


@dataclass
class CompiledProgram:
    """A shared kernel bound to one program's parameters and outputs."""

    program: Program
    kernel: CompiledKernel
    params: np.ndarray
    output_names: List[str] = field(default_factory=list)

    def run_words(self, basis, length: int):
        """Execute over word arrays; returns (name → uint64 array,
        :class:`~repro.backend.runtime.KernelStats`)."""
        raw, stats = self.kernel(basis, self.params, length)
        return dict(zip(self.output_names, raw)), stats

    def run_data(self, data: bytes):
        """Transpose ``data`` and execute; returns (name → uint64
        array, stats) over ``len(data) + 1`` bits."""
        basis = runtime.basis_environment(data)
        return self.run_words(basis, len(data) + 1)

    def run(self, data: bytes) -> Dict[str, NPBitVector]:
        """Execute and wrap the outputs as :class:`NPBitVector`."""
        length = len(data) + 1
        outputs, _ = self.run_data(data)
        return {name: NPBitVector(np.array(words, dtype=np.uint64),
                                  length)
                for name, words in outputs.items()}


def compile_program(program: Program, honour_guards: bool = False,
                    cache: Optional[KernelCache] = None
                    ) -> CompiledProgram:
    """Lower ``program`` to its cached compiled kernel."""
    canonical = canonicalize(program, honour_guards=honour_guards)
    store = cache if cache is not None else _GLOBAL_CACHE
    kernel = store.get_or_compile(canonical)
    return CompiledProgram(program=program, kernel=kernel,
                           params=_cc_params(canonical),
                           output_names=list(program.outputs.keys()))

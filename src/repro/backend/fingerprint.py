"""Structural program fingerprints for compiled-kernel caching.

Two programs share one compiled kernel exactly when they are equal
after canonicalising variable names (inputs keep their basis slots;
every other variable becomes ``v<i>`` in first-appearance order) and
abstracting MATCH_CC byte constants into parameter slots.  Everything
that changes the *generated code* stays in the fingerprint: opcodes and
operand structure, shift distances, const kinds, loop nesting, guard
placement and skip counts, output arity, and whether guards are
honoured.

The paper's NVRTC path caches compiled PTX per specialised kernel; this
is the same move one level up — repeated harness cells, repeated
blocks, and structurally repeated regex groups all hit the cache and
pay zero recompilation.
"""

from __future__ import annotations

import hashlib
import sys
from typing import Dict, List, Tuple

from ..ir.instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from ..ir.program import Program


class CanonicalProgram:
    """A program rewritten over canonical names, plus its parameter
    slots (the character classes abstracted out of the fingerprint)."""

    __slots__ = ("tokens", "var_map", "cc_classes", "digest",
                 "honour_guards")

    def __init__(self, tokens: Tuple, var_map: Dict[str, str],
                 cc_classes: List, honour_guards: bool):
        self.tokens = tokens
        self.var_map = var_map
        self.cc_classes = cc_classes
        self.honour_guards = honour_guards
        payload = repr((tokens, honour_guards)).encode()
        self.digest = hashlib.sha256(payload).hexdigest()


def canonicalize(program: Program,
                 honour_guards: bool = False) -> CanonicalProgram:
    """Canonical token form of ``program`` (see module docstring)."""
    var_map: Dict[str, str] = {name: name for name in program.inputs}
    cc_classes: List = []
    counter = [0]

    def canon(name: str) -> str:
        mapped = var_map.get(name)
        if mapped is None:
            mapped = f"v{counter[0]}"
            counter[0] += 1
            var_map[name] = mapped
        return mapped

    def visit(stmts) -> Tuple:
        tokens = []
        for stmt in stmts:
            tokens.append(_stmt_token(stmt, canon, cc_classes, visit))
        return tuple(tokens)

    body = visit(program.statements)
    outputs = tuple(var_map[var] for var in program.outputs.values())
    tokens = ("program", program.inputs, body, outputs)
    return CanonicalProgram(tokens, var_map, cc_classes, honour_guards)


def _stmt_token(stmt: Stmt, canon, cc_classes: List, visit) -> Tuple:
    if isinstance(stmt, Instr):
        if stmt.op is Op.MATCH_CC:
            if stmt.cc.is_empty():
                cc_token = "empty"
            else:
                # Identical classes share one parameter slot, so the
                # codegen's hoisted basis expression is computed once
                # per distinct class, not once per MATCH_CC.
                try:
                    slot = cc_classes.index(stmt.cc)
                except ValueError:
                    slot = len(cc_classes)
                    cc_classes.append(stmt.cc)
                cc_token = f"cc{slot}"
            args = ()
        else:
            cc_token = None
            args = tuple(canon(a) for a in stmt.args)
        return ("instr", stmt.op.value, canon(stmt.dest), args,
                stmt.shift, stmt.const, cc_token)
    if isinstance(stmt, WhileLoop):
        cond = canon(stmt.cond)
        return ("while", cond, visit(stmt.body))
    if isinstance(stmt, SkipGuard):
        return ("guard", canon(stmt.cond), stmt.skip_count)
    raise TypeError(f"unknown statement {stmt!r}")


def fingerprint(program: Program, honour_guards: bool = False) -> str:
    """Stable hex digest of a program's compiled-kernel identity."""
    return canonicalize(program, honour_guards).digest


def cache_key(digest: str) -> str:
    """On-disk cache key for one canonical digest.

    Beyond the structural digest, the key pins everything that changes
    the *persisted artefact*: the codegen schema version (regenerating
    differently-shaped source must miss) and the interpreter version
    (marshalled code objects are not stable across interpreters), so
    heterogeneous workers can share one cache directory safely.
    """
    from .codegen import CODEGEN_VERSION

    return (f"{digest}-cg{CODEGEN_VERSION}"
            f"-py{sys.version_info[0]}{sys.version_info[1]}")

"""NumPy code generation for bitstream programs.

Lowers a :class:`~repro.ir.program.Program` into the source of ONE
specialised Python function of straight-line NumPy statements — the
reproduction's analog of the paper's NVRTC-compiled fused kernel.
Per-instruction dispatch disappears entirely: every AND/OR/XOR/ANDN/NOT
becomes a native array expression, SHIFT becomes a word-level shift
with cross-word carry (distances baked in), MATCH_CC expands inline to
the 8 basis-plane constraints, and while-loops / zero guards become
native Python control flow.

Batch semantics: all expressions operate on the last axis, so a kernel
compiled once runs over a 1D word array (one CTA) or a stacked 2D batch
(many CTAs).  Loop bodies and guard skips are masked per row with
``np.where``, so rows whose condition has converged stay frozen exactly
as if each row ran its own loop — batching never changes results.

Character classes are *parameters*, not constants: a MATCH_CC for byte
``c`` compiles against ``P[..., j, k, None]`` planes where ``P[j, k]``
is all-ones when bit ``k`` of ``c`` is clear (selecting ``~bk``) and
zero when set (selecting ``bk``).  Programs that differ only in their
byte constants therefore share one kernel and can be dispatched as one
batched call.  Each distinct parameter slot's 8-term basis expression
is hoisted into one prologue temporary ``_cc<j>`` that every consumer
(and every loop iteration) reuses — identical classes were deduplicated
into one slot during canonicalisation, so the 8 ANDs and 8 XORs are
paid once per class per kernel call.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..ir.instructions import Instr, Op, SkipGuard, WhileLoop
from .fingerprint import CanonicalProgram

#: Extra iterations allowed beyond the stream length before a fixpoint
#: loop is declared divergent (mirrors the interpreter's slack).
LOOP_SLACK = 80

#: CPython rejects sources beyond 100 indentation levels, and every
#: honoured guard nests one ``if/else`` deeper.  Past this depth guards
#: are dropped instead — they are optimisation hints, and executing a
#: guarded span unconditionally is always safe.
MAX_GUARD_DEPTH = 40

#: Schema version of the generated source; bump on any change to the
#: emitted code shape so persisted on-disk kernels are invalidated.
#: 2: CC parameter slots deduplicated + hoisted into prologue temps.
CODEGEN_VERSION = 2

_BINOPS = {Op.AND.value: "&", Op.OR.value: "|", Op.XOR.value: "^"}

_CONST_EXPR = {
    "zero": "Z",
    "ones": "ONES",
    "start": "START",
    "end": "END",
    "text": "TEXT",
}

_CONST_INIT = {
    "Z": "Z = _rt.zeros(W)",
    "ONES": "ONES = _rt.ones(L, W)",
    "START": "START = _rt.start(W)",
    "END": "END = _rt.end(L, W)",
    "TEXT": "TEXT = _rt.text(L, W)",
}


class CompileError(ValueError):
    """Raised when a program cannot be lowered to a compiled kernel."""


class _Emitter:
    """Walks canonical tokens and accumulates source lines."""

    def __init__(self, canonical: CanonicalProgram):
        self.canonical = canonical
        self.lines: List[str] = []
        self.consts_used: Set[str] = set()
        self.cc_slots_used: Set[int] = set()
        self.loop_id = 0
        self.loop_preinit: Set[str] = set()
        self._defined: Set[str] = set(canonical.tokens[1])  # inputs

    def emit(self, line: str, depth: int) -> None:
        self.lines.append("    " * (depth + 1) + line)

    # -- expression fragments ---------------------------------------------

    def _instr_expr(self, token) -> str:
        _, op, _dest, args, shift, const, cc_token = token
        if op == Op.CONST.value:
            name = _CONST_EXPR[const]
            self.consts_used.add(name)
            return name
        if op == Op.MATCH_CC.value:
            return self._match_cc_expr(cc_token)
        if op in _BINOPS:
            return f"{args[0]} {_BINOPS[op]} {args[1]}"
        if op == Op.ANDN.value:
            return f"{args[0]} & ~{args[1]}"
        if op == Op.NOT.value:
            return f"~{args[0]}"
        if op == Op.COPY.value:
            return args[0]
        if op == Op.SHIFT.value:
            word_shift, bit_shift = divmod(abs(shift), 64)
            if shift > 0:
                return f"_shu({args[0]}, {word_shift}, {bit_shift}, TM)"
            return f"_shd({args[0]}, {word_shift}, {bit_shift})"
        raise CompileError(f"unhandled op {op!r}")

    def _match_cc_expr(self, cc_token: str) -> str:
        if cc_token == "empty":
            self.consts_used.add("Z")
            return "Z"
        # Slot index comes from canonicalisation, which deduplicates
        # identical classes; the basis expression itself lives in the
        # prologue as _cc<slot>, shared by every consumer.
        slot = int(cc_token[2:])
        self.cc_slots_used.add(slot)
        self.consts_used.add("TEXT")
        return f"_cc{slot}"

    # -- statements --------------------------------------------------------

    def emit_instr(self, token, depth: int, act: Optional[str]) -> None:
        dest = token[2]
        expr = self._instr_expr(token)
        needs_mask = token[1] == Op.NOT.value
        if act is None:
            self.emit(f"{dest} = {expr}", depth)
            if needs_mask:
                self.emit(f"{dest}[..., -1] &= TM", depth)
        else:
            # Inside a loop: rows whose condition converged are frozen.
            self.emit(f"_t = {expr}", depth)
            if needs_mask:
                self.emit("_t[..., -1] &= TM", depth)
            self.emit(f"{dest} = _np.where({act}, _t, {dest})", depth)
        self._note_definition(dest, depth)

    def _note_definition(self, dest: str, depth: int) -> None:
        if dest in self._defined:
            return
        self._defined.add(dest)
        if depth > 0:
            # First definition inside control flow: pre-initialise so the
            # masked assignment has a previous value to keep.
            self.loop_preinit.add(dest)
            self.consts_used.add("Z")

    def emit_block(self, tokens, depth: int, act: Optional[str]) -> None:
        index = 0
        while index < len(tokens):
            token = tokens[index]
            kind = token[0]
            if kind == "instr":
                self.emit_instr(token, depth, act)
                index += 1
            elif kind == "while":
                self.emit_while(token, depth, act)
                index += 1
            elif kind == "guard":
                index += self.emit_guard(token, tokens, index, depth, act)
            else:
                raise CompileError(f"unknown token {kind!r}")

    def emit_while(self, token, depth: int, parent: Optional[str]) -> None:
        _, cond, body = token
        loop = self.loop_id
        self.loop_id += 1
        act = f"_a{loop}"
        parent_arg = parent if parent is not None else "None"
        self.emit(f"_n{loop} = 0", depth)
        self.emit("while True:", depth)
        self.emit(f"{act} = _any({cond}, {parent_arg})", depth + 1)
        self.emit(f"if not {act}.any():", depth + 1)
        self.emit("break", depth + 2)
        self.emit(f"if _n{loop} >= _limit:", depth + 1)
        self.emit(f"raise RuntimeError('while loop {loop} diverged')",
                  depth + 2)
        self.emit(f"_n{loop} += 1", depth + 1)
        self.emit_block(body, depth + 1, act)
        self.emit(f"_stats.loop_log.append(({loop}, _n{loop}))", depth)

    def emit_guard(self, token, tokens, index: int, depth: int,
                   act: Optional[str]) -> int:
        _, cond, skip_count = token
        span = tokens[index + 1:index + 1 + skip_count]
        if not self.canonical.honour_guards or depth >= MAX_GUARD_DEPTH:
            # Guards are pure optimisation hints; executing the range
            # despite a zero condition never changes results.
            return 1
        self.consts_used.add("Z")
        self.emit("_stats.guard_checks += 1", depth)
        parent_arg = act if act is not None else "None"
        self.emit(f"if not _any({cond}, {parent_arg}).any():", depth)
        self.emit("_stats.guard_hits += 1", depth + 1)
        # Skipped definitions are provably zero (guard validation).
        for skipped in span:
            if skipped[0] != "instr":
                continue  # nested guards are skipped with their range
            dest = skipped[2]
            if act is None:
                self.emit(f"{dest} = Z", depth + 1)
            else:
                self.emit(f"{dest} = _np.where({act}, Z, {dest})",
                          depth + 1)
            self._note_definition(dest, depth)
        self.emit("else:", depth)
        self.emit_block(span, depth + 1, act)
        return skip_count + 1


def generate_source(canonical: CanonicalProgram,
                    name: str = "_kernel") -> str:
    """Full function source for one canonical program."""
    emitter = _Emitter(canonical)
    emitter.emit_block(canonical.tokens[2], 0, None)

    outputs = canonical.tokens[3]
    prologue = [
        f"def {name}(B, P, L, W, TM, _rt, _stats):",
        "    _np = _rt.np",
        "    _shu = _rt.shift_up",
        "    _shd = _rt.shift_down",
        "    _any = _rt.row_any",
        f"    _limit = L + {LOOP_SLACK}",
    ]
    for k, basis in enumerate(canonical.tokens[1]):
        if basis != f"b{k}":
            raise CompileError(f"unexpected input layout {basis!r}")
        prologue.append(f"    b{k} = B[{k}]")
    for const in sorted(emitter.consts_used):
        prologue.append("    " + _CONST_INIT[const])
    for slot in sorted(emitter.cc_slots_used):
        terms = " & ".join(f"(b{k} ^ P[..., {slot}, {k}, None])"
                           for k in range(8))
        prologue.append(f"    _cc{slot} = TEXT & {terms}")
    for var in sorted(emitter.loop_preinit):
        prologue.append(f"    {var} = Z")
    body = emitter.lines or ["    pass"]
    epilogue = [f"    return ({', '.join(outputs)}{',' if outputs else ''})"]
    return "\n".join(prologue + body + epilogue) + "\n"

"""Dependency-Aware Thread-Data Mapping analysis (Section 4).

Interleaved execution computes each block over a *window* that extends
past the block boundaries; shifted accesses must stay inside it.  Along
a dataflow path with cumulative signed shift offsets δ₀..δₘ (positive =
the paper's right shift / advance), the paper's overlap requirement is
``Δ = max over paths (max δ - min δ)``.  We track the two directions
separately, per variable:

* ``lookback(v)``  = max over paths of ``δ_end - min δ``: how many bits
  *before* the window start v's value at a position can depend on;
* ``lookahead(v)`` = max over paths of ``max δ - δ_end``: how many bits
  *after* the window end.

``Δ = lookback + lookahead``.  Propagation is exact on straight-line
code:

* inputs / constants / character classes: (0, 0)
* ``SHIFT k``:  lb' = max(lb + k, 0),  la' = max(la - k, 0)
* bitwise ops: componentwise max of the operands

Shifts inside ``while`` loops accumulate per iteration — the dynamic
part (the Δ(n) = 1 + n example of Figure 7 (b)).  Statically we record
one-iteration bounds and flag the program as dynamic; the interleaved
executor tracks the same propagation at run time, where loops unroll
naturally, and uses the observed bounds to size the next block's window
(the paper's "loop iteration counter records the required overlap").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..ir.instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from ..ir.program import Program

Bounds = Tuple[int, int]

ZERO_BOUNDS: Bounds = (0, 0)


class OverlapLimitError(RuntimeError):
    """The required overlap exceeds one block (Section 8.2's limit):
    a block would depend on multiple previous blocks, which interleaved
    execution cannot recompute.  The paper's proposed fallback is a
    sequential pass for the offending loop (see
    ``InterleavedExecutor(loop_fallback=True)``)."""


def propagate(instr: Instr, lookup) -> Bounds:
    """Dependency bounds of ``instr``'s result given operand bounds."""
    if instr.op in (Op.CONST, Op.MATCH_CC):
        return ZERO_BOUNDS
    if instr.op is Op.SHIFT:
        lb, la = lookup(instr.args[0])
        k = instr.shift
        return (max(lb + k, 0), max(la - k, 0))
    lb = 0
    la = 0
    for arg in instr.args:
        arg_lb, arg_la = lookup(arg)
        lb = max(lb, arg_lb)
        la = max(la, arg_la)
    return (lb, la)


@dataclass
class StaticOverlap:
    """Result of the compile-time analysis."""

    lookback: int = 0
    lookahead: int = 0
    #: True when some SHIFT executes inside a while loop, so the real
    #: overlap grows with the loop count (needs dynamic tracking).
    has_dynamic: bool = False
    per_var: Dict[str, Bounds] = field(default_factory=dict)

    @property
    def delta(self) -> int:
        """The paper's Δ (static part)."""
        return self.lookback + self.lookahead


def analyze_static(program: Program) -> StaticOverlap:
    """Whole-program static bounds, loop bodies counted once."""
    result = StaticOverlap()
    env: Dict[str, Bounds] = {name: ZERO_BOUNDS for name in program.inputs}

    def lookup(name: str) -> Bounds:
        return env.get(name, ZERO_BOUNDS)

    def visit(stmts: Sequence[Stmt], in_loop: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, Instr):
                bounds = propagate(stmt, lookup)
                env[stmt.dest] = bounds
                result.lookback = max(result.lookback, bounds[0])
                result.lookahead = max(result.lookahead, bounds[1])
                if in_loop and stmt.op is Op.SHIFT:
                    result.has_dynamic = True
            elif isinstance(stmt, WhileLoop):
                visit(stmt.body, True)
            elif isinstance(stmt, SkipGuard):
                continue
    visit(program.statements, False)
    result.per_var = dict(env)
    return result


def region_bounds(instrs: Iterable[Instr],
                  entry: Optional[Dict[str, Bounds]] = None
                  ) -> Tuple[Dict[str, Bounds], int, int]:
    """Bounds over one straight-line region.

    ``entry`` gives bounds of region inputs; absent inputs are treated
    as materialised-exact (0, 0) — the DTM- situation, where values
    crossing segment boundaries live in global memory.
    """
    env: Dict[str, Bounds] = dict(entry or {})

    def lookup(name: str) -> Bounds:
        return env.get(name, ZERO_BOUNDS)

    lookback = 0
    lookahead = 0
    for instr in instrs:
        bounds = propagate(instr, lookup)
        env[instr.dest] = bounds
        lookback = max(lookback, bounds[0])
        lookahead = max(lookahead, bounds[1])
    return env, lookback, lookahead


class RuntimeTracker:
    """Per-variable dependency bounds maintained during interleaved
    execution.  Loops unroll dynamically, so loop-carried shifts
    accumulate exactly the paper's Δ(n) (Figure 7 (b))."""

    def __init__(self, inputs: Iterable[str]):
        self.bounds: Dict[str, Bounds] = {name: ZERO_BOUNDS
                                          for name in inputs}
        self.max_lookback = 0
        self.max_lookahead = 0

    def lookup(self, name: str) -> Bounds:
        return self.bounds.get(name, ZERO_BOUNDS)

    def record(self, instr: Instr) -> Bounds:
        result = propagate(instr, self.lookup)
        self.bounds[instr.dest] = result
        if result[0] > self.max_lookback:
            self.max_lookback = result[0]
        if result[1] > self.max_lookahead:
            self.max_lookahead = result[1]
        return result

    # Guard-skipped instructions must still be recorded: their values are
    # zero, but later windows are sized from these bounds, and a skip in
    # this block says nothing about dependency lengths in the next one.

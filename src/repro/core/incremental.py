"""Incremental recompilation for evolving rule sets.

Rule sets at scale change by small diffs — a handful of signatures
added or retired against thousands that stay put.  Recompiling the
whole set on every diff makes update latency proportional to set size;
this module makes it proportional to the *diff*.

The unit of reuse is the compiled group.  Since
:meth:`~repro.core.engine.BitGenEngine._compile_group` names outputs
by local position (``R0..Rk-1``), a group's program depends only on
its member ASTs and the compile-relevant config — not on where those
patterns sit in the rule set.  So a group whose member sequence is
unchanged between the old and new sets keeps its program, barrier
plan, and optimizer report verbatim (only the index-mapping
:class:`~repro.core.grouping.RegexGroup` is rebuilt), and the on-disk
kernel cache then skips codegen for any *recompiled* group whose
kernel fingerprint is already cached.

Reuse requires the old and new :meth:`ScanConfig.compile_key` to be
equal — a changed scheme, opt level, or factoring knob invalidates
every artefact.  ``grouping="fingerprint"`` maximises the hit rate:
its deterministic shape-bucket chunking keeps untouched patterns in
the same groups across small diffs, whereas ``"balanced"`` re-sorts
globally and a single added pattern can reshuffle every group.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..parallel.config import ScanConfig
from ..regex import ast
from ..regex.parser import parse
from .engine import DEFAULT_CTA_COUNT, BitGenEngine, CompiledGroup
from .grouping import RegexGroup, group_regexes

_REG = obs.registry()
_REUSED = _REG.counter(
    "repro_compile_reused_total",
    "Compiled groups reused verbatim by incremental recompilation")
_RECOMPILED = _REG.counter(
    "repro_compile_recompiled_total",
    "Compiled groups rebuilt by incremental recompilation")


@dataclass
class UpdateReport:
    """Accounting of one incremental update."""

    patterns: int
    groups: int
    #: groups whose compiled artefact was reused verbatim
    reused: int
    #: groups that went through the full compile pipeline
    recompiled: int
    seconds: float

    def to_dict(self) -> Dict[str, object]:
        return {"patterns": self.patterns, "groups": self.groups,
                "reused": self.reused, "recompiled": self.recompiled,
                "seconds": self.seconds}


def group_signature(nodes: Sequence[ast.Regex],
                    group: RegexGroup) -> Tuple[str, ...]:
    """The reuse key of one group: its member ASTs, in order.  AST
    ``repr`` is value-based (structural), so equal signatures mean the
    members lower to the identical program under local naming."""
    return tuple(repr(nodes[i]) for i in group.indices)


def update_engine(engine: BitGenEngine,
                  patterns: Sequence[Union[str, ast.Regex]],
                  config: Optional[ScanConfig] = None,
                  ) -> Tuple[BitGenEngine, UpdateReport]:
    """Compile ``patterns`` into a fresh engine, reusing every
    compiled group of ``engine`` whose member sequence (and compile
    key) is unchanged.  ``engine`` is not mutated; the returned engine
    is a complete replacement.

    Falls back to compiling every group (still through the shared
    kernel caches) when ``engine`` has no retained ASTs or the compile
    keys differ — the result is always equivalent to a cold
    :meth:`BitGenEngine.compile` of ``patterns``.
    """
    if config is None:
        config = engine.config
    begin = time.perf_counter()
    with obs.span("compile.incremental", category="compile",
                  patterns=len(patterns)) as sp:
        nodes = [parse(p) if isinstance(p, str) else p
                 for p in patterns]
        cta_count = config.cta_count
        if cta_count is None:
            cta_count = min(DEFAULT_CTA_COUNT, max(1, len(nodes)))
        groups = group_regexes(nodes, cta_count,
                               strategy=config.grouping)

        donors: Dict[Tuple[str, ...], List[CompiledGroup]] = {}
        if (engine._nodes is not None
                and engine.config.compile_key() == config.compile_key()):
            for old in engine.groups:
                sig = group_signature(engine._nodes, old.group)
                donors.setdefault(sig, []).append(old)

        compiled: List[CompiledGroup] = []
        reused = 0
        for index, group in enumerate(groups):
            pool = donors.get(group_signature(nodes, group))
            if pool:
                donor = pool.pop()
                # New RegexGroup (fresh global indices), old artefact:
                # local output naming makes the program/plan portable.
                compiled.append(CompiledGroup(
                    group, donor.program, donor.barrier_plan,
                    donor.opt_report))
                reused += 1
            else:
                members = [nodes[i] for i in group.indices]
                compiled.append(BitGenEngine._compile_group(
                    members, group, config, index))
        recompiled = len(groups) - reused
        if sp.is_recording:
            sp.set(groups=len(groups), reused=reused,
                   recompiled=recompiled)
    if reused:
        _REUSED.inc(reused)
    if recompiled:
        _RECOMPILED.inc(recompiled)
    report = UpdateReport(
        patterns=len(nodes), groups=len(groups), reused=reused,
        recompiled=recompiled, seconds=time.perf_counter() - begin)
    return (BitGenEngine(compiled, len(nodes), nodes=nodes,
                         config=config),
            report)

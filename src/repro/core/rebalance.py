"""Shift Rebalancing (Section 5.2).

Long dependency chains of alternating SHIFT/AND instructions serialise
execution: every SHIFT needs a barrier pair, and each depends on the
previous AND.  The *operand rewriting* identity

    (A >> n) & B   ==   (A & (B << n)) >> n

(valid on zero-filled streams in both shift directions, and for the
left operand of ANDN) moves the shift onto the operand with the
shallower dataflow depth, shortening the critical path and letting the
now-independent shifts be scheduled together and share barriers
(``repro.core.barriers``).  The pass runs to a fixpoint and then
coalesces shift-of-shift chains (``(x >> a) >> b == x >> (a+b)``),
which is how the shifts that the rewrite introduces are merged "after
the last AND" (Figure 8, iteration 2).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from ..ir.program import Program

_MAX_PASSES = 32


class _NameGen:
    """Fresh variable names that cannot collide with existing ones."""

    def __init__(self, program: Program):
        highest = 0
        for var in itertools.chain(program.inputs, program.variables()):
            if var.startswith("S") and var[1:].isdigit():
                highest = max(highest, int(var[1:]))
        self._counter = highest

    def fresh(self) -> str:
        self._counter += 1
        return f"S{self._counter}"


def _usage_facts(program: Program) -> Tuple[Dict[str, int], Set[str]]:
    """Global use counts and the set of reassigned (mutable) variables."""
    uses: Dict[str, int] = {}
    defined: Set[str] = set()
    mutable: Set[str] = set()

    def visit(stmts: Sequence[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Instr):
                for arg in stmt.args:
                    uses[arg] = uses.get(arg, 0) + 1
                if stmt.dest in defined:
                    mutable.add(stmt.dest)
                defined.add(stmt.dest)
            elif isinstance(stmt, WhileLoop):
                uses[stmt.cond] = uses.get(stmt.cond, 0) + 1
                visit(stmt.body)
            elif isinstance(stmt, SkipGuard):
                uses[stmt.cond] = uses.get(stmt.cond, 0) + 1

    visit(program.statements)
    return uses, mutable


def rebalance_program(program: Program) -> Program:
    """Return a new, semantically equal program with rebalanced shifts."""
    names = _NameGen(program)
    uses, mutable = _usage_facts(program)
    protected = set(program.outputs.values()) | mutable

    def visit(stmts: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        region: List[Instr] = []
        for stmt in stmts:
            if isinstance(stmt, Instr):
                region.append(stmt)
            else:
                out.extend(_rebalance_region(region, names, uses, protected))
                region = []
                if isinstance(stmt, WhileLoop):
                    out.append(WhileLoop(stmt.cond, visit(stmt.body)))
                else:
                    out.append(stmt)
        out.extend(_rebalance_region(region, names, uses, protected))
        return out

    result = Program(name=program.name, statements=visit(program.statements),
                     outputs=dict(program.outputs), inputs=program.inputs)
    result.validate()
    return result


def _rebalance_region(instrs: List[Instr], names: _NameGen,
                      uses: Dict[str, int],
                      protected: Set[str]) -> List[Instr]:
    region = list(instrs)
    for _ in range(_MAX_PASSES):
        changed = _rewrite_pass(region, names, uses, protected)
        changed |= _coalesce_shifts(region, uses, protected)
        if not changed:
            break
    return region


def _depths(region: Sequence[Instr]) -> Dict[str, int]:
    """Dataflow depth of each variable's latest definition; region
    inputs have depth 0."""
    depth: Dict[str, int] = {}
    for instr in region:
        operand_depth = max((depth.get(a, 0) for a in instr.args), default=0)
        depth[instr.dest] = operand_depth + 1
    return depth


class _RegionIndex:
    """Per-pass def/use maps for O(1) sole-use SHIFT lookup."""

    def __init__(self, region: Sequence[Instr], uses: Dict[str, int],
                 protected: Set[str]):
        self.uses = uses
        self.protected = protected
        self.def_index: Dict[str, int] = {}
        self.def_count: Dict[str, int] = {}
        for index, instr in enumerate(region):
            self.def_index[instr.dest] = index
            self.def_count[instr.dest] = \
                self.def_count.get(instr.dest, 0) + 1

    def sole_use_shift(self, region: Sequence[Instr], index: int,
                       var: str, consumed: Set[int]) -> Optional[int]:
        """Index of the SHIFT defining ``var`` when the rewrite may
        consume it: defined exactly once in the region (before the
        consumer), used exactly once in the program, and neither an
        output nor loop-carried."""
        if var in self.protected or self.uses.get(var, 0) != 1:
            return None
        if self.def_count.get(var, 0) != 1:
            return None
        position = self.def_index.get(var)
        if position is None or position >= index or position in consumed:
            return None
        if region[position].op is not Op.SHIFT:
            return None
        return position


def _rewrite_pass(region: List[Instr], names: _NameGen,
                  uses: Dict[str, int], protected: Set[str]) -> bool:
    depth = _depths(region)
    maps = _RegionIndex(region, uses, protected)
    consumed: Set[int] = set()
    replacements: Dict[int, List[Instr]] = {}

    for index, instr in enumerate(region):
        positions = (0, 1) if instr.op is Op.AND else \
            (0,) if instr.op is Op.ANDN else ()
        for pos in positions:
            var = instr.args[pos]
            shift_idx = maps.sole_use_shift(region, index, var, consumed)
            if shift_idx is None:
                continue
            shift = region[shift_idx]
            source_depth = depth.get(shift.args[0], 0)
            other = instr.args[1 - pos]
            if source_depth <= depth.get(other, 0):
                continue  # the shift already sits on the shallower operand
            k = shift.shift
            counter_shift = Instr(names.fresh(), Op.SHIFT, (other,),
                                  shift=-k)
            # For AND either operand may carry the shift; for ANDN the
            # identity only holds with the shift feeding the left
            # (non-negated) operand.
            combined = Instr(names.fresh(), instr.op,
                             (shift.args[0], counter_shift.dest))
            final = Instr(instr.dest, Op.SHIFT, (combined.dest,), shift=k)
            consumed.add(shift_idx)
            replacements[index] = [counter_shift, combined, final]
            uses[shift.dest] = 0
            uses[counter_shift.dest] = 1
            uses[combined.dest] = 1
            depth[counter_shift.dest] = depth.get(other, 0) + 1
            depth[combined.dest] = max(source_depth,
                                       depth[counter_shift.dest]) + 1
            depth[instr.dest] = depth[combined.dest] + 1
            break

    if not replacements and not consumed:
        return False
    rebuilt: List[Instr] = []
    for index, instr in enumerate(region):
        if index in consumed:
            continue
        rebuilt.extend(replacements.get(index, (instr,)))
    region[:] = rebuilt
    return True


def _coalesce_shifts(region: List[Instr], uses: Dict[str, int],
                     protected: Set[str]) -> bool:
    """Fuse sole-use shift-of-shift chains: (x >> a) >> b -> x >> (a+b)."""
    maps = _RegionIndex(region, uses, protected)
    consumed: Set[int] = set()
    replacements: Dict[int, Instr] = {}
    for index, instr in enumerate(region):
        if instr.op is not Op.SHIFT:
            continue
        inner_idx = maps.sole_use_shift(region, index, instr.args[0],
                                        consumed)
        if inner_idx is None or inner_idx in replacements:
            continue
        inner = region[inner_idx]
        total = inner.shift + instr.shift
        if total == 0:
            replacements[index] = Instr(instr.dest, Op.COPY,
                                        (inner.args[0],))
        else:
            replacements[index] = Instr(instr.dest, Op.SHIFT,
                                        (inner.args[0],), shift=total)
        consumed.add(inner_idx)
        uses[inner.dest] = 0
    if not consumed:
        return False
    rebuilt = []
    for index, instr in enumerate(region):
        if index in consumed:
            continue
        rebuilt.append(replacements.get(index, instr))
    region[:] = rebuilt
    return True

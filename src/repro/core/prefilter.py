"""Literal prefiltering for the main BitGen pipeline.

At rule-set scale the dominant waste is executing every group's
bitstream kernel on inputs that cannot possibly match most of them.
This module promotes the Hyperscan engine's decomposition insight into
the BitGen dispatch path: at index-build time each compiled group gets
a *gate* — a set of literals such that every non-empty match of any
member pattern contains at least one gate literal
(:func:`repro.regex.factors.factor_literals`, computed on exactly the
prepared AST the lowering consumed, so the gate and the kernel agree
about what a match is).  Groups containing any factor-free pattern are
**always-on**: the gate never guesses.

At scan time one pass over the input decides which gate literals fire;
only groups whose gate fired (plus the always-on ones) execute.
Soundness: a skipped group's kernel could only have produced matches
containing one of its gate literals, and none occurred in the input —
so every skipped output stream is all-zero and the gated result is
bit-identical to full execution (the differential fuzz suite enforces
this against the ungated serial path).

Two gate implementations, selected by ``ScanConfig.prefilter_impl``:

* ``"screen"`` (default) — vectorised two-stage screen: a NumPy pass
  collects the set of adjacent byte pairs present in the input and
  discards every literal whose leading pair is absent; survivors are
  confirmed with exact C-speed substring search (``lit in data``).
  Exact, and fast enough to win at kilobyte inputs.
* ``"ac"`` — one pass of the shared Aho–Corasick automaton over the
  input (:mod:`repro.automata.aho_corasick`).  The reference
  implementation: linear in the input regardless of literal count,
  and the oracle the screen is differentially tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..automata.aho_corasick import AhoCorasick
from ..regex import ast
from ..regex.factors import factor_literals
from ..regex.nonempty import strip_empty
from ..regex.simplify import simplify

PREFILTER_IMPLS = ("screen", "ac")

_REG = obs.registry()
_BUCKETS_SKIPPED = _REG.counter(
    "repro_prefilter_buckets_skipped_total",
    "Compiled groups skipped because no gate literal fired")
_PREFILTER_SCANS = _REG.counter(
    "repro_prefilter_scans_total",
    "Prefilter gate evaluations, by implementation")


@dataclass
class PrefilterReport:
    """What one gate evaluation decided (``engine.last_prefilter``)."""

    impl: str
    input_bytes: int
    #: total compiled groups in the engine
    groups: int
    #: groups with a literal gate (the rest are always-on)
    gated: int
    #: groups that executed (always-on + fired)
    active: int
    #: gated groups whose literals did not occur
    skipped: int
    #: distinct gate literals in the index
    literals: int
    #: gate literals that occurred in the input
    fired: int

    def to_dict(self) -> Dict[str, int]:
        return {"impl": self.impl, "input_bytes": self.input_bytes,
                "groups": self.groups, "gated": self.gated,
                "active": self.active, "skipped": self.skipped,
                "literals": self.literals, "fired": self.fired}


def pattern_gate(node: ast.Regex) -> Optional[frozenset]:
    """The literal gate of one pattern AST, computed on the *prepared*
    node (``strip_empty(simplify(node))``) the lowering consumed.

    ``None`` means no usable factor (the pattern stays always-on);
    an empty frozenset means the pattern has no non-empty matches at
    all (its output stream is always zero, so its group may be gated
    on the other members alone)."""
    prepared = strip_empty(simplify(node))
    if prepared is None:
        return frozenset()
    return factor_literals(simplify(prepared))


class PrefilterIndex:
    """Per-engine gate index: one literal set per compiled group plus
    the shared scan structures (AC automaton, pair screen)."""

    def __init__(self, group_gates: List[Optional[frozenset]]):
        self.group_gates = group_gates
        literals: Set[bytes] = set()
        for gate in group_gates:
            if gate:
                literals |= gate
        #: sorted for deterministic AC slot assignment
        self.literals: List[bytes] = sorted(literals)
        self.ac: Optional[AhoCorasick] = (
            AhoCorasick.build(self.literals) if self.literals else None)
        #: leading byte pair of each literal (every gate literal is
        #: >= MIN_FACTOR_LENGTH == 2 bytes), for the vectorised screen
        self._lead_pairs = [(lit[0] << 8) | lit[1] for lit in self.literals]

    @classmethod
    def build(cls, nodes: Sequence[ast.Regex],
              groups: Sequence[object]) -> "PrefilterIndex":
        """Gate index for ``groups`` (RegexGroup-like, ``.indices``)
        over the original pattern ``nodes``.  A group is gated only
        when *every* member has a usable factor set."""
        with obs.span("prefilter.build", category="compile",
                      patterns=len(nodes), groups=len(groups)):
            member_gates = [pattern_gate(node) for node in nodes]
            group_gates: List[Optional[frozenset]] = []
            for group in groups:
                gates = [member_gates[i] for i in group.indices]
                if any(g is None for g in gates):
                    group_gates.append(None)
                else:
                    union: Set[bytes] = set()
                    for gate in gates:
                        union |= gate
                    group_gates.append(frozenset(union))
            return cls(group_gates)

    @property
    def gated_groups(self) -> int:
        return sum(1 for gate in self.group_gates if gate is not None)

    # -- gate evaluation ---------------------------------------------------

    def fired_literals(self, data: bytes, impl: str = "screen"
                       ) -> Set[bytes]:
        """The subset of index literals occurring in ``data``."""
        if not self.literals:
            return set()
        if impl == "ac":
            hits, _stats = self.ac.scan(data)
            return {self.literals[slot] for slot, _end in hits}
        if impl != "screen":
            raise ValueError(f"unknown prefilter impl {impl!r}; "
                             f"expected one of {PREFILTER_IMPLS}")
        return self._screen(data)

    def _screen(self, data: bytes) -> Set[bytes]:
        import numpy as np

        if len(data) < 2:
            return set()
        arr = np.frombuffer(data, dtype=np.uint8)
        pairs = ((arr[:-1].astype(np.uint32) << 8)
                 | arr[1:].astype(np.uint32))
        present = np.unique(pairs)
        lead = np.asarray(self._lead_pairs, dtype=np.uint32)
        survivors = np.nonzero(np.isin(lead, present))[0]
        # exact confirmation: the pair screen only prunes candidates
        return {self.literals[slot] for slot in survivors
                if self.literals[slot] in data}

    def active_groups(self, data: bytes, impl: str = "screen"
                      ) -> Tuple[List[int], PrefilterReport]:
        """Indices of groups that must execute on ``data`` plus the
        accounting report.  Always-on groups (gate ``None``) are always
        included; a gated group executes iff any of its literals
        occurred."""
        with obs.span("prefilter", category="exec", impl=impl,
                      input_bytes=len(data)) as sp:
            fired = self.fired_literals(data, impl)
            active: List[int] = []
            gated = skipped = 0
            for index, gate in enumerate(self.group_gates):
                if gate is None:
                    active.append(index)
                    continue
                gated += 1
                if gate & fired:
                    active.append(index)
                else:
                    skipped += 1
            report = PrefilterReport(
                impl=impl, input_bytes=len(data),
                groups=len(self.group_gates), gated=gated,
                active=len(active), skipped=skipped,
                literals=len(self.literals), fired=len(fired))
            if sp.is_recording:
                sp.set(active=len(active), skipped=skipped,
                       fired=len(fired))
        _PREFILTER_SCANS.inc(impl=impl)
        if skipped:
            _BUCKETS_SKIPPED.inc(skipped)
        return active, report

    def active_groups_many(self, streams: Sequence[bytes],
                           impl: str = "screen"
                           ) -> Tuple[List[int], PrefilterReport]:
        """One gate evaluation for a batch of streams: a group is
        active when its literals fired in *any* stream (the union
        keeps batched equal-length dispatch intact; over-activated
        groups still produce all-zero outputs on the streams that
        didn't fire them)."""
        total = sum(len(stream) for stream in streams)
        with obs.span("prefilter", category="exec", impl=impl,
                      streams=len(streams), input_bytes=total) as sp:
            fired: Set[bytes] = set()
            for stream in streams:
                fired |= self.fired_literals(stream, impl)
            active: List[int] = []
            gated = skipped = 0
            for index, gate in enumerate(self.group_gates):
                if gate is None:
                    active.append(index)
                    continue
                gated += 1
                if gate & fired:
                    active.append(index)
                else:
                    skipped += 1
            report = PrefilterReport(
                impl=impl, input_bytes=total,
                groups=len(self.group_gates), gated=gated,
                active=len(active), skipped=skipped,
                literals=len(self.literals), fired=len(fired))
            if sp.is_recording:
                sp.set(active=len(active), skipped=skipped,
                       fired=len(fired))
        _PREFILTER_SCANS.inc(impl=impl)
        if skipped:
            _BUCKETS_SKIPPED.inc(skipped)
        return active, report

"""Execution schemes and result container.

The five schemes of the paper's Table 3 ablation:

======  ==========================================================
BASE    sequential block-wise execution; only runs of bitwise
        instructions are fused (the paper's baseline)
DTM-    Dependency-Aware Thread-Data Mapping, static analysis only:
        straight-line segments are fused and windowed; while loops
        run as sequential passes with materialised loop streams
DTM     full interleaving: one fused loop, dynamic overlap tracking
SR      DTM + Shift Rebalancing + barrier scheduling/merging
ZBS     SR + Zero Block Skipping
======  ==========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from ..bitstream.bitvector import BitVector
from ..gpu.metrics import KernelMetrics


class Scheme(enum.Enum):
    BASE = "Base"
    DTM_MINUS = "DTM-"
    DTM = "DTM"
    SR = "SR"
    ZBS = "ZBS"

    @property
    def interleaved(self) -> bool:
        return self in (Scheme.DTM, Scheme.SR, Scheme.ZBS)

    @property
    def rebalanced(self) -> bool:
        return self in (Scheme.SR, Scheme.ZBS)

    @property
    def zero_skipping(self) -> bool:
        return self is Scheme.ZBS


#: Ablation order of Table 3 / Figure 12.
SCHEME_LADDER = (Scheme.BASE, Scheme.DTM_MINUS, Scheme.DTM, Scheme.SR,
                 Scheme.ZBS)


@dataclass
class ExecutionResult:
    """Output streams plus the metrics of producing them."""

    outputs: Dict[str, BitVector] = field(default_factory=dict)
    metrics: KernelMetrics = field(default_factory=KernelMetrics)

    def match_ends(self) -> Dict[str, list]:
        """Match end positions per output (cursor convention - 1)."""
        return {name: stream.match_ends()
                for name, stream in self.outputs.items()}

"""Zero Block Skipping (Section 6).

Intermediate bitstreams are mostly zero in practice (partial regex
mismatches), and AND/SHIFT chains map zero inputs to zero outputs.
This pass identifies *zero paths* in each straight-line region and
inserts goto-style :class:`SkipGuard` statements: when the guarded
variable's window is all zero, the executor skips the guarded range and
zero-fills the skipped definitions.

Validation (per the paper): a guard from the path head to some point
may only skip instructions whose values are provably zero under the
guard condition, unless their results are dead within the skipped
range.  Instead of rejecting outright we shrink the range to the
longest valid prefix — a conservative generalisation of the paper's
"continue at the next node" retry.  Guards are also attempted every
``interval`` nodes along a path (Interval-Based Multi-Guard Insertion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from ..ir.program import Program

DEFAULT_INTERVAL = 8


_ZERO_POSITIONS = {
    Op.AND: (0, 1),
    Op.SHIFT: (0,),
    Op.COPY: (0,),
    Op.ANDN: (0,),
}

#: guards per zero path are capped: beyond this, extra interior guards
#: add runtime reduction cost without exposing more skippable work
MAX_GUARDS_PER_PATH = 8


def zero_consuming_positions(instr: Instr) -> Tuple[int, ...]:
    """Operand positions whose zero forces the result to zero."""
    return _ZERO_POSITIONS.get(instr.op, ())


def insert_guards(program: Program,
                  interval: int = DEFAULT_INTERVAL) -> Program:
    """Return a new program with zero-skip guards inserted."""
    if interval < 1:
        raise ValueError("interval must be >= 1")
    escaping = _escaping_vars(program)

    def visit(stmts: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        region: List[Instr] = []
        for stmt in stmts:
            if isinstance(stmt, Instr):
                region.append(stmt)
            else:
                out.extend(_guard_region(region, escaping, interval))
                region = []
                if isinstance(stmt, WhileLoop):
                    out.append(WhileLoop(stmt.cond, visit(stmt.body)))
                else:
                    out.append(stmt)
        out.extend(_guard_region(region, escaping, interval))
        return out

    result = Program(name=program.name,
                     statements=visit(program.statements),
                     outputs=dict(program.outputs), inputs=program.inputs)
    result.validate()
    return result


def _escaping_vars(program: Program) -> Set[str]:
    """Variables whose values are observed outside their defining
    straight-line region: outputs, loop conditions, reassigned
    (loop-carried) variables, and anything used in another region."""
    escaping: Set[str] = set(program.outputs.values())
    region_of_def: Dict[str, int] = {}
    region_id = 0

    def visit(stmts: Sequence[Stmt]) -> None:
        nonlocal region_id
        for stmt in stmts:
            if isinstance(stmt, Instr):
                for arg in stmt.args:
                    if region_of_def.get(arg, region_id) != region_id:
                        escaping.add(arg)
                if stmt.dest in region_of_def:
                    escaping.add(stmt.dest)
                region_of_def[stmt.dest] = region_id
            elif isinstance(stmt, WhileLoop):
                escaping.add(stmt.cond)
                region_id += 1
                visit(stmt.body)
                region_id += 1
            elif isinstance(stmt, SkipGuard):
                escaping.add(stmt.cond)

    visit(program.statements)
    return escaping


@dataclass(frozen=True)
class _Guard:
    cond: str
    start: int          # first guarded instruction index (in region)
    end: int            # last guarded instruction index (inclusive)


def _guard_region(region: List[Instr], escaping: Set[str],
                  interval: int) -> List[Stmt]:
    if not region:
        return []
    guards = _plan_guards(region, escaping, interval)
    return _materialise(region, guards)


def _zero_paths(region: List[Instr]) -> List[Tuple[str, List[int]]]:
    """Maximal (head variable, instruction index chain) zero paths."""
    from bisect import bisect_right

    consumers: Dict[str, List[int]] = {}
    defs_of: Dict[str, List[int]] = {}
    for index, instr in enumerate(region):
        for pos in zero_consuming_positions(instr):
            consumers.setdefault(instr.args[pos], []).append(index)
        defs_of.setdefault(instr.dest, []).append(index)

    def next_link(var: str, after: int) -> Optional[int]:
        """First zero-preserving consumer of ``var`` after ``after``
        that still reads this definition (no redefinition between)."""
        indices = consumers.get(var, ())
        cut = bisect_right(indices, after)
        if cut == len(indices):
            return None
        candidate = indices[cut]
        redefs = defs_of.get(var, ())
        between = bisect_right(redefs, after)
        if between < len(redefs) and redefs[between] < candidate:
            return None
        return candidate

    paths: List[Tuple[str, List[int]]] = []
    on_some_path: Set[int] = set()
    for index, instr in enumerate(region):
        for pos in zero_consuming_positions(instr):
            var = instr.args[pos]
            if index in on_some_path:
                continue
            # A chain head: the operand is not itself a zero-preserving
            # product of an earlier chain member (those are covered by
            # the chain that produced them).
            chain = [index]
            on_some_path.add(index)
            cursor = index
            while True:
                nxt = next_link(region[cursor].dest, cursor)
                if nxt is None:
                    break
                chain.append(nxt)
                on_some_path.add(nxt)
                cursor = nxt
            paths.append((var, chain))
            break
    return paths


def _liveness(region: List[Instr], escaping: Set[str]) -> List[int]:
    """``dead_after[i]``: the smallest range end such that skipping the
    definition at ``i`` with a zero-fill cannot be observed, assuming
    the value is *not* provably zero — i.e. the last use of this
    definition before its next redefinition.  Escaping definitions are
    never safely skippable (``len(region)`` sentinel)."""
    uses_of: Dict[str, List[int]] = {}
    defs_of: Dict[str, List[int]] = {}
    for index, instr in enumerate(region):
        for arg in instr.args:
            uses_of.setdefault(arg, []).append(index)
        defs_of.setdefault(instr.dest, []).append(index)

    never = len(region)
    dead_after = [0] * len(region)
    for index, instr in enumerate(region):
        if instr.dest in escaping:
            dead_after[index] = never
            continue
        later_defs = [d for d in defs_of[instr.dest] if d > index]
        horizon = later_defs[0] if later_defs else never
        relevant = [u for u in uses_of.get(instr.dest, ())
                    if index < u < horizon]
        dead_after[index] = max(relevant) if relevant else index
    return dead_after


def _plan_guards(region: List[Instr], escaping: Set[str],
                 interval: int) -> List[_Guard]:
    guards: List[_Guard] = []
    seen: Set[Tuple[str, int, int]] = set()
    dead_after = _liveness(region, escaping)
    for head_var, chain in _zero_paths(region):
        stride = max(interval, -(-len(chain) // MAX_GUARDS_PER_PATH))
        for offset in range(0, len(chain), stride):
            start = chain[offset]
            cond = head_var if offset == 0 \
                else region[chain[offset - 1]].dest
            end = _longest_valid_end(region, cond, start, chain[-1],
                                     dead_after)
            if end is None or end - start < 1:
                continue
            key = (cond, start, end)
            if key in seen:
                continue
            seen.add(key)
            guards.append(_Guard(cond, start, end))
    return guards


def _longest_valid_end(region: List[Instr], cond: str, start: int,
                       path_end: int,
                       dead_after: List[int]) -> Optional[int]:
    """Largest end index such that skipping [start, end] (zero-filling
    every skipped definition) is semantically safe when ``cond`` is
    all-zero over the window: every skipped definition is either
    provably zero under the condition, or dead by the range end.
    Linear scan: ``required`` tracks the latest liveness horizon of any
    non-zero definition seen so far."""
    zero_set: Set[str] = {cond}
    best: Optional[int] = None
    required = -1
    for index in range(start, path_end + 1):
        instr = region[index]
        if _forces_zero(instr, zero_set):
            zero_set.add(instr.dest)
        else:
            zero_set.discard(instr.dest)  # redefined to a non-zero value
            required = max(required, dead_after[index])
        if required <= index:
            best = index
    return best


def _forces_zero(instr: Instr, zero_set: Set[str]) -> bool:
    positions = zero_consuming_positions(instr)
    if positions:
        if any(instr.args[pos] in zero_set for pos in positions):
            return True
    if instr.op in (Op.OR, Op.XOR):
        return all(arg in zero_set for arg in instr.args)
    return False


def _materialise(region: List[Instr], guards: List[_Guard]) -> List[Stmt]:
    """Interleave guards with instructions, converting (start, end)
    instruction ranges into statement skip counts (guards nested inside
    a skipped range count toward it)."""
    starts: Dict[int, List[_Guard]] = {}
    for guard in guards:
        starts.setdefault(guard.start, []).append(guard)
    for bucket in starts.values():
        # Wider guards first, so inner guards land inside their range.
        bucket.sort(key=lambda g: -g.end)

    out: List[Stmt] = []
    position_of: Dict[int, int] = {}
    pending: List[Tuple[_Guard, int]] = []  # (guard, stmt index of marker)
    for index, instr in enumerate(region):
        for guard in starts.get(index, ()):  # wider first
            out.append(None)  # placeholder patched below
            pending.append((guard, len(out) - 1))
        position_of[index] = len(out)
        out.append(instr)
    for guard, marker in pending:
        end_stmt = position_of[guard.end]
        out[marker] = SkipGuard(guard.cond, end_stmt - marker)
    return out

"""CUDA-like kernel source emission.

BitGen is a code generator; this module renders the interleaved kernel
a program compiles to, in readable CUDA-flavoured pseudocode:

* one fused ``for`` loop over blocks per CTA device function,
* shared-memory staging with ``__syncthreads()`` pairs at SHIFT group
  leaders (merged barriers appear merged, Figure 9),
* ``while (block_any(...))`` for fixpoint loops,
* ``if (!block_any(...)) goto Lx;`` for zero-skip guards (Figure 10).

The emitted source is what the paper would hand to NVRTC; here it is a
deliverable for inspection and a structural test target (sync counts in
the text equal the barrier plan's), not something this repository can
execute — execution happens in the block-accurate simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..gpu.machine import DEFAULT_GEOMETRY, CTAGeometry
from ..ir.instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from ..ir.program import Program
from .barriers import BarrierPlan

_BINOP_FORMAT = {
    Op.AND: "{0} & {1}",
    Op.OR: "{0} | {1}",
    Op.XOR: "{0} ^ {1}",
    Op.ANDN: "{0} & ~{1}",
}

_CONST_EXPR = {
    "zero": "0u",
    "ones": "~0u",
    "text": "text_mask(blk, tid)",
    "start": "start_mask(blk, tid)",
    "end": "end_mask(blk, tid)",
}


class _Emitter:
    def __init__(self, plan: Optional[BarrierPlan]):
        self.plan = plan
        self.lines: List[str] = []
        self.indent = 1
        self.label_counter = 0
        self.sync_count = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def sync(self) -> None:
        self.emit("__syncthreads();")
        self.sync_count += 1

    def fresh_label(self) -> str:
        self.label_counter += 1
        return f"L{self.label_counter}"

    # -- statements -------------------------------------------------------

    def stmts(self, items: Sequence[Stmt]) -> None:
        index = 0
        pending_labels: Dict[int, str] = {}
        while index < len(items):
            label = pending_labels.pop(index, None)
            if label is not None:
                self.lines.append("    " * max(self.indent - 1, 0)
                                  + f"{label}:;")
            stmt = items[index]
            if isinstance(stmt, Instr):
                self.instr(stmt)
            elif isinstance(stmt, WhileLoop):
                self.while_loop(stmt)
            elif isinstance(stmt, SkipGuard):
                label = self.fresh_label()
                target = index + stmt.skip_count + 1
                existing = pending_labels.get(target)
                if existing is None:
                    pending_labels[target] = label
                else:
                    label = existing
                self.emit(f"if (!block_any({stmt.cond})) goto {label};")
            index += 1
        for label in pending_labels.values():
            self.lines.append("    " * max(self.indent - 1, 0) + f"{label}:;")

    def instr(self, instr: Instr) -> None:
        if instr.op is Op.SHIFT:
            self.shift(instr)
            return
        if instr.op is Op.CONST:
            self.emit(f"uint32_t {instr.dest} = {_CONST_EXPR[instr.const]};")
            return
        if instr.op is Op.MATCH_CC:
            self.emit(f"uint32_t {instr.dest} = "
                      f"match_cc(basis, blk, tid, /*{instr.cc!r}*/);")
            return
        if instr.op is Op.NOT:
            self.emit(f"uint32_t {instr.dest} = ~{instr.args[0]};")
            return
        if instr.op is Op.COPY:
            self.emit(f"uint32_t {instr.dest} = {instr.args[0]};")
            return
        expr = _BINOP_FORMAT[instr.op].format(*instr.args)
        self.emit(f"uint32_t {instr.dest} = {expr};")

    def shift(self, instr: Instr) -> None:
        operand = instr.args[0]
        info = self.plan.lookup(instr) if self.plan is not None else None
        if info is None or info.is_leader:
            # Leader: stage the group's operands and place the barrier
            # pair every member shares (Figure 9 step 3).
            self.sync()
            self.emit(f"smem[tid] = {operand};  "
                      f"// +{(info.stored_vars - 1) if info else 0} merged")
            self.sync()
        distance = instr.shift
        if distance > 0:
            self.emit(f"uint32_t {instr.dest} = funnelshift_r("
                      f"smem_{operand}[tid-1], {operand}, {distance});")
        else:
            self.emit(f"uint32_t {instr.dest} = funnelshift_l("
                      f"{operand}, smem_{operand}[tid+1], {-distance});")

    def while_loop(self, loop: WhileLoop) -> None:
        self.emit(f"while (block_any({loop.cond})) {{")
        self.indent += 1
        self.stmts(loop.body)
        self.indent -= 1
        self.emit("}")


def render_kernel(program: Program, cta_index: int = 0,
                  plan: Optional[BarrierPlan] = None,
                  geometry: CTAGeometry = DEFAULT_GEOMETRY) -> str:
    """Render one group's device function."""
    emitter = _Emitter(plan)
    emitter.indent = 2
    emitter.stmts(program.statements)
    body = "\n".join(emitter.lines)

    outputs = "\n".join(
        f"        out_{name}[blk * {geometry.threads} + tid] = {var};"
        for name, var in program.outputs.items())
    header = (
        f"// group {cta_index}: {program.name}\n"
        f"// {program.instruction_count()} instructions, "
        f"{emitter.sync_count} sync sites per block\n"
        f"__device__ void group_{cta_index}(const uint32_t* basis,\n"
        f"                                  uint32_t** outputs) {{\n"
        f"    const int tid = threadIdx.x;\n"
        f"    for (int blk = 0; blk < n_blocks; ++blk) {{\n"
        f"        // window remap: dependency-aware thread-data mapping\n")
    footer = "\n    }\n}"
    return header + body + "\n" + outputs + footer


def render_module(programs: Sequence[Program],
                  plans: Optional[Sequence[Optional[BarrierPlan]]] = None,
                  geometry: CTAGeometry = DEFAULT_GEOMETRY) -> str:
    """Render a whole kernel module dispatching one group per CTA."""
    if plans is None:
        plans = [None] * len(programs)
    parts = [render_kernel(p, i, plan, geometry)
             for i, (p, plan) in enumerate(zip(programs, plans))]
    dispatch = "\n".join(
        f"    case {i}: group_{i}(basis, outputs); break;"
        for i in range(len(programs)))
    kernel = (
        "__global__ void bitgen_kernel(const uint32_t* basis,\n"
        "                              uint32_t** outputs) {\n"
        "    switch (blockIdx.x) {\n"
        f"{dispatch}\n"
        "    }\n"
        "}")
    return "\n\n".join(parts + [kernel])

"""Sequential block-wise execution — the paper's baseline (Section 3.2).

Each instruction runs in its own loop over all blocks of its operand
bitstreams; only maximal runs of *bitwise* instructions are fused
(the Table 3 ``Base`` row).  Every value that crosses a pass boundary
is materialised in global memory, which produces the poor data reuse
and footprint the paper quantifies in Table 4.

Functionally the result equals the reference interpreter (pass-splitting
cannot change values); what this executor adds is the exact accounting
of the schedule: loops, DRAM traffic, materialised streams, barriers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Union

from ..bitstream.bitvector import BitVector
from ..gpu.machine import DEFAULT_GEOMETRY, CTAGeometry
from ..gpu.memory import GlobalMemory
from ..gpu.metrics import KernelMetrics
from ..ir.instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from ..ir.interpreter import eval_instr, make_environment
from ..ir.program import Program
from .schemes import ExecutionResult

#: Opcodes the baseline may fuse into one loop (thread-local data only).
FUSABLE_OPS = {Op.AND, Op.OR, Op.XOR, Op.ANDN, Op.NOT, Op.COPY, Op.CONST,
               Op.MATCH_CC}


@dataclass
class _Pass:
    """One fused loop of the baseline schedule."""

    instrs: List[Instr] = field(default_factory=list)
    is_shift: bool = False


Unit = Union[_Pass, WhileLoop]


def split_passes(stmts: Sequence[Stmt]) -> List[Unit]:
    """Split a statement list into baseline passes: bitwise runs fuse,
    every SHIFT is its own pass, while loops are separate units.
    Guards are dropped — sequential execution cannot exploit them
    (performance challenge (c) of Section 3.2)."""
    units: List[Unit] = []
    current: List[Instr] = []

    def flush():
        nonlocal current
        if current:
            units.append(_Pass(instrs=current))
            current = []

    for stmt in stmts:
        if isinstance(stmt, Instr):
            if stmt.op in FUSABLE_OPS:
                current.append(stmt)
            else:
                flush()
                units.append(_Pass(instrs=[stmt], is_shift=True))
        elif isinstance(stmt, WhileLoop):
            flush()
            units.append(stmt)
        elif isinstance(stmt, SkipGuard):
            continue
    flush()
    return units


def _loop_ids(program: Program) -> Dict[int, int]:
    """``id(WhileLoop)`` → the pre-order index the compiled kernel
    reports trip counts under (codegen numbers loops at entry)."""
    ids: Dict[int, int] = {}
    counter = [0]

    def visit(stmts: Sequence[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, WhileLoop):
                ids[id(stmt)] = counter[0]
                counter[0] += 1
                visit(stmt.body)

    visit(program.statements)
    return ids


class SequentialExecutor:
    """Executes a program in the baseline schedule.

    ``backend="compiled"`` computes the output streams with the cached
    NumPy kernel (:mod:`repro.backend`) and *replays* the baseline
    schedule accounting arithmetically — pass structure, loads, stores
    and barriers are static, and the kernel reports the while-loop trip
    counts — so the metrics match the simulating path exactly while the
    values never go through per-instruction dispatch.
    """

    def __init__(self, geometry: CTAGeometry = DEFAULT_GEOMETRY,
                 backend: str = "simulate"):
        if backend not in ("simulate", "compiled"):
            raise ValueError(f"unknown backend {backend!r}")
        self.geometry = geometry
        self.backend = backend

    def run(self, program: Program, data: bytes) -> ExecutionResult:
        if self.backend == "compiled":
            return self._run_compiled(program, data)
        metrics = KernelMetrics()
        memory = GlobalMemory(metrics)
        env = make_environment(data)
        length = len(data) + 1
        stream_bytes = -(-length // 8)

        materialised = self._materialised_vars(program)
        self._count_static_loops(program.statements, metrics)
        self._exec(program.statements, env, length, stream_bytes,
                   materialised, metrics, memory)

        outputs = {out: env[var] for out, var in program.outputs.items()}
        metrics.output_bits += length * len(outputs)
        return ExecutionResult(outputs=outputs, metrics=metrics)

    # -- compiled fast path -------------------------------------------------

    def _run_compiled(self, program: Program, data: bytes) -> ExecutionResult:
        from ..backend import compile_program

        # The baseline drops guards, so compile without honouring them.
        compiled = compile_program(program, honour_guards=False)
        raw, stats = compiled.run_data(data)
        length = len(data) + 1

        metrics = KernelMetrics()
        memory = GlobalMemory(metrics)
        stream_bytes = -(-length // 8)
        materialised = self._materialised_vars(program)
        self._count_static_loops(program.statements, metrics)
        counts = {loop_id: list(trips)
                  for loop_id, trips in stats.counts_by_loop().items()}
        self._replay(program.statements, _loop_ids(program), counts,
                     length, stream_bytes, materialised, metrics, memory)

        mask = (1 << length) - 1
        outputs = {
            out: BitVector(int.from_bytes(raw[out].tobytes(), "little")
                           & mask, length)
            for out in program.outputs}
        metrics.output_bits += length * len(outputs)
        return ExecutionResult(outputs=outputs, metrics=metrics)

    def _replay(self, stmts, loop_ids, counts, length, stream_bytes,
                materialised, metrics, memory) -> None:
        """Mirror :meth:`_exec`'s accounting without touching values."""
        words = self.geometry.words(length)
        for unit in split_passes(stmts):
            if isinstance(unit, WhileLoop):
                trips = counts[loop_ids[id(unit)]]
                iterations = trips.pop(0) if trips else 0
                for _ in range(iterations + 1):
                    memory.read(stream_bytes)       # popcount reduction
                    metrics.thread_word_ops += words
                    metrics.barriers += 1
                metrics.loop_iterations += iterations
                for _ in range(iterations):
                    self._replay(unit.body, loop_ids, counts, length,
                                 stream_bytes, materialised, metrics,
                                 memory)
                continue
            loaded: Set[str] = set()
            defined: Set[str] = set()
            for instr in unit.instrs:
                for arg in instr.args:
                    if arg not in defined and arg not in loaded:
                        loaded.add(arg)
                        memory.read(stream_bytes)
                if unit.is_shift:
                    memory.read(self.geometry.block_bytes)
                metrics.thread_word_ops += words
                defined.add(instr.dest)
            for var in defined:
                if var in materialised:
                    memory.write(stream_bytes)
                    memory.allocate_stream(var, stream_bytes)
            metrics.blocks_processed += self.geometry.block_count(length)
            metrics.barriers += 1

    # -- schedule analysis -------------------------------------------------

    def _materialised_vars(self, program: Program) -> Set[str]:
        """Variables that live across pass boundaries and therefore must
        be stored to global memory: used in a different pass than their
        defining one, loop-carried, or program outputs."""
        defined_in: Dict[str, int] = {}
        crossing: Set[str] = set(program.outputs.values())
        pass_id = 0

        def visit(stmts: Sequence[Stmt], loop_depth: int) -> None:
            nonlocal pass_id
            for unit in split_passes(stmts):
                if isinstance(unit, WhileLoop):
                    crossing.add(unit.cond)
                    visit(unit.body, loop_depth + 1)
                    pass_id += 1
                    continue
                for instr in unit.instrs:
                    for arg in instr.args:
                        if defined_in.get(arg, -1) != pass_id:
                            crossing.add(arg)
                    if instr.dest in defined_in:
                        crossing.add(instr.dest)  # reassignment
                    defined_in[instr.dest] = pass_id
                pass_id += 1

        visit(program.statements, 0)
        return crossing

    def _count_static_loops(self, stmts: Sequence[Stmt],
                            metrics: KernelMetrics) -> None:
        for unit in split_passes(stmts):
            if isinstance(unit, WhileLoop):
                self._count_static_loops(unit.body, metrics)
            else:
                metrics.fused_loops += 1

    # -- execution ------------------------------------------------------------

    def _exec(self, stmts, env, length, stream_bytes, materialised,
              metrics, memory) -> None:
        words = self.geometry.words(length)
        for unit in split_passes(stmts):
            if isinstance(unit, WhileLoop):
                self._exec_while(unit, env, length, stream_bytes,
                                 materialised, metrics, memory)
                continue
            self._exec_pass(unit, env, length, stream_bytes, words,
                            materialised, metrics, memory)

    def _exec_pass(self, unit: _Pass, env, length, stream_bytes, words,
                   materialised, metrics, memory) -> None:
        loaded: Set[str] = set()
        defined: Set[str] = set()
        for instr in unit.instrs:
            for arg in instr.args:
                # Operands defined in this very pass stay in registers.
                if arg not in defined and arg not in loaded:
                    loaded.add(arg)
                    memory.read(stream_bytes)
            if unit.is_shift:
                # Shifting loads the adjacent block too (Figure 5 (c)).
                memory.read(self.geometry.block_bytes)
            env[instr.dest] = eval_instr(instr, env, length)
            metrics.thread_word_ops += words
            defined.add(instr.dest)
        for var in defined:
            if var in materialised:
                memory.write(stream_bytes)
                memory.allocate_stream(var, stream_bytes)
        metrics.blocks_processed += self.geometry.block_count(length)
        metrics.barriers += 1  # inter-loop dependency barrier

    def _exec_while(self, loop: WhileLoop, env, length, stream_bytes,
                    materialised, metrics, memory) -> None:
        words = self.geometry.words(length)
        limit = length + 64
        iterations = 0
        while True:
            # Global popcount reduction over the condition stream.
            memory.read(stream_bytes)
            metrics.thread_word_ops += words
            metrics.barriers += 1
            if not env[loop.cond].any():
                break
            if iterations >= limit:
                raise RuntimeError(f"while({loop.cond}) diverged")
            iterations += 1
            metrics.loop_iterations += 1
            self._exec(loop.body, env, length, stream_bytes,
                       materialised, metrics, memory)

"""Regex grouping (Section 7).

Regexes are partitioned into groups of similar total character length,
one group per CTA, to balance the GPU workload.  Greedy longest-
processing-time assignment: sort by length descending, place each regex
in the currently lightest group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Sequence, Tuple

from ..regex import ast
from ..regex.simplify import char_length


@dataclass
class RegexGroup:
    """One CTA's worth of regexes (original indices preserved)."""

    indices: List[int] = field(default_factory=list)
    total_length: int = 0

    def __len__(self) -> int:
        return len(self.indices)


def shape_key(node: ast.Regex) -> Tuple:
    """The structural shape of a pattern AST: the tree with character
    classes abstracted to first-occurrence slots.  Two patterns with
    equal shape keys lower to programs that differ only in their
    ``MATCH_CC`` constants — exactly what the kernel fingerprint cache
    (:mod:`repro.backend.fingerprint`) parameterises away, so grouping
    by shape collapses compiled-kernel count on template rule sets."""
    slots: Dict[object, int] = {}

    def visit(sub: ast.Regex) -> Tuple:
        if isinstance(sub, ast.Lit):
            slot = slots.setdefault(sub.cc, len(slots))
            return ("lit", slot)
        if isinstance(sub, ast.Seq):
            return ("seq",) + tuple(visit(p) for p in sub.parts)
        if isinstance(sub, ast.Alt):
            return ("alt",) + tuple(visit(b) for b in sub.branches)
        if isinstance(sub, ast.Star):
            return ("star", visit(sub.body))
        if isinstance(sub, ast.Rep):
            return ("rep", sub.lo, sub.hi, visit(sub.body))
        if isinstance(sub, ast.Anchor):
            return ("anchor", sub.kind)
        if isinstance(sub, ast.Empty):
            return ("empty",)
        return ("other", repr(sub))

    return visit(node)


def group_regexes(nodes: Sequence[ast.Regex], group_count: int,
                  strategy: str = "balanced") -> List[RegexGroup]:
    """Partition ``nodes`` into groups (at most ``group_count`` for the
    balanced/round-robin strategies; ``"fingerprint"`` may exceed it,
    since it never mixes shapes inside a group).

    ``strategy``:

    * ``"balanced"`` — the paper's policy: greedy LPT on total
      character length, so CTA workloads are even.
    * ``"round_robin"`` — naive index-striped assignment (the ablation
      baseline: ignores pattern length, so one CTA can end up with all
      the long patterns and straggle the whole launch).
    * ``"fingerprint"`` — bucket by structural shape
      (:func:`shape_key`), then chunk each bucket in original index
      order.  Same-shape groups compile to fingerprint-equal kernels
      (one codegen for the whole bucket), and the deterministic
      chunking keeps group membership stable under small rule-set
      diffs — the property incremental recompilation
      (:mod:`repro.core.incremental`) reuses.
    """
    if group_count < 1:
        raise ValueError("group_count must be >= 1")
    group_count = min(group_count, max(1, len(nodes)))
    groups = [RegexGroup() for _ in range(group_count)]
    if not nodes:
        return groups[:1]

    if strategy == "round_robin":
        for index, node in enumerate(nodes):
            group = groups[index % group_count]
            group.indices.append(index)
            group.total_length += char_length(node)
        return [g for g in groups if g.indices]
    if strategy == "fingerprint":
        shapes: Dict[Tuple, List[int]] = {}
        for index, node in enumerate(nodes):
            shapes.setdefault(shape_key(node), []).append(index)
        chunk = max(1, round(len(nodes) / group_count))
        out: List[RegexGroup] = []
        for members in shapes.values():
            for start in range(0, len(members), chunk):
                group = RegexGroup()
                for index in members[start:start + chunk]:
                    group.indices.append(index)
                    group.total_length += char_length(nodes[index])
                out.append(group)
        return out
    if strategy != "balanced":
        raise ValueError(f"unknown grouping strategy {strategy!r}")

    lengths = [(char_length(node), index)
               for index, node in enumerate(nodes)]
    lengths.sort(key=lambda item: (-item[0], item[1]))

    heap: List[Tuple[int, int]] = [(0, g) for g in range(group_count)]
    for length, index in lengths:
        total, g = heappop(heap)
        groups[g].indices.append(index)
        groups[g].total_length = total + length
        heappush(heap, (groups[g].total_length, g))

    return [g for g in groups if g.indices]


def imbalance(groups: Sequence[RegexGroup]) -> float:
    """max/mean total length ratio — 1.0 is perfectly balanced."""
    totals = [g.total_length for g in groups if g.indices]
    if not totals or sum(totals) == 0:
        return 1.0
    return max(totals) / (sum(totals) / len(totals))

"""Regex grouping (Section 7).

Regexes are partitioned into groups of similar total character length,
one group per CTA, to balance the GPU workload.  Greedy longest-
processing-time assignment: sort by length descending, place each regex
in the currently lightest group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import List, Sequence, Tuple

from ..regex import ast
from ..regex.simplify import char_length


@dataclass
class RegexGroup:
    """One CTA's worth of regexes (original indices preserved)."""

    indices: List[int] = field(default_factory=list)
    total_length: int = 0

    def __len__(self) -> int:
        return len(self.indices)


def group_regexes(nodes: Sequence[ast.Regex], group_count: int,
                  strategy: str = "balanced") -> List[RegexGroup]:
    """Partition ``nodes`` into at most ``group_count`` groups.

    ``strategy``:

    * ``"balanced"`` — the paper's policy: greedy LPT on total
      character length, so CTA workloads are even.
    * ``"round_robin"`` — naive index-striped assignment (the ablation
      baseline: ignores pattern length, so one CTA can end up with all
      the long patterns and straggle the whole launch).
    """
    if group_count < 1:
        raise ValueError("group_count must be >= 1")
    group_count = min(group_count, max(1, len(nodes)))
    groups = [RegexGroup() for _ in range(group_count)]
    if not nodes:
        return groups[:1]

    if strategy == "round_robin":
        for index, node in enumerate(nodes):
            group = groups[index % group_count]
            group.indices.append(index)
            group.total_length += char_length(node)
        return [g for g in groups if g.indices]
    if strategy != "balanced":
        raise ValueError(f"unknown grouping strategy {strategy!r}")

    lengths = [(char_length(node), index)
               for index, node in enumerate(nodes)]
    lengths.sort(key=lambda item: (-item[0], item[1]))

    heap: List[Tuple[int, int]] = [(0, g) for g in range(group_count)]
    for length, index in lengths:
        total, g = heappop(heap)
        groups[g].indices.append(index)
        groups[g].total_length = total + length
        heappush(heap, (groups[g].total_length, g))

    return [g for g in groups if g.indices]


def imbalance(groups: Sequence[RegexGroup]) -> float:
    """max/mean total length ratio — 1.0 is perfectly balanced."""
    totals = [g.total_length for g in groups if g.indices]
    if not totals or sum(totals) == 0:
        return 1.0
    return max(totals) / (sum(totals) / len(totals))

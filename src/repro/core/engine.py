"""BitGenEngine — the public compile-and-match API.

Mirrors the paper's workflow (Figure 4): regexes are partitioned into
balanced groups (Section 7), each group is lowered to one bitstream
program, the per-scheme transformation pipeline is applied (Shift
Rebalancing, Zero Block Skipping, barrier planning), and at match time
each program executes as one simulated CTA, producing match results
plus the kernel metrics the benchmarks report.

Tuning knobs follow Section 7's parameter setup: ``scheme`` (the
Table 3 ladder), ``merge_size``, ``interval_size``, ``cta_count``, and
the CTA geometry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from .. import obs
from ..gpu.machine import DEFAULT_GEOMETRY, CTAGeometry
from ..gpu.metrics import KernelMetrics
from ..ir.lower import lower_group
from ..ir.passes import (LEVEL2_PASSES, LEVEL2_PREGUARD_PASSES,
                         PipelineReport, factor_prologue,
                         optimize_pipeline)
from ..ir.program import Program
from ..parallel.config import ScanConfig, reject_legacy_kwargs
from ..parallel.report import ScanReport
from ..regex import ast
from ..regex.parser import parse
from ..regex.reverse import reverse
from ..engines.base import Engine, MatchResult
from .barriers import BarrierPlan, plan_barriers
from .grouping import RegexGroup, group_regexes
from .interleaved import InterleavedExecutor
from .rebalance import rebalance_program
from .schemes import ExecutionResult, Scheme
from .sequential import SequentialExecutor
from .zeroskip import insert_guards

DEFAULT_CTA_COUNT = 256

_REG = obs.registry()
_COMPILES = _REG.counter(
    "repro_engine_compiles_total",
    "BitGenEngine compilations, labelled by scheme and opt level")
_COMPILE_SECONDS = _REG.histogram(
    "repro_engine_compile_seconds",
    "Wall time of one BitGenEngine compilation")
_SCAN_DISPATCH = _REG.counter(
    "repro_scan_dispatch_total",
    "Scan dispatch decisions: serial, parallel, serial-small-input")
_SCAN_BYTES = _REG.counter(
    "repro_scan_input_bytes_total", "Bytes scanned, by backend")
_SCAN_MATCHES = _REG.counter(
    "repro_scan_matches_total", "Match positions reported")


@dataclass
class CompiledGroup:
    """One CTA's compiled artefact."""

    group: RegexGroup
    program: Program
    barrier_plan: Optional[BarrierPlan] = None
    #: merged per-pass optimizer accounting (pre- and post-rebalance
    #: pipeline runs); None when compiled at opt_level 0.
    opt_report: Optional[PipelineReport] = None


@dataclass
class BitGenResult(MatchResult):
    """Match result annotated with execution metrics."""

    #: aggregate over all CTAs
    metrics: KernelMetrics = field(default_factory=KernelMetrics)
    #: per-CTA metrics, aligned with the engine's groups
    cta_metrics: List[KernelMetrics] = field(default_factory=list)
    input_bytes: int = 0
    #: gate accounting when this match ran prefiltered
    #: (:class:`~repro.core.prefilter.PrefilterReport`; for a batched
    #: ``match_many`` every stream carries the one union-gated
    #: evaluation), ``None`` for ungated runs
    prefilter: Optional[object] = None

    def report(self, stream_offset: int = 0) -> ScanReport:
        """This result as the unified :class:`ScanReport` view —
        the same type streaming and parallel scans return."""
        return ScanReport.from_result(self, stream_offset=stream_offset)


class BitGenEngine(Engine):
    """Compiled multi-pattern BitGen matcher."""

    name = "BitGen"

    def __init__(self, groups: List[CompiledGroup], pattern_count: int,
                 nodes: Optional[List[ast.Regex]] = None,
                 config: Optional[ScanConfig] = None, **legacy):
        reject_legacy_kwargs("BitGenEngine", legacy)
        if config is None:
            config = ScanConfig()
        self.groups = groups
        self.pattern_count = pattern_count
        self.config = config
        self._nodes = nodes
        #: faults of the most recent parallel dispatch (always empty
        #: after a serial scan)
        self.last_scan_faults: list = []
        #: how the most recent scan/match_many dispatched: "serial",
        #: "parallel", or "serial-small-input" (workers requested but
        #: the input was below ``min_parallel_bytes``)
        self.last_dispatch: str = "serial"
        #: how the most recent parallel dispatch got its executor:
        #: "none" (no parallel dispatch yet), "inline", "warm"
        #: (persistent pool reused), or "cold" (pool built)
        self.last_pool_state: str = "none"
        #: gate accounting of the most recent prefiltered match
        #: (:class:`~repro.core.prefilter.PrefilterReport`), None until
        #: a prefiltered scan ran
        self.last_prefilter = None
        self._reversed_engine: Optional["BitGenEngine"] = None
        self._compiled_group_cache: Optional[list] = None
        self._prefilter_cache = None

    # -- config-backed views (the pre-ScanConfig attribute surface) --------

    @property
    def scheme(self) -> Scheme:
        return self.config.scheme

    @property
    def geometry(self) -> CTAGeometry:
        geometry = self.config.geometry
        return geometry if geometry is not None else DEFAULT_GEOMETRY

    @property
    def merge_size(self) -> int:
        return self.config.merge_size

    @property
    def interval_size(self) -> int:
        return self.config.interval_size

    @property
    def loop_fallback(self) -> bool:
        return self.config.loop_fallback

    @property
    def backend(self) -> str:
        return self.config.backend

    # -- pickling (pool workers) -------------------------------------------

    def __getstate__(self):
        """Engines cross process boundaries for sharded dispatch; the
        memoised compiled kernels hold exec'd functions and are
        rebuilt worker-side through the shared on-disk cache."""
        state = dict(self.__dict__)
        state["_compiled_group_cache"] = None
        state["_reversed_engine"] = None
        state["_prefilter_cache"] = None
        state["last_scan_faults"] = []
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # -- compilation -------------------------------------------------------

    @classmethod
    def compile(cls, patterns: Sequence[Union[str, ast.Regex]],
                config: Optional[ScanConfig] = None,
                **legacy) -> "BitGenEngine":
        """Compile ``patterns`` (strings or ASTs).

        Pass a :class:`~repro.parallel.ScanConfig` to configure the
        scheme ladder, geometry, backend, and parallel dispatch in one
        object (the pre-ScanConfig scattered keyword arguments were
        removed after their one-release deprecation window; passing
        one raises :class:`TypeError` with a migration hint).

        ``backend="compiled"`` executes matches through the cached
        NumPy kernels of :mod:`repro.backend` with batched CTA
        dispatch — bit-identical match sets, estimated metrics.
        """
        reject_legacy_kwargs("BitGenEngine.compile", legacy)
        return cls._compile_config(
            patterns, config if config is not None else ScanConfig())

    @classmethod
    def _compile_config(cls, patterns: Sequence[Union[str, ast.Regex]],
                        config: ScanConfig) -> "BitGenEngine":
        """The warning-free compile path (internal call sites)."""
        begin = time.perf_counter()
        level = config.effective_opt_level()
        with obs.span("compile", category="compile",
                      patterns=len(patterns),
                      scheme=config.scheme.value, opt_level=level,
                      backend=config.backend):
            with obs.span("parse", category="compile"):
                nodes = [parse(p) if isinstance(p, str) else p
                         for p in patterns]
            cta_count = config.cta_count
            if cta_count is None:
                cta_count = min(DEFAULT_CTA_COUNT, max(1, len(nodes)))
            with obs.span("group", category="compile",
                          cta_count=cta_count):
                groups = group_regexes(nodes, cta_count,
                                       strategy=config.grouping)

            compiled: List[CompiledGroup] = []
            for index, group in enumerate(groups):
                members = [nodes[i] for i in group.indices]
                compiled.append(cls._compile_group(members, group,
                                                   config, index))
        _COMPILES.inc(scheme=config.scheme.value, opt_level=level)
        _COMPILE_SECONDS.observe(time.perf_counter() - begin)
        return cls(compiled, len(nodes), nodes=nodes, config=config)

    @classmethod
    def _compile_group(cls, members: List[ast.Regex], group: RegexGroup,
                       config: ScanConfig,
                       index: int = 0) -> CompiledGroup:
        """Compile one group's members into its program artefact.

        Outputs are named by *local* position (``R0..Rk-1``); match
        paths map them back to global pattern ids through
        ``group.indices``.  Local naming makes a compiled group
        position-independent — the same member multiset produces the
        same program wherever the patterns sit in the rule set, which
        is what incremental recompilation
        (:mod:`repro.core.incremental`) reuses across set diffs.
        """
        level = config.effective_opt_level()
        scheme = config.scheme
        geometry = config.geometry if config.geometry is not None \
            else DEFAULT_GEOMETRY
        names = [f"R{local}" for local in range(len(members))]
        # opt_level=0 compiles the raw syntax-directed
        # translation: no construction-time value numbering, no
        # passes.  Levels >= 1 keep value-numbered lowering
        # (the historical baseline) and layer the pass pipeline
        # on top.
        with obs.span("lower", category="compile", cta=index,
                      regexes=len(members)):
            program = lower_group(members, names=names,
                                  value_number=level > 0)
        program, report = cls._transform(
            program, scheme, level, config.interval_size,
            factor=config.factor)
        with obs.span("plan_barriers", category="compile",
                      cta=index):
            plan = cls._plan(program, scheme,
                             config.merge_size, geometry)
        return CompiledGroup(group, program, plan, report)

    @staticmethod
    def _transform(program: Program, scheme: Scheme, level: int,
                   interval_size: int, factor: bool = True
                   ) -> "tuple[Program, Optional[PipelineReport]]":
        """The per-scheme transformation pipeline.  The optimizer runs
        twice — on the lowered program and again after Shift
        Rebalancing (whose region restructuring mints fresh names the
        builder never value-numbered) — and always before guard
        insertion, so no pass has to reason about live ``SkipGuard``
        spans on this path.

        Zero-skipping schemes defer CSE until after guard insertion:
        global CSE merges subexpressions across zero paths, which
        interleaves the chains the guard planner needs contiguous and
        shrinks the skippable spans (a measured net loss on zero-heavy
        workloads).  Post-guard CSE never registers facts inside a
        guard span, so sharing cannot cross a skip region.

        ``factor`` adds cross-pattern prologue factoring
        (:func:`~repro.ir.passes.factor_prologue`) to the pre-guard
        rounds at level >= 2; the pass refuses guarded programs, so the
        post-guard run never includes it."""
        pre = None
        if level >= 2:
            pre = LEVEL2_PREGUARD_PASSES if scheme.zero_skipping \
                else LEVEL2_PASSES
            if factor:
                pre = pre + (("factor", factor_prologue),)
            elif not scheme.zero_skipping:
                pre = None  # the default roster, unmodified
        program, report = optimize_pipeline(program, level, passes=pre)
        if scheme.rebalanced:
            program = rebalance_program(program)
            program, post = optimize_pipeline(program, level, passes=pre)
            report = report.merged_with(post)
        if scheme.zero_skipping:
            program = insert_guards(program, interval=interval_size)
            if level >= 2:
                program, post = optimize_pipeline(program, level)
                report = report.merged_with(post)
        return program, (report if level > 0 else None)

    @staticmethod
    def _plan(program: Program, scheme: Scheme, merge_size: int,
              geometry: CTAGeometry) -> Optional[BarrierPlan]:
        if not scheme.interleaved:
            return None
        # Without Shift Rebalancing there is nothing to merge: every
        # SHIFT keeps its own barrier pair.
        effective = merge_size if scheme.rebalanced else 1
        return plan_barriers(program, merge_size=effective,
                             block_bytes=geometry.block_bytes)

    # -- prefiltered dispatch ----------------------------------------------

    def prefilter_index(self):
        """The lazily built literal-gate index
        (:class:`~repro.core.prefilter.PrefilterIndex`), or ``None``
        for engines without pattern ASTs (worker sub-engines), which
        always execute ungated."""
        if self._prefilter_cache is None:
            if self._nodes is None:
                return None
            from .prefilter import PrefilterIndex

            self._prefilter_cache = PrefilterIndex.build(
                self._nodes, [c.group for c in self.groups])
        return self._prefilter_cache

    def _prefilter_active(self, data: bytes,
                          effective: ScanConfig) -> Optional[set]:
        """Group indices that must execute on ``data``, or ``None``
        for "all" (prefilter off, or no gate index available)."""
        if not effective.prefilter:
            return None
        index = self.prefilter_index()
        if index is None:
            return None
        active, report = index.active_groups(data,
                                             effective.prefilter_impl)
        self.last_prefilter = report
        return set(active)

    # -- matching -----------------------------------------------------------

    def match(self, data: bytes,
              config: Optional[ScanConfig] = None) -> BitGenResult:
        effective = config if config is not None else self.config
        active = self._prefilter_active(data, effective)
        if self.backend == "compiled":
            result = self._match_compiled(data, active=active)
            if active is not None:
                result.prefilter = self.last_prefilter
            return result
        with obs.span("exec", category="exec", backend="simulate",
                      input_bytes=len(data), ctas=len(self.groups)):
            result = BitGenResult(pattern_count=self.pattern_count,
                                  input_bytes=len(data))
            for index, compiled in enumerate(self.groups):
                if active is not None and index not in active:
                    # Skipped by the literal gate: every output of
                    # this group is provably all-zero; an empty
                    # metrics slot keeps cta_metrics aligned.
                    result.cta_metrics.append(KernelMetrics())
                    continue
                with obs.span("exec.cta", category="exec", cta=index):
                    execution = self._run_group(compiled, data)
                result.cta_metrics.append(execution.metrics)
                result.metrics.merge(execution.metrics)
                for out, ends in execution.match_ends().items():
                    result.ends[compiled.group.indices[int(out[1:])]] \
                        = ends
        _SCAN_BYTES.inc(len(data), backend="simulate")
        _SCAN_MATCHES.inc(result.match_count())
        if active is not None:
            result.prefilter = self.last_prefilter
        return result

    def _compiled_programs(self) -> list:
        """Group programs lowered to cached NumPy kernels (memoised)."""
        if self._compiled_group_cache is None:
            from ..backend import compile_group

            self._compiled_group_cache = compile_group(
                [c.program for c in self.groups],
                honour_guards=self.scheme.zero_skipping)
        return self._compiled_group_cache

    def _match_compiled(self, data: bytes,
                        active: Optional[set] = None) -> BitGenResult:
        """Batched CTA dispatch: one transpose, groups whose programs
        share a kernel fingerprint execute as a single 2D NumPy call."""
        from ..backend import basis_environment

        return self.match_words(basis_environment(data), len(data),
                                active=active)

    def match_words(self, basis, input_bytes: int,
                    active: Optional[set] = None) -> BitGenResult:
        """Compiled match over an already-transposed ``(8, W)`` basis
        word array (padded to ``input_bytes + 1`` bits).  This is the
        zero-copy shard entry point: the parent transposes once into
        shared memory and every group-shard worker executes on views
        of the same words.  Bit-identical to :meth:`match` because the
        basis fully determines the kernels' inputs.

        ``active`` (a set of group indices) restricts execution to the
        prefilter-activated groups; skipped groups contribute empty
        metrics slots and (provably all-zero) empty match lists."""
        import numpy as np

        from ..backend import dispatch_words, estimate_metrics
        from ..bitstream.npvector import NPBitVector

        with obs.span("exec", category="exec", backend="compiled",
                      input_bytes=input_bytes, ctas=len(self.groups)):
            length = input_bytes + 1
            result = BitGenResult(pattern_count=self.pattern_count,
                                  input_bytes=input_bytes)
            programs = self._compiled_programs()
            indices = list(range(len(self.groups))) if active is None \
                else sorted(active)
            dispatched = dict(zip(indices, dispatch_words(
                [programs[i] for i in indices], basis, length)))
            for index, compiled in enumerate(self.groups):
                if index not in dispatched:
                    result.cta_metrics.append(KernelMetrics())
                    continue
                raw, stats = dispatched[index]
                metrics = estimate_metrics(compiled.program,
                                           self.geometry, length, stats)
                result.cta_metrics.append(metrics)
                result.metrics.merge(metrics)
                for out in compiled.program.outputs:
                    stream = NPBitVector(np.asarray(raw[out],
                                                    dtype=np.uint64),
                                         length)
                    result.ends[compiled.group.indices[int(out[1:])]] \
                        = stream.match_ends()
        _SCAN_BYTES.inc(input_bytes, backend="compiled")
        _SCAN_MATCHES.inc(result.match_count())
        return result

    def _run_group(self, compiled: CompiledGroup,
                   data: bytes) -> ExecutionResult:
        if self.scheme is Scheme.BASE:
            executor = SequentialExecutor(self.geometry)
            return executor.run(compiled.program, data)
        executor = InterleavedExecutor(
            geometry=self.geometry,
            barrier_plan=compiled.barrier_plan,
            honour_guards=self.scheme.zero_skipping,
            segmented=(self.scheme is Scheme.DTM_MINUS),
            loop_fallback=self.loop_fallback)
        return executor.run(compiled.program, data)

    def match_many(self, streams: Sequence[bytes],
                   config: Optional[ScanConfig] = None
                   ) -> List[BitGenResult]:
        """Match several input streams with one compiled engine.

        Section 3.1: with multiple concurrent input streams the
        execution model becomes MIMD-style — every (group, stream) pair
        is an independent simulated CTA.  Results are returned per
        stream, each carrying its own metrics.  With the compiled
        backend, equal-length streams batch into single 2D kernel
        calls per group (:func:`~repro.backend.dispatch_streams`).

        When the effective config requests ``workers > 1`` and the
        combined input clears ``min_parallel_bytes``, streams are
        sharded across a worker pool (:mod:`repro.parallel`); results
        are bit-identical to the serial path.  Below the threshold the
        scan silently runs serial (``last_dispatch`` records why).
        """
        effective = config if config is not None else self.config
        total_bytes = sum(len(stream) for stream in streams)
        with obs.span("scan.match_many", category="scan",
                      streams=len(streams), input_bytes=total_bytes):
            if effective.parallel_enabled():
                if effective.parallel_for_bytes(total_bytes):
                    from ..parallel.scan import parallel_match_many

                    results = parallel_match_many(self, streams,
                                                  effective)
                    # Set after the call: worker fallbacks re-enter
                    # match_many on this engine with a serial config
                    # and would otherwise clobber the top-level
                    # decision.
                    self.last_dispatch = "parallel"
                    _SCAN_DISPATCH.inc(dispatch="parallel")
                    return results
                self.last_dispatch = "serial-small-input"
            else:
                self.last_dispatch = "serial"
            _SCAN_DISPATCH.inc(dispatch=self.last_dispatch)
            if self.backend == "compiled":
                return self._match_many_compiled(streams,
                                                 config=effective)
            return [self.match(stream, config=effective)
                    for stream in streams]

    def scan(self, data: bytes,
             config: Optional[ScanConfig] = None) -> ScanReport:
        """One input through the unified report API.  With
        ``workers > 1`` the engine's CTA groups are sharded across a
        worker pool (whole kernel-fingerprint buckets per shard, so
        batched dispatch survives); the merged report is bit-identical
        to a serial :meth:`match`.  Inputs below
        ``min_parallel_bytes`` skip the pool: the report's ``dispatch``
        field records ``"serial-small-input"``."""
        effective = config if config is not None else self.config
        with obs.span("scan", category="scan",
                      input_bytes=len(data)) as sp:
            if effective.parallel_enabled():
                if effective.parallel_for_bytes(len(data)):
                    from ..parallel.scan import parallel_match

                    result = parallel_match(self, data, effective)
                    self.last_dispatch = "parallel"
                    report = ScanReport.from_result(
                        result, faults=list(self.last_scan_faults),
                        dispatch="parallel")
                else:
                    self.last_dispatch = "serial-small-input"
                    report = ScanReport.from_result(
                        self.match(data, config=effective),
                        dispatch="serial-small-input")
            else:
                self.last_dispatch = "serial"
                report = self.match(data, config=effective).report()
            if sp.is_recording:
                sp.set(dispatch=self.last_dispatch)
        _SCAN_DISPATCH.inc(dispatch=self.last_dispatch)
        tracer = obs.current_tracer()
        if sp.is_recording and tracer is not None:
            # The report's trace view: the scan span plus everything
            # recorded (or adopted from workers) beneath it.
            report.trace = tracer.subtree(sp.span_id)
        return report

    def _match_many_compiled(self, streams: Sequence[bytes],
                             config: Optional[ScanConfig] = None
                             ) -> List[BitGenResult]:
        from ..backend import transpose_stream_classes

        effective = config if config is not None else self.config
        active = None
        if effective.prefilter:
            index = self.prefilter_index()
            if index is not None:
                # One gate evaluation over all streams: a group
                # executes if its literals fired in *any* stream, so
                # equal-length batching survives (per-stream results
                # for over-activated groups are still all-zero).
                actives, report = index.active_groups_many(
                    streams, effective.prefilter_impl)
                self.last_prefilter = report
                active = set(actives)
        results = self.match_many_words([len(s) for s in streams],
                                        transpose_stream_classes(streams),
                                        active=active)
        if active is not None:
            for result in results:
                result.prefilter = self.last_prefilter
        return results

    def match_many_words(self, sizes: Sequence[int], classes,
                         active: Optional[set] = None
                         ) -> List[BitGenResult]:
        """Compiled multi-stream match over pre-transposed length
        classes (:func:`~repro.backend.transpose_stream_classes`
        layout).  The transpose is paid once for all groups — and, on
        the zero-copy shard path, once in the *parent*, with workers
        executing on shared-memory views.  ``active`` restricts
        execution to prefilter-activated group indices."""
        import numpy as np

        from ..backend import dispatch_stream_classes, estimate_metrics
        from ..bitstream.npvector import NPBitVector

        results = [BitGenResult(pattern_count=self.pattern_count,
                                input_bytes=size)
                   for size in sizes]
        for index, (compiled, cprog) in enumerate(
                zip(self.groups, self._compiled_programs())):
            if active is not None and index not in active:
                for result in results:
                    result.cta_metrics.append(KernelMetrics())
                continue
            for size, result, (raw, stats) in zip(
                    sizes, results,
                    dispatch_stream_classes(cprog, classes,
                                            len(results))):
                length = size + 1
                metrics = estimate_metrics(compiled.program,
                                           self.geometry, length, stats)
                result.cta_metrics.append(metrics)
                result.metrics.merge(metrics)
                for out in compiled.program.outputs:
                    vec = NPBitVector(np.asarray(raw[out],
                                                 dtype=np.uint64), length)
                    result.ends[compiled.group.indices[int(out[1:])]] \
                        = vec.match_ends()
        return results

    def match_starts(self, data: bytes) -> BitGenResult:
        """All-match *start* positions per pattern.

        Runs the reversed patterns over the reversed input: a match of
        ``R`` over data[s..e] is a match of ``reverse(R)`` over the
        reversal ending at position ``n - 1 - s`` (the paper reports
        end positions only; this recovers the other extent).
        """
        if self._nodes is None:
            raise ValueError("engine was built without pattern ASTs")
        if self._reversed_engine is None:
            self._reversed_engine = BitGenEngine._compile_config(
                [reverse(node) for node in self._nodes], self.config)
        mirrored = self._reversed_engine.match(data[::-1])
        length = len(data)
        result = BitGenResult(pattern_count=self.pattern_count,
                              input_bytes=length,
                              metrics=mirrored.metrics,
                              cta_metrics=mirrored.cta_metrics)
        for index in range(self.pattern_count):
            result.ends[index] = sorted(length - 1 - pos
                                        for pos in mirrored.ends[index])
        return result

    # -- introspection ---------------------------------------------------------

    def program_stats(self) -> Dict[str, int]:
        """Aggregate instruction mix over all groups (Table 1 columns),
        plus the optimizer's net effect: ``instrs`` is the static
        instruction count actually compiled and ``optimized_away`` what
        the pass pipeline removed relative to raw lowering."""
        totals = {"and": 0, "or": 0, "not": 0, "shift": 0, "while": 0}
        instrs = 0
        removed = 0
        for compiled in self.groups:
            for key, value in compiled.program.op_counts().items():
                totals[key] += value
            instrs += compiled.program.instruction_count()
            if compiled.opt_report is not None:
                removed += compiled.opt_report.ops_removed
        totals["instrs"] = instrs
        totals["optimized_away"] = removed
        return totals

    def optimization_stats(self) -> Dict[str, object]:
        """Per-pass optimizer accounting, merged over all groups: what
        each pass rewrote and removed at this engine's ``opt_level``."""
        level = self.config.effective_opt_level()
        merged: Dict[str, object] = {
            "opt_level": level,
            "instrs_before": 0,
            "instrs_after": 0,
            "ops_removed": 0,
            "passes": {},
        }
        passes: Dict[str, Dict[str, int]] = merged["passes"]
        for compiled in self.groups:
            report = compiled.opt_report
            if report is None:
                count = compiled.program.instruction_count()
                merged["instrs_before"] += count
                merged["instrs_after"] += count
                continue
            merged["instrs_before"] += report.before
            merged["instrs_after"] += report.after
            merged["ops_removed"] += report.ops_removed
            for delta in report.passes:
                entry = passes.setdefault(
                    delta.name, {"rewrites": 0, "ops_removed": 0})
                entry["rewrites"] += delta.rewrites
                entry["ops_removed"] += delta.ops_removed
        return merged

    def render_kernels(self) -> str:
        """CUDA-like source of every group's kernel."""
        from .codegen import render_kernel

        parts = []
        for index, compiled in enumerate(self.groups):
            parts.append(render_kernel(compiled.program, cta_index=index,
                                       plan=compiled.barrier_plan,
                                       geometry=self.geometry))
        return "\n\n".join(parts)

"""Streaming (chunked) matching.

Deep packet inspection — the paper's motivating deployment — sees its
input as a stream of packets, not one buffer.  :class:`StreamingMatcher`
wraps a compiled :class:`BitGenEngine` with carried history: each
``feed(chunk)`` scans the retained tail of the previous data plus the
new chunk and reports only the *new* match end positions, in global
stream coordinates.

Results come back as :class:`~repro.parallel.report.ScanReport` — the
unified result type shared with one-shot and parallel scans — carrying
the pattern → positions mapping (the old ``Dict[int, List[int]]``
surface, preserved through the report's Mapping interface), the stream
offset the report was produced at, and the merged kernel metrics of
the chunk's scan.

Correctness bound: a match whose span exceeds the retained tail can be
missed when it straddles a chunk boundary.  The constructor sizes the
tail from the pattern set — for bounded patterns the exact maximum
match length; unbounded patterns (Kleene stars over the alphabet) fall
back to the configured ``max_tail_bytes``, which then becomes an
explicit guarantee ("matches up to N bytes are never missed"), the
same contract stream-mode Hyperscan documents for its bounded-history
modes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..engines.hyperscan import max_match_length
from ..parallel.config import ScanConfig, reject_legacy_kwargs
from ..parallel.report import ScanReport
from .engine import BitGenEngine

DEFAULT_MIN_TAIL = 256


class StreamingMatcher:
    """Chunked matcher over one compiled engine."""

    def __init__(self, engine: BitGenEngine,
                 config: Optional[ScanConfig] = None, **legacy):
        reject_legacy_kwargs("StreamingMatcher", legacy)
        if engine._nodes is None:
            raise ValueError("engine was built without pattern ASTs")
        self.config = config if config is not None else engine.config
        self.engine = engine
        bounded: List[int] = []
        self.has_unbounded = False
        for node in engine._nodes:
            longest = max_match_length(node)
            if longest is None:
                self.has_unbounded = True
            else:
                bounded.append(longest)
        wanted = max(bounded + [DEFAULT_MIN_TAIL])
        if self.has_unbounded:
            wanted = self.config.max_tail_bytes
        #: matches up to this many bytes long are never missed
        self.guaranteed_span = min(wanted, self.config.max_tail_bytes)
        self._tail = b""
        self._consumed = 0          # stream bytes before the tail
        self.chunks_fed = 0

    # -- streaming -----------------------------------------------------------

    def feed(self, chunk: bytes) -> ScanReport:
        """Scan ``chunk``; reports the new match end positions per
        pattern in global stream coordinates, at the stream offset
        reached after consuming the chunk."""
        self.chunks_fed += 1
        window = self._tail + chunk
        result = self.engine.match(window)
        fresh: Dict[int, List[int]] = {}
        boundary = len(self._tail)
        for pattern, ends in result.ends.items():
            fresh[pattern] = [self._consumed + pos for pos in ends
                              if pos >= boundary]
        keep = min(len(window), self.guaranteed_span)
        self._consumed += len(window) - keep
        self._tail = window[len(window) - keep:]
        return ScanReport(pattern_count=self.engine.pattern_count,
                          matches=fresh,
                          stream_offset=self.stream_position,
                          input_bytes=len(chunk),
                          metrics=result.metrics,
                          cta_metrics=result.cta_metrics)

    def feed_all(self, chunks: Sequence[bytes]) -> ScanReport:
        """Feed several chunks; returns one merged report."""
        merged = ScanReport(pattern_count=self.engine.pattern_count)
        for chunk in chunks:
            merged.merge(self.feed(chunk))
        return merged

    @property
    def stream_position(self) -> int:
        """Total bytes consumed so far."""
        return self._consumed + len(self._tail)

    def reset(self) -> None:
        self._tail = b""
        self._consumed = 0
        self.chunks_fed = 0

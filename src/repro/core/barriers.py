"""Barrier scheduling and merging for SHIFT instructions (Section 5.3).

Every SHIFT group costs two intra-CTA barriers per block: one before
(operand blocks visible in shared memory) and one after (shifted values
ready).  After Shift Rebalancing moves shifts onto operands that are
ready early, independent shifts can be *merged*: scheduled at one point
and sharing one barrier pair.  The greedy merger follows the paper:

* a SHIFT joins the preceding group if its operand is already defined
  at the group leader's position, and
* the group is below the ``merge_size`` limit, and
* the group's distinct stored operands still fit in shared memory
  (storing only unshifted values — the redundant-copy removal of
  Section 5.3 — so two shifts of the same bitstream count once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..ir.instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from ..ir.program import Program

DEFAULT_MERGE_SIZE = 8


@dataclass
class ShiftGroupInfo:
    """Placement of one SHIFT instruction in the barrier schedule."""

    group_id: int
    is_leader: bool
    #: number of distinct operand blocks the group stores to shared
    #: memory (meaningful on the leader, where the stores happen)
    stored_vars: int = 1


@dataclass
class BarrierPlan:
    """SHIFT-to-group assignment for one program."""

    merge_size: int = DEFAULT_MERGE_SIZE
    _by_instr: Dict[int, ShiftGroupInfo] = field(default_factory=dict)
    group_count: int = 0
    shift_count: int = 0
    #: worst-case distinct stored operands of any one group
    max_group_stores: int = 0

    def lookup(self, instr: Instr) -> Optional[ShiftGroupInfo]:
        return self._by_instr.get(id(instr))

    def smem_bytes_needed(self, block_bytes: int) -> int:
        return self.max_group_stores * block_bytes

    def sync_points(self) -> int:
        """Barrier sites from SHIFT groups (Table 6's #Sync is twice
        this per block)."""
        return self.group_count


def plan_barriers(program: Program,
                  merge_size: int = DEFAULT_MERGE_SIZE,
                  smem_capacity_bytes: int = 96 * 1024,
                  block_bytes: int = 2048) -> BarrierPlan:
    """Compute the greedy merge schedule for ``program``."""
    if merge_size < 1:
        raise ValueError("merge_size must be >= 1")
    plan = BarrierPlan(merge_size=merge_size)
    store_budget = max(1, smem_capacity_bytes // block_bytes)

    def visit(stmts: Sequence[Stmt]) -> None:
        _plan_region(stmts, plan, merge_size, store_budget)
        for stmt in stmts:
            if isinstance(stmt, WhileLoop):
                visit(stmt.body)

    visit(program.statements)
    return plan


@dataclass
class _Group:
    group_id: int
    leader: Instr
    leader_index: int
    members: List[Instr] = field(default_factory=list)
    stored: Set[str] = field(default_factory=set)


def _plan_region(stmts: Sequence[Stmt], plan: BarrierPlan,
                 merge_size: int, store_budget: int) -> None:
    """Greedy merging over one straight-line stretch.  Control-flow
    statements end the current group (a loop body executes a varying
    number of times, so its shifts cannot share a barrier with code
    outside it)."""
    last_def: Dict[str, int] = {}
    group: Optional[_Group] = None

    def finish_group() -> None:
        nonlocal group
        if group is None:
            return
        stores = len(group.stored)
        plan.max_group_stores = max(plan.max_group_stores, stores)
        for member in [group.leader] + group.members:
            info = plan._by_instr[id(member)]
            info.stored_vars = stores
        group = None

    for index, stmt in enumerate(stmts):
        if isinstance(stmt, (WhileLoop, SkipGuard)):
            finish_group()
            continue
        instr = stmt
        if instr.op is Op.SHIFT:
            plan.shift_count += 1
            operand = instr.args[0]
            operand_def = last_def.get(operand, -1)
            can_merge = (
                group is not None
                and len(group.members) + 1 < merge_size
                and operand_def < group.leader_index
                and (operand in group.stored
                     or len(group.stored) < store_budget))
            if can_merge:
                group.members.append(instr)
                group.stored.add(operand)
                plan._by_instr[id(instr)] = ShiftGroupInfo(
                    group.group_id, is_leader=False)
            else:
                finish_group()
                group = _Group(plan.group_count, instr, index,
                               stored={operand})
                plan._by_instr[id(instr)] = ShiftGroupInfo(
                    group.group_id, is_leader=True)
                plan.group_count += 1
        last_def[instr.dest] = index
    finish_group()
